#!/usr/bin/env python
"""Kernel-benchmark regression gate.

Compares a fresh ``BENCH_kernel.json`` against a committed baseline and
fails (exit 1) when any *warm speedup ratio* on a baseline point has
regressed by more than ``--threshold`` (default 20%).  Two ratios are
trended per point: ``speedup_warm`` (reference over fast) and -- when
the baseline records it -- ``speedup_warm_compiled`` (fast over the
generated per-design-point compiled kernel).

The gate deliberately trends speedup ratios -- wall times of two
kernels on the same host and run -- rather than absolute cycles/sec:
all kernels execute the identical cycle schedule, so the ratio cancels
host speed, load and Python-version effects that would make an
absolute-throughput gate flap in CI.

Usage::

    python scripts/check_bench_regression.py CURRENT.json BASELINE.json
        [--threshold 0.20] [--floor LABEL=X ...]
        [--floor-compiled LABEL=X ...]

``--floor`` additionally enforces an absolute minimum ``speedup_warm``
on a named point (e.g. ``--floor mesh-V8-wf-r0.15=3.0`` pins the
paper-map acceptance criterion for the flagship design point);
``--floor-compiled`` does the same for ``speedup_warm_compiled``.

When both reports carry phase profiles (``repro bench --profile``),
every tripped gate names the phases of the regressing kernel whose
wall time grew -- so a CI failure reads "sw_alloc regressed", not just
"the ratio moved".
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional


def load(path: str) -> dict:
    data = json.loads(Path(path).read_text())
    if "points" not in data:
        raise SystemExit(f"error: {path} is not a kernel-bench report")
    return data


#: Which kernel's phase profile explains a regression in each ratio:
#: ``speedup_warm`` drops when *fast* slows down (relative to reference);
#: ``speedup_warm_compiled`` drops when *compiled* slows down.
_RATIO_KERNEL = {
    "speedup_warm": "fast",
    "speedup_warm_compiled": "compiled",
}


def phase_attribution(cur: dict, base: dict, key: str) -> str:
    """Name the phase that regressed, when both reports were profiled.

    Returns e.g. ``" [fast phase attribution: sw_alloc +0.412s,
    vc_alloc +0.080s]"`` -- the per-phase wall-time deltas of the
    ratio's denominator kernel, worst first -- or ``""`` when either
    side lacks profile data (reports from ``repro bench`` without
    ``--profile``).
    """
    kernel = _RATIO_KERNEL.get(key)
    if kernel is None:
        return ""
    cur_prof = cur.get("profile", {}).get(kernel)
    base_prof = base.get("profile", {}).get(kernel)
    if not cur_prof or not base_prof:
        return ""
    cur_ph = cur_prof.get("phases", {})
    base_ph = base_prof.get("phases", {})
    deltas = sorted(
        (
            (ph, cur_ph.get(ph, 0.0) - base_ph.get(ph, 0.0))
            for ph in set(cur_ph) | set(base_ph)
        ),
        key=lambda kv: kv[1],
        reverse=True,
    )
    grew = [(ph, d) for ph, d in deltas if d > 0][:3]
    if not grew:
        return f" [{kernel} phase attribution: no phase grew]"
    rendered = ", ".join(f"{ph} {d:+.3f}s" for ph, d in grew)
    return f" [{kernel} phase attribution: {rendered}]"


def main(argv: Optional[List[str]] = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("current", help="freshly generated BENCH_kernel.json")
    ap.add_argument("baseline", help="committed baseline report")
    ap.add_argument("--threshold", type=float, default=0.20,
                    help="max allowed fractional speedup regression "
                         "(default: 0.20)")
    ap.add_argument("--floor", action="append", default=[],
                    metavar="LABEL=X",
                    help="absolute minimum warm speedup (reference/fast) "
                         "for a point; repeatable")
    ap.add_argument("--floor-compiled", action="append", default=[],
                    metavar="LABEL=X",
                    help="absolute minimum compiled warm speedup "
                         "(fast/compiled) for a point; repeatable")
    args = ap.parse_args(argv)

    current = load(args.current)
    baseline = load(args.baseline)
    cur_points = {p["label"]: p for p in current["points"]}
    base_points = {p["label"]: p for p in baseline["points"]}

    # (json key, human name, floor specs) for each trended ratio.
    metrics = [
        ("speedup_warm", "warm speedup", args.floor),
        ("speedup_warm_compiled", "compiled warm speedup",
         args.floor_compiled),
    ]

    failures = []
    for label, base in sorted(base_points.items()):
        cur = cur_points.get(label)
        if cur is None:
            failures.append(f"{label}: missing from current report")
            continue
        for key, name, _ in metrics:
            if key not in base:
                # Baselines predating the compiled kernel have no
                # compiled ratio to trend against.
                continue
            if key not in cur:
                failures.append(f"{label}: current report lacks {key}")
                continue
            want = base[key] * (1.0 - args.threshold)
            got = cur[key]
            status = "ok" if got >= want else "REGRESSED"
            print(f"{label}: {name} {got:.2f}x "
                  f"(baseline {base[key]:.2f}x, "
                  f"gate >= {want:.2f}x) {status}")
            if got < want:
                failures.append(
                    f"{label}: {name} {got:.2f}x < {want:.2f}x "
                    f"(baseline {base[key]:.2f}x - {args.threshold:.0%})"
                    + phase_attribution(cur, base, key)
                )

    for key, name, floors in metrics:
        for spec in floors:
            label, _, floor_s = spec.partition("=")
            if not floor_s:
                raise SystemExit(f"error: bad floor spec {spec!r} "
                                 "(expected LABEL=X)")
            floor = float(floor_s)
            cur = cur_points.get(label)
            if cur is None:
                failures.append(f"{label}: a floor named a missing point")
            elif key not in cur:
                failures.append(f"{label}: current report lacks {key}")
            elif cur[key] < floor:
                base = base_points.get(label, {})
                failures.append(
                    f"{label}: {name} {cur[key]:.2f}x "
                    f"below the absolute floor {floor:.2f}x"
                    + phase_attribution(cur, base, key)
                )
            else:
                print(f"{label}: {name} floor {floor:.2f}x satisfied "
                      f"({cur[key]:.2f}x)")

    if failures:
        print("\nbench regression gate FAILED:")
        for f in failures:
            print(f"  {f}")
        return 1
    print("\nbench regression gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
