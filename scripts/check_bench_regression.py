#!/usr/bin/env python
"""Kernel-benchmark regression gate.

Compares a fresh ``BENCH_kernel.json`` against a committed baseline and
fails (exit 1) when the fast kernel's *warm speedup ratio* on any
baseline point has regressed by more than ``--threshold`` (default
20%).

The gate deliberately trends the speedup ratio -- reference wall time
over fast wall time on the same host and run -- rather than absolute
cycles/sec: both kernels execute the identical cycle schedule, so the
ratio cancels host speed, load and Python-version effects that would
make an absolute-throughput gate flap in CI.

Usage::

    python scripts/check_bench_regression.py CURRENT.json BASELINE.json
        [--threshold 0.20] [--floor LABEL=X ...]

``--floor`` additionally enforces an absolute minimum speedup on a
named point (e.g. ``--floor mesh-V8-wf-r0.15=3.0`` pins the paper-map
acceptance criterion for the flagship design point).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional


def load(path: str) -> dict:
    data = json.loads(Path(path).read_text())
    if "points" not in data:
        raise SystemExit(f"error: {path} is not a kernel-bench report")
    return data


def main(argv: Optional[List[str]] = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("current", help="freshly generated BENCH_kernel.json")
    ap.add_argument("baseline", help="committed baseline report")
    ap.add_argument("--threshold", type=float, default=0.20,
                    help="max allowed fractional speedup regression "
                         "(default: 0.20)")
    ap.add_argument("--floor", action="append", default=[],
                    metavar="LABEL=X",
                    help="absolute minimum warm speedup for a point; "
                         "repeatable")
    args = ap.parse_args(argv)

    current = load(args.current)
    baseline = load(args.baseline)
    cur_points = {p["label"]: p for p in current["points"]}
    base_points = {p["label"]: p for p in baseline["points"]}

    failures = []
    for label, base in sorted(base_points.items()):
        cur = cur_points.get(label)
        if cur is None:
            failures.append(f"{label}: missing from current report")
            continue
        want = base["speedup_warm"] * (1.0 - args.threshold)
        got = cur["speedup_warm"]
        status = "ok" if got >= want else "REGRESSED"
        print(f"{label}: warm speedup {got:.2f}x "
              f"(baseline {base['speedup_warm']:.2f}x, "
              f"gate >= {want:.2f}x) {status}")
        if got < want:
            failures.append(
                f"{label}: warm speedup {got:.2f}x < {want:.2f}x "
                f"(baseline {base['speedup_warm']:.2f}x - {args.threshold:.0%})"
            )

    for spec in args.floor:
        label, _, floor_s = spec.partition("=")
        if not floor_s:
            raise SystemExit(f"error: bad --floor spec {spec!r} "
                             "(expected LABEL=X)")
        floor = float(floor_s)
        cur = cur_points.get(label)
        if cur is None:
            failures.append(f"{label}: --floor named a missing point")
        elif cur["speedup_warm"] < floor:
            failures.append(
                f"{label}: warm speedup {cur['speedup_warm']:.2f}x "
                f"below the absolute floor {floor:.2f}x"
            )
        else:
            print(f"{label}: floor {floor:.2f}x satisfied "
                  f"({cur['speedup_warm']:.2f}x)")

    if failures:
        print("\nbench regression gate FAILED:")
        for f in failures:
            print(f"  {f}")
        return 1
    print("\nbench regression gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
