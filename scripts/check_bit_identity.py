#!/usr/bin/env python
"""Differential bit-identity check across the allocation kernels.

Runs every design point in a seeded config matrix (allocator
architectures x topologies x faults on/off x observer on/off) under the
reference kernel and every kernel under test (default: ``fast`` and the
generated per-design-point ``compiled`` kernel) and asserts the
resulting :class:`~repro.netsim.simulator.SimulationResult` payloads --
every statistic, down to the last misspeculation counter -- are
identical.  For observed runs the collected metrics rows must match as
well.

This is the command-line face of the equivalence harness (the pytest
face lives in ``tests/perf/test_kernel_equivalence.py``); CI runs it
with ``--quick``, and any optimisation work on the fast or compiled
kernels should keep it green at full depth:

    PYTHONPATH=src python scripts/check_bit_identity.py [--quick] [-v]
        [--kernel NAME ...]

``--kernel`` restricts the kernels under test; names are validated
against the kernel registry (``repro.netsim.codegen.KERNELS``) and an
unknown name exits with status 2 listing the available kernels.

Exit status 0 iff every point is identical.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Dict, List, Optional, Tuple

from repro.faults.plan import FaultPlan, LinkFault, StuckVC
from repro.netsim.codegen import KERNELS
from repro.netsim.simulator import SimulationConfig, build_network, run_simulation
from repro.obs.observer import SimObserver

# Kernels compared against "reference" when --kernel is not given.
DEFAULT_KERNELS = ("fast", "compiled")

# Short but non-trivial windows: long enough to reach steady state and
# exercise contention, misspeculation and (for fault points) blocked
# links, short enough that the full matrix stays a few minutes.
WINDOWS = dict(warmup_cycles=200, measure_cycles=600, drain_cycles=600)

FAULT_PLAN = FaultPlan(
    seed=7,
    link_rate=0.0002,
    mean_downtime=30,
    link_faults=(LinkFault(router=9, port=1, start=250, end=450),),
    stuck_vcs=(StuckVC(router=3, port=2, vc=1, start=0),),
)


def config_matrix(quick: bool) -> List[Tuple[str, SimulationConfig, bool]]:
    """(label, config, observed) triples for the sweep."""
    points: List[Tuple[str, SimulationConfig, bool]] = []
    archs = ["sep_if", "sep_of", "wf"]
    topologies = ["mesh", "fbfly"]
    for arch in archs:
        for topo in topologies:
            for faulted in (False, True):
                for observed in (False, True):
                    if quick and faulted != observed:
                        # Quick mode: plain and fully-loaded points
                        # only (arch x topo coverage is preserved).
                        continue
                    arbiter = "m" if arch == "sep_of" else "rr"
                    cfg = SimulationConfig(
                        topology=topo,
                        vcs_per_class=2,
                        injection_rate=0.30,
                        vc_alloc_arch=arch,
                        vc_alloc_arbiter=arbiter,
                        sw_alloc_arch=arch,
                        sw_alloc_arbiter=arbiter,
                        speculation="pessimistic" if arch != "sep_of" else "conventional",
                        seed=11,
                        faults=FAULT_PLAN if faulted else None,
                        **WINDOWS,
                    )
                    label = (
                        f"{arch}/{topo}"
                        f"{'/faults' if faulted else ''}"
                        f"{'/observer' if observed else ''}"
                    )
                    points.append((label, cfg, observed))
    return points


def validate_kernels(names: List[str]) -> Optional[str]:
    """Error message if any requested kernel is not in the registry."""
    unknown = [n for n in names if n not in KERNELS]
    if unknown:
        return (
            f"unknown kernel(s) {', '.join(map(repr, unknown))} "
            f"(available: {', '.join(KERNELS)})"
        )
    return None


def kernel_probe(kernels: Tuple[str, ...] = DEFAULT_KERNELS) -> Optional[str]:
    """Error message if any allocation kernel cannot be selected.

    A removed or broken kernel must fail this harness loudly -- an
    exception here, swallowed into an empty matrix, would otherwise
    read as "all identical".
    """
    cfg = SimulationConfig(
        topology="mesh", warmup_cycles=0, measure_cycles=1, drain_cycles=0
    )
    for kernel in ("reference",) + tuple(kernels):
        try:
            build_network(cfg, kernel=kernel)
        except Exception as exc:  # noqa: BLE001 -- report, don't crash
            return f"{kernel!r} kernel unavailable: {exc}"
    return None


def run_point(
    cfg: SimulationConfig,
    observed: bool,
    kernels: Tuple[str, ...] = DEFAULT_KERNELS,
) -> Tuple[Dict[str, dict], Dict[str, Optional[List[dict]]]]:
    """Run one design point under the reference and the given kernels.

    Returns ``(payloads, observer_rows)``, each keyed by kernel name
    (with ``"reference"`` always present).
    """
    payloads: Dict[str, dict] = {}
    rows: Dict[str, Optional[List[dict]]] = {}
    for kernel in ("reference",) + tuple(kernels):
        obs = SimObserver(sample_every=100) if observed else None
        result = run_simulation(cfg, observer=obs, kernel=kernel)
        payloads[kernel] = result.to_payload()
        rows[kernel] = obs.rows if obs is not None else None
    return payloads, rows


def diff_payloads(got: dict, ref: dict, name: str = "fast") -> List[str]:
    """Human-readable field-level differences (empty = identical)."""
    out = []
    for key in sorted(set(got) | set(ref)):
        a, b = got.get(key), ref.get(key)
        if a != b and not (a != a and b != b):  # NaN == NaN for our purposes
            out.append(f"  {key}: {name}={a!r} reference={b!r}")
    return out


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="half matrix (plain + faults-and-observer points); CI smoke",
    )
    parser.add_argument(
        "--kernel",
        action="append",
        default=[],
        metavar="NAME",
        help="kernel to compare against reference (repeatable; default: "
        f"{', '.join(DEFAULT_KERNELS)})",
    )
    parser.add_argument(
        "-v", "--verbose", action="store_true", help="print per-point timing"
    )
    args = parser.parse_args(argv)

    bad = validate_kernels(args.kernel)
    if bad is not None:
        print(f"error: {bad}", file=sys.stderr)
        return 2
    kernels = tuple(args.kernel) if args.kernel else DEFAULT_KERNELS
    under_test = tuple(k for k in kernels if k != "reference")
    if not under_test:
        print(
            "error: no kernel under test (only 'reference' was named)",
            file=sys.stderr,
        )
        return 2

    points = config_matrix(args.quick)
    if not points:
        # "ALL IDENTICAL (0 design points)" is a vacuous pass; refuse it.
        print(
            "error: the design-point matrix is empty -- nothing was "
            "compared, so bit identity is NOT established",
            file=sys.stderr,
        )
        return 2
    problem = kernel_probe(under_test)
    if problem is not None:
        print(
            f"error: {problem} -- bit identity cannot be checked",
            file=sys.stderr,
        )
        return 2
    failures = 0
    for label, cfg, observed in points:
        t0 = time.perf_counter()
        payloads, rows = run_point(cfg, observed, under_test)
        dt = time.perf_counter() - t0
        problems = []
        for kernel in under_test:
            problems += diff_payloads(
                payloads[kernel], payloads["reference"], kernel
            )
            if observed and rows[kernel] != rows["reference"]:
                problems.append(f"  observer metrics rows differ ({kernel})")
        if problems:
            failures += 1
            print(f"MISMATCH {label}")
            for line in problems:
                print(line)
        elif args.verbose:
            print(f"ok {label} ({dt:.1f}s)")

    total = len(points)
    if failures:
        print(f"{failures}/{total} design points differ between kernels")
        return 1
    print(f"ALL IDENTICAL ({total} design points, "
          f"kernels: {', '.join(under_test)} vs reference)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
