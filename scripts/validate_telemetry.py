#!/usr/bin/env python
"""Validate a telemetry directory produced by ``repro sweep --metrics``.

CI runs this against a tiny instrumented sweep to catch schema drift in
the observability layer: every JSONL row must parse and carry its
required keys, the run manifest must match the documented schema, and
the trace file must be loadable Chrome trace JSON with paired async
events.  Exits non-zero with a description of the first problem found.

Beyond sweep telemetry, the same script gates the performance
observatory's schemas: ``--bench FILE`` validates a bench report
(including per-phase profiles when present), ``--ledger FILE``
validates the append-only bench-history ledger and ``--resilience
FILE`` validates a ``repro resilience`` degradation-curve artifact.
``--serve STATE_DIR`` validates a sweep server's state directory:
the ``serve_event`` scheduling log (``telemetry/server.jsonl``) and
every per-sweep ``telemetry/sweep-*.jsonl`` written by ``repro serve``.

Usage::

    python scripts/validate_telemetry.py [DIR] [--trace FILE]
        [--bench BENCH_kernel.json] [--ledger BENCH_history.jsonl]
        [--resilience resilience.json] [--serve STATE_DIR]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

SAMPLE_KEYS = {"kind", "cycle", "name", "type", "labels", "value"}
POINT_KEYS = {"kind", "key", "config", "result", "cached", "completed", "total"}
MANIFEST_KEYS = {
    "schema", "created", "simulator_rev", "wall_time_s", "points",
    "config_keys", "host",
}
MANIFEST_SCHEMA = "repro-run-manifest/1"
INSTRUMENT_TYPES = {"counter", "gauge", "histogram"}
BENCH_SCHEMA = "repro/kernel-bench/v1"
PROFILE_SCHEMA = "repro/phase-profile/v1"
HISTORY_SCHEMA = "repro/bench-history/v1"
RESILIENCE_SCHEMA = "repro/resilience/v1"
RESILIENCE_KEYS = {
    "schema", "topology", "total_vcs", "injection_rate", "sw_alloc_arch",
    "vc_alloc_arch", "speculation", "cycles", "seed", "fault_counts",
    "faulted_links", "curves",
}
RESILIENCE_POINT_KEYS = {"link_faults", "delivered_fraction", "degraded_mode"}
HISTORY_KEYS = {
    "schema", "created", "git", "simulator_rev", "quick", "kernels",
    "host", "points",
}
PHASES = {
    "setup", "delivery", "event_calendar", "traffic", "routing",
    "vc_alloc", "sw_alloc", "link_traversal", "stats",
}
# serve_event rows (repro serve scheduling log): per-event required
# fields beyond the common {kind, event, ts} envelope.
SERVE_EVENT_FIELDS = {
    "server_started": {"host", "port", "cached_entries"},
    "server_stopped": set(),
    "handshake_refused": {"reason"},
    "worker_connected": {"worker"},
    "worker_disconnected": {"worker"},
    "client_connected": {"client"},
    "client_disconnected": {"client"},
    "sweep_submitted": {"client", "signature", "points", "recovered"},
    "enqueued": {"client", "tasks"},
    "lease": {"key", "worker"},
    "requeue": {"key", "reason", "worker", "lease_attempts"},
    "retry": {"key", "worker", "attempt", "delay_s"},
    "point_done": {"key", "worker"},
    "point_failed": {"key", "fail_kind", "error", "attempts"},
    "sweep_done": {"signature", "completed", "failed", "cache_hits"},
    "sweep_abandoned": {"signature", "remaining"},
}


def fail(msg: str) -> "None":
    print(f"validate_telemetry: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def load_jsonl(path: Path):
    rows = []
    for i, line in enumerate(path.read_text().splitlines(), 1):
        if not line.strip():
            continue
        try:
            rows.append(json.loads(line))
        except json.JSONDecodeError as exc:
            fail(f"{path}:{i}: invalid JSON ({exc})")
    return rows


def check_metrics(path: Path) -> None:
    rows = load_jsonl(path)
    if not rows:
        fail(f"{path}: empty")
    samples = [r for r in rows if r.get("kind") == "sample"]
    if not samples:
        fail(f"{path}: no sample rows")
    for r in samples:
        missing = SAMPLE_KEYS - set(r)
        if missing:
            fail(f"{path}: sample row missing keys {sorted(missing)}: {r}")
        if r["type"] not in INSTRUMENT_TYPES:
            fail(f"{path}: unknown instrument type {r['type']!r}")
        if r["type"] == "histogram":
            v = r["value"]
            if set(v) != {"le", "counts", "count", "sum"}:
                fail(f"{path}: malformed histogram value {v}")
            if len(v["counts"]) != len(v["le"]) + 1:
                fail(f"{path}: histogram bucket/bound count mismatch")
    names = {r["name"] for r in samples}
    for required in ("sa_requests_nonspec", "sa_grants", "buffer_occupancy"):
        if required not in names:
            fail(f"{path}: required instrument {required!r} never sampled")
    print(f"  metrics.jsonl: {len(rows)} rows, {len(names)} instruments")


def check_sweep(path: Path) -> None:
    rows = load_jsonl(path)
    kinds = [r.get("kind") for r in rows]
    if kinds[:1] != ["sweep_started"] or kinds[-1:] != ["sweep_finished"]:
        fail(f"{path}: expected sweep_started ... sweep_finished, got {kinds}")
    points = [r for r in rows if r.get("kind") == "point"]
    if not points:
        fail(f"{path}: no point rows")
    for r in points:
        missing = POINT_KEYS - set(r)
        if missing:
            fail(f"{path}: point row missing keys {sorted(missing)}")
    print(f"  sweep.jsonl: {len(points)} point(s)")


def check_manifest(path: Path) -> None:
    manifest = json.loads(path.read_text())
    missing = MANIFEST_KEYS - set(manifest)
    if missing:
        fail(f"{path}: missing keys {sorted(missing)}")
    if manifest["schema"] != MANIFEST_SCHEMA:
        fail(f"{path}: schema {manifest['schema']!r} != {MANIFEST_SCHEMA!r}")
    pts = manifest["points"]
    if pts["total"] != len(manifest["config_keys"]):
        fail(f"{path}: points.total != len(config_keys)")
    print(f"  manifest.json: {pts['total']} point(s), "
          f"sim rev {manifest['simulator_rev']}")


def check_trace(path: Path) -> None:
    doc = json.loads(path.read_text())
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail(f"{path}: no traceEvents")
    begins = sorted(e["id"] for e in events if e.get("ph") == "b")
    ends = sorted(e["id"] for e in events if e.get("ph") == "e")
    if begins != ends:
        fail(f"{path}: unpaired async events "
             f"({len(begins)} begins vs {len(ends)} ends)")
    for e in events:
        if e.get("ph") == "X" and e.get("dur", 0) < 0:
            fail(f"{path}: negative duration in event {e}")
    bd = doc.get("otherData", {}).get("breakdown")
    if not bd or bd.get("packets", 0) <= 0:
        fail(f"{path}: missing/empty latency breakdown in otherData")
    print(f"  trace: {len(events)} events, {len(begins)} packets paired")


def check_profile(owner: str, prof: dict) -> None:
    """One per-kernel phase profile inside a bench report or ledger."""
    if prof.get("schema") != PROFILE_SCHEMA:
        fail(f"{owner}: profile schema {prof.get('schema')!r} "
             f"!= {PROFILE_SCHEMA!r}")
    phases = prof.get("phases")
    if not isinstance(phases, dict) or not phases:
        fail(f"{owner}: profile has no phases")
    unknown = set(phases) - PHASES
    if unknown:
        fail(f"{owner}: unknown profile phase(s) {sorted(unknown)}")
    for name, secs in phases.items():
        if not isinstance(secs, (int, float)) or secs < 0:
            fail(f"{owner}: phase {name!r} has bad value {secs!r}")
    coverage = prof.get("coverage")
    if not isinstance(coverage, (int, float)) or not 0 < coverage <= 1.5:
        fail(f"{owner}: implausible coverage {coverage!r}")


def check_bench(path: Path) -> None:
    report = json.loads(path.read_text())
    if report.get("schema") != BENCH_SCHEMA:
        fail(f"{path}: schema {report.get('schema')!r} != {BENCH_SCHEMA!r}")
    points = report.get("points")
    if not isinstance(points, list) or not points:
        fail(f"{path}: no points")
    profiled = 0
    for p in points:
        if "label" not in p:
            fail(f"{path}: point without a label: {p}")
        for kernel in ("fast", "reference", "compiled"):
            if kernel in p and "warm_s" not in p[kernel]:
                fail(f"{path}: {p['label']}/{kernel} lacks warm_s")
        for kernel, prof in p.get("profile", {}).items():
            check_profile(f"{path}: {p['label']}/{kernel}", prof)
            profiled += 1
    print(f"  bench report: {len(points)} point(s), "
          f"{profiled} phase profile(s)")


def check_ledger(path: Path) -> None:
    records = load_jsonl(path)
    if not records:
        fail(f"{path}: ledger holds no records")
    for i, rec in enumerate(records, 1):
        missing = HISTORY_KEYS - set(rec)
        if missing:
            fail(f"{path}: record {i} missing keys {sorted(missing)}")
        if rec["schema"] != HISTORY_SCHEMA:
            fail(f"{path}: record {i} schema {rec['schema']!r} "
                 f"!= {HISTORY_SCHEMA!r}")
        git = rec["git"]
        if not isinstance(git, dict) or "sha" not in git:
            fail(f"{path}: record {i} has no git fingerprint")
        for p in rec["points"]:
            if "label" not in p:
                fail(f"{path}: record {i} point without a label")
            for kernel, prof in p.get("profile", {}).items():
                check_profile(
                    f"{path}: record {i} {p['label']}/{kernel}", prof
                )
    print(f"  ledger: {len(records)} record(s)")


def check_resilience(path: Path) -> None:
    artifact = json.loads(path.read_text())
    missing = RESILIENCE_KEYS - set(artifact)
    if missing:
        fail(f"{path}: missing keys {sorted(missing)}")
    if artifact["schema"] != RESILIENCE_SCHEMA:
        fail(f"{path}: schema {artifact['schema']!r} "
             f"!= {RESILIENCE_SCHEMA!r}")
    counts = artifact["fault_counts"]
    if not isinstance(counts, list) or not counts:
        fail(f"{path}: fault_counts must be a non-empty list")
    curves = artifact["curves"]
    if not isinstance(curves, dict) or not curves:
        fail(f"{path}: curves must map routing modes to point lists")
    points_total = 0
    for mode, points in curves.items():
        if len(points) != len(counts):
            fail(f"{path}: mode {mode!r} has {len(points)} point(s) for "
                 f"{len(counts)} fault count(s)")
        for point in points:
            if point.get("failed"):
                # A recorded point failure carries only its x coordinate.
                if "link_faults" not in point:
                    fail(f"{path}: failed {mode} point lacks link_faults")
                continue
            missing = RESILIENCE_POINT_KEYS - set(point)
            if missing:
                fail(f"{path}: {mode} point missing keys "
                     f"{sorted(missing)}: {point}")
            frac = point["delivered_fraction"]
            if not isinstance(frac, (int, float)) or not 0 <= frac <= 1:
                fail(f"{path}: {mode} k={point['link_faults']}: "
                     f"delivered_fraction {frac!r} outside [0, 1]")
            points_total += 1
    for key, links in artifact["faulted_links"].items():
        if not links:
            fail(f"{path}: faulted_links[{key!r}] is empty")
        if len(links) != int(key):
            fail(f"{path}: faulted_links[{key!r}] lists {len(links)} "
                 f"link(s)")
    print(f"  resilience: {len(curves)} mode(s), {points_total} "
          f"simulated point(s)")


def check_serve(state_dir: Path) -> None:
    log = state_dir / "telemetry" / "server.jsonl"
    if not log.exists():
        fail(f"{log}: no server event log")
    rows = load_jsonl(log)
    if not rows:
        fail(f"{log}: empty")
    events = []
    for i, row in enumerate(rows, 1):
        if row.get("kind") != "serve_event":
            fail(f"{log}:{i}: kind {row.get('kind')!r} != 'serve_event'")
        event = row.get("event")
        if event not in SERVE_EVENT_FIELDS:
            fail(f"{log}:{i}: unknown serve event {event!r}")
        if not isinstance(row.get("ts"), (int, float)):
            fail(f"{log}:{i}: missing/bad timestamp")
        missing = SERVE_EVENT_FIELDS[event] - set(row)
        if missing:
            fail(f"{log}:{i}: {event} row missing keys {sorted(missing)}")
        events.append(event)
    if events[0] != "server_started":
        fail(f"{log}: first event {events[0]!r} != 'server_started'")
    done = events.count("point_done")
    leases = events.count("lease")
    if done > leases:
        fail(f"{log}: {done} point_done event(s) but only {leases} lease(s)")
    print(f"  server.jsonl: {len(rows)} event(s), {leases} lease(s), "
          f"{done} point(s) done, {events.count('requeue')} requeue(s)")
    sweep_logs = sorted((state_dir / "telemetry").glob("sweep-*.jsonl"))
    if not sweep_logs:
        fail(f"{state_dir}: no per-sweep telemetry written")
    for sweep_log in sweep_logs:
        check_sweep(sweep_log)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("dir", nargs="?", default=None,
                        help="telemetry directory (--metrics DIR)")
    parser.add_argument("--trace", default=None,
                        help="trace file (defaults to DIR/trace.json if "
                             "present)")
    parser.add_argument("--bench", default=None,
                        help="bench report (BENCH_kernel.json) to validate")
    parser.add_argument("--ledger", default=None,
                        help="bench-history ledger (JSONL) to validate")
    parser.add_argument("--resilience", default=None,
                        help="resilience artifact (repro resilience "
                             "--output) to validate")
    parser.add_argument("--serve", default=None, metavar="STATE_DIR",
                        help="sweep-server state dir (repro serve "
                             "--state-dir) to validate")
    args = parser.parse_args(argv)

    if (args.dir is None and args.bench is None and args.ledger is None
            and args.resilience is None and args.serve is None):
        fail("nothing to validate: give a telemetry DIR, --bench, "
             "--ledger, --resilience or --serve")
    if args.dir is not None:
        directory = Path(args.dir)
        if not directory.is_dir():
            fail(f"{directory} is not a directory")
        print(f"validating telemetry in {directory}")
        check_metrics(directory / "metrics.jsonl")
        check_sweep(directory / "sweep.jsonl")
        check_manifest(directory / "manifest.json")
        trace = Path(args.trace) if args.trace else directory / "trace.json"
        if trace.exists():
            check_trace(trace)
    if args.bench is not None:
        bench = Path(args.bench)
        if not bench.exists():
            fail(f"{bench} does not exist")
        print(f"validating bench report {bench}")
        check_bench(bench)
    if args.ledger is not None:
        ledger = Path(args.ledger)
        if not ledger.exists():
            fail(f"{ledger} does not exist")
        print(f"validating bench-history ledger {ledger}")
        check_ledger(ledger)
    if args.resilience is not None:
        resilience = Path(args.resilience)
        if not resilience.exists():
            fail(f"{resilience} does not exist")
        print(f"validating resilience artifact {resilience}")
        check_resilience(resilience)
    if args.serve is not None:
        state_dir = Path(args.serve)
        if not state_dir.is_dir():
            fail(f"{state_dir} is not a directory")
        print(f"validating sweep-server state in {state_dir}")
        check_serve(state_dir)
    print("validate_telemetry: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
