#!/usr/bin/env python3
"""Building a custom network from the library's router primitives.

The paper evaluates an 8x8 mesh and a 4x4 flattened butterfly, but the
router model is topology-agnostic.  This example wires a small ring
network by hand -- routers, links, terminals and a custom routing
function -- and runs request-reply traffic over it, demonstrating the
substrate API a downstream user would build on:

* ``Router``           -- ports, VC partition, allocators, pipeline;
* ``connect_output`` / ``connect_upstream`` -- link wiring (data +
  credits);
* a routing object with ``prepare``/``route`` hooks;
* ``Terminal``         -- traffic generation and the request-reply
  protocol;
* ``Network``          -- the cycle loop.

Run:  python examples/custom_topology.py
"""

import numpy as np

from repro.core import VCPartition
from repro.netsim import Network, Router, Terminal

# Ring ports: 0 = terminal, 1 = clockwise, 2 = counter-clockwise.
PORT_TERMINAL, PORT_CW, PORT_CCW = 0, 1, 2


class RingRouting:
    """Shortest-direction ring routing.

    A ring has cyclic channel dependencies, so (like dateline routing in
    a torus) it needs two resource classes: packets start in class 0 and
    move to class 1 when they cross the dateline between the last and
    first router -- the same VC transition structure sparse VC
    allocation exploits (Section 4.2).
    """

    def __init__(self, size: int) -> None:
        self.size = size

    def prepare(self, network, terminal, packet) -> None:
        packet.resource_class = 0

    def route(self, network, router, packet) -> int:
        n = self.size
        dest = packet.dest
        if dest == router.id:
            return PORT_TERMINAL
        cw = (dest - router.id) % n
        ccw = (router.id - dest) % n
        port = PORT_CW if cw <= ccw else PORT_CCW
        # Dateline: crossing the n-1 -> 0 (or 0 -> n-1) boundary bumps
        # the resource class, breaking the cyclic dependency.
        nxt = (router.id + 1) % n if port == PORT_CW else (router.id - 1) % n
        if (port == PORT_CW and nxt == 0) or (port == PORT_CCW and nxt == n - 1):
            packet.resource_class = 1
        return port


def build_ring(size: int = 8, packet_rate: float = 0.02) -> Network:
    # Dateline deadlock avoidance: 2 resource classes; transitions only
    # 0 -> {0, 1} and 1 -> 1 (same structure as the fbfly partition).
    transitions = np.array([[True, True], [False, True]])
    partition = VCPartition(2, 2, 1, transitions)

    routing = RingRouting(size)
    net = Network(routing)

    for rid in range(size):
        net.routers.append(
            Router(
                rid,
                3,
                partition,
                lambda network, router, pkt: routing.route(network, router, pkt),
                speculation="pessimistic",
            )
        )

    for rid in range(size):
        a = net.routers[rid]
        b = net.routers[(rid + 1) % size]
        a.connect_output(PORT_CW, "router", b, PORT_CCW, 1)
        b.connect_upstream(PORT_CCW, "router", a, PORT_CW, 1)
        b.connect_output(PORT_CCW, "router", a, PORT_CW, 1)
        a.connect_upstream(PORT_CW, "router", b, PORT_CCW, 1)

    for rid in range(size):
        router = net.routers[rid]
        term = Terminal(
            rid, router, PORT_TERMINAL, 1, packet_rate,
            np.random.default_rng((7, rid)), num_terminals=size,
        )
        net.terminals.append(term)
        router.connect_output(PORT_TERMINAL, "terminal", term, 0, 1)
        router.connect_upstream(PORT_TERMINAL, "terminal", term, 0, 1)
    return net


def main() -> None:
    net = build_ring(size=8, packet_rate=0.03)
    latencies = []
    net.on_delivery = lambda pkt, now: latencies.append(now - pkt.birth_time)

    net.run(4000)
    for t in net.terminals:
        t.packet_rate = 0.0
    net.run(500)

    assert net.in_flight_flits() == 0, "ring deadlocked or lost flits!"
    print(f"8-node ring, request-reply traffic:")
    print(f"  delivered packets : {len(latencies)}")
    print(f"  average latency   : {sum(latencies) / len(latencies):.1f} cycles")
    print(f"  max latency       : {max(latencies)} cycles")
    print(
        f"  speculative wins  : {net.total_speculative_wins()}, "
        f"misspeculations: {net.total_misspeculations()}"
    )
    print("\nNo flits in flight after drain: the dateline VC transition")
    print("discipline kept the ring deadlock-free.")


if __name__ == "__main__":
    main()
