#!/usr/bin/env python3
"""Export generated allocator RTL as structural Verilog.

The paper's subject is RTL allocator implementations; this example
generates the gate-level netlist for any allocator configuration and
writes synthesizable structural Verilog, so the designs can be taken to
a real EDA flow (or compared against the repo's built-in cost model).

Run:  python examples/export_verilog.py [--out DIR]
"""

import argparse
from pathlib import Path

from repro.core import VCPartition
from repro.hw import analyze_timing, total_area, to_verilog
from repro.hw.arbiter_gates import build_arbiter
from repro.hw.netlist import Netlist
from repro.hw.sw_alloc_gates import build_switch_allocator_netlist
from repro.hw.vc_alloc_gates import build_vc_allocator_netlist


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="verilog_out")
    args = parser.parse_args()
    out = Path(args.out)
    out.mkdir(exist_ok=True)

    designs = {}

    # A 16-input round-robin arbiter.
    nl = Netlist("rr_arbiter_16")
    reqs = nl.inputs(16, "req")
    grants, fin = build_arbiter(nl, "rr", reqs)
    fin(None)
    for i, g in enumerate(grants):
        nl.mark_output(g, f"gnt{i}")
    designs["rr_arbiter_16"] = nl

    # The paper's mesh VC allocator (sparse, sep_if/rr, 2x1x2 VCs).
    designs["vc_alloc_mesh_2x1x2"] = build_vc_allocator_netlist(
        5, VCPartition.mesh(2), "sep_if", "rr", sparse=True
    )

    # A speculative switch allocator with pessimistic masking.
    designs["sw_alloc_p5_v4_pessimistic"] = build_switch_allocator_netlist(
        5, 4, "sep_if", "rr", "pessimistic"
    )

    for name, netlist in designs.items():
        path = out / f"{name}.v"
        path.write_text(to_verilog(netlist, name))
        t = analyze_timing(netlist)
        print(
            f"wrote {path}  ({netlist.num_gates} cells, "
            f"{netlist.num_registers} regs, {t.delay_ns:.2f} ns, "
            f"{total_area(netlist):,.0f} um2)"
        )


if __name__ == "__main__":
    main()
