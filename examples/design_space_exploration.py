#!/usr/bin/env python3
"""Design-space exploration: pick an allocator for *your* router.

The paper's conclusion is that the right allocator depends on the
network's operating point: latency-sensitive designs favor fast
separable allocators and speculation; throughput-oriented designs favor
matching quality (wavefront).  This example walks the tradeoff for a
user-specified router configuration the way an architect would:

1. synthesize every allocator variant for the design point and rank
   them by delay / area / power;
2. measure matching quality at the expected load;
3. print a recommendation table combining both.

Run:  python examples/design_space_exploration.py [--ports P] [--vcs C]
"""

import argparse

from repro.eval.design_points import DesignPoint, SWITCH_VARIANTS, VC_VARIANTS
from repro.eval.matching import switch_matching_quality, vc_matching_quality
from repro.eval.tables import format_table
from repro.hw import (
    SynthesisCapacityError,
    synthesize_switch_allocator,
    synthesize_vc_allocator,
)


def explore_vc_allocators(point: DesignPoint, load: float, samples: int) -> None:
    print(f"--- VC allocators for {point.label} ---")
    quality = vc_matching_quality(
        point, rates=(load,), num_samples=samples
    )
    rows = []
    for arch, arbiter in VC_VARIANTS:
        try:
            rep = synthesize_vc_allocator(
                point.num_ports, point.partition, arch, arbiter, sparse=True
            )
            rows.append(
                [
                    f"{arch}/{arbiter}",
                    f"{rep.delay_ns:.2f}",
                    f"{rep.area_um2:,.0f}",
                    f"{rep.power_mw:.2f}",
                    f"{quality[arch].at(load):.3f}",
                ]
            )
        except SynthesisCapacityError:
            rows.append([f"{arch}/{arbiter}", "infeasible", "-", "-", "-"])
    print(
        format_table(
            ["variant", "delay (ns)", "area (um2)", "power (mW)",
             f"quality @ {load}"],
            rows,
        )
    )
    print()


def explore_switch_allocators(point: DesignPoint, load: float, samples: int) -> None:
    print(f"--- Switch allocators for {point.label} (pessimistic spec) ---")
    quality = switch_matching_quality(point, rates=(load,), num_samples=samples)
    rows = []
    best = None
    for arch, arbiter in SWITCH_VARIANTS:
        rep = synthesize_switch_allocator(
            point.num_ports, point.num_vcs, arch, arbiter, "pessimistic"
        )
        q = quality[arch].at(load)
        rows.append(
            [
                f"{arch}/{arbiter}",
                f"{rep.delay_ns:.2f}",
                f"{rep.area_um2:,.0f}",
                f"{rep.power_mw:.2f}",
                f"{q:.3f}",
            ]
        )
        score = q / rep.delay_ns  # quality per ns: a crude merit figure
        if best is None or score > best[1]:
            best = (f"{arch}/{arbiter}", score)
    print(
        format_table(
            ["variant", "delay (ns)", "area (um2)", "power (mW)",
             f"quality @ {load}"],
            rows,
        )
    )
    assert best is not None
    print(f"best quality-per-delay: {best[0]}")
    print()


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--topology", choices=["mesh", "fbfly"], default="mesh")
    parser.add_argument("--vcs-per-class", type=int, default=2)
    parser.add_argument("--load", type=float, default=0.6,
                        help="expected requests per VC per cycle")
    parser.add_argument("--samples", type=int, default=1000)
    args = parser.parse_args()

    ports = 5 if args.topology == "mesh" else 10
    point = DesignPoint(args.topology, ports, args.vcs_per_class)
    explore_vc_allocators(point, args.load, args.samples)
    explore_switch_allocators(point, args.load, args.samples)


if __name__ == "__main__":
    main()
