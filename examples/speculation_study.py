#!/usr/bin/env python3
"""Speculative switch allocation end to end (Section 5.2).

Shows the two halves of the paper's speculation story on one page:

* circuit level -- the pessimistic masking scheme removes the grant
  reduction network from the critical path (delay vs the conventional
  scheme, for all three allocator architectures);
* network level -- speculation removes a pipeline stage at low load
  (zero-load latency) while the pessimistic scheme's extra misspeculated
  grants cost almost nothing in saturation throughput.

Also prints the simulator's misspeculation counters, which explain the
mechanism: at low load nearly all speculative grants survive, near
saturation the pessimistic scheme discards more of them.

Run:  python examples/speculation_study.py [--topology mesh|fbfly]
"""

import argparse

from repro.eval.tables import format_table
from repro.hw import synthesize_switch_allocator
from repro.netsim import SimulationConfig, run_simulation

SCHEMES = ("nonspec", "pessimistic", "conventional")


def circuit_level(ports: int, vcs: int) -> None:
    print(f"--- Circuit level: P={ports}, V={vcs} ---")
    rows = []
    for arch in ("sep_if", "sep_of", "wf"):
        delays = {}
        for scheme in SCHEMES:
            rep = synthesize_switch_allocator(ports, vcs, arch, "rr", scheme)
            delays[scheme] = rep.delay_ns
        saving = 1 - delays["pessimistic"] / delays["conventional"]
        rows.append(
            [arch]
            + [f"{delays[s]:.2f}" for s in SCHEMES]
            + [f"{saving:.0%}"]
        )
    print(
        format_table(
            ["arch", "nonspec (ns)", "pessimistic (ns)", "conventional (ns)",
             "pess. saving"],
            rows,
        )
    )
    print()


def network_level(topology: str, cycles: int) -> None:
    print(f"--- Network level: {topology}, 2x{'2' if topology == 'fbfly' else '1'}x1 VCs ---")
    low = 0.05
    high = 0.30 if topology == "mesh" else 0.45
    rows = []
    for scheme in SCHEMES:
        cols = [scheme]
        for rate in (low, high):
            cfg = SimulationConfig(
                topology=topology,
                vcs_per_class=1,
                injection_rate=rate,
                speculation=scheme,
                warmup_cycles=cycles // 3,
                measure_cycles=cycles,
                drain_cycles=cycles,
            )
            res = run_simulation(cfg)
            total_spec = res.speculative_wins + res.misspeculations
            misrate = (
                res.misspeculations / total_spec if total_spec else 0.0
            )
            cols.append(f"{res.avg_latency:.1f}")
            cols.append(f"{misrate:.1%}")
        rows.append(cols)
    print(
        format_table(
            ["scheme", f"latency @ {low}", "misspec rate",
             f"latency @ {high}", "misspec rate"],
            rows,
        )
    )
    print(
        "\nReading: speculation cuts the low-load latency by roughly one\n"
        "cycle per hop; the pessimistic scheme discards more speculative\n"
        "grants as load rises (higher misspec rate) but, because those\n"
        "cycles are mostly covered by non-speculative traffic anyway,\n"
        "saturation throughput barely moves (Section 5.3.3)."
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--topology", choices=["mesh", "fbfly"], default="mesh")
    parser.add_argument("--cycles", type=int, default=1500)
    args = parser.parse_args()

    ports = 5 if args.topology == "mesh" else 10
    vcs = 2 if args.topology == "mesh" else 4
    circuit_level(ports, vcs)
    network_level(args.topology, args.cycles)


if __name__ == "__main__":
    main()
