#!/usr/bin/env python3
"""Quickstart: allocate, measure quality, synthesize, simulate.

A five-minute tour of the library reproducing Becker & Dally,
"Allocator Implementations for Network-on-Chip Routers" (SC 2009):

1. run the three allocator architectures on a request matrix;
2. compare their matching quality against a maximum-size allocator;
3. "synthesize" a VC allocator with the gate-level cost model (the
   repo's stand-in for the paper's Design Compiler flow);
4. simulate a 64-node mesh and read off average packet latency.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import (
    MaximumSizeAllocator,
    SeparableInputFirstAllocator,
    SeparableOutputFirstAllocator,
    VCPartition,
    WavefrontAllocator,
    matching_size,
)
from repro.hw import SynthesisCapacityError, synthesize_vc_allocator
from repro.netsim import SimulationConfig, run_simulation


def demo_allocators() -> None:
    print("=== 1. Allocator architectures on one request matrix ===")
    rng = np.random.default_rng(42)
    requests = rng.random((8, 8)) < 0.5
    print(f"requests ({int(requests.sum())} total):")
    for row in requests:
        print("   " + "".join("R" if r else "." for r in row))

    allocators = {
        "sep_if (separable input-first)": SeparableInputFirstAllocator(8, 8),
        "sep_of (separable output-first)": SeparableOutputFirstAllocator(8, 8),
        "wf     (wavefront)": WavefrontAllocator(8, 8),
        "maxsize (upper bound)": MaximumSizeAllocator(8, 8),
    }
    for name, alloc in allocators.items():
        grants = alloc.allocate(requests)
        print(f"   {name}: {matching_size(grants)} grants")
    print()


def demo_matching_quality() -> None:
    print("=== 2. Matching quality under load (cf. Figure 12) ===")
    rng = np.random.default_rng(0)
    allocators = {
        "sep_if": SeparableInputFirstAllocator(10, 10),
        "sep_of": SeparableOutputFirstAllocator(10, 10),
        "wf": WavefrontAllocator(10, 10),
    }
    reference = MaximumSizeAllocator(10, 10)
    totals = {name: 0 for name in allocators}
    total_max = 0
    for _ in range(2000):
        req = rng.random((10, 10)) < 0.6
        total_max += matching_size(reference.allocate(req))
        for name, alloc in allocators.items():
            totals[name] += matching_size(alloc.allocate(req))
    for name, total in totals.items():
        print(f"   {name}: matching quality = {total / total_max:.3f}")
    print()


def demo_synthesis() -> None:
    print("=== 3. Gate-level cost model (cf. Figures 5/6) ===")
    partition = VCPartition.mesh(2)  # 2 message classes x 2 VCs = V=4
    for sparse in (False, True):
        label = "sparse" if sparse else "dense "
        rep = synthesize_vc_allocator(5, partition, "sep_if", "rr", sparse)
        print(
            f"   sep_if/rr {label}: {rep.delay_ns:.2f} ns, "
            f"{rep.area_um2:,.0f} um2, {rep.power_mw:.2f} mW, "
            f"{rep.num_cells} cells"
        )
    try:
        synthesize_vc_allocator(10, VCPartition.fbfly(4), "wf", "rr", True)
    except SynthesisCapacityError as exc:
        print(f"   fbfly 2x2x4 wavefront: {exc}")
    print()


def demo_network() -> None:
    print("=== 4. 64-node mesh simulation (cf. Figures 13/14) ===")
    for rate in (0.1, 0.3):
        cfg = SimulationConfig(
            topology="mesh",
            vcs_per_class=1,
            injection_rate=rate,
            warmup_cycles=500,
            measure_cycles=1500,
            drain_cycles=1500,
        )
        res = run_simulation(cfg)
        print(
            f"   offered {rate:.2f} flits/cycle/node -> "
            f"avg latency {res.avg_latency:.1f} cycles "
            f"({res.measured_packets} packets, "
            f"{res.speculative_wins} speculative crossbar wins)"
        )


if __name__ == "__main__":
    demo_allocators()
    demo_matching_quality()
    demo_synthesis()
    demo_network()
