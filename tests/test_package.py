"""Package-level API surface tests."""

import importlib

import pytest

import repro

SUBPACKAGES = ["repro.core", "repro.hw", "repro.netsim", "repro.eval"]


class TestPublicAPI:
    def test_version(self):
        assert repro.__version__
        parts = repro.__version__.split(".")
        assert len(parts) == 3
        assert all(p.isdigit() for p in parts)

    @pytest.mark.parametrize("modname", SUBPACKAGES)
    def test_all_exports_resolve(self, modname):
        mod = importlib.import_module(modname)
        assert hasattr(mod, "__all__") and mod.__all__
        for name in mod.__all__:
            assert hasattr(mod, name), f"{modname}.{name} in __all__ but missing"

    @pytest.mark.parametrize("modname", SUBPACKAGES)
    def test_all_sorted_unique(self, modname):
        mod = importlib.import_module(modname)
        assert len(set(mod.__all__)) == len(mod.__all__)

    def test_top_level_reexports(self):
        for name in repro.__all__:
            assert hasattr(repro, name)

    def test_every_public_symbol_documented(self):
        for modname in SUBPACKAGES:
            mod = importlib.import_module(modname)
            for name in mod.__all__:
                obj = getattr(mod, name)
                if callable(obj) or isinstance(obj, type):
                    assert obj.__doc__, f"{modname}.{name} lacks a docstring"

    def test_module_docstrings(self):
        import pkgutil

        for modname in SUBPACKAGES:
            pkg = importlib.import_module(modname)
            assert pkg.__doc__
            for info in pkgutil.iter_modules(pkg.__path__):
                sub = importlib.import_module(f"{modname}.{info.name}")
                assert sub.__doc__, f"{sub.__name__} lacks a module docstring"
