"""Behavioural oracle and property-DSL tests."""

import pytest

from repro.verify.oracles import (
    fixed_priority_packed,
    matrix_grants_packed,
    rr_grants_packed,
    rr_mask_states,
    validate_matrix_oracle,
    validate_rr_oracle,
    validate_wavefront_oracle,
    wavefront_grants_packed,
)
from repro.verify.properties import (
    ARBITER_PROPERTIES,
    and_,
    check_property,
    implies,
    not_,
    or_,
    rr_starvation_bound,
    var,
    wavefront_properties,
)


class TestOracles:
    def test_fixed_priority_lowest_index_wins(self):
        # 2 lanes: lane 0 has req = {0, 2}, lane 1 has req = {1, 2}.
        grants = fixed_priority_packed([0b01, 0b10, 0b11], 0b11)
        assert grants == [0b01, 0b10, 0b00]

    def test_rr_mask_states_shape(self):
        states = rr_mask_states(4)
        assert len(states) == 5
        pointers = [p for p, _ in states]
        assert pointers == [0, 1, 2, 3, 0]
        # Thermometer suffix masks, all-ones first and all-zeros last.
        assert states[0][1] == [1, 1, 1, 1]
        assert states[2][1] == [0, 0, 1, 1]
        assert states[4][1] == [0, 0, 0, 0]

    def test_rr_grants_respect_pointer(self):
        # Single lane, requests at 0 and 2, pointer at 1 -> grant 2.
        grants = rr_grants_packed([1, 0, 1], [0, 1, 1], 1)
        assert grants == [0, 0, 1]
        # All-zeros mask falls back to fixed priority -> grant 0.
        grants = rr_grants_packed([1, 0, 1], [0, 0, 0], 1)
        assert grants == [1, 0, 0]

    def test_matrix_grants_beat_semantics(self):
        # n = 2, single lane, both request; 1 beats 0 -> grant to 1.
        beats = {(0, 1): 0, (1, 0): 1}
        grants = matrix_grants_packed([1, 1], beats, 1)
        assert grants == [0, 1]

    def test_wavefront_grants_are_a_matching(self):
        n = 3
        req = [[1] * n for _ in range(n)]
        for diag in range(n):
            grants = wavefront_grants_packed(req, diag, 1)
            # Full request matrix -> perfect matching (n grants, one
            # per row and column), priority diagonal granted first.
            assert sum(grants[i][j] for i in range(n) for j in range(n)) == n
            for i in range(n):
                assert sum(grants[i]) == 1
                assert sum(grants[j][i] for j in range(n)) == 1
            for i in range(n):
                assert grants[i][(diag - i) % n] == 1

    def test_validators_pass(self):
        validate_rr_oracle(3)
        validate_matrix_oracle(3)
        validate_wavefront_oracle(2)


class TestPropertyDSL:
    def test_term_eval_packed(self):
        env = {"a": 0b1100, "b": 0b1010}
        mask = 0b1111
        assert and_(var("a"), var("b")).eval(env, mask) == 0b1000
        assert or_(var("a"), var("b")).eval(env, mask) == 0b1110
        assert not_(var("a")).eval(env, mask) == 0b0011
        assert implies(var("a"), var("b")).eval(env, mask) == 0b1011

    def test_unknown_signal_raises(self):
        with pytest.raises(KeyError):
            var("missing").eval({"a": 1}, 1)

    def test_empty_connectives_rejected(self):
        with pytest.raises(ValueError):
            and_()
        with pytest.raises(ValueError):
            or_()

    def test_arbiter_properties_on_legal_grants(self):
        # n = 2 exhaustive: 4 lanes indexed by (req0, req1); grants
        # from the fixed-priority oracle satisfy every arbiter property.
        mask = 0b1111
        req = [0b1010, 0b1100]  # lane L: bit i of L = req[i]
        gnt = fixed_priority_packed(req, mask)
        for prop in ARBITER_PROPERTIES:
            assert check_property(prop, 2, req, gnt, mask) == 0

    def test_property_violation_word_marks_lanes(self):
        mask = 0b1111
        req = [0b1010, 0b1100]
        # Grant without request: grant index 0 on every lane.
        bad = [mask, 0]
        gir = next(
            p for p in ARBITER_PROPERTIES if p.name == "grant-implies-request"
        )
        viol = check_property(gir, 2, req, bad, mask)
        # Violated exactly on lanes where req[0] is low.
        assert viol == mask ^ req[0]

    def test_wavefront_properties_on_oracle_grants(self):
        n = 2
        num_lanes = 1 << (n * n)
        mask = (1 << num_lanes) - 1
        # Exhaustive request lanes: bit (i*n + j) of lane index.
        req_w = [
            [
                sum(
                    ((lane >> (i * n + j)) & 1) << lane
                    for lane in range(num_lanes)
                )
                for j in range(n)
            ]
            for i in range(n)
        ]
        gnt_w = wavefront_grants_packed(req_w, 0, mask)
        env = {}
        for i in range(n):
            for j in range(n):
                env[f"req[{i},{j}]"] = req_w[i][j]
                env[f"gnt[{i},{j}]"] = gnt_w[i][j]
        for name, term in wavefront_properties(n):
            assert term.eval(env, mask) == mask, name

    def test_starvation_bound_is_n_minus_one(self):
        for n in range(2, 6):
            bound, per_pointer = rr_starvation_bound(n)
            assert bound == n - 1
            assert len(per_pointer) == n
            assert max(per_pointer) == bound
