"""Mutation self-test harness tests: determinism, kill reporting, and
the one mutant class the checker must deliberately NOT kill."""

from repro.hw.arbiter_gates import build_arbiter
from repro.hw.netlist import Netlist
from repro.hw.trace import tracing
from repro.verify.equivalence import check_netlist
from repro.verify.mutate import (
    MUTATION_TARGETS,
    MutationReport,
    run_mutation_campaign,
)


def test_campaign_is_seed_deterministic():
    kw = dict(seed=7, mutants_per_target=4, targets=["rr4", "matrix4"])
    first = run_mutation_campaign(**kw)
    second = run_mutation_campaign(**kw)
    assert first.outcomes == second.outcomes
    # A different seed samples different mutants.
    other = run_mutation_campaign(
        seed=8, mutants_per_target=4, targets=["rr4", "matrix4"]
    )
    assert [o.description for o in other.outcomes] != [
        o.description for o in first.outcomes
    ]


def test_small_campaign_kills_arbiter_mutants():
    report = run_mutation_campaign(
        seed=1, mutants_per_target=4, targets=["rr4", "matrix4", "fixed5"]
    )
    assert report.total == 12
    assert report.kill_rate >= 0.9
    # Every outcome names the mutated gate by net id so a survivor can
    # be replayed from the report alone.
    for o in report.outcomes:
        assert o.description.startswith("net ")
        assert o.target in MUTATION_TARGETS
    assert "killed" in report.summary()


def test_survivors_are_reported_not_dropped():
    outcomes = run_mutation_campaign(
        seed=0, mutants_per_target=2, targets=["rr4"]
    ).outcomes
    report = MutationReport(
        outcomes + [type(outcomes[0])("rr4", 99, "net 1 (BUF): x", False, "")]
    )
    assert report.total == len(outcomes) + 1
    assert len(report.survivors) == 1
    assert report.kill_rate < 1.0
    assert "1 survivor" in report.summary()


def test_semantically_equivalent_mutant_is_not_killed():
    # The harness's 95% (not 100%) floor exists because single-gate
    # edits can be functionally equivalent.  Build one by hand -- an
    # inverter pair spliced into a request -- and confirm the checker
    # correctly refuses to kill it.
    nl = Netlist("rr4_equiv_mutant")
    with tracing() as trace:
        r0 = nl.input("req0")
        bent = nl.gate("INV", nl.gate("INV", r0))
        reqs = [bent] + [nl.input(f"req{i}") for i in range(1, 4)]
        grants, fin = build_arbiter(nl, "rr", reqs)
        fin(None)
        for i, g in enumerate(grants):
            nl.mark_output(g, f"gnt{i}")
    nl.validate()
    claimed = trace.remap(lambda n: r0 if n == bent else n)
    killed = bool(check_netlist(nl, claimed, "rr4_equiv_mutant"))
    assert not killed
