"""Verification runner + ``repro verify`` CLI tests (quick matrix)."""

import json

import pytest

from repro.cli import main
from repro.verify.equivalence import e2e_check_matrix
from repro.verify.runner import VERIFY_RULES, verify_paper_netlists


class TestRunner:
    def test_quick_component_matrix_proves_clean(self):
        findings, skipped, checked = verify_paper_netlists(
            quick=True, include_e2e=False, include_models=False
        )
        assert findings == []
        assert skipped == []
        assert checked > 0

    def test_quick_e2e_matrix_proves_clean(self):
        assert e2e_check_matrix(quick=True) == []

    def test_model_checks_pass(self):
        findings, _, _ = verify_paper_netlists(
            include_vc=False, include_sw=False, include_e2e=False,
            include_models=True, quick=True,
        )
        assert findings == []

    def test_rule_catalogue(self):
        assert set(VERIFY_RULES) == {
            "VER-EQUIV", "VER-STATE", "VER-STRUCT", "VER-PROP",
            "VER-STARVATION", "VER-TRACE", "VER-ORACLE",
        }
        for rule, desc in VERIFY_RULES.items():
            assert desc, rule


class TestCli:
    def test_default_quick_run_exits_zero(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["verify", "--quick"]) == 0

    def test_mutation_gate_passes_and_floor_enforced(
        self, tmp_path, monkeypatch, capsys
    ):
        monkeypatch.chdir(tmp_path)
        assert main(["verify", "--mutation", "--mutants", "2"]) == 0
        # An unattainable floor must flip the exit code even with zero
        # equivalence findings.
        assert (
            main(
                ["verify", "--mutation", "--mutants", "2",
                 "--min-kill-rate", "1.01"]
            )
            == 1
        )
        assert "below" in capsys.readouterr().err

    def test_json_report_carries_meta(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        out = tmp_path / "verify-findings.json"
        assert (
            main(
                ["verify", "--points", "--quick", "--json",
                 "--output", str(out)]
            )
            == 0
        )
        data = json.loads(out.read_text())
        assert data["findings"] == []
        assert data["meta"]["netlists_proved"] > 0

    def test_unreadable_baseline_exits_two(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        bad = tmp_path / "bad.json"
        bad.write_text("{nope")
        assert (
            main(
                ["verify", "--properties", "--quick",
                 "--baseline", str(bad)]
            )
            == 2
        )

    def test_baseline_suppression_and_write_baseline(
        self, tmp_path, monkeypatch, capsys
    ):
        # A baseline entry wildcard-matching a verify rule suppresses
        # it; verify-baseline.json in the cwd is picked up by default.
        monkeypatch.chdir(tmp_path)
        baseline = {
            "version": 1,
            "suppressions": [
                {
                    "rule": "VER-*",
                    "scope": "*",
                    "location": "*",
                    "reason": "exercise the default pickup path",
                }
            ],
        }
        (tmp_path / "verify-baseline.json").write_text(json.dumps(baseline))
        assert main(["verify", "--properties", "--quick"]) == 0
        err = capsys.readouterr().err
        # Zero findings -> the catch-all entry is reported stale.
        assert "stale baseline entry" in err
