"""Bit-parallel evaluation engine unit tests."""

import pytest

from repro.hw.netlist import Netlist
from repro.verify.engine import (
    MAX_EXHAUSTIVE_BITS,
    ConeEvaluator,
    check_or_cone,
    decode_lane,
    first_failing_lane,
    or_cone_leaves,
    packed_eval,
    sweep,
    walk_buf_chain,
)


def small_netlist():
    nl = Netlist("engine_test")
    a = nl.input("a")
    b = nl.input("b")
    c = nl.input("c")
    x = nl.gate("AND2", a, b)
    y = nl.gate("OR2", x, c)
    z = nl.gate("INV", y)
    for net, name in ((y, "y"), (z, "z")):
        nl.mark_output(net, name)
    nl.validate()
    return nl, (a, b, c, x, y, z)


class TestConeEvaluator:
    def test_exhaustive_truth_table(self):
        nl, (a, b, c, x, y, z) = small_netlist()
        ev = ConeEvaluator(nl, [y, z])
        assert ev.num_vars == 3
        vals = ev.evaluate_all()
        wa, wb, wc = (ev.leaf_word(n) for n in (a, b, c))
        full = (1 << ev.num_lanes) - 1
        assert vals[y] == (wa & wb) | wc
        assert vals[z] == full ^ vals[y]

    def test_pin_reduces_vars(self):
        nl, (a, b, c, x, y, z) = small_netlist()
        ev = ConeEvaluator(nl, [y]).pin({c: 0})
        assert ev.num_vars == 2
        vals = ev.evaluate_all()
        assert vals[y] == ev.leaf_word(a) & ev.leaf_word(b)
        # Re-pinning is allowed and replaces the previous assignment.
        ev.pin({c: 1})
        full = (1 << ev.num_lanes) - 1
        assert ev.evaluate_all()[y] == full

    def test_cut_makes_internal_net_a_leaf(self):
        nl, (a, b, c, x, y, z) = small_netlist()
        ev = ConeEvaluator(nl, [y], cut=[x])
        assert x in set(ev.leaves)
        vals = ev.evaluate_all()
        assert vals[y] == ev.leaf_word(x) | ev.leaf_word(c)

    def test_leaf_word_rejects_non_leaves(self):
        nl, (a, b, c, x, y, z) = small_netlist()
        ev = ConeEvaluator(nl, [y])
        with pytest.raises(KeyError):
            ev.leaf_word(x)

    def test_exhaustive_limit_enforced_at_evaluation(self):
        nl = Netlist("wide")
        ins = nl.inputs(MAX_EXHAUSTIVE_BITS + 1, "i")
        acc = ins[0]
        for net in ins[1:]:
            acc = nl.gate("OR2", acc, net)
        nl.mark_output(acc, "o")
        ev = ConeEvaluator(nl, [acc])
        with pytest.raises(ValueError):
            ev.evaluate_all()
        # Pinning below the limit makes the same evaluator usable.
        ev.pin({n: 0 for n in ins[: len(ins) - MAX_EXHAUSTIVE_BITS + 4]})
        ev.evaluate_all()

    def test_sweep_helper(self):
        nl, (a, b, c, x, y, z) = small_netlist()
        vals, var_order, num_vars = sweep(nl, [z], pins={c: 1})
        assert num_vars == 2
        assert sorted(var_order) == [a, b]
        assert vals[z] == 0


class TestPackedEval:
    def test_lane_vectors_and_registers(self):
        nl = Netlist("regs")
        a = nl.input("a")
        q = nl.reg()
        d = nl.gate("XOR2", a, q)
        nl.connect_reg(q, d)
        nl.mark_output(d, "d")
        vals = packed_eval(nl, {a: 0b0101}, 4, reg_state={q: 1}, targets=[d])
        assert vals[d] == 0b1010

    def test_missing_inputs_default_zero(self):
        nl, (a, b, c, x, y, z) = small_netlist()
        vals = packed_eval(nl, {c: 0b11}, 2, {}, targets=[y])
        assert vals[y] == 0b11


class TestHelpers:
    def test_decode_and_first_failing_lane(self):
        assert decode_lane(0b101, 4) == [1, 0, 1, 0]
        assert first_failing_lane(0b01000) == 3

    def test_or_cone_analysis(self):
        nl = Netlist("orcone")
        ins = nl.inputs(5, "i")
        t1 = nl.gate("OR2", ins[0], ins[1])
        t2 = nl.gate("OR3", t1, ins[2], ins[3])
        root = nl.gate("OR2", t2, ins[4])
        leaves, err = or_cone_leaves(nl, root)
        assert err is None
        assert sorted(leaves) == sorted(ins)
        assert check_or_cone(nl, root, ins) is None
        assert check_or_cone(nl, root, ins[:4]) is not None

    def test_walk_buf_chain(self):
        nl = Netlist("bufs")
        a = nl.input("a")
        b1 = nl.gate("BUF", a)
        b2 = nl.gate("BUF", b1)
        nl.mark_output(b2, "o")
        assert walk_buf_chain(nl, b2) == a
