"""Component equivalence-checker tests: clean proofs, injected faults,
and the semantic (not syntactic) nature of the comparison."""

import pytest

from repro.hw.arbiter_gates import build_arbiter
from repro.hw.netlist import Netlist
from repro.hw.trace import BuildTrace, tracing
from repro.verify.equivalence import check_netlist
from repro.verify.mutate import MUTATION_TARGETS


@pytest.mark.parametrize("name", sorted(MUTATION_TARGETS))
def test_paper_components_prove_clean(name):
    nl, trace = MUTATION_TARGETS[name]()
    assert check_netlist(nl, trace, name) == []


def test_swapped_grant_wiring_is_detected():
    # The trace is plain mutable dataclasses: claim the arbiter's grant
    # outputs in the wrong order and the proof must fail loudly.
    nl, trace = MUTATION_TARGETS["rr4"]()
    g = trace.arbiters[0].grant_nets
    g[0], g[1] = g[1], g[0]
    findings = check_netlist(nl, trace, "rr4_swapped")
    assert findings
    assert any(f.rule == "VER-EQUIV" for f in findings)
    assert all(f.severity == "error" for f in findings)


def test_empty_trace_is_flagged():
    nl, _ = MUTATION_TARGETS["rr4"]()
    findings = check_netlist(nl, BuildTrace(), "rr4_untraced")
    assert [f.rule for f in findings] == ["VER-TRACE"]


def test_double_inverter_variant_still_proves():
    # Route one request through INV(INV(.)) and claim, via the trace,
    # that the arbiter consumes the raw input.  A structural matcher
    # would reject the extra gates; the packed-sweep proof is semantic
    # and must accept the variant with zero findings.
    nl = Netlist("rr4_dblinv")
    with tracing() as trace:
        r0 = nl.input("req0")
        bent = nl.gate("INV", nl.gate("INV", r0))
        reqs = [bent] + [nl.input(f"req{i}") for i in range(1, 4)]
        grants, fin = build_arbiter(nl, "rr", reqs)
        fin(None)
        for i, g in enumerate(grants):
            nl.mark_output(g, f"gnt{i}")
    nl.validate()
    claimed = trace.remap(lambda n: r0 if n == bent else n)
    assert check_netlist(nl, claimed, "rr4_dblinv") == []
