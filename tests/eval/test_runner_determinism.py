"""Serial vs parallel sweep determinism.

The whole premise of the sweep engine is that fanning design points out
across worker processes is *free* in terms of reproducibility: every
simulation seeds its RNG streams purely from ``(config.seed,
terminal_id)``, so a point computed in a subprocess must be
bit-identical to the same point computed inline.  These tests pin that
property down for both topologies, including the curve-truncation
semantics of ``stop_after_saturation`` (serial stops simulating at the
first saturated point; parallel computes everything and truncates to
the same sequence).
"""

import pytest

from repro.eval.netperf import latency_sweep
from repro.eval.runner import run_sweep
from repro.netsim.simulator import SimulationConfig

# Small but real simulations: long enough to measure packets, short
# enough that a 2-topology matrix stays test-suite friendly.
FAST = dict(warmup_cycles=60, measure_cycles=150, drain_cycles=150)


def _base(topology: str, seed: int = 7) -> SimulationConfig:
    return SimulationConfig(topology=topology, seed=seed, **FAST)


@pytest.mark.parametrize("topology", ["mesh", "fbfly"])
class TestSerialParallelIdentical:
    def test_latency_sweep_points_identical(self, topology):
        rates = (0.05, 0.12, 0.2)
        serial = latency_sweep(
            _base(topology), rates, stop_after_saturation=False, jobs=1
        )
        parallel = latency_sweep(
            _base(topology), rates, stop_after_saturation=False, jobs=4
        )
        assert serial.points == parallel.points

    def test_run_sweep_full_results_identical(self, topology):
        from dataclasses import replace

        configs = [
            replace(_base(topology, seed=s), injection_rate=r)
            for s in (1, 2)
            for r in (0.06, 0.15)
        ]
        serial = run_sweep(configs, jobs=1)
        parallel = run_sweep(configs, jobs=4)
        # Full payload comparison: every statistic, including the
        # latency summary and per-class breakdown, must round-trip
        # through the worker transport unchanged.
        assert len(serial) == len(parallel) == len(configs)
        for a, b in zip(serial, parallel):
            pa, pb = a.to_payload(), b.to_payload()
            # NaN != NaN would fail a naive dict compare; stderr is the
            # only field that can be NaN with these measure windows.
            assert (pa["latency_stderr"] != pa["latency_stderr"]) == (
                pb["latency_stderr"] != pb["latency_stderr"]
            )
            pa.pop("latency_stderr"), pb.pop("latency_stderr")
            assert pa == pb


def test_truncation_matches_serial_early_stop():
    """A parallel sweep over a grid that saturates mid-way yields the
    same truncated SweepPoint sequence as the serial early-stop path."""
    rates = (0.06, 0.7, 0.9)  # 0.7 is far past mesh saturation
    serial = latency_sweep(_base("mesh"), rates, stop_after_saturation=True, jobs=1)
    parallel = latency_sweep(_base("mesh"), rates, stop_after_saturation=True, jobs=4)
    assert serial.points == parallel.points
    assert serial.points[-1].saturated
    assert len(serial.points) < len(rates)


def test_seed_changes_results():
    """Sanity check that the determinism above is not vacuous: a
    different seed produces a different (still deterministic) curve."""
    a = latency_sweep(_base("mesh", seed=1), (0.15,), jobs=1)
    b = latency_sweep(_base("mesh", seed=2), (0.15,), jobs=1)
    assert a.points != b.points
