"""RTL-vs-behavioural quality agreement (the Section 3.1 method)."""

import pytest

from repro.eval.design_points import DesignPoint
from repro.eval.matching import switch_matching_quality
from repro.eval.rtl_quality import rtl_switch_matching_quality


class TestRTLQuality:
    @pytest.mark.parametrize("arch", ["sep_if", "sep_of", "wf"])
    def test_rtl_matches_behavioural_exactly(self, arch):
        # Same seed => same request stream; the gate-level switch
        # allocators are cycle-exact replicas of the behavioural models,
        # so the quality numbers must agree to the last grant.
        point = DesignPoint("mesh", 5, 1)
        rates = (0.3, 0.8)
        rtl = rtl_switch_matching_quality(
            5, 2, archs=(arch,), rates=rates, num_samples=120, seed=3
        )
        beh = switch_matching_quality(
            point, archs=(arch,), rates=rates, num_samples=120, seed=3
        )
        assert rtl[arch].quality == pytest.approx(beh[arch].quality, abs=1e-12)

    def test_rtl_quality_ordering_under_load(self):
        curves = rtl_switch_matching_quality(
            5, 2, rates=(1.0,), num_samples=150, seed=1
        )
        assert curves["wf"].at(1.0) >= curves["sep_if"].at(1.0) - 0.02

    def test_quality_bounded(self):
        curves = rtl_switch_matching_quality(
            4, 1, rates=(0.5,), num_samples=100
        )
        for c in curves.values():
            assert 0.0 < c.at(0.5) <= 1.0 + 1e-9
