"""Batched cache persistence: O(1) full-file rewrites per sweep.

``ResultCache.put`` used to rewrite and fsync the whole JSON document
on every insert -- O(n^2) I/O across a sweep, and the pathology that
would sink a multi-tenant ``repro serve`` deployment.  The contract is
now: ``put`` marks the store dirty, a full-file rewrite happens only
every ``flush_every`` inserts / ``flush_interval`` seconds / explicit
``flush()``, and the sweep engine flushes once at sweep end.
"""

import json
import os
import time

from repro.eval.runner import ResultCache, run_sweep
from repro.netsim.simulator import SimulationConfig, SimulationResult


def _result(cfg: SimulationConfig) -> SimulationResult:
    return SimulationResult(
        config=cfg,
        avg_latency=20.0 + cfg.injection_rate,
        measured_packets=100,
        delivered_packets=100,
        injected_flit_rate=cfg.injection_rate,
        accepted_flit_rate=cfg.injection_rate,
        saturated=False,
    )


class _ReplaceCounter:
    """Counts ``os.replace`` calls that land on one target path."""

    def __init__(self, monkeypatch, target):
        self.count = 0
        self.target = str(target)
        real = os.replace

        def counting(src, dst, *a, **kw):
            if str(dst) == self.target:
                self.count += 1
            return real(src, dst, *a, **kw)

        monkeypatch.setattr(os, "replace", counting)


class TestBatchedFlush:
    def test_put_alone_does_not_touch_disk(self, tmp_path):
        cache = ResultCache(tmp_path / "c.json")
        cfg = SimulationConfig()
        cache.put(cfg, _result(cfg))
        assert not (tmp_path / "c.json").exists()
        cache.flush()
        assert (tmp_path / "c.json").exists()

    def test_flush_is_noop_while_clean(self, tmp_path, monkeypatch):
        cache = ResultCache(tmp_path / "c.json")
        cfg = SimulationConfig()
        cache.put(cfg, _result(cfg))
        counter = _ReplaceCounter(monkeypatch, tmp_path / "c.json")
        cache.flush()
        cache.flush()
        cache.flush()
        assert counter.count == 1

    def test_flush_every_threshold(self, tmp_path):
        cache = ResultCache(
            tmp_path / "c.json", flush_every=4, flush_interval=3600.0
        )
        for i in range(3):
            cfg = SimulationConfig(injection_rate=0.01 * (i + 1))
            cache.put(cfg, _result(cfg))
        assert cache.flushes == 0
        cfg = SimulationConfig(injection_rate=0.04)
        cache.put(cfg, _result(cfg))  # 4th dirty insert crosses the bar
        assert cache.flushes == 1
        assert len(json.loads((tmp_path / "c.json").read_text())["entries"]) == 4

    def test_flush_interval_threshold(self, tmp_path):
        cache = ResultCache(
            tmp_path / "c.json", flush_every=10_000, flush_interval=0.0
        )
        cfg = SimulationConfig()
        cache.put(cfg, _result(cfg))  # interval 0: every insert flushes
        assert cache.flushes == 1

    def test_100_point_sweep_is_o1_rewrites(self, tmp_path, monkeypatch):
        # The regression the satellite fix is for: a 100-point sweep
        # must not rewrite the cache file 100 times.  With the default
        # flush_every=32 it is 3 threshold flushes + 1 end-of-sweep
        # flush (the interval clock can only add, never remove, so the
        # bound is deliberately a <=).
        path = tmp_path / "c.json"
        counter = _ReplaceCounter(monkeypatch, path)
        cache = ResultCache(path)
        configs = [
            SimulationConfig(injection_rate=0.001 * (i + 1)) for i in range(100)
        ]
        run_sweep(configs, cache=cache, sim_fn=_result)
        assert len(json.loads(path.read_text())["entries"]) == 100
        assert 1 <= counter.count <= 5
        assert counter.count == cache.flushes

    def test_run_sweep_flushes_at_sweep_end(self, tmp_path):
        # Fewer points than flush_every: without the end-of-sweep flush
        # nothing would ever persist (the CI cached-rerun smoke greps
        # for "4 hit(s), 0 miss(es)" and relies on exactly this).
        path = tmp_path / "c.json"
        configs = [
            SimulationConfig(injection_rate=0.05 * (i + 1)) for i in range(4)
        ]
        run_sweep(configs, cache=ResultCache(path), sim_fn=_result)
        rerun_cache = ResultCache(path)
        run_sweep(configs, cache=rerun_cache, sim_fn=_result)
        assert (rerun_cache.hits, rerun_cache.misses) == (4, 0)

    def test_failed_flush_keeps_entries_dirty_and_retries(
        self, tmp_path, monkeypatch
    ):
        path = tmp_path / "c.json"
        cache = ResultCache(path)
        cfg = SimulationConfig()
        cache.put(cfg, _result(cfg))

        real = os.replace

        def broken(src, dst, *a, **kw):
            raise OSError("disk full")

        monkeypatch.setattr(os, "replace", broken)
        cache.flush()
        assert not path.exists()
        monkeypatch.setattr(os, "replace", real)
        cache.flush()  # entries stayed dirty: the retry persists them
        assert ResultCache(path).get(cfg) is not None

    def test_corrupt_entry_drop_is_persisted(self, tmp_path):
        # get_by_key dropping a corrupt entry marks the store dirty so
        # the drop itself eventually reaches disk.
        path = tmp_path / "c.json"
        cache = ResultCache(path)
        cfg = SimulationConfig()
        cache.put(cfg, _result(cfg))
        cache.flush()
        doc = json.loads(path.read_text())
        key = next(iter(doc["entries"]))
        doc["entries"][key] = {"vandalized": True}
        doc["checksum"] = None
        path.write_text(json.dumps(doc))

        fresh = ResultCache(path)
        assert fresh.get_by_key(key) is None  # dropped in memory
        fresh.flush()
        assert key not in json.loads(path.read_text())["entries"]
