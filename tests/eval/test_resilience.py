"""Resilience campaign: fault selection, artifact shape, cache reuse."""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.eval.resilience import (
    RESILIENCE_SCHEMA,
    campaign_configs,
    format_resilience,
    full_delivery_violations,
    link_fault_plan,
    load_resilience_artifact,
    mesh_link_candidates,
    run_resilience_campaign,
    select_faulted_links,
    write_resilience_artifact,
)
from repro.eval.runner import ResultCache

QUICK = dict(fault_counts=[0, 1], cycles=150, injection_rate=0.05)


class TestLinkSelection:
    def test_every_directed_inter_router_link_once(self):
        links = mesh_link_candidates()
        assert len(links) == 224  # 2 * 2 * 8 * 7 directed mesh links
        assert len(set(links)) == 224
        # Terminal ports (port 0) are never candidates.
        assert all(port in (1, 2, 3, 4) for _, port in links)

    def test_selection_is_deterministic_and_nested(self):
        assert select_faulted_links(3, seed=7) == select_faulted_links(
            3, seed=7
        )
        assert (
            select_faulted_links(2, seed=7)
            == select_faulted_links(5, seed=7)[:2]
        )

    def test_different_seeds_differ(self):
        assert select_faulted_links(8, 1) != select_faulted_links(8, 2)

    def test_count_bounds_checked(self):
        with pytest.raises(ValueError):
            select_faulted_links(225, 1)
        with pytest.raises(ValueError):
            select_faulted_links(-1, 1)

    def test_zero_faults_is_a_fault_free_baseline(self):
        assert link_fault_plan(0, 1) is None
        plan = link_fault_plan(2, 1)
        assert len(plan.link_faults) == 2
        assert all(f.permanent for f in plan.link_faults)


class TestCampaignConfigs:
    def test_vc_budget_held_fixed_across_modes(self):
        plan = campaign_configs([0, 1], total_vcs=8)
        by_mode = {}
        for mode, _, cfg in plan:
            by_mode.setdefault(mode, cfg)
        assert by_mode["default"].vcs_per_class == 4
        assert by_mode["ft_dor"].vcs_per_class == 2
        assert by_mode["ft_dor"].routing == "ft_dor"
        assert by_mode["default"].routing == "default"

    def test_same_fault_plan_across_modes(self):
        plan = campaign_configs([1], total_vcs=8)
        faults = {cfg.faults for _, _, cfg in plan}
        assert len(faults) == 1

    def test_indivisible_vc_budget_rejected(self):
        with pytest.raises(ValueError, match="total_vcs"):
            campaign_configs([0], total_vcs=6)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="mode"):
            campaign_configs([0], modes=["adaptive"])

    def test_watchdog_armed_on_every_point(self):
        assert all(
            cfg.watchdog_cycles >= 1000
            for _, _, cfg in campaign_configs([0, 1])
        )


class TestCampaign:
    def test_artifact_shape_and_gate(self, tmp_path):
        artifact = run_resilience_campaign(**QUICK)
        assert artifact["schema"] == RESILIENCE_SCHEMA
        assert set(artifact["curves"]) == {"default", "ft_dor"}
        for points in artifact["curves"].values():
            assert [p["link_faults"] for p in points] == [0, 1]
            assert all(not p["failed"] for p in points)
        # The fault-free baseline delivers everything in both modes.
        for mode in ("default", "ft_dor"):
            assert artifact["curves"][mode][0]["delivered_fraction"] == 1.0
        assert full_delivery_violations(artifact, max_faults=1) == []
        # The text rendering names both modes and every fault count.
        table = format_resilience(artifact)
        assert "ft_dor delivered" in table and "default delivered" in table

        path = tmp_path / "resilience.json"
        write_resilience_artifact(artifact, path)
        assert load_resilience_artifact(path) == json.loads(path.read_text())

    def test_campaign_round_trips_through_the_cache(self, tmp_path):
        cache = ResultCache(tmp_path / "cache.json")
        first = run_resilience_campaign(**QUICK, cache=cache)
        assert cache.misses == 4 and cache.hits == 0

        cache2 = ResultCache(tmp_path / "cache.json")
        second = run_resilience_campaign(**QUICK, cache=cache2)
        assert cache2.hits == 4 and cache2.misses == 0
        assert first == second

    def test_gate_flags_a_mode_that_cannot_deliver(self):
        artifact = run_resilience_campaign(**QUICK)
        # The default-routing curve loses packets at k=1 (that is the
        # point of the campaign); the gate must say so when pointed at
        # that mode.
        assert full_delivery_violations(artifact, 1, mode="default")
        assert full_delivery_violations(artifact, 1, mode="missing")

    def test_schema_marker_checked_on_load(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": "something/else"}))
        with pytest.raises(ValueError, match="schema"):
            load_resilience_artifact(path)


class TestValidatorIntegration:
    def test_validate_telemetry_accepts_the_artifact(self, tmp_path):
        artifact = run_resilience_campaign(**QUICK)
        path = tmp_path / "resilience.json"
        write_resilience_artifact(artifact, path)
        script = (
            Path(__file__).resolve().parents[2]
            / "scripts" / "validate_telemetry.py"
        )
        proc = subprocess.run(
            [sys.executable, str(script), "--resilience", str(path)],
            capture_output=True, text=True,
        )
        assert proc.returncode == 0, proc.stderr
        assert "resilience" in proc.stdout

    def test_validate_telemetry_rejects_a_truncated_curve(self, tmp_path):
        artifact = run_resilience_campaign(**QUICK)
        artifact["curves"]["ft_dor"].pop()
        path = tmp_path / "resilience.json"
        write_resilience_artifact(artifact, path)
        script = (
            Path(__file__).resolve().parents[2]
            / "scripts" / "validate_telemetry.py"
        )
        proc = subprocess.run(
            [sys.executable, str(script), "--resilience", str(path)],
            capture_output=True, text=True,
        )
        assert proc.returncode != 0
        assert "point(s)" in proc.stderr
