"""Behaviour of the persistent sweep-result cache.

Covers the contract the figure benchmarks rely on: hits round-trip the
full result losslessly, *any* config field change misses, corrupt files
and corrupt individual entries recover gracefully, writes are atomic,
and the ``--no-cache`` CLI flag really bypasses the store.
"""

import dataclasses
import json

import pytest

from repro.cli import main
from repro.eval.runner import (
    CACHE_SCHEMA_VERSION,
    ResultCache,
    config_key,
    run_point,
    run_sweep,
)
from repro.faults import FaultPlan
from repro.netsim.simulator import SimulationConfig, SimulationResult
from repro.netsim.stats import LatencySummary


def _result(cfg: SimulationConfig) -> SimulationResult:
    return SimulationResult(
        config=cfg,
        avg_latency=24.5,
        measured_packets=300,
        delivered_packets=300,
        injected_flit_rate=0.05,
        accepted_flit_rate=0.05,
        saturated=False,
        misspeculations=3,
        speculative_wins=290,
        latency_by_class={0: 24.0, 1: 25.0},
        latency_summary=LatencySummary(300, 24.5, 4.0, 18.0, 24.0, 31.0, 35.0, 40.0),
        latency_stderr=0.4,
    )


# A counting stand-in for run_simulation (analytic, instant).
class _FakeSim:
    def __init__(self):
        self.calls = 0

    def __call__(self, cfg: SimulationConfig) -> SimulationResult:
        self.calls += 1
        return _result(cfg)


class TestHitMiss:
    def test_round_trip_is_lossless(self, tmp_path):
        cfg = SimulationConfig(injection_rate=0.2)
        cache = ResultCache(tmp_path / "c.json")
        assert cache.get(cfg) is None
        cache.put(cfg, _result(cfg))
        cache.flush()  # persistence is batched; see test_cache_flush_batching
        reread = ResultCache(tmp_path / "c.json").get(cfg)
        assert reread == _result(cfg)
        # JSON stringifies dict keys; they must come back as ints.
        assert set(reread.latency_by_class) == {0, 1}
        assert isinstance(reread.latency_summary, LatencySummary)
        assert reread.config == cfg

    def test_counters(self, tmp_path):
        cfg = SimulationConfig()
        cache = ResultCache(tmp_path / "c.json")
        cache.get(cfg)
        cache.put(cfg, _result(cfg))
        cache.get(cfg)
        assert (cache.hits, cache.misses) == (1, 1)

    def test_run_point_uses_cache(self, tmp_path):
        cfg = SimulationConfig()
        cache = ResultCache(tmp_path / "c.json")
        sim = _FakeSim()
        run_point(cfg, cache=cache, sim_fn=sim)
        run_point(cfg, cache=cache, sim_fn=sim)
        assert sim.calls == 1

    def test_run_sweep_mixes_hits_and_misses(self, tmp_path):
        cache = ResultCache(tmp_path / "c.json")
        configs = [SimulationConfig(injection_rate=r) for r in (0.1, 0.2, 0.3)]
        sim = _FakeSim()
        run_sweep(configs[:2], cache=cache, sim_fn=sim)
        results = run_sweep(configs, cache=cache, sim_fn=sim)
        assert sim.calls == 3  # only the third point was new
        assert [r.config.injection_rate for r in results] == [0.1, 0.2, 0.3]


class TestKeying:
    def test_every_config_field_affects_the_key(self):
        base = SimulationConfig()
        bumped = {
            str: lambda v: v + "_x",
            int: lambda v: v + 1,
            float: lambda v: v + 0.015625,
            bool: lambda v: not v,
        }
        # Optional fields default to a sentinel that is *omitted* from
        # the serialized form; bump them to their smallest enabled value.
        overrides = {
            "faults": FaultPlan(stuck_vc_rate=0.25),
            "hotspot_terminals": [0, 5],
        }
        for f in dataclasses.fields(SimulationConfig):
            value = getattr(base, f.name)
            if f.name in overrides:
                new_value = overrides[f.name]
            else:
                new_value = bumped[type(value)](value)
            variant = dataclasses.replace(base, **{f.name: new_value})
            assert config_key(variant) != config_key(base), f.name

    def test_fault_plan_details_affect_the_key(self):
        # Not just faults-vs-no-faults: two different plans must key
        # differently, and the same plan twice must key identically.
        a = SimulationConfig(faults=FaultPlan(seed=1, link_rate=0.01))
        b = SimulationConfig(faults=FaultPlan(seed=2, link_rate=0.01))
        c = SimulationConfig(faults=FaultPlan(seed=1, link_rate=0.01))
        assert config_key(a) != config_key(b)
        assert config_key(a) == config_key(c)

    def test_disabled_fault_fields_keep_legacy_key(self):
        # faults=None / watchdog_cycles=0 serialize exactly as pre-fault
        # configs did, so caches written before the fields existed stay
        # valid.  The expected digest is pinned from the pre-fault build.
        assert "faults" not in SimulationConfig().to_dict()
        assert "watchdog_cycles" not in SimulationConfig().to_dict()

    def test_salt_affects_the_key(self):
        cfg = SimulationConfig()
        assert config_key(cfg, "sim-rev-1") != config_key(cfg, "sim-rev-2")

    def test_key_is_stable_across_instances(self):
        assert config_key(SimulationConfig()) == config_key(SimulationConfig())


class TestKernelIndependence:
    """Cache keys must not encode the simulation kernel.

    The kernels are bit-identical, so a payload computed by any of them
    is valid for all of them; keying on the kernel would fracture the
    cache three ways and silently triple sweep costs.
    """

    WINDOWS = dict(warmup_cycles=60, measure_cycles=200, drain_cycles=250)

    def test_kernel_is_not_a_config_axis(self):
        # The key is a digest of the canonical config serialization;
        # the kernel is a runtime choice and must not appear in it.
        cfg = SimulationConfig(**self.WINDOWS)
        assert "kernel" not in cfg.to_dict()
        assert config_key(cfg) == config_key(SimulationConfig(**self.WINDOWS))

    @pytest.mark.parametrize("producer", ["reference", "fast", "compiled"])
    def test_any_kernel_payload_serves_every_kernel(self, tmp_path, producer):
        from repro.netsim.simulator import run_simulation

        cfg = SimulationConfig(injection_rate=0.2, **self.WINDOWS)
        cache = ResultCache(tmp_path / "c.json")
        cache.put(cfg, run_simulation(cfg, kernel=producer))
        cache.flush()

        # A later sweep -- whatever kernel it would have used -- hits.
        sim = _FakeSim()
        cached = run_point(cfg, cache=cache, sim_fn=sim)
        assert sim.calls == 0
        # And the payload it serves is the one every kernel computes.
        assert cached == run_simulation(cfg, kernel="fast")


class TestCorruptionRecovery:
    def test_garbage_file_starts_empty(self, tmp_path):
        path = tmp_path / "c.json"
        path.write_text("{this is not json")
        cache = ResultCache(path)
        cfg = SimulationConfig()
        assert cache.get(cfg) is None
        cache.put(cfg, _result(cfg))
        cache.flush()
        assert ResultCache(path).get(cfg) is not None

    def test_truncated_file_starts_empty(self, tmp_path):
        path = tmp_path / "c.json"
        good = ResultCache(path)
        good.put(SimulationConfig(), _result(SimulationConfig()))
        good.flush()
        blob = path.read_text()
        path.write_text(blob[: len(blob) // 2])
        assert len(ResultCache(path)) == 0

    def test_corrupt_entry_dropped_and_recomputed(self, tmp_path):
        path = tmp_path / "c.json"
        cfg = SimulationConfig()
        cache = ResultCache(path)
        cache.put(cfg, _result(cfg))
        cache.flush()
        doc = json.loads(path.read_text())
        key = next(iter(doc["entries"]))
        doc["entries"][key] = {"avg_latency": "not-even-close"}
        path.write_text(json.dumps(doc))
        fresh = ResultCache(path)
        assert fresh.get(cfg) is None  # dropped, not crashed
        sim = _FakeSim()
        run_point(cfg, cache=fresh, sim_fn=sim)
        assert sim.calls == 1
        assert fresh.get(cfg) is not None

    def test_schema_version_mismatch_discards_entries(self, tmp_path):
        path = tmp_path / "c.json"
        cfg = SimulationConfig()
        cache = ResultCache(path)
        cache.put(cfg, _result(cfg))
        cache.flush()
        doc = json.loads(path.read_text())
        doc["schema"] = CACHE_SCHEMA_VERSION + 1
        path.write_text(json.dumps(doc))
        assert len(ResultCache(path)) == 0

    def test_simulator_rev_mismatch_discards_entries(self, tmp_path):
        path = tmp_path / "c.json"
        cfg = SimulationConfig()
        cache = ResultCache(path)
        cache.put(cfg, _result(cfg))
        cache.flush()
        doc = json.loads(path.read_text())
        doc["salt"] = "sim-rev-999"
        path.write_text(json.dumps(doc))
        assert ResultCache(path).get(cfg) is None

    def test_garbage_file_quarantined_for_inspection(self, tmp_path):
        path = tmp_path / "c.json"
        path.write_text("{this is not json")
        ResultCache(path)
        corrupt = tmp_path / "c.json.corrupt"
        assert corrupt.exists()
        assert corrupt.read_text() == "{this is not json"

    def test_checksum_mismatch_recovers_intact_entries(self, tmp_path):
        # Tampered content under a stale checksum: salvage every entry
        # that still deserializes, drop the rest, and say so.
        path = tmp_path / "c.json"
        cache = ResultCache(path)
        good_cfg = SimulationConfig(injection_rate=0.1)
        bad_cfg = SimulationConfig(injection_rate=0.2)
        cache.put(good_cfg, _result(good_cfg))
        cache.put(bad_cfg, _result(bad_cfg))
        cache.flush()
        doc = json.loads(path.read_text())
        bad_key = ResultCache(path).key(bad_cfg)
        doc["entries"][bad_key] = {"vandalized": True}
        path.write_text(json.dumps(doc))  # checksum now stale

        warnings = []
        from repro.obs.metrics import add_warning_sink, remove_warning_sink

        add_warning_sink(warnings.append)
        try:
            fresh = ResultCache(path)
        finally:
            remove_warning_sink(warnings.append)
        assert fresh.get(good_cfg) == _result(good_cfg)
        assert fresh.get(bad_cfg) is None
        codes = [w.code for w in warnings]
        assert "cache_checksum_mismatch" in codes

    def test_flush_failure_warns_instead_of_raising(self, tmp_path, monkeypatch):
        import os as os_mod

        path = tmp_path / "c.json"
        cache = ResultCache(path)

        def broken_replace(src, dst):
            raise OSError("disk on fire")

        warnings = []
        from repro.obs.metrics import add_warning_sink, remove_warning_sink

        add_warning_sink(warnings.append)
        monkeypatch.setattr(os_mod, "replace", broken_replace)
        try:
            cache.put(SimulationConfig(), _result(SimulationConfig()))
            cache.flush()  # put() alone only marks the entry dirty
        finally:
            remove_warning_sink(warnings.append)
        assert any(w.code == "cache_flush_failed" for w in warnings)
        # The in-memory entry survives even though the disk write failed.
        assert cache.get(SimulationConfig()) is not None

    def test_writes_are_atomic(self, tmp_path):
        path = tmp_path / "c.json"
        cache = ResultCache(path)
        for r in (0.1, 0.2, 0.3):
            cfg = SimulationConfig(injection_rate=r)
            cache.put(cfg, _result(cfg))
        cache.flush()
        leftovers = [p for p in tmp_path.iterdir() if p.name != "c.json"]
        assert leftovers == []
        assert len(json.loads(path.read_text())["entries"]) == 3

    def test_env_var_default_path(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_CACHE", str(tmp_path / "env.json"))
        assert str(ResultCache().path) == str(tmp_path / "env.json")


class TestCliBypass:
    ARGS = ["sweep", "--rates", "0.05", "--cycles", "200"]

    def test_no_cache_leaves_no_file(self, tmp_path, capsys):
        path = tmp_path / "cli.json"
        rc = main(self.ARGS + ["--no-cache", "--cache-path", str(path)])
        assert rc == 0
        assert not path.exists()
        assert "cache:" not in capsys.readouterr().out

    def test_cache_path_written_and_reused(self, tmp_path, capsys):
        path = tmp_path / "cli.json"
        assert main(self.ARGS + ["--cache-path", str(path)]) == 0
        first = capsys.readouterr().out
        assert "1 miss(es)" in first
        assert path.exists()
        assert main(self.ARGS + ["--cache-path", str(path)]) == 0
        second = capsys.readouterr().out
        assert "1 hit(s)" in second
        # Identical numbers either way.
        assert first.splitlines()[:4] == second.splitlines()[:4]
