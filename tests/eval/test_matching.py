"""Tests for the matching-quality experiment harness (Figs 7 & 12)."""

import pytest

from repro.eval.design_points import DesignPoint
from repro.eval.matching import (
    QualityCurve,
    switch_matching_quality,
    vc_matching_quality,
)

# Small sample counts keep the suite fast; trends are robust at n=200.
N = 200
RATES = (0.2, 0.6, 1.0)

MESH1 = DesignPoint("mesh", 5, 1)
MESH4 = DesignPoint("mesh", 5, 4)
FBFLY2 = DesignPoint("fbfly", 10, 2)


class TestQualityCurve:
    def test_at(self):
        c = QualityCurve("x", [0.1, 0.2], [1.0, 0.9])
        assert c.at(0.2) == 0.9
        with pytest.raises(ValueError):
            c.at(0.3)


class TestVCQuality:
    def test_single_vc_per_class_all_perfect(self):
        # Section 4.3.2: with C=1 all three allocators produce maximum
        # matchings (quality identically 1).
        curves = vc_matching_quality(MESH1, rates=RATES, num_samples=N)
        for arch, curve in curves.items():
            assert all(q == pytest.approx(1.0) for q in curve.quality), arch

    def test_wavefront_always_maximum(self):
        # Class-interchangeable candidates make maximal == maximum, so
        # the wavefront stays at quality 1 even for C > 1.
        curves = vc_matching_quality(MESH4, rates=RATES, num_samples=N)
        assert all(q == pytest.approx(1.0) for q in curves["wf"].quality)

    def test_separable_degrades_with_rate(self):
        curves = vc_matching_quality(MESH4, rates=(0.1, 1.0), num_samples=N)
        for arch in ("sep_if", "sep_of"):
            c = curves[arch]
            assert c.at(1.0) < c.at(0.1) < 1.0 + 1e-9

    def test_input_first_beats_output_first(self):
        # Section 4.3.2: input-first propagates more requests to the
        # wide arbitration stage.
        curves = vc_matching_quality(FBFLY2, rates=(0.8,), num_samples=400)
        assert curves["sep_if"].at(0.8) > curves["sep_of"].at(0.8)

    def test_more_vcs_per_class_hurt_separable(self):
        m2 = vc_matching_quality(
            DesignPoint("mesh", 5, 2), rates=(1.0,), num_samples=N
        )
        m4 = vc_matching_quality(MESH4, rates=(1.0,), num_samples=N)
        assert m4["sep_if"].at(1.0) < m2["sep_if"].at(1.0)

    def test_deterministic_given_seed(self):
        a = vc_matching_quality(MESH1, rates=(0.5,), num_samples=50, seed=7)
        b = vc_matching_quality(MESH1, rates=(0.5,), num_samples=50, seed=7)
        assert a["wf"].quality == b["wf"].quality


class TestSwitchQuality:
    def test_near_perfect_at_low_load(self):
        curves = switch_matching_quality(MESH1, rates=(0.05,), num_samples=400)
        for arch, c in curves.items():
            assert c.at(0.05) > 0.97, arch

    def test_wavefront_dominates_at_high_load(self):
        curves = switch_matching_quality(FBFLY2, rates=(1.0,), num_samples=N)
        assert curves["wf"].at(1.0) > curves["sep_of"].at(1.0)
        assert curves["wf"].at(1.0) > curves["sep_if"].at(1.0)

    def test_wavefront_recovers_at_high_rate_with_many_vcs(self):
        # Section 5.3.2: with dense request matrices the wavefront's
        # quality climbs back toward 1 as the maximum-size bound
        # saturates.
        curves = switch_matching_quality(
            DesignPoint("fbfly", 10, 4), rates=(0.3, 1.0), num_samples=N
        )
        wf = curves["wf"]
        assert wf.at(1.0) > wf.at(0.3)
        assert wf.at(1.0) > 0.9

    def test_sep_if_flattens_below_sep_of(self):
        # Section 5.3.2: single-request-per-port limits input-first.
        curves = switch_matching_quality(
            DesignPoint("fbfly", 10, 4), rates=(1.0,), num_samples=N
        )
        assert curves["sep_if"].at(1.0) < curves["sep_of"].at(1.0)

    def test_quality_never_exceeds_one(self):
        curves = switch_matching_quality(MESH4, rates=RATES, num_samples=100)
        for c in curves.values():
            assert all(q <= 1.0 + 1e-9 for q in c.quality)
