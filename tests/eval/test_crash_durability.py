"""Crash-replay durability: a SIGKILLed sweep loses at most the
in-flight row.

``JsonlReporter`` fsyncs every completed ``point``/``point_failed`` row
and ``SweepCheckpoint.record`` fsyncs every journal append, so after a
hard kill (no atexit, no flush-on-close) both files must replay to the
set of points that had actually completed.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[2]


def _parse_surviving_rows(path: Path):
    """All complete JSON rows; at most the final line may be torn."""
    lines = path.read_text().splitlines()
    rows = []
    for i, line in enumerate(lines):
        try:
            rows.append(json.loads(line))
        except json.JSONDecodeError:
            assert i == len(lines) - 1, (
                f"{path}: torn line {i + 1} is not the final line -- a "
                "completed row was not durable"
            )
    return rows


def test_sigkilled_sweep_loses_at_most_inflight_row(tmp_path):
    metrics_dir = tmp_path / "obs"
    ckpt = tmp_path / "sweep.ckpt.jsonl"
    argv = [
        sys.executable, "-m", "repro", "sweep",
        "--rates", "0.05,0.10,0.15,0.20,0.25,0.30",
        "--cycles", "600", "--no-cache",
        "--metrics", str(metrics_dir),
        "--checkpoint", str(ckpt),
    ]
    env = dict(os.environ, PYTHONPATH=str(REPO / "src"))
    proc = subprocess.Popen(
        argv, env=env, cwd=tmp_path,
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )
    try:
        # Wait until at least one completed point is journaled, then
        # kill hard -- no signal handler runs, no buffers flush.
        sweep_log = metrics_dir / "sweep.jsonl"
        deadline = time.time() + 90
        while time.time() < deadline:
            if proc.poll() is not None:
                pytest.fail("sweep finished before it could be killed; "
                            "increase the point count")
            if sweep_log.exists() and '"kind": "point"' in sweep_log.read_text():
                break
            time.sleep(0.05)
        else:
            pytest.fail("no point row appeared before the deadline")
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=30)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()

    # The reporter's durable rows survived the kill intact.
    rows = _parse_surviving_rows(sweep_log)
    points = [r for r in rows if r.get("kind") == "point"]
    assert points, "at least one completed point row must be on disk"
    for row in points:
        assert {"key", "config", "result"} <= set(row)

    # The checkpoint journal replays the same completed points.
    ckpt_rows = _parse_surviving_rows(ckpt)
    assert ckpt_rows and ckpt_rows[0]["kind"] == "header"
    journaled = {r["key"] for r in ckpt_rows if r.get("kind") == "point"}
    reported = {r["key"] for r in points}
    # Reporter and journal are written back to back per point; the kill
    # can land between the two writes, so they differ by at most the
    # in-flight point.
    assert len(journaled.symmetric_difference(reported)) <= 1

    # A resumed run recovers the journaled points and completes.
    out = subprocess.run(
        argv + ["--resume"], env=env, cwd=tmp_path,
        capture_output=True, text=True, timeout=90,
    )
    assert out.returncode == 0, out.stderr
    if journaled:
        assert f"recovered {len(journaled)} completed" in out.stderr
    assert "zero-load" in out.stdout
    assert not ckpt.exists(), "clean completion removes the journal"
