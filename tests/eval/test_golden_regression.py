"""Golden regression tests against the recorded figure results.

``benchmarks/results/fig13*/fig14*`` hold the latency tables the
benchmark suite last regenerated.  These tests re-derive a small subset
of those numbers (one fig13 panel curve and the fig14 zero-load
speculation gap) through the new sweep engine and compare against the
recorded values: the simulator is deterministic, so agreement should be
essentially exact, and the tolerances below only leave room for
intentional future simulator changes small enough not to change the
paper's conclusions.  If a change moves these numbers materially, the
benchmarks must be re-run (and ``SIMULATOR_REV`` bumped so stale sweep
caches are invalidated).

The compiled kernel is additionally pinned to the default kernel with
*exact* equality over a full recorded curve: all kernels are one
simulator, so the generated code must land on the committed tables to
the last bit, not merely within tolerance.
"""

import re
from pathlib import Path

import pytest

from repro.eval.netperf import latency_sweep
from repro.netsim.simulator import SimulationConfig, run_simulation

RESULTS = Path(__file__).resolve().parents[2] / "benchmarks" / "results"

# Fidelity the recorded tables were produced at (benchmarks/conftest.py
# defaults): REPRO_SIM_CYCLES=1200 -> warmup 400, measure 1200, drain 1200.
RECORDED_FIDELITY = dict(
    warmup_cycles=400, measure_cycles=1200, drain_cycles=1200
)
MESH_C1_RATES = (0.05, 0.15, 0.25, 0.32, 0.38)


def _parse_panel(path: Path):
    """Parse a recorded figure table into {column: [latency, ...]} plus
    the trailing ``saturation rates:`` mapping."""
    lines = path.read_text().splitlines()
    header = None
    rows = []
    saturation = {}
    for line in lines:
        if line.startswith("inj rate"):
            header = line.split()
        elif line.startswith("saturation rates:"):
            for part in line.split(":", 1)[1].split(","):
                name, value = part.split("=")
                saturation[name.strip()] = float(value)
        elif header and re.match(r"^\d", line.strip()):
            rows.append([float(x) for x in line.split()])
    assert header, f"unparseable results table: {path}"
    # header was split on whitespace: ["inj", "rate", arch...]
    archs = header[2:]
    columns = {arch: [row[i + 1] for row in rows] for i, arch in enumerate(archs)}
    rates = [row[0] for row in rows]
    return rates, columns, saturation


@pytest.fixture(scope="module")
def fig13_mesh_c1():
    path = RESULTS / "fig13_network_mesh_2x1x1_VCs_V=2.txt"
    if not path.exists():
        pytest.skip("recorded fig13 results not present")
    return _parse_panel(path)


@pytest.fixture(scope="module")
def fig14_mesh_c1():
    path = RESULTS / "fig14_speculation_mesh_2x1x1_VCs_V=2.txt"
    if not path.exists():
        pytest.skip("recorded fig14 results not present")
    return _parse_panel(path)


@pytest.fixture(scope="module")
def rederived_sep_if():
    """One full fig13-style curve (mesh 2x1x1, sep_if) via the runner."""
    base = SimulationConfig(
        topology="mesh", vcs_per_class=1,
        sw_alloc_arch="sep_if", vc_alloc_arch="sep_if",
        speculation="pessimistic", **RECORDED_FIDELITY,
    )
    return latency_sweep(
        base, MESH_C1_RATES, label="sep_if", stop_after_saturation=False
    )


class TestFig13MeshC1Golden:
    def test_recorded_grid_matches(self, fig13_mesh_c1):
        rates, _, _ = fig13_mesh_c1
        assert tuple(rates) == MESH_C1_RATES

    def test_zero_load_latency(self, fig13_mesh_c1, rederived_sep_if):
        _, columns, _ = fig13_mesh_c1
        assert rederived_sep_if.zero_load == pytest.approx(
            columns["sep_if"][0], rel=0.03
        )

    def test_curve_latencies(self, fig13_mesh_c1, rederived_sep_if):
        _, columns, _ = fig13_mesh_c1
        measured = [p.latency for p in rederived_sep_if.points]
        for got, want in zip(measured, columns["sep_if"]):
            # Post-saturation latencies are noisier; 10% covers them.
            assert got == pytest.approx(want, rel=0.10)

    def test_saturation_throughput(self, fig13_mesh_c1, rederived_sep_if):
        _, _, saturation = fig13_mesh_c1
        assert rederived_sep_if.saturation_rate() == pytest.approx(
            saturation["sep_if"], rel=0.07
        )


@pytest.fixture(scope="module")
def rederived_sep_if_compiled():
    """The same fig13 curve, simulated by the compiled kernel."""
    base = SimulationConfig(
        topology="mesh", vcs_per_class=1,
        sw_alloc_arch="sep_if", vc_alloc_arch="sep_if",
        speculation="pessimistic", **RECORDED_FIDELITY,
    )
    return latency_sweep(
        base, MESH_C1_RATES, label="sep_if", stop_after_saturation=False,
        sim_fn=lambda cfg: run_simulation(cfg, kernel="compiled"),
    )


class TestCompiledKernelGolden:
    """The compiled kernel must reproduce the committed figure tables.

    The kernels are bit-identical by construction, so the compiled
    curve is compared against the default-kernel curve with *exact*
    equality (not a tolerance): any drift here means the generated code
    stopped being the same simulator.  The recorded-table comparison
    then rides on the same tolerances as the default-kernel golden
    tests above.
    """

    def test_curve_bit_identical_to_default_kernel(
        self, rederived_sep_if, rederived_sep_if_compiled
    ):
        fast, compiled = rederived_sep_if, rederived_sep_if_compiled
        assert compiled.zero_load == fast.zero_load
        assert compiled.saturation_rate() == fast.saturation_rate()
        assert len(compiled.points) == len(fast.points)
        for got, want in zip(compiled.points, fast.points):
            assert (got.rate, got.latency, got.p50, got.p95, got.p99,
                    got.accepted) == (want.rate, want.latency, want.p50,
                                      want.p95, want.p99, want.accepted)

    def test_recorded_fig13_table_reproduced(
        self, fig13_mesh_c1, rederived_sep_if_compiled
    ):
        _, columns, saturation = fig13_mesh_c1
        curve = rederived_sep_if_compiled
        assert curve.zero_load == pytest.approx(columns["sep_if"][0], rel=0.03)
        for got, want in zip(
            [p.latency for p in curve.points], columns["sep_if"]
        ):
            assert got == pytest.approx(want, rel=0.10)
        assert curve.saturation_rate() == pytest.approx(
            saturation["sep_if"], rel=0.07
        )

    def test_recorded_fig14_zero_load_reproduced(self, fig14_mesh_c1):
        _, columns, _ = fig14_mesh_c1
        base = SimulationConfig(
            topology="mesh", vcs_per_class=1,
            sw_alloc_arch="sep_if", vc_alloc_arch="sep_if",
            speculation="nonspec", **RECORDED_FIDELITY,
        )
        curve = latency_sweep(
            base, (0.05,), stop_after_saturation=False,
            sim_fn=lambda cfg: run_simulation(cfg, kernel="compiled"),
        )
        assert curve.zero_load == pytest.approx(columns["nonspec"][0], rel=0.03)


class TestFig14MeshC1Golden:
    def test_speculation_zero_load_gap(self, fig14_mesh_c1):
        """Re-derive the nonspec zero-load point and check it against
        the recorded table; with the recorded spec_req zero-load this
        pins the paper's headline mesh improvement (~23%)."""
        _, columns, _ = fig14_mesh_c1
        base = SimulationConfig(
            topology="mesh", vcs_per_class=1,
            sw_alloc_arch="sep_if", vc_alloc_arch="sep_if",
            speculation="nonspec", **RECORDED_FIDELITY,
        )
        curve = latency_sweep(base, (0.05,), stop_after_saturation=False)
        z_nonspec = curve.zero_load
        assert z_nonspec == pytest.approx(columns["nonspec"][0], rel=0.03)
        improvement = 1 - columns["spec_req"][0] / z_nonspec
        assert 0.12 < improvement < 0.35
