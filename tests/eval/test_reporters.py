"""Tests for sweep reporters, SweepStats guards and the JSONL reporter."""

import io
import json
import math
import time

import pytest

from repro.eval.runner import (
    ConsoleReporter,
    MultiReporter,
    ResultCache,
    SweepStats,
    run_sweep,
)
from repro.netsim.simulator import SimulationConfig, run_simulation
from repro.obs.telemetry import (
    MANIFEST_SCHEMA,
    EmptyTelemetryError,
    JsonlReporter,
    build_run_manifest,
    read_jsonl,
    summarize_metrics_dir,
    write_run_manifest,
)


def _quick_cfg(rate=0.05):
    return SimulationConfig(
        injection_rate=rate,
        warmup_cycles=30,
        measure_cycles=80,
        drain_cycles=80,
        seed=2,
    )


class TestSweepStatsGuards:
    def test_fresh_stats_rate_is_zero_not_error(self):
        stats = SweepStats(total=4)
        assert stats.sims_per_sec == 0.0

    def test_all_cache_hit_sweep_has_finite_eta(self):
        # Every point from cache: simulated == 0, elapsed ~ 0.  Before
        # the guard this was 0/0 or remaining/0.
        stats = SweepStats(total=3, completed=3, cache_hits=3)
        assert stats.sims_per_sec == 0.0
        assert stats.eta_seconds == 0.0

    def test_eta_nan_while_no_rate_estimate(self):
        stats = SweepStats(total=5, completed=2, cache_hits=2)
        assert math.isnan(stats.eta_seconds)

    def test_eta_positive_with_real_rate(self):
        stats = SweepStats(
            total=4, completed=2, cache_hits=0,
            started_at=time.monotonic() - 10.0,
        )
        assert stats.sims_per_sec > 0
        assert stats.eta_seconds > 0


class TestConsoleReporter:
    def test_reports_progress_and_nan_eta(self):
        stream = io.StringIO()
        rep = ConsoleReporter(stream=stream)
        stats = SweepStats(total=2, completed=1, cache_hits=1)
        rep.sweep_started(stats)
        # cache-hit first point: rate estimate does not exist yet
        rep.point_done(_quick_cfg(), run_simulation(_quick_cfg()), True, stats)
        stats.completed = 2
        rep.sweep_finished(stats)
        out = stream.getvalue()
        assert "sweep: 2 point(s)" in out
        assert "cache" in out
        assert "eta    ?" in out  # NaN path renders a placeholder
        assert "sweep done" in out

    def test_all_cache_hit_finish_line(self):
        stream = io.StringIO()
        rep = ConsoleReporter(stream=stream)
        stats = SweepStats(total=1, completed=1, cache_hits=1)
        rep.sweep_finished(stats)
        assert "0.00 sims/s" in stream.getvalue()


class TestJsonlReporter:
    def test_rows_are_valid_jsonl(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        cfg = _quick_cfg()
        result = run_simulation(cfg)
        rep = JsonlReporter(path)
        stats = SweepStats(total=1)
        rep.sweep_started(stats)
        stats.completed = 1
        rep.point_done(cfg, result, False, stats)
        rep.sweep_finished(stats)
        rows = read_jsonl(path)
        assert [r["kind"] for r in rows] == [
            "sweep_started", "point", "sweep_finished",
        ]
        point = rows[1]
        assert point["config"]["injection_rate"] == cfg.injection_rate
        assert point["result"]["avg_latency"] == result.avg_latency
        assert point["cached"] is False
        assert len(point["key"]) == 32

    def test_flushes_after_every_point(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        cfg = _quick_cfg()
        rep = JsonlReporter(path)
        stats = SweepStats(total=2)
        rep.sweep_started(stats)
        rep.point_done(cfg, run_simulation(cfg), False, stats)
        # Without close(): a killed sweep must still leave parseable rows.
        rows = read_jsonl(path)
        assert rows[-1]["kind"] == "point"
        rep.close()

    def test_accepts_preopened_stream(self):
        stream = io.StringIO()
        rep = JsonlReporter(stream)
        rep.sweep_started(SweepStats(total=0))
        rep.sweep_finished(SweepStats(total=0))
        rows = [json.loads(l) for l in stream.getvalue().splitlines()]
        assert rows[0]["kind"] == "sweep_started"
        # Caller-owned streams are not closed by the reporter.
        assert not stream.closed

    def test_integrates_with_run_sweep(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        configs = [_quick_cfg(0.05), _quick_cfg(0.1)]
        run_sweep(configs, reporter=JsonlReporter(path))
        rows = read_jsonl(path)
        assert sum(r["kind"] == "point" for r in rows) == 2
        assert rows[-1]["kind"] == "sweep_finished"
        assert rows[-1]["completed"] == 2


class TestMultiReporter:
    def test_fans_out_to_all_sinks(self):
        calls = []

        class Probe(JsonlReporter):
            def __init__(self, tag):
                super().__init__(io.StringIO())
                self.tag = tag

            def sweep_started(self, stats):
                calls.append(self.tag)

        multi = MultiReporter(Probe("a"), None, Probe("b"))
        multi.sweep_started(SweepStats(total=0))
        assert calls == ["a", "b"]


class TestManifest:
    def test_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path / "cache.json")
        cfgs = [_quick_cfg(0.05), _quick_cfg(0.1)]
        stats = SweepStats(total=2, completed=2, cache_hits=1)
        manifest = build_run_manifest(
            cfgs, wall_time_s=1.5, stats=stats, cache=cache,
            command=["repro", "sweep"],
        )
        path = write_run_manifest(tmp_path / "manifest.json", manifest)
        loaded = json.loads(path.read_text())
        assert loaded["schema"] == MANIFEST_SCHEMA
        assert loaded["points"] == {"total": 2, "cached": 1, "simulated": 1,
                                    "failed": 0, "retries": 0}
        assert len(loaded["config_keys"]) == 2
        assert loaded["cache"]["path"] == str(cache.path)
        assert loaded["host"]["python"]
        assert loaded["command"] == ["repro", "sweep"]

    def test_manifest_without_stats_or_cache(self):
        manifest = build_run_manifest([_quick_cfg()], wall_time_s=0.0)
        assert manifest["points"]["cached"] is None
        assert manifest["cache"] is None


class TestReportBackend:
    def test_summarize_empty_dir_raises(self, tmp_path):
        with pytest.raises(EmptyTelemetryError, match="no telemetry found"):
            summarize_metrics_dir(tmp_path)

    def test_summarize_missing_dir_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="not a directory"):
            summarize_metrics_dir(tmp_path / "nope")

    def test_summarize_full_dir(self, tmp_path):
        from repro.obs.observer import SimObserver

        cfg = _quick_cfg(0.1)
        obs = SimObserver(metrics_path=tmp_path / "metrics.jsonl",
                          trace_path=tmp_path / "trace.json",
                          sample_every=40)
        rep = JsonlReporter(tmp_path / "sweep.jsonl")
        stats = SweepStats(total=1)
        rep.sweep_started(stats)
        result = run_simulation(cfg, observer=obs)
        stats.completed = 1
        rep.point_done(cfg, result, False, stats)
        rep.sweep_finished(stats)
        obs.finalize()
        write_run_manifest(
            tmp_path / "manifest.json",
            build_run_manifest([cfg], wall_time_s=0.5, stats=stats),
        )

        text = summarize_metrics_dir(tmp_path)
        assert "run manifest" in text
        assert "sweep points" in text
        assert "matching efficiency" in text
        assert "stall sources" in text
        assert "latency breakdown" in text
