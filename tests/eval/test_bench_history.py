"""Tests for the append-only bench-history ledger and compare mode."""

import json

import pytest

from repro.eval.bench_history import (
    HISTORY_SCHEMA,
    append_history,
    build_history_record,
    format_compare,
    git_fingerprint,
    load_base,
    phase_deltas,
    read_history,
)


def _report(speedup=4.0, warm=0.5, with_profile=True):
    point = {
        "label": "mesh-V8-wf-r0.15",
        "config": {"topology": "mesh"},
        "cycles": 3600,
        "fast": {
            "cold_s": warm * 1.2,
            "warm_s": warm,
            "cold_cycles_per_s": 1.0,
            "warm_cycles_per_s": 3600 / warm,
        },
        "reference": {
            "cold_s": warm * speedup * 1.2,
            "warm_s": warm * speedup,
            "cold_cycles_per_s": 1.0,
            "warm_cycles_per_s": 3600 / (warm * speedup),
        },
        "speedup_warm": speedup,
    }
    if with_profile:
        point["profile"] = {
            "fast": {
                "schema": "repro/phase-profile/v1",
                "wall_s": warm,
                "phases": {"sw_alloc": warm * 0.6, "vc_alloc": warm * 0.3},
                "coverage": 0.99,
            }
        }
    return {
        "schema": "repro/kernel-bench/v1",
        "simulator_rev": 2,
        "quick": True,
        "kernels": ["fast", "reference"],
        "points": [point],
    }


class TestRecordAndLedger:
    def test_record_is_fingerprinted_and_compact(self):
        rec = build_history_record(_report(), timestamp=123.0)
        assert rec["schema"] == HISTORY_SCHEMA
        assert rec["created"] == 123.0
        assert rec["simulator_rev"] == 2
        assert set(rec["git"]) == {"sha", "dirty"}
        assert rec["host"]["python"]
        point = rec["points"][0]
        # The full config is dropped; the label identifies the point.
        assert "config" not in point
        assert point["fast"]["warm_s"] == 0.5
        assert point["profile"]["fast"]["phases"]["sw_alloc"] > 0

    def test_two_appends_yield_two_records(self, tmp_path):
        ledger = tmp_path / "hist.jsonl"
        append_history(build_history_record(_report(), timestamp=1.0), ledger)
        append_history(build_history_record(_report(), timestamp=2.0), ledger)
        records = read_history(ledger)
        assert [r["created"] for r in records] == [1.0, 2.0]
        # One self-contained JSON object per line.
        lines = ledger.read_text().splitlines()
        assert len(lines) == 2
        assert all(json.loads(line)["schema"] == HISTORY_SCHEMA
                   for line in lines)

    def test_read_history_tolerates_torn_tail(self, tmp_path):
        ledger = tmp_path / "hist.jsonl"
        append_history(build_history_record(_report(), timestamp=1.0), ledger)
        with ledger.open("a") as fh:
            fh.write('{"schema": "repro/bench-hist')  # killed mid-append
        records = read_history(ledger)
        assert len(records) == 1

    def test_git_fingerprint_in_a_repo(self):
        fp = git_fingerprint()
        assert fp["sha"] is None or len(fp["sha"]) == 40


class TestLoadBase:
    def test_loads_bench_report(self, tmp_path):
        path = tmp_path / "BENCH_kernel.json"
        path.write_text(json.dumps(_report()))
        assert load_base(path)["points"][0]["label"] == "mesh-V8-wf-r0.15"

    def test_loads_latest_ledger_record(self, tmp_path):
        ledger = tmp_path / "hist.jsonl"
        append_history(build_history_record(_report(4.0), timestamp=1.0),
                       ledger)
        append_history(build_history_record(_report(5.0), timestamp=2.0),
                       ledger)
        assert load_base(ledger)["points"][0]["speedup_warm"] == 5.0

    def test_missing_base_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_base(tmp_path / "nope.json")

    def test_empty_ledger_raises(self, tmp_path):
        ledger = tmp_path / "hist.jsonl"
        ledger.write_text("")
        with pytest.raises(ValueError, match="no records"):
            load_base(ledger)

    def test_non_report_json_raises(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text('{"hello": 1}')
        with pytest.raises(ValueError, match="not a bench report"):
            load_base(path)


class TestCompare:
    def test_compare_shows_ratio_and_phase_deltas(self):
        base = build_history_record(_report(4.0, warm=0.5), timestamp=1.0)
        cur = build_history_record(_report(3.0, warm=0.8), timestamp=2.0)
        text = format_compare(cur, base)
        assert "mesh-V8-wf-r0.15" in text
        assert "4.00x -> 3.00x" in text
        # Per-phase attribution: sw_alloc grew 0.30 -> 0.48 seconds.
        assert "fast phases" in text
        assert "sw_alloc +0.180s" in text

    def test_compare_without_profiles_omits_phases(self):
        base = build_history_record(_report(with_profile=False),
                                    timestamp=1.0)
        cur = build_history_record(_report(with_profile=False),
                                   timestamp=2.0)
        text = format_compare(cur, base)
        assert "phases" not in text

    def test_compare_flags_missing_base_point(self):
        base = build_history_record(_report(), timestamp=1.0)
        base["points"][0]["label"] = "other-point"
        cur = build_history_record(_report(), timestamp=2.0)
        assert "(no base point)" in format_compare(cur, base)

    def test_phase_deltas_cover_union_of_phases(self):
        deltas = phase_deltas(
            {"phases": {"sw_alloc": 1.0}},
            {"phases": {"vc_alloc": 0.4}},
        )
        assert deltas == {"sw_alloc": 1.0, "vc_alloc": -0.4}
