"""Robustness tests for the synthesis cost cache and report rendering."""

import json

from repro.eval.cost import CostCache, CostResult
from repro.hw.synthesis import SynthesisReport


class TestCostCacheRobustness:
    def test_corrupted_file_ignored(self, tmp_path):
        path = tmp_path / "cache.json"
        path.write_text("{not json!!")
        cache = CostCache(str(path))
        assert cache.get("anything") is None
        cache.put("k", CostResult("x", "wf", "rr", "sparse", 1.0, 2.0, 3.0, 4))
        assert cache.get("k").delay_ns == 1.0

    def test_missing_directory_created(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "cache.json"
        cache = CostCache(str(path))
        cache.put("k", CostResult("x", "wf", "rr", "dense", 1.0, 2.0, 3.0, 4))
        assert path.exists()
        assert json.loads(path.read_text())["k"]["arch"] == "wf"

    def test_env_var_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_COST_CACHE", str(tmp_path / "env.json"))
        cache = CostCache()
        assert str(cache.path) == str(tmp_path / "env.json")

    def test_failed_results_round_trip(self, tmp_path):
        path = str(tmp_path / "c.json")
        cache = CostCache(path)
        cache.put("f", CostResult("x", "wf", "rr", "dense", None, None, None, None, True))
        reread = CostCache(path).get("f")
        assert reread.failed
        assert reread.delay_ns is None

    def test_curve_property(self):
        r = CostResult("x", "sep_if", "m", "sparse", 1.0, 1.0, 1.0, 1)
        assert r.curve == "sep_if/m"


class TestSynthesisReportRendering:
    def test_as_row(self):
        rep = SynthesisReport("demo", 1.234, 5678.9, 0.42, 321, 12)
        row = rep.as_row()
        assert "demo" in row
        assert "1.234" in row
        assert "321" in row
