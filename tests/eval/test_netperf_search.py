"""Tests for the saturation-throughput search (with a synthetic
simulator so the binary search is exercised quickly and exactly)."""

import math

import pytest

from repro.eval import netperf
from repro.netsim.simulator import SimulationConfig, SimulationResult


class _FakeNetwork:
    """Analytic M/D/1-ish latency curve with a hard wall at `capacity`."""

    def __init__(self, zero_load=20.0, capacity=0.4):
        self.zero_load = zero_load
        self.capacity = capacity
        self.calls = []

    def run(self, cfg: SimulationConfig) -> SimulationResult:
        self.calls.append(cfg.injection_rate)
        rho = cfg.injection_rate / self.capacity
        if rho >= 1.0:
            latency = float("inf")
            saturated = True
        else:
            latency = self.zero_load * (1 + rho / (2 * (1 - rho)))
            saturated = latency > cfg.latency_cap
        return SimulationResult(
            config=cfg,
            avg_latency=latency,
            measured_packets=1000,
            delivered_packets=1000,
            injected_flit_rate=cfg.injection_rate,
            accepted_flit_rate=min(cfg.injection_rate, self.capacity),
            saturated=saturated,
        )


@pytest.fixture
def fake(monkeypatch):
    net = _FakeNetwork()
    monkeypatch.setattr(netperf, "run_simulation", net.run)
    return net


class TestZeroLoad:
    def test_uses_low_rate(self, fake):
        z = netperf.zero_load_latency(SimulationConfig())
        assert z == pytest.approx(fake.zero_load, rel=0.05)
        assert fake.calls == [0.02]


class TestSaturationSearch:
    def test_converges_to_threshold_crossing(self, fake):
        # limit = 3 * zero_load => rho/(2(1-rho)) = 2 => rho = 0.8.
        sat = netperf.saturation_throughput(
            SimulationConfig(), lo=0.05, hi=1.0, iterations=10
        )
        assert sat == pytest.approx(0.8 * fake.capacity, abs=0.01)

    def test_returns_lo_when_already_saturated(self, fake):
        sat = netperf.saturation_throughput(
            SimulationConfig(), lo=0.9, hi=1.0, iterations=3
        )
        assert sat == 0.9

    def test_search_is_logarithmic(self, fake):
        netperf.saturation_throughput(
            SimulationConfig(), lo=0.05, hi=1.0, iterations=6
        )
        # 1 zero-load + 1 lo-check + 6 bisection steps.
        assert len(fake.calls) == 8


class TestLatencySweepEarlyStop:
    def test_stops_after_saturation(self, fake):
        curve = netperf.latency_sweep(
            SimulationConfig(latency_cap=100.0),
            rates=(0.1, 0.2, 0.5, 0.9),
            stop_after_saturation=True,
        )
        # 0.5 saturates the fake (rho > 1 at 0.5? no: capacity 0.4 ->
        # 0.5 is past the wall), so 0.9 is never simulated.
        assert [p.rate for p in curve.points] == [0.1, 0.2, 0.5]
        assert curve.points[-1].saturated

    def test_full_sweep_when_disabled(self, fake):
        curve = netperf.latency_sweep(
            SimulationConfig(latency_cap=100.0),
            rates=(0.1, 0.5, 0.9),
            stop_after_saturation=False,
        )
        assert len(curve.points) == 3
