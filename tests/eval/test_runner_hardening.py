"""Hardened sweep execution: crashes, timeouts, retries, checkpoints.

Worker functions here are module-level (the pool imports them in child
processes) and keyed off the config so one sweep can mix healthy and
pathological points.  The sweep must always come back: survivors
bit-identical to a serial run, failures as structured
:class:`PointFailure` records, and a journal a second invocation can
resume from.
"""

import os
import signal
import time
from pathlib import Path

import pytest

from repro.eval.checkpoint import SweepCheckpoint, sweep_signature
from repro.eval.runner import (
    NullReporter,
    SweepPointError,
    config_key,
    run_sweep,
)
from repro.faults import WatchdogError
from repro.netsim.simulator import SimulationConfig, SimulationResult
from repro.netsim.stats import LatencySummary

#: injection_rate values with special meaning to the workers below.
RAISE_RATE = 0.911
CRASH_RATE = 0.912
HANG_RATE = 0.913
SNAPSHOT_RATE = 0.914
FLAKY_RATE = 0.915


def _payload(cfg_dict):
    cfg = SimulationConfig.from_dict(cfg_dict)
    return SimulationResult(
        config=cfg,
        avg_latency=20.0 + cfg.injection_rate,
        measured_packets=100,
        delivered_packets=100,
        injected_flit_rate=cfg.injection_rate,
        accepted_flit_rate=cfg.injection_rate,
        saturated=False,
        latency_summary=LatencySummary(100, 20.0, 1.0, 18.0, 20.0, 22.0, 23.0, 24.0),
        latency_stderr=0.1,  # NaN would break equality comparisons
    ).to_payload()


def mixed_worker(cfg_dict):
    """Healthy for normal rates; misbehaves on the marker rates."""
    rate = round(cfg_dict["injection_rate"], 3)
    if rate == RAISE_RATE:
        raise ValueError("synthetic point failure")
    if rate == CRASH_RATE:
        os.kill(os.getpid(), signal.SIGKILL)
    if rate == HANG_RATE:
        time.sleep(60)
    if rate == SNAPSHOT_RATE:
        raise WatchdogError("wedged", {"cycle": 7, "stall_cycles": 50})
    if rate == FLAKY_RATE:
        marker = Path(os.environ["REPRO_TEST_FLAKY_MARKER"])
        if not marker.exists():
            marker.touch()
            raise RuntimeError("first attempt fails")
    return _payload(cfg_dict)


def _cfgs(*rates):
    return [SimulationConfig(injection_rate=r) for r in rates]


class _FailureCapture(NullReporter):
    def __init__(self):
        self.failures = []
        self.stats = None

    def point_failed(self, cfg, failure, stats):
        self.failures.append(failure)

    def sweep_finished(self, stats):
        self.stats = stats


class TestFailureModes:
    def test_raising_worker_recorded_and_survivors_intact(self):
        configs = _cfgs(0.1, RAISE_RATE, 0.3)
        cap = _FailureCapture()
        results = run_sweep(
            configs, jobs=2, worker_fn=mixed_worker,
            on_failure="record", reporter=cap,
        )
        assert results[1] is None
        assert [r is not None for r in results] == [True, False, True]
        (failure,) = cap.failures
        assert failure.kind == "exception"
        assert failure.error == "ValueError"
        assert failure.index == 1
        assert failure.attempts == 1
        # Survivors match what the same worker returns serially.
        expected = SimulationResult.from_payload(_payload(configs[0].to_dict()))
        assert results[0] == expected

    def test_raise_mode_aborts_the_sweep(self):
        with pytest.raises(SweepPointError) as exc_info:
            run_sweep(
                _cfgs(0.1, RAISE_RATE), jobs=2, worker_fn=mixed_worker,
                on_failure="raise",
            )
        assert exc_info.value.failure.error == "ValueError"

    def test_killed_worker_is_a_crash_failure(self):
        configs = _cfgs(0.1, CRASH_RATE, 0.3)
        cap = _FailureCapture()
        results = run_sweep(
            configs, jobs=2, worker_fn=mixed_worker,
            on_failure="record", reporter=cap,
        )
        assert [r is not None for r in results] == [True, False, True]
        (failure,) = cap.failures
        assert failure.kind == "crash"
        assert failure.error == "WorkerCrashed"
        assert str(-signal.SIGKILL) in failure.message

    def test_hanging_worker_times_out(self):
        configs = _cfgs(0.1, HANG_RATE)
        cap = _FailureCapture()
        t0 = time.monotonic()
        results = run_sweep(
            configs, jobs=2, worker_fn=mixed_worker,
            timeout=1.0, on_failure="record", reporter=cap,
        )
        assert time.monotonic() - t0 < 30.0  # nowhere near the 60s sleep
        assert results[1] is None
        (failure,) = cap.failures
        assert failure.kind == "timeout"
        assert failure.error == "PointTimeout"

    def test_exception_snapshot_rides_along_as_detail(self):
        cap = _FailureCapture()
        run_sweep(
            _cfgs(SNAPSHOT_RATE), jobs=2, worker_fn=mixed_worker,
            on_failure="record", reporter=cap,
        )
        (failure,) = cap.failures
        assert failure.detail == {"cycle": 7, "stall_cycles": 50}

    def test_invalid_on_failure_rejected(self):
        with pytest.raises(ValueError):
            run_sweep(_cfgs(0.1), on_failure="shrug")


class TestRetries:
    def test_flaky_point_succeeds_after_retry(self, tmp_path, monkeypatch):
        monkeypatch.setenv(
            "REPRO_TEST_FLAKY_MARKER", str(tmp_path / "attempted")
        )
        cap = _FailureCapture()
        results = run_sweep(
            _cfgs(FLAKY_RATE), jobs=2, worker_fn=mixed_worker,
            retries=1, backoff=0.01, on_failure="record", reporter=cap,
        )
        assert results[0] is not None
        assert cap.failures == []
        assert cap.stats.retries == 1

    def test_retries_exhausted_reports_total_attempts(self):
        cap = _FailureCapture()
        run_sweep(
            _cfgs(RAISE_RATE), jobs=2, worker_fn=mixed_worker,
            retries=2, backoff=0.01, on_failure="record", reporter=cap,
        )
        (failure,) = cap.failures
        assert failure.attempts == 3  # first try + 2 retries
        assert cap.stats.retries == 2

    def test_inline_path_retries_too(self):
        calls = []

        def flaky_sim(cfg):
            calls.append(cfg)
            if len(calls) == 1:
                raise RuntimeError("transient")
            return SimulationResult.from_payload(_payload(cfg.to_dict()))

        results = run_sweep(
            _cfgs(0.1), sim_fn=flaky_sim, retries=1, backoff=0.0,
        )
        assert len(calls) == 2
        assert results[0] is not None


class TestCheckpointResume:
    def _checkpoint(self, path, configs):
        keys = [config_key(cfg) for cfg in configs]
        return SweepCheckpoint(path, sweep_signature(keys))

    def test_failed_sweep_keeps_journal_and_resumes(self, tmp_path):
        configs = _cfgs(0.1, RAISE_RATE, 0.3)
        path = tmp_path / "sweep.ckpt.jsonl"

        first = run_sweep(
            configs, jobs=2, worker_fn=mixed_worker,
            on_failure="record", checkpoint=self._checkpoint(path, configs),
        )
        assert first[1] is None
        assert path.exists()  # failures left: journal kept for resume

        # Second invocation: the failing point now succeeds (use a rate
        # remap via a fresh config list? no -- same sweep, healthy
        # worker) and recovered points are served without recomputation.
        calls = []

        def counting_sim(cfg):
            calls.append(cfg)
            return SimulationResult.from_payload(_payload(cfg.to_dict()))

        second = run_sweep(
            configs, sim_fn=counting_sim,
            checkpoint=self._checkpoint(path, configs),
        )
        assert [round(c.injection_rate, 3) for c in calls] == [RAISE_RATE]
        assert second[0] == first[0]
        assert second[2] == first[2]
        assert second[1] is not None
        assert not path.exists()  # clean finish removes the journal

    def test_interrupted_journal_tolerates_truncated_line(self, tmp_path):
        import json

        configs = _cfgs(0.1, 0.2)
        path = tmp_path / "sweep.ckpt.jsonl"
        sig = self._checkpoint(path, configs).signature
        key = config_key(configs[0])
        # A journal killed mid-append: one intact point, one truncated.
        path.write_text(
            json.dumps({"kind": "header", "schema": 1, "signature": sig})
            + "\n"
            + json.dumps(
                {"kind": "point", "key": key,
                 "payload": _payload(configs[0].to_dict())}
            )
            + "\n"
            + '{"kind": "poi'  # cut off by SIGKILL
        )
        recovered = SweepCheckpoint(path, sig)
        assert set(recovered.recovered) == {key}  # good row kept, stub dropped

    def test_signature_mismatch_starts_fresh(self, tmp_path):
        configs = _cfgs(0.1)
        path = tmp_path / "sweep.ckpt.jsonl"
        ckpt = self._checkpoint(path, configs)
        ckpt.record(config_key(configs[0]), _payload(configs[0].to_dict()))
        ckpt.close()

        other = SweepCheckpoint(path, "deadbeef" * 4)
        assert other.recovered == {}

    def test_recovered_points_backfill_the_cache(self, tmp_path):
        from repro.eval.runner import ResultCache

        configs = _cfgs(0.1)
        path = tmp_path / "sweep.ckpt.jsonl"
        cache = ResultCache(tmp_path / "cache.json")
        keys = [config_key(cfg, cache.salt) for cfg in configs]
        ckpt = SweepCheckpoint(path, sweep_signature(keys))
        ckpt.record(keys[0], _payload(configs[0].to_dict()))
        ckpt.close()

        ckpt = SweepCheckpoint(path, sweep_signature(keys))

        def never_called(cfg):  # pragma: no cover - guard
            raise AssertionError("point should come from the checkpoint")

        results = run_sweep(
            configs, cache=cache, sim_fn=never_called, checkpoint=ckpt,
        )
        assert results[0] is not None
        assert cache.get(configs[0]) == results[0]
