"""Tests for the cost sweep and network-performance harnesses."""

import pytest

from repro.eval.cost import (
    CostCache,
    CostResult,
    sparse_savings,
    speculation_delay_savings,
    switch_allocator_costs,
    vc_allocator_costs,
)
from repro.eval.design_points import (
    ALL_POINTS,
    FBFLY_POINTS,
    MESH_POINTS,
    DesignPoint,
)
from repro.eval.netperf import LatencyCurve, SweepPoint, latency_sweep
from repro.eval.tables import format_cost_results, format_curves, format_table
from repro.netsim.simulator import SimulationConfig


class TestDesignPoints:
    def test_six_points(self):
        assert len(ALL_POINTS) == 6
        assert [p.num_vcs for p in MESH_POINTS] == [2, 4, 8]
        assert [p.num_vcs for p in FBFLY_POINTS] == [4, 8, 16]

    def test_labels(self):
        assert MESH_POINTS[0].label == "mesh 2x1x1 VCs (V=2)"
        assert FBFLY_POINTS[2].label == "fbfly 2x2x4 VCs (V=16)"

    def test_partitions(self):
        assert MESH_POINTS[1].partition.num_resource_classes == 1
        assert FBFLY_POINTS[1].partition.num_resource_classes == 2


class TestCostSweep:
    def test_vc_costs_smallest_point(self, tmp_path):
        cache = CostCache(str(tmp_path / "cache.json"))
        results = vc_allocator_costs(
            MESH_POINTS[0], variants=[("sep_if", "rr"), ("wf", "rr")], cache=cache
        )
        assert len(results) == 4  # 2 variants x dense/sparse
        ok = [r for r in results if not r.failed]
        assert len(ok) == 4
        for r in ok:
            assert r.delay_ns > 0 and r.area_um2 > 0 and r.power_mw > 0

    def test_cache_round_trip(self, tmp_path):
        path = str(tmp_path / "cache.json")
        cache = CostCache(path)
        r1 = vc_allocator_costs(
            MESH_POINTS[0], variants=[("sep_if", "rr")], cache=cache
        )
        cache2 = CostCache(path)
        r2 = vc_allocator_costs(
            MESH_POINTS[0], variants=[("sep_if", "rr")], cache=cache2
        )
        assert [x.delay_ns for x in r1] == [x.delay_ns for x in r2]

    def test_failures_recorded_for_infeasible_points(self, tmp_path):
        cache = CostCache(str(tmp_path / "cache.json"))
        results = vc_allocator_costs(
            FBFLY_POINTS[2], variants=[("sep_if", "m")], cache=cache
        )
        assert all(r.failed for r in results)  # dense AND sparse too big

    def test_switch_costs_have_three_scheme_points(self, tmp_path):
        cache = CostCache(str(tmp_path / "cache.json"))
        results = switch_allocator_costs(
            MESH_POINTS[0], variants=[("sep_if", "rr")], cache=cache
        )
        assert [r.variant for r in results] == [
            "nonspec",
            "pessimistic",
            "conventional",
        ]

    def test_sparse_savings_computation(self):
        results = [
            CostResult("x", "sep_if", "rr", "dense", 2.0, 100.0, 10.0, 50),
            CostResult("x", "sep_if", "rr", "sparse", 1.0, 20.0, 4.0, 10),
        ]
        s = sparse_savings(results)["sep_if/rr"]
        assert s["delay"] == pytest.approx(0.5)
        assert s["area"] == pytest.approx(0.8)
        assert s["power"] == pytest.approx(0.6)

    def test_sparse_savings_skips_failed(self):
        results = [
            CostResult("x", "wf", "rr", "dense", None, None, None, None, True),
            CostResult("x", "wf", "rr", "sparse", 1.0, 20.0, 4.0, 10),
        ]
        assert sparse_savings(results) == {}

    def test_speculation_savings_computation(self):
        results = [
            CostResult("x", "wf", "rr", "nonspec", 1.0, 1, 1, 1),
            CostResult("x", "wf", "rr", "pessimistic", 1.1, 1, 1, 1),
            CostResult("x", "wf", "rr", "conventional", 1.43, 1, 1, 1),
        ]
        s = speculation_delay_savings(results)
        assert s["wf/rr"] == pytest.approx(1 - 1.1 / 1.43)


class TestLatencyCurve:
    def _curve(self, pts):
        return LatencyCurve("t", [SweepPoint(*p) for p in pts])

    def test_zero_load(self):
        c = self._curve([(0.05, 10.0, 0.05, False), (0.2, 12.0, 0.2, False)])
        assert c.zero_load == 10.0

    def test_saturation_interpolated(self):
        c = self._curve(
            [(0.1, 10.0, 0.1, False), (0.2, 20.0, 0.2, False), (0.3, 60.0, 0.25, False)]
        )
        # limit = 30; crossing between 0.2 (20) and 0.3 (60): 0.2 + 0.25*0.1
        assert c.saturation_rate() == pytest.approx(0.225)

    def test_saturation_none_reached(self):
        c = self._curve([(0.1, 10.0, 0.1, False), (0.2, 11.0, 0.2, False)])
        assert c.saturation_rate() == 0.2

    def test_saturation_with_inf_point(self):
        c = self._curve([(0.1, 10.0, 0.1, False), (0.2, float("inf"), 0.1, True)])
        assert c.saturation_rate() == 0.1

    def test_first_point_saturated(self):
        c = self._curve([(0.5, float("inf"), 0.1, True)])
        assert c.saturation_rate() == 0.5


class TestLatencySweepIntegration:
    def test_small_mesh_sweep(self):
        base = SimulationConfig(
            topology="mesh",
            vcs_per_class=1,
            warmup_cycles=200,
            measure_cycles=400,
            drain_cycles=400,
        )
        curve = latency_sweep(base, rates=(0.05, 0.9), label="sep_if")
        assert curve.label == "sep_if"
        assert len(curve.points) >= 1
        assert curve.points[0].latency > 0
        # 0.9 flits/cycle is far past mesh saturation.
        if len(curve.points) == 2:
            assert curve.points[1].saturated


class TestTables:
    def test_format_table(self):
        out = format_table(["a", "bb"], [[1, 2.5], [None, "x"]], title="T")
        assert "T" in out
        assert "2.500" in out
        assert "-" in out

    def test_format_curves(self):
        out = format_curves("rate", [0.1, 0.2], {"wf": [1.0, 0.9]})
        assert "wf" in out and "0.900" in out

    def test_format_cost_results(self):
        rows = [
            CostResult("x", "wf", "rr", "sparse", 1.0, 10.0, 0.5, 42),
            CostResult("x", "wf", "rr", "dense", None, None, None, None, True),
        ]
        out = format_cost_results(rows, title="fig")
        assert "FAILED" in out
        assert "42" in out


class TestFigureRegistry:
    def test_every_experiment_has_an_existing_benchmark(self):
        from pathlib import Path

        from repro.eval.figures import list_experiments

        bench_dir = Path(__file__).resolve().parents[2] / "benchmarks"
        for exp in list_experiments():
            assert (bench_dir / exp.benchmark).exists(), exp.figure

    def test_modules_importable(self):
        import importlib

        from repro.eval.figures import list_experiments

        for exp in list_experiments():
            for mod in exp.modules:
                importlib.import_module(mod)

    def test_index_renders(self):
        from repro.eval.figures import format_experiment_index

        text = format_experiment_index()
        assert "fig12" in text and "benchmarks/" in text
