"""Per-rule source-linter tests: minimal positive and negative snippets.

Scope is derived from the (synthetic) path handed to
``lint_source_file``, so each snippet can be linted as if it lived in
any package without touching the real tree.
"""

import textwrap

from repro.analysis.srclint import (
    ALL_SRC_RULES,
    ASYNC_PACKAGES,
    GUARDED_PACKAGES,
    HOT_LOOP_PACKAGES,
    SIMULATION_PACKAGES,
    lint_source_file,
    lint_source_tree,
)

NETSIM = "repro/netsim/mod.py"
CORE = "repro/core/mod.py"
HW = "repro/hw/mod.py"
EVAL = "repro/eval/mod.py"
SERVE = "repro/serve/mod.py"


def rules(code, path=NETSIM):
    return {f.rule for f in lint_source_file(path, textwrap.dedent(code))}


class TestScopes:
    def test_package_constants_are_consistent(self):
        assert set(HOT_LOOP_PACKAGES) <= set(SIMULATION_PACKAGES)
        assert set(GUARDED_PACKAGES) <= set(SIMULATION_PACKAGES)
        assert len(ALL_SRC_RULES) == 5
        assert "serve" in ASYNC_PACKAGES

    def test_non_simulation_code_is_exempt(self):
        code = "import random\nx = random.random()\n"
        assert rules(code, EVAL) == set()
        assert rules(code, "tools/gen.py") == set()
        assert "SRC-UNSEEDED-RANDOM" in rules(code, CORE)


class TestUnseededRandom:
    def test_module_level_random_flagged(self):
        assert "SRC-UNSEEDED-RANDOM" in rules("x = random.random()\n", CORE)
        assert "SRC-UNSEEDED-RANDOM" in rules("random.shuffle(items)\n", HW)

    def test_seeded_random_instance_allowed(self):
        assert rules("rng = random.Random(42)\nx = rng.random()\n", CORE) == set()

    def test_numpy_global_rng_flagged(self):
        assert "SRC-UNSEEDED-RANDOM" in rules("x = np.random.rand(4)\n", CORE)
        assert "SRC-UNSEEDED-RANDOM" in rules("numpy.random.shuffle(a)\n", CORE)

    def test_seeded_numpy_constructor_allowed(self):
        assert rules("rng = np.random.default_rng(7)\n", CORE) == set()
        assert rules("rng = np.random.default_rng(seed=s)\n", CORE) == set()
        assert rules("rng = numpy.random.PCG64(9)\n", CORE) == set()

    def test_argless_numpy_constructor_flagged(self):
        findings = lint_source_file(CORE, "rng = np.random.default_rng()\n")
        assert [f.rule for f in findings] == ["SRC-UNSEEDED-RANDOM"]
        assert "seed" in findings[0].message


class TestWallClock:
    def test_time_reads_flagged(self):
        for call in ("time.time()", "time.perf_counter()", "time.monotonic_ns()"):
            assert "SRC-WALL-CLOCK" in rules(f"t = {call}\n", CORE), call

    def test_datetime_now_flagged(self):
        assert "SRC-WALL-CLOCK" in rules("t = datetime.datetime.now()\n", CORE)

    def test_sleep_is_not_a_clock_read(self):
        assert rules("time.sleep(1)\n", CORE) == set()


class TestSetIteration:
    def test_for_over_set_call_flagged(self):
        assert "SRC-SET-ITERATION" in rules(
            "for x in set(items):\n    use(x)\n", CORE
        )

    def test_for_over_set_literal_flagged(self):
        assert "SRC-SET-ITERATION" in rules(
            "for x in {a, b}:\n    use(x)\n", NETSIM
        )

    def test_comprehension_over_frozenset_flagged(self):
        assert "SRC-SET-ITERATION" in rules(
            "ys = [f(x) for x in frozenset(items)]\n", CORE
        )

    def test_sorted_wrapper_allowed(self):
        assert rules("for x in sorted(set(items)):\n    use(x)\n", CORE) == set()

    def test_only_hot_loop_packages_checked(self):
        assert rules("for x in set(items):\n    use(x)\n", HW) == set()


class TestObserverGuard:
    def test_unguarded_call_flagged(self):
        code = """
        def step(self):
            self.observer.cycle_end(self, 0)
        """
        findings = lint_source_file(NETSIM, textwrap.dedent(code))
        assert [f.rule for f in findings] == ["SRC-OBSERVER-GUARD"]
        assert "self.observer" in findings[0].message

    def test_is_not_none_guard_accepted(self):
        code = """
        def step(self):
            if self.observer is not None:
                self.observer.cycle_end(self, 0)
        """
        assert rules(code) == set()

    def test_truthiness_guard_accepted(self):
        code = """
        def step(self):
            if self.fault_state:
                self.fault_state.credit_event(0, 0, 0, 0)
        """
        assert rules(code) == set()

    def test_guard_with_conjunction_accepted(self):
        code = """
        def step(self, busy):
            if self.observer is not None and busy:
                self.observer.cycle_end(self, 0)
        """
        assert rules(code) == set()

    def test_early_return_narrowing(self):
        code = """
        def step(self):
            if self.observer is None:
                return
            self.observer.cycle_end(self, 0)
        """
        assert rules(code) == set()

    def test_assert_narrowing(self):
        code = """
        def step(self):
            assert self.fault_state is not None
            self.fault_state.credit_event(0, 0, 0, 0)
        """
        assert rules(code) == set()

    def test_alias_guard_accepted(self):
        code = """
        def step(self):
            fs = self.fault_state
            if fs is not None:
                fs.credit_event(0, 0, 0, 0)
        """
        assert rules(code) == set()

    def test_unguarded_alias_flagged(self):
        code = """
        def step(self):
            fs = self.fault_state
            fs.credit_event(0, 0, 0, 0)
        """
        assert rules(code) == {"SRC-OBSERVER-GUARD"}

    def test_guard_does_not_cover_else_branch(self):
        code = """
        def step(self):
            if self.observer is not None:
                pass
            else:
                self.observer.cycle_end(self, 0)
        """
        assert rules(code) == {"SRC-OBSERVER-GUARD"}

    def test_guard_does_not_leak_past_the_if(self):
        code = """
        def step(self):
            if self.observer is not None:
                pass
            self.observer.cycle_end(self, 0)
        """
        assert rules(code) == {"SRC-OBSERVER-GUARD"}

    def test_guard_does_not_leak_into_nested_function(self):
        code = """
        def outer(self):
            if self.observer is not None:
                def inner():
                    self.observer.cycle_end(self, 0)
        """
        assert rules(code) == {"SRC-OBSERVER-GUARD"}

    def test_only_guarded_packages_checked(self):
        code = """
        def step(self):
            self.observer.cycle_end(self, 0)
        """
        assert rules(code, CORE) == set()

    def test_unrelated_attributes_exempt(self):
        code = """
        def step(self):
            self.router.receive_credit(0, 0)
        """
        assert rules(code) == set()


class TestGuardedAttributeAccess:
    """The rule covers *any* attribute access, not just calls: the
    fault-aware routing branches (counter bumps, table reads) must sit
    behind the same ``fault_state is None`` fast-path idiom."""

    def test_unguarded_counter_bump_flagged(self):
        code = """
        def route(self):
            self.fault_state.counters["escape_reroutes"] += 1
        """
        assert rules(code) == {"SRC-OBSERVER-GUARD"}

    def test_unguarded_attribute_read_flagged(self):
        code = """
        def route(self):
            return self.fault_state.has_permanent_link_faults
        """
        assert rules(code) == {"SRC-OBSERVER-GUARD"}

    def test_bare_parameter_name_flagged(self):
        # A parameter named `fault_state` carries the same contract.
        code = """
        def bind(self, fault_state):
            self.perm = fault_state.permanent_link_faults()
        """
        assert rules(code) == {"SRC-OBSERVER-GUARD"}

    def test_early_return_idiom_accepted(self):
        code = """
        def bind(self, fault_state):
            if fault_state is None:
                self.perm = frozenset()
                return
            self.perm = fault_state.permanent_link_faults()
        """
        assert rules(code) == set()

    def test_guarded_counter_bump_via_alias_accepted(self):
        code = """
        def route(self):
            fs = self.fault_state
            if fs is None:
                return 0
            fs.counters["escape_reroutes"] += 1
            return 1
        """
        assert rules(code) == set()

    def test_boolop_progressive_narrowing_accepted(self):
        # `x is not None and x.attr`: the second conjunct only runs
        # when the first held (the network.py credit-arming idiom).
        code = """
        def arm(self, fault_state):
            self.armed = fault_state is not None and fault_state.has_credit_faults
        """
        assert rules(code) == set()

    def test_boolop_without_narrowing_flagged(self):
        code = """
        def arm(self, fault_state):
            self.armed = bool(fault_state.has_credit_faults)
        """
        assert rules(code) == {"SRC-OBSERVER-GUARD"}

    def test_or_raise_narrowing_accepted(self):
        # `if x is None or not x.y: raise` proves x non-None below.
        code = """
        def check(self, fault_state):
            if fault_state is None or not fault_state.has_permanent_link_faults:
                raise ValueError("no permanent faults")
            fault_state.counters["watchdog_degraded_trips"] += 1
        """
        assert rules(code) == set()

    def test_assignment_to_the_attribute_is_exempt(self):
        # Storing/clearing the attribute is how the guard is set up.
        code = """
        def attach(self, fault_state):
            self.fault_state = fault_state
        """
        assert rules(code) == set()


class TestAsyncBlocking:
    """SRC-ASYNC-BLOCKING: no synchronous waits inside ``async def``
    bodies in the event-loop packages -- one blocking call stalls every
    worker sharing the loop."""

    def test_blocking_sleep_in_async_def_flagged(self):
        code = """
        async def handler(self):
            time.sleep(0.1)
        """
        findings = lint_source_file(SERVE, textwrap.dedent(code))
        assert [f.rule for f in findings] == ["SRC-ASYNC-BLOCKING"]
        assert "asyncio.sleep" in findings[0].message

    def test_blocking_io_calls_flagged(self):
        for call in (
            "subprocess.run(cmd)",
            "subprocess.check_output(cmd)",
            "socket.create_connection(addr)",
            "open('results.json')",
        ):
            code = f"async def handler(self):\n    x = {call}\n"
            assert rules(code, SERVE) == {"SRC-ASYNC-BLOCKING"}, call

    def test_sync_def_in_async_package_exempt(self):
        code = """
        def helper(self):
            time.sleep(0.1)
        """
        assert rules(code, SERVE) == set()

    def test_nested_sync_helper_inside_async_def_exempt(self):
        # Only the innermost enclosing def matters: a sync closure is
        # typically handed to run_in_executor and may block freely.
        code = """
        async def handler(self):
            def work():
                time.sleep(0.1)
            await loop.run_in_executor(None, work)
        """
        assert rules(code, SERVE) == set()

    def test_async_def_nested_in_sync_def_flagged(self):
        code = """
        def factory():
            async def handler():
                time.sleep(0.1)
            return handler
        """
        assert rules(code, SERVE) == {"SRC-ASYNC-BLOCKING"}

    def test_non_async_packages_exempt(self):
        code = "async def handler(self):\n    time.sleep(0.1)\n"
        assert rules(code, CORE) == set()
        assert rules(code, NETSIM) == set()

    def test_pragma_suppression(self):
        code = (
            "async def handler(self):\n"
            "    time.sleep(0.1)  # lint: ignore[SRC-ASYNC-BLOCKING]\n"
        )
        assert rules(code, SERVE) == set()

    def test_async_primitives_not_flagged(self):
        code = """
        async def handler(self):
            await asyncio.sleep(0.1)
            async with session.get(url) as resp:
                data = await resp.json()
        """
        assert rules(code, SERVE) == set()


class TestPragmasAndSyntax:
    def test_inline_ignore_suppresses_one_line(self):
        code = (
            "def step(self):\n"
            "    self.observer.a()  # lint: ignore[SRC-OBSERVER-GUARD]\n"
            "    self.observer.b()\n"
        )
        findings = lint_source_file(NETSIM, code)
        assert len(findings) == 1 and "line 3" in findings[0].location

    def test_ignore_accepts_rule_lists(self):
        code = "t = time.time()  # lint: ignore[SRC-WALL-CLOCK, SRC-SYNTAX]\n"
        assert rules(code, CORE) == set()

    def test_unparsable_file_yields_src_syntax(self):
        findings = lint_source_file(CORE, "def broken(:\n")
        assert [f.rule for f in findings] == ["SRC-SYNTAX"]
        assert findings[0].severity == "error"


class TestTreeLinting:
    def test_tree_scope_is_relative_to_package_parent(self, tmp_path):
        pkg = tmp_path / "repro" / "netsim"
        pkg.mkdir(parents=True)
        (pkg / "bad.py").write_text(
            "def step(self):\n    self.observer.cycle_end(self, 0)\n"
        )
        (pkg / "good.py").write_text("x = 1\n")
        findings = lint_source_tree(tmp_path / "repro")
        assert [f.scope for f in findings] == ["repro/netsim/bad.py"]

    def test_real_tree_is_clean(self, repo_src):
        assert lint_source_tree(repo_src / "repro") == []


class TestGeneratedKernels:
    """The compiled-kernel templates carry the netsim determinism
    contract even though they never exist on disk (satellite of the
    compiled-kernel PR): the linter renders and scans them."""

    def test_rendered_templates_are_clean(self):
        from repro.analysis.srclint import lint_generated_kernels

        assert lint_generated_kernels() == []

    def test_generated_scope_enforces_simulation_rules(self):
        # A doctored template must be caught: the synthetic path places
        # generated modules in the netsim scope, where the wall-clock
        # and unseeded-randomness rules apply.
        from repro.analysis.srclint import GENERATED_KERNEL_SCOPE
        from repro.netsim.codegen import source_for, template_specs

        spec = template_specs()[0]
        doctored = (
            source_for(spec)
            + "\n_t0 = time.perf_counter()\n_jitter = random.random()\n"
        )
        found = rules(doctored, f"{GENERATED_KERNEL_SCOPE}/{spec.slug()}.py")
        assert "SRC-WALL-CLOCK" in found
        assert "SRC-UNSEEDED-RANDOM" in found

    def test_bad_template_surfaces_with_its_slug(self, monkeypatch):
        from repro.analysis import srclint
        from repro.netsim import codegen

        monkeypatch.setattr(
            codegen,
            "iter_template_sources",
            lambda: iter([("doctored-slug", "t = time.time()\n")]),
        )
        findings = srclint.lint_generated_kernels()
        assert [f.rule for f in findings] == ["SRC-WALL-CLOCK"]
        assert "doctored-slug" in findings[0].scope


class TestProfilerGuard:
    """The ``profiler`` hook follows the same None-fast-path contract as
    ``observer``/``fault_state`` (performance-observatory PR): every
    hook call in the simulation packages must sit under an
    ``is not None`` guard."""

    def test_unguarded_profiler_call_flagged(self):
        code = """
        def step(self):
            t0 = self.profiler.begin()
        """
        assert rules(code) == {"SRC-OBSERVER-GUARD"}

    def test_guarded_profiler_call_accepted(self):
        code = """
        def step(self):
            if self.profiler is not None:
                t0 = self.profiler.begin()
        """
        assert rules(code) == set()

    def test_profiler_alias_guard_accepted(self):
        code = """
        def step(self):
            prof = self.profiler
            if prof is not None:
                t0 = prof.begin()
        """
        assert rules(code) == set()

    def test_unguarded_profiler_alias_flagged(self):
        code = """
        def step(self):
            prof = self.profiler
            t0 = prof.begin()
        """
        assert rules(code) == {"SRC-OBSERVER-GUARD"}

    def test_conditional_expression_guard_accepted(self):
        # The hook idiom used around loops in the router kernels.
        code = """
        def step(self, prof):
            t0 = prof.begin() if prof is not None else 0.0
        """
        assert rules(code) == set()

    def test_profiled_templates_render_and_lint_clean(self):
        # iter_template_sources() yields both variants; the profiled one
        # must carry phase hooks yet stay lint-clean (its entry aliases
        # the profiler and early-returns on None).
        from repro.netsim.codegen import iter_template_sources

        slugs = dict(iter_template_sources())
        profiled = {s: src for s, src in slugs.items()
                    if s.endswith("-prof")}
        assert profiled, "expected profiled template variants"
        for slug, source in profiled.items():
            assert "_prof.phase(" in source
            assert rules(source, f"repro/netsim/generated/{slug}.py") == set()
        # The plain variants must not pay for hooks they don't use.
        for slug, source in slugs.items():
            if not slug.endswith("-prof"):
                assert "_prof.phase(" not in source
