from pathlib import Path

import pytest


@pytest.fixture
def repo_src():
    """The repository's real ``src/`` directory."""
    return Path(__file__).resolve().parents[2] / "src"
