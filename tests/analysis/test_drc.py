"""Per-rule netlist DRC tests: minimal synthetic defects and clean cases.

The public ``Netlist`` API refuses to construct some violations
(forward references, double register connection), so several defects
are seeded by mutating the columnar arrays directly -- exactly the
corruption the DRC exists to catch.
"""

import pytest

from repro.analysis.drc import ALL_DRC_RULES, DrcConfig, NetlistDRC, run_drc
from repro.hw.arbiter_gates import build_arbiter
from repro.hw.cells import CELL_INDEX
from repro.hw.netlist import Netlist


def rules_of(findings):
    return {f.rule for f in findings}


def _clean_pair():
    """A tiny clean netlist: AND of two inputs into a register."""
    nl = Netlist("clean")
    a = nl.input("a")
    b = nl.input("b")
    q = nl.reg()
    nl.connect_reg(q, nl.gate("AND2", a, b))
    nl.mark_output(q, "q")
    return nl


class TestCleanNetlists:
    def test_minimal_clean_netlist(self):
        assert run_drc(_clean_pair()) == []

    @pytest.mark.parametrize("kind", ["fixed", "rr", "m"])
    @pytest.mark.parametrize("n", [2, 4, 8])
    def test_arbiters_are_drc_clean(self, kind, n):
        nl = Netlist(f"{kind}{n}")
        reqs = nl.inputs(n, "req")
        grants, fin = build_arbiter(nl, kind, reqs)
        fin(None)
        for i, g in enumerate(grants):
            nl.mark_output(g, f"gnt{i}")
        assert run_drc(nl) == []


class TestCombLoop:
    def test_cycle_through_gates_detected(self):
        nl = Netlist("loop")
        a = nl.input("a")
        g1 = nl.gate("AND2", a, a)
        g2 = nl.gate("INV", g1)
        nl.mark_output(g2, "y")
        # Seed the loop: g1 now also reads g2 (impossible via the API).
        nl.fanins[g1] = (g2, a)
        assert "DRC-COMB-LOOP" in rules_of(run_drc(nl))

    def test_register_feedback_is_not_a_loop(self):
        nl = Netlist("seq")
        q = nl.reg()
        nl.connect_reg(q, nl.gate("INV", q))
        nl.mark_output(q, "q")
        assert "DRC-COMB-LOOP" not in rules_of(run_drc(nl))


class TestUndriven:
    def test_dangling_fanin_reference(self):
        nl = _clean_pair()
        gate = next(
            i for i, k in enumerate(nl.kinds)
            if k >= 0 and len(nl.fanins[i]) == 2
        )
        nl.fanins[gate] = (len(nl.kinds) + 7, nl.fanins[gate][1])
        assert "DRC-UNDRIVEN" in rules_of(run_drc(nl))

    def test_dangling_register_d(self):
        nl = _clean_pair()
        q = next(iter(nl.reg_d))
        nl.reg_d[q] = len(nl.kinds) + 1
        assert "DRC-UNDRIVEN" in rules_of(run_drc(nl))

    def test_dangling_output(self):
        nl = _clean_pair()
        nl.outputs.append(len(nl.kinds) + 3)
        assert "DRC-UNDRIVEN" in rules_of(run_drc(nl))


class TestRegisterRules:
    def test_unconnected_register(self):
        nl = _clean_pair()
        nl.reg()  # never connected
        assert "DRC-UNCONNECTED-REG" in rules_of(run_drc(nl))

    def test_multiply_driven_net(self):
        nl = _clean_pair()
        a = 0  # the input net
        g = next(i for i, k in enumerate(nl.kinds) if k >= 0
                 and k != CELL_INDEX["DFF"])
        # Attach a register update to a combinational gate's output:
        # in emitted Verilog that net would have two drivers.
        nl.reg_d[g] = a
        assert "DRC-MULTI-DRIVEN" in rules_of(run_drc(nl))


class TestLiveness:
    def test_floating_gate(self):
        nl = _clean_pair()
        nl.gate("INV", 0)  # drives nothing, not an output
        findings = run_drc(nl)
        assert rules_of(findings) == {"DRC-FLOATING"}
        assert "INV" in findings[0].location

    def test_unused_input(self):
        nl = _clean_pair()
        nl.input("spare")
        assert "DRC-UNUSED-INPUT" in rules_of(run_drc(nl))

    def test_dead_chain_behind_floating_gate(self):
        nl = _clean_pair()
        inner = nl.gate("INV", 0)
        nl.gate("INV", inner)  # floating; `inner` has a consumer but is dead
        rules = rules_of(run_drc(nl))
        assert {"DRC-FLOATING", "DRC-DEAD"} <= rules

    def test_register_observability_flows_through_d(self):
        # Logic feeding only a register D is observable through the
        # register output.
        nl = Netlist("through")
        a = nl.input("a")
        q = nl.reg()
        nl.connect_reg(q, nl.gate("INV", a))
        nl.mark_output(q, "q")
        assert run_drc(nl) == []

    def test_outputless_netlist_uses_registers_as_roots(self):
        nl = Netlist("no_out")
        a = nl.input("a")
        q = nl.reg()
        nl.connect_reg(q, nl.gate("INV", a))
        assert "DRC-DEAD" not in rules_of(run_drc(nl))


class TestConstFold:
    def test_constant_output(self):
        nl = Netlist("k")
        a = nl.input("a")
        nl.mark_output(nl.gate("AND2", a, nl.const(0)), "y")
        findings = [f for f in run_drc(nl) if f.rule == "DRC-CONST-FOLD"]
        assert findings and "always 0" in findings[0].message

    def test_constant_input_identity(self):
        nl = Netlist("k")
        a = nl.input("a")
        nl.mark_output(nl.gate("OR2", a, nl.const(0)), "y")
        assert "DRC-CONST-FOLD" in rules_of(run_drc(nl))

    def test_constant_mux_select(self):
        nl = Netlist("k")
        a, b = nl.inputs(2)
        nl.mark_output(nl.gate("MUX2", a, b, nl.const(1)), "y")
        assert "DRC-CONST-FOLD" in rules_of(run_drc(nl))

    def test_duplicated_fanin(self):
        nl = Netlist("k")
        a = nl.input("a")
        nl.mark_output(nl.gate("OR2", a, a), "y")
        findings = [f for f in run_drc(nl) if f.rule == "DRC-CONST-FOLD"]
        assert findings and "duplicated" in findings[0].message

    def test_propagation_through_levels(self):
        # const0 -> INV -> AND2: the AND2's const input arrives indirectly.
        nl = Netlist("k")
        a = nl.input("a")
        one = nl.gate("INV", nl.const(0))
        nl.mark_output(nl.gate("AND2", a, one), "y")
        found = [f for f in run_drc(nl) if f.rule == "DRC-CONST-FOLD"]
        assert len(found) == 2  # the INV itself and the downstream AND2

    def test_nonconstant_logic_unflagged(self):
        assert "DRC-CONST-FOLD" not in rules_of(run_drc(_clean_pair()))


class TestFanout:
    def test_unbuffered_broadcast_flagged(self):
        nl = Netlist("fanout")
        a = nl.input("a")
        hub = nl.gate("INV", a)
        for i in range(120):
            nl.mark_output(nl.gate("BUF", hub), f"y{i}")
        findings = [f for f in run_drc(nl) if f.rule == "DRC-FANOUT"]
        assert findings and "insert a fanout tree" in findings[0].message

    def test_inputs_are_exempt(self):
        # The testbench drives primary inputs; no fanout rule for them.
        nl = Netlist("fanin")
        a = nl.input("a")
        for i in range(120):
            nl.mark_output(nl.gate("BUF", a), f"y{i}")
        assert "DRC-FANOUT" not in rules_of(run_drc(nl))


class TestConfig:
    def test_disabled_rule_is_silent(self):
        nl = _clean_pair()
        nl.gate("INV", 0)
        cfg = DrcConfig(disabled_rules={"DRC-FLOATING"})
        assert run_drc(nl, cfg) == []

    def test_per_rule_cap_collapses_into_summary(self):
        nl = _clean_pair()
        for _ in range(10):
            nl.gate("INV", 0)
        cfg = DrcConfig(max_findings_per_rule=3)
        findings = [f for f in run_drc(nl, cfg) if f.rule == "DRC-FLOATING"]
        assert len(findings) == 4  # 3 itemized + 1 summary
        summary = [f for f in findings if f.location == "(summary)"]
        assert len(summary) == 1 and "7 further" in summary[0].message

    def test_all_rules_catalogued(self):
        checker = NetlistDRC()
        assert set(ALL_DRC_RULES) == {
            "DRC-COMB-LOOP", "DRC-UNDRIVEN", "DRC-MULTI-DRIVEN",
            "DRC-UNCONNECTED-REG", "DRC-FLOATING", "DRC-UNUSED-INPUT",
            "DRC-DEAD", "DRC-CONST-FOLD", "DRC-FANOUT",
        }
        assert checker.config.max_findings_per_rule > 0
