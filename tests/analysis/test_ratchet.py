"""Baseline-ratchet tests against a scratch git repository."""

import json
import subprocess

import pytest

from repro.analysis.ratchet import check_baseline_ratchet


def git(repo, *args):
    subprocess.run(
        ["git", "-C", str(repo), *args],
        check=True,
        capture_output=True,
        text=True,
    )


def entry(rule, scope, location):
    return {
        "rule": rule,
        "scope": scope,
        "location": location,
        "reason": "test",
    }


def write_baseline(repo, entries, name="lint-baseline.json"):
    (repo / name).write_text(
        json.dumps({"version": 1, "suppressions": entries}, indent=2) + "\n"
    )


@pytest.fixture
def repo(tmp_path):
    git(tmp_path, "init", "-q", "-b", "main")
    git(tmp_path, "config", "user.email", "test@example.com")
    git(tmp_path, "config", "user.name", "Test")
    write_baseline(tmp_path, [entry("DRC-X", "a", "loc1")])
    git(tmp_path, "add", "-A")
    git(tmp_path, "commit", "-q", "-m", "base")
    return tmp_path


class TestRatchet:
    def test_unchanged_baseline_passes(self, repo):
        assert check_baseline_ratchet(repo) == []

    def test_growth_fails_and_names_new_entries(self, repo):
        write_baseline(
            repo,
            [entry("DRC-X", "a", "loc1"), entry("DRC-Y", "b", "loc2")],
        )
        findings = check_baseline_ratchet(repo)
        assert [f.rule for f in findings] == ["LINT-RATCHET"]
        assert findings[0].severity == "error"
        assert "1 to 2" in findings[0].message
        assert "DRC-Y @ b:loc2" in findings[0].message

    def test_shrinkage_passes(self, repo):
        write_baseline(repo, [])
        assert check_baseline_ratchet(repo) == []

    def test_swap_at_same_count_passes(self, repo):
        # Count-based ratchet: replacing a suppression is reviewable in
        # the diff, only net growth is blocked.
        write_baseline(repo, [entry("DRC-Z", "c", "loc9")])
        assert check_baseline_ratchet(repo) == []

    def test_new_uncommitted_baseline_has_nothing_to_ratchet(self, repo):
        write_baseline(
            repo, [entry("A", "b", "c")] * 3, name="verify-baseline.json"
        )
        assert (
            check_baseline_ratchet(repo, baseline_path="verify-baseline.json")
            == []
        )

    def test_missing_working_tree_baseline_passes(self, repo):
        (repo / "lint-baseline.json").unlink()
        assert check_baseline_ratchet(repo) == []

    def test_unparseable_working_tree_baseline_is_reported(self, repo):
        (repo / "lint-baseline.json").write_text("{not json")
        findings = check_baseline_ratchet(repo)
        assert [f.rule for f in findings] == ["LINT-RATCHET"]
        assert "parse" in findings[0].location

    def test_cli_ratchet_gates_exit_code(self, repo, monkeypatch, capsys):
        from repro.cli import main

        monkeypatch.chdir(repo)
        assert main(["lint", "--ratchet"]) == 0
        write_baseline(
            repo,
            [entry("DRC-X", "a", "loc1"), entry("DRC-Y", "b", "loc2")],
        )
        assert main(["lint", "--ratchet"]) == 1
        assert "LINT-RATCHET" in capsys.readouterr().out

    def test_explicit_base_ref(self, repo):
        # Grow and commit; vs HEAD it passes, vs the original it fails.
        write_baseline(
            repo,
            [entry("DRC-X", "a", "loc1"), entry("DRC-Y", "b", "loc2")],
        )
        git(repo, "add", "-A")
        git(repo, "commit", "-q", "-m", "grow")
        assert check_baseline_ratchet(repo, base_ref="HEAD") == []
        assert len(check_baseline_ratchet(repo, base_ref="HEAD~1")) == 1
