"""SIMULATOR_REV guard tests against a scratch git repository.

Each test builds a tiny repo with the same layout the guard expects
(``src/repro/netsim/simulator.py`` carrying ``SIMULATOR_REV``), commits
a base state, applies a change, and checks the guard's verdict.
"""

import subprocess

import pytest

from repro.analysis.revguard import (
    OVERRIDE_TRAILER,
    SEMANTIC_PATHS,
    check_simulator_rev,
)


def git(repo, *args):
    subprocess.run(
        ["git", "-C", str(repo), *args],
        check=True,
        capture_output=True,
        text=True,
    )


@pytest.fixture
def repo(tmp_path):
    git(tmp_path, "init", "-q", "-b", "main")
    git(tmp_path, "config", "user.email", "test@example.com")
    git(tmp_path, "config", "user.name", "Test")
    netsim = tmp_path / "src" / "repro" / "netsim"
    netsim.mkdir(parents=True)
    (netsim / "simulator.py").write_text("SIMULATOR_REV = 3\n")
    (netsim / "router.py").write_text("STATE = 1\n")
    eval_dir = tmp_path / "src" / "repro" / "eval"
    eval_dir.mkdir(parents=True)
    (eval_dir / "tables.py").write_text("FMT = 'text'\n")
    git(tmp_path, "add", "-A")
    git(tmp_path, "commit", "-q", "-m", "base")
    git(tmp_path, "tag", "base")
    return tmp_path


def commit_all(repo, message):
    git(repo, "add", "-A")
    git(repo, "commit", "-q", "-m", message)


class TestWorkingTreeDiff:
    def test_clean_tree_passes(self, repo):
        assert check_simulator_rev(repo, "base") == []

    def test_semantic_change_without_bump_fails(self, repo):
        (repo / "src/repro/netsim/router.py").write_text("STATE = 2\n")
        findings = check_simulator_rev(repo, "base")
        assert [f.rule for f in findings] == ["SRC-SIM-REV"]
        assert "router.py" in findings[0].message
        assert OVERRIDE_TRAILER in findings[0].message

    def test_semantic_change_with_bump_passes(self, repo):
        (repo / "src/repro/netsim/router.py").write_text("STATE = 2\n")
        (repo / "src/repro/netsim/simulator.py").write_text("SIMULATOR_REV = 4\n")
        assert check_simulator_rev(repo, "base") == []

    def test_non_semantic_change_needs_no_bump(self, repo):
        (repo / "src/repro/eval/tables.py").write_text("FMT = 'json'\n")
        assert check_simulator_rev(repo, "base") == []

    def test_semantic_paths_cover_core_and_netsim(self, repo):
        assert "src/repro/core/" in SEMANTIC_PATHS
        core = repo / "src" / "repro" / "core"
        core.mkdir()
        (core / "arbiter.py").write_text("X = 1\n")
        findings = check_simulator_rev(repo, "base")
        assert [f.rule for f in findings] == ["SRC-SIM-REV"]


class TestCommittedRanges:
    def test_committed_change_without_bump_fails(self, repo):
        (repo / "src/repro/netsim/router.py").write_text("STATE = 2\n")
        commit_all(repo, "tweak router")
        assert len(check_simulator_rev(repo, "base", "HEAD")) == 1

    def test_override_trailer_waives_the_bump(self, repo):
        (repo / "src/repro/netsim/router.py").write_text("STATE = 2\n")
        commit_all(
            repo,
            "tweak router\n\n"
            f"{OVERRIDE_TRAILER} unchanged (comment-only change)",
        )
        assert check_simulator_rev(repo, "base", "HEAD") == []
        # The trailer also covers a working-tree check of the same range.
        assert check_simulator_rev(repo, "base") == []

    def test_trailer_in_body_text_does_not_count(self, repo):
        (repo / "src/repro/netsim/router.py").write_text("STATE = 2\n")
        commit_all(
            repo,
            f"discussing the {OVERRIDE_TRAILER} trailer inline does not waive",
        )
        assert len(check_simulator_rev(repo, "base", "HEAD")) == 1


class TestFailureModes:
    def test_unknown_base_ref_reports_not_crashes(self, repo):
        findings = check_simulator_rev(repo, "no-such-ref")
        assert [f.rule for f in findings] == ["SRC-SIM-REV"]
        assert "no-such-ref" in findings[0].message

    def test_missing_rev_constant_reported(self, repo):
        (repo / "src/repro/netsim/simulator.py").write_text("# rev gone\n")
        findings = check_simulator_rev(repo, "base")
        assert [f.rule for f in findings] == ["SRC-SIM-REV"]
        assert "SIMULATOR_REV" in findings[0].message
