"""Tests for findings, the baseline suppression file, and report formats."""

import json

import pytest

from repro.analysis.findings import (
    Baseline,
    Finding,
    findings_to_json,
    format_findings,
)


def _f(rule="DRC-FLOATING", severity="warning", scope="nl", location="net 1 (INV)"):
    return Finding(rule, severity, scope, location, "msg")


class TestFinding:
    def test_rejects_unknown_severity(self):
        with pytest.raises(ValueError):
            _f(severity="fatal")

    def test_key_is_suppression_triple(self):
        f = _f()
        assert f.key == ("DRC-FLOATING", "nl", "net 1 (INV)")

    def test_round_trip(self):
        f = _f()
        assert Finding.from_dict(f.to_dict()) == f

    def test_render_contains_all_parts(self):
        text = _f().render()
        for part in ("warning", "DRC-FLOATING", "nl", "net 1 (INV)", "msg"):
            assert part in text


class TestBaseline:
    def test_exact_match_suppresses(self):
        b = Baseline([{"rule": "DRC-FLOATING", "scope": "nl",
                       "location": "net 1 (INV)"}])
        kept, dropped = b.partition([_f()])
        assert kept == [] and len(dropped) == 1

    def test_wildcards_cover_a_family(self):
        b = Baseline([{"rule": "DRC-CONST-FOLD", "scope": "vc_wf_*",
                       "location": "*"}])
        hit = _f("DRC-CONST-FOLD", "info", "vc_wf_rr_P10", "net 9 (AND2)")
        miss = _f("DRC-CONST-FOLD", "info", "vc_sep_if_P10", "net 9 (AND2)")
        kept, dropped = b.partition([hit, miss])
        assert dropped == [hit] and kept == [miss]

    def test_rule_is_never_implicitly_wild(self):
        b = Baseline([{"rule": "DRC-DEAD"}])  # scope/location default to *
        kept, dropped = b.partition([_f("DRC-FLOATING")])
        assert kept and not dropped

    def test_missing_rule_key_rejected(self):
        with pytest.raises(ValueError):
            Baseline([{"scope": "*"}])

    def test_unused_entries_reported_as_stale(self):
        b = Baseline([
            {"rule": "DRC-FLOATING", "scope": "nl", "location": "*"},
            {"rule": "DRC-DEAD", "scope": "never-matches", "location": "*"},
        ])
        b.partition([_f()])
        stale = b.unused_entries()
        assert len(stale) == 1 and stale[0]["rule"] == "DRC-DEAD"

    def test_load_dump_round_trip(self, tmp_path):
        path = tmp_path / "baseline.json"
        b = Baseline([{"rule": "DRC-DEAD", "scope": "s", "location": "l",
                       "reason": "why"}])
        b.dump(path)
        loaded = Baseline.load(path)
        assert loaded.entries == b.entries

    def test_load_rejects_wrong_version(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"version": 99, "suppressions": []}))
        with pytest.raises(ValueError, match="version"):
            Baseline.load(path)

    def test_partition_sorts_most_severe_first(self):
        infos = [_f("DRC-CONST-FOLD", "info")]
        errors = [_f("DRC-COMB-LOOP", "error")]
        kept, _ = Baseline().partition(infos + errors)
        assert [f.severity for f in kept] == ["error", "info"]


class TestReports:
    def test_format_counts_by_severity(self):
        text = format_findings([_f(), _f("DRC-COMB-LOOP", "error")])
        assert "2 finding(s)" in text
        assert "1 error(s)" in text and "1 warning(s)" in text

    def test_format_mentions_suppressed_count(self):
        assert "3 baseline-suppressed" in format_findings([], suppressed=3)

    def test_json_report_is_stable_and_complete(self):
        payload = json.loads(
            findings_to_json([_f()], suppressed=[_f("DRC-DEAD")],
                             meta={"netlists": 6})
        )
        assert payload["version"] == 1
        assert payload["summary"]["total"] == 1
        assert payload["summary"]["suppressed"] == 1
        assert payload["summary"]["warning"] == 1
        assert payload["findings"][0]["rule"] == "DRC-FLOATING"
        assert payload["suppressed"][0]["rule"] == "DRC-DEAD"
        assert payload["meta"] == {"netlists": 6}
