"""Tests for the paper-matrix DRC driver."""

from repro.analysis.netlists import iter_paper_netlists, lint_paper_netlists
from repro.eval.design_points import (
    ALL_POINTS,
    SPECULATION_SCHEMES,
    SWITCH_VARIANTS,
    VC_VARIANTS,
)

QUICK_JOBS = len(VC_VARIANTS) + len(SWITCH_VARIANTS) * len(SPECULATION_SCHEMES)


class TestEnumeration:
    def test_quick_mode_covers_one_design_point(self):
        jobs = list(iter_paper_netlists(quick=True))
        assert len(jobs) == QUICK_JOBS
        assert all(job.builder is not None for job in jobs)

    def test_full_matrix_spans_all_six_points(self):
        labels = [job.label for job in iter_paper_netlists()]
        assert len(labels) == QUICK_JOBS * len(ALL_POINTS)
        for point in ALL_POINTS:
            assert any(point.label in label for label in labels)

    def test_capacity_model_skips_with_reason(self):
        jobs = list(iter_paper_netlists(quick=True, max_cells=10))
        assert all(job.builder is None for job in jobs)
        assert all("capacity" in job.skip_reason for job in jobs)

    def test_vc_and_sw_selectable(self):
        vc = list(iter_paper_netlists(include_sw=False, quick=True))
        sw = list(iter_paper_netlists(include_vc=False, quick=True))
        assert len(vc) == len(VC_VARIANTS)
        assert all(job.label.startswith("vc/") for job in vc)
        assert all(job.label.startswith("sw/") for job in sw)


class TestLintRun:
    def test_quick_matrix_is_clean(self):
        findings, skipped, checked = lint_paper_netlists(quick=True)
        assert findings == []
        assert skipped == []
        assert checked == QUICK_JOBS

    def test_skips_are_reported_not_checked(self):
        findings, skipped, checked = lint_paper_netlists(
            quick=True, max_cells=10
        )
        assert checked == 0 and findings == []
        assert len(skipped) == QUICK_JOBS

    def test_progress_callback_sees_every_job(self):
        lines = []
        lint_paper_netlists(
            quick=True, include_sw=False, progress=lines.append
        )
        assert len(lines) == len(VC_VARIANTS)
        assert all(line.startswith("drc ") for line in lines)
