"""FaultPlan contract: validation, serialization, hashing, expansion.

Plans ride inside :class:`SimulationConfig`, cross process boundaries
and feed cache keys, so they must be picklable, hashable, JSON
round-trippable and -- most importantly -- expand to the *same* event
set everywhere for a fixed seed.
"""

import json
import pickle

import pytest

from repro.faults import CreditFault, FaultPlan, LinkFault, StuckVC, parse_fault_spec

DIMS = dict(router_ports=[5] * 16, num_vcs=2, horizon=500)


class TestValidation:
    def test_rates_must_be_probabilities(self):
        with pytest.raises(ValueError):
            FaultPlan(link_rate=1.5)
        with pytest.raises(ValueError):
            FaultPlan(stuck_vc_rate=-0.1)

    def test_credit_fault_kind_checked(self):
        with pytest.raises(ValueError):
            CreditFault(0, 1, 0, 10, kind="teleport")

    def test_event_lists_normalized_to_tuples(self):
        plan = FaultPlan(link_faults=[LinkFault(0, 1)])
        assert isinstance(plan.link_faults, tuple)

    def test_empty_plan_detected(self):
        assert FaultPlan().is_empty
        assert not FaultPlan(stuck_vc_rate=0.1).is_empty
        assert not FaultPlan(stuck_vcs=(StuckVC(0, 1, 0),)).is_empty


class TestSerialization:
    PLAN = FaultPlan(
        seed=7,
        link_rate=0.01,
        stuck_vc_rate=0.02,
        credit_drop_rate=0.001,
        link_faults=(LinkFault(3, 2, 10, 40),),
        stuck_vcs=(StuckVC(1, 0, 1, 5),),
        credit_faults=(CreditFault(2, 4, 0, 99, "dup"),),
    )

    def test_dict_round_trip(self):
        assert FaultPlan.from_dict(self.PLAN.to_dict()) == self.PLAN

    def test_json_round_trip(self):
        blob = json.dumps(self.PLAN.to_dict())
        assert FaultPlan.from_dict(json.loads(blob)) == self.PLAN

    def test_pickle_round_trip(self):
        assert pickle.loads(pickle.dumps(self.PLAN)) == self.PLAN

    def test_hashable_and_equal_by_value(self):
        twin = FaultPlan.from_dict(self.PLAN.to_dict())
        assert hash(twin) == hash(self.PLAN)
        assert len({twin, self.PLAN}) == 1

    def test_unknown_keys_ignored(self):
        data = self.PLAN.to_dict()
        data["from_the_future"] = 42
        assert FaultPlan.from_dict(data) == self.PLAN


class TestMaterialize:
    def _events(self, state):
        return (state.link_faults, state.stuck_vcs, state.credit_faults)

    def test_same_seed_same_events(self):
        plan = FaultPlan(seed=11, link_rate=0.01, stuck_vc_rate=0.05,
                         credit_drop_rate=0.002, credit_dup_rate=0.002)
        a = plan.materialize(**DIMS)
        b = plan.materialize(**DIMS)
        assert self._events(a) == self._events(b)

    def test_different_seed_different_events(self):
        a = FaultPlan(seed=1, stuck_vc_rate=0.2).materialize(**DIMS)
        b = FaultPlan(seed=2, stuck_vc_rate=0.2).materialize(**DIMS)
        assert self._events(a) != self._events(b)

    def test_explicit_events_survive_expansion(self):
        plan = FaultPlan(link_faults=(LinkFault(4, 1, 0, None),))
        state = plan.materialize(**DIMS)
        assert state.blocked_ports(4, 0) == {1}
        assert state.blocked_ports(4, 499) == {1}


class TestParseSpec:
    def test_compact_form(self):
        plan = parse_fault_spec("links=0.01,vcs=0.02,drop=0.001,seed=9")
        assert plan == FaultPlan(seed=9, link_rate=0.01, stuck_vc_rate=0.02,
                                 credit_drop_rate=0.001)

    def test_json_file(self, tmp_path):
        plan = FaultPlan(seed=3, credit_dup_rate=0.01)
        path = tmp_path / "plan.json"
        path.write_text(json.dumps(plan.to_dict()))
        assert parse_fault_spec(str(path)) == plan

    def test_bad_key_rejected(self):
        with pytest.raises(ValueError):
            parse_fault_spec("gremlins=0.5")

    def test_bad_item_rejected(self):
        with pytest.raises(ValueError):
            parse_fault_spec("no-equals-sign")


class TestTopologyValidation:
    """Satellite guarantee: a fault aimed outside the topology fails
    loudly at config time instead of materializing into a no-op."""

    def test_in_bounds_plan_accepted(self):
        plan = FaultPlan(
            link_faults=(LinkFault(15, 4, 0, None),),
            stuck_vcs=(StuckVC(0, 0, 1, 0),),
            credit_faults=(CreditFault(7, 2, 0, 10),),
        )
        plan.validate_topology([5] * 16, 2)  # must not raise

    def test_router_out_of_range(self):
        plan = FaultPlan(link_faults=(LinkFault(16, 0, 0, None),))
        with pytest.raises(ValueError, match="router 16.*16 routers"):
            plan.validate_topology([5] * 16, 2)

    def test_port_out_of_range(self):
        plan = FaultPlan(stuck_vcs=(StuckVC(3, 5, 0, 0),))
        with pytest.raises(ValueError, match="port 5.*5 ports"):
            plan.validate_topology([5] * 16, 2)

    def test_vc_out_of_range(self):
        plan = FaultPlan(credit_faults=(CreditFault(3, 2, 2, 0),))
        with pytest.raises(ValueError, match="VC 2.*2 VCs"):
            plan.validate_topology([5] * 16, 2)

    def test_materialize_validates_first(self):
        plan = FaultPlan(link_faults=(LinkFault(99, 0, 0, None),))
        with pytest.raises(ValueError, match="router 99"):
            plan.materialize(**DIMS)

    def test_simulation_rejects_bad_plan_at_build_time(self):
        from repro.netsim.simulator import SimulationConfig, run_simulation

        cfg = SimulationConfig(
            measure_cycles=50,
            faults=FaultPlan(link_faults=(LinkFault(64, 0, 0, None),)),
        )
        with pytest.raises(ValueError, match="router 64"):
            run_simulation(cfg)
