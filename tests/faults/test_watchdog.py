"""Watchdog behaviour: fires on a wedged fabric, never on a healthy one.

A total blackout plan (every link of every router permanently down)
guarantees zero forward progress, so the watchdog must abort with a
:class:`WatchdogError` whose snapshot survives pickling -- that error
crosses the process-pool pipe as a structured point failure.
"""

from dataclasses import replace

import pickle

import pytest

from repro.eval.runner import run_sweep
from repro.faults import FaultPlan, LinkFault, WatchdogError
from repro.netsim.simulator import SimulationConfig, run_simulation

CFG = SimulationConfig(
    injection_rate=0.2,
    warmup_cycles=60,
    measure_cycles=180,
    drain_cycles=180,
)

# Generous bounds: faults on routers/ports that don't exist are simply
# never queried.
BLACKOUT = FaultPlan(
    link_faults=tuple(
        LinkFault(r, p, 0, None) for r in range(64) for p in range(10)
    )
)


class TestFires:
    def test_blackout_aborts_with_snapshot(self):
        cfg = replace(CFG, faults=BLACKOUT, watchdog_cycles=50)
        with pytest.raises(WatchdogError) as exc_info:
            run_simulation(cfg)
        snapshot = exc_info.value.snapshot
        assert snapshot["source_backlog"] > 0 or snapshot["in_flight_flits"] > 0
        assert snapshot["stall_cycles"] >= 50
        assert snapshot["fault_counters"]["link_fault_events"] == len(
            BLACKOUT.link_faults
        )

    def test_error_pickles_with_snapshot(self):
        err = WatchdogError("wedged", {"cycle": 123, "stall_cycles": 50})
        clone = pickle.loads(pickle.dumps(err))
        assert isinstance(clone, WatchdogError)
        assert clone.snapshot == err.snapshot
        assert str(clone) == str(err)

    def test_run_sweep_records_watchdog_failure(self):
        cfg = replace(CFG, faults=BLACKOUT, watchdog_cycles=50)
        results = run_sweep([cfg], on_failure="record")
        assert results == [None]

    def test_failure_carries_the_snapshot(self):
        from repro.eval.runner import NullReporter

        captured = []

        class Capture(NullReporter):
            def point_failed(self, cfg, failure, stats):
                captured.append(failure)

        cfg = replace(CFG, faults=BLACKOUT, watchdog_cycles=50)
        run_sweep([cfg], on_failure="record", reporter=Capture())
        (failure,) = captured
        assert failure.error == "WatchdogError"
        assert isinstance(failure.detail, dict)
        assert failure.detail["stall_cycles"] >= 50


class TestDoesNotFire:
    def test_healthy_run_unaffected(self):
        armed = run_simulation(replace(CFG, watchdog_cycles=100))
        plain = run_simulation(CFG)
        # Config differs (watchdog_cycles is part of it); every measured
        # number must not.
        a, b = armed.to_payload(), plain.to_payload()
        a.pop("config"), b.pop("config")
        assert a == b

    def test_low_rate_drain_is_not_a_deadlock(self):
        # A long idle drain has no progress *and* no pending work; the
        # watchdog must treat that as idle, not wedged.
        cfg = replace(
            CFG, injection_rate=0.01, drain_cycles=600, watchdog_cycles=40
        )
        run_simulation(cfg)  # must not raise

    def test_limit_validated(self):
        from repro.faults import Watchdog

        with pytest.raises(ValueError):
            Watchdog(None, 0)  # limit checked before the net is touched
