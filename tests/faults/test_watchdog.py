"""Watchdog behaviour: fires on a wedged fabric, never on a healthy one.

A total stuck-VC blackout plan (every VC of every output port stuck
from cycle 0) guarantees zero forward progress, so the watchdog must
abort with a :class:`WatchdogError` whose snapshot survives pickling --
that error crosses the process-pool pipe as a structured point failure.

Permanent *link* faults are handled differently since the fault-aware
routing work: a watchdog trip under permanent link faults is an
expected property of the degraded network (e.g. a partition without
fault-aware routing), so the run completes in degraded mode instead of
raising -- see :class:`TestDegradedCompletion`.
"""

from dataclasses import replace

import pickle

import pytest

from repro.eval.runner import run_sweep
from repro.faults import FaultPlan, LinkFault, StuckVC, WatchdogError
from repro.netsim.simulator import SimulationConfig, run_simulation

CFG = SimulationConfig(
    injection_rate=0.2,
    warmup_cycles=60,
    measure_cycles=180,
    drain_cycles=180,
)

# Every VC of every output port of the 8x8 mesh (5 ports, V = 2) stuck
# from cycle 0: nothing can ever win VC allocation, so the fabric makes
# zero forward progress.  No link faults, so the watchdog's verdict is
# a hard abort, not graceful degradation.
BLACKOUT = FaultPlan(
    stuck_vcs=tuple(
        StuckVC(r, p, v, 0)
        for r in range(64)
        for p in range(5)
        for v in range(2)
    )
)

# Every link of every mesh router permanently down -- including the
# ejection ports, so traffic can neither move nor leave.  Permanent
# link faults route the watchdog trip into degraded completion.
LINK_BLACKOUT = FaultPlan(
    link_faults=tuple(
        LinkFault(r, p, 0, None) for r in range(64) for p in range(5)
    )
)


class TestFires:
    def test_blackout_aborts_with_snapshot(self):
        cfg = replace(CFG, faults=BLACKOUT, watchdog_cycles=50)
        with pytest.raises(WatchdogError) as exc_info:
            run_simulation(cfg)
        snapshot = exc_info.value.snapshot
        assert snapshot["source_backlog"] > 0 or snapshot["in_flight_flits"] > 0
        assert snapshot["stall_cycles"] >= 50
        assert snapshot["fault_counters"]["stuck_vc_events"] == len(
            BLACKOUT.stuck_vcs
        )

    def test_error_pickles_with_snapshot(self):
        err = WatchdogError("wedged", {"cycle": 123, "stall_cycles": 50})
        clone = pickle.loads(pickle.dumps(err))
        assert isinstance(clone, WatchdogError)
        assert clone.snapshot == err.snapshot
        assert str(clone) == str(err)

    def test_run_sweep_records_watchdog_failure(self):
        cfg = replace(CFG, faults=BLACKOUT, watchdog_cycles=50)
        results = run_sweep([cfg], on_failure="record")
        assert results == [None]

    def test_failure_carries_the_snapshot(self):
        from repro.eval.runner import NullReporter

        captured = []

        class Capture(NullReporter):
            def point_failed(self, cfg, failure, stats):
                captured.append(failure)

        cfg = replace(CFG, faults=BLACKOUT, watchdog_cycles=50)
        run_sweep([cfg], on_failure="record", reporter=Capture())
        (failure,) = captured
        assert failure.error == "WatchdogError"
        assert isinstance(failure.detail, dict)
        assert failure.detail["stall_cycles"] >= 50

    def test_snapshot_summarizes_faulted_links(self):
        # The picklable snapshot names each router's downed ports so a
        # WatchdogError under injected faults is diagnosable without
        # rerunning the point.
        from repro.faults.watchdog import deadlock_snapshot
        from repro.netsim.simulator import build_network

        plan = FaultPlan(
            link_faults=(LinkFault(9, 1, 0, None), LinkFault(9, 3, 0, None)),
        )
        cfg = replace(CFG, faults=plan)
        net = build_network(cfg)
        fault_state = plan.materialize(
            [r.num_ports for r in net.routers], net.routers[0].num_vcs, 420
        )
        net.attach_fault_state(fault_state)
        net.run(120)
        snapshot = deadlock_snapshot(net, 50)
        assert snapshot["faulted_links_by_router"] == {"9": [1, 3]}
        assert pickle.loads(pickle.dumps(snapshot)) == snapshot
        # Stalled-packet samples carry the bounded-misroute counter.
        assert snapshot["stalled_packets"]
        for entry in snapshot["stalled_packets"]:
            assert entry["misroutes"] == 0


class TestDegradedCompletion:
    def test_link_blackout_completes_degraded(self):
        cfg = replace(CFG, faults=LINK_BLACKOUT, watchdog_cycles=50)
        result = run_simulation(cfg)  # must not raise
        assert result.degraded_mode
        assert result.fault_counters["watchdog_degraded_trips"] == 1
        # The fabric was wedged from cycle 0: nothing was delivered.
        assert result.measured_packets == 0

    def test_degraded_flag_survives_payload_round_trip(self):
        cfg = replace(CFG, faults=LINK_BLACKOUT, watchdog_cycles=50)
        result = run_simulation(cfg)
        from repro.netsim.simulator import SimulationResult

        clone = SimulationResult.from_payload(result.to_payload())
        assert clone.degraded_mode
        assert clone.delivered_fraction == result.delivered_fraction

    def test_transient_stall_defers_the_verdict(self):
        # A transient outage of every link that ends well before the
        # run does: the watchdog must ride out the fault window instead
        # of declaring livelock, and the run must complete normally.
        plan = FaultPlan(
            link_faults=tuple(
                LinkFault(r, p, 0, 400) for r in range(64) for p in range(1, 5)
            )
        )
        cfg = replace(
            CFG, drain_cycles=600, faults=plan, watchdog_cycles=50
        )
        result = run_simulation(cfg)  # must not raise
        assert not result.degraded_mode
        assert result.fault_counters["watchdog_deferrals"] >= 1


class TestDoesNotFire:
    def test_healthy_run_unaffected(self):
        armed = run_simulation(replace(CFG, watchdog_cycles=100))
        plain = run_simulation(CFG)
        # Config differs (watchdog_cycles is part of it); every measured
        # number must not.
        a, b = armed.to_payload(), plain.to_payload()
        a.pop("config"), b.pop("config")
        assert a == b

    def test_low_rate_drain_is_not_a_deadlock(self):
        # A long idle drain has no progress *and* no pending work; the
        # watchdog must treat that as idle, not wedged.
        cfg = replace(
            CFG, injection_rate=0.01, drain_cycles=600, watchdog_cycles=40
        )
        run_simulation(cfg)  # must not raise

    def test_limit_validated(self):
        from repro.faults import Watchdog

        with pytest.raises(ValueError):
            Watchdog(None, 0)  # limit checked before the net is touched
