"""End-to-end fault injection through the simulator.

The two contracts the cache and the figures depend on:

* **fault-free bit-identity** -- ``faults=None`` and an empty plan
  produce byte-for-byte the results the pre-fault simulator produced
  (same payloads, same cache keys);
* **fault determinism** -- a faulted config is a pure function of its
  contents: rerun, round-trip through the worker dict form, or farm it
  to a process pool and the numbers never move.
"""

from dataclasses import replace

from repro.eval.runner import run_sweep
from repro.faults import CreditFault, FaultPlan, LinkFault
from repro.netsim.simulator import SimulationConfig, run_simulation

CFG = SimulationConfig(
    injection_rate=0.15,
    warmup_cycles=60,
    measure_cycles=180,
    drain_cycles=180,
)

FAULTY = replace(
    CFG, faults=FaultPlan(seed=5, link_rate=0.002, stuck_vc_rate=0.03)
)


class TestFaultFreeIdentity:
    def test_empty_plan_is_bit_identical(self):
        clean = run_simulation(CFG)
        empty = run_simulation(replace(CFG, faults=FaultPlan()))
        # Same numbers and same serialized payload (modulo the config,
        # which legitimately records the empty plan).
        a, b = clean.to_payload(), empty.to_payload()
        a.pop("config"), b.pop("config")
        assert a == b

    def test_fault_free_result_has_no_fault_fields(self):
        res = run_simulation(CFG)
        assert res.fault_counters == {}
        assert res.packets_lost == 0
        assert res.degraded_throughput == 1.0
        assert "fault_counters" not in res.to_dict()


class TestDeterminism:
    def test_same_config_same_result(self):
        assert run_simulation(FAULTY) == run_simulation(FAULTY)

    def test_worker_dict_round_trip(self):
        rebuilt = SimulationConfig.from_dict(FAULTY.to_dict())
        assert rebuilt == FAULTY
        assert run_simulation(rebuilt) == run_simulation(FAULTY)

    def test_serial_matches_parallel(self):
        configs = [replace(FAULTY, injection_rate=r) for r in (0.1, 0.2)]
        serial = run_sweep(configs, jobs=1)
        parallel = run_sweep(configs, jobs=2)
        assert serial == parallel


class TestDegradation:
    def test_permanent_link_fault_observable(self):
        # Kill one inter-router output port of a central router for the
        # whole run: requests get masked (counted) and traffic routed
        # through it is stranded or squeezed.
        plan = FaultPlan(link_faults=(LinkFault(5, 1, 0, None),))
        res = run_simulation(replace(CFG, faults=plan))
        assert res.fault_counters["link_blocked_requests"] > 0
        assert res.packets_lost > 0 or res.degraded_throughput < 1.0
        assert 0.0 <= res.degraded_throughput <= 1.0

    def test_result_dict_carries_fault_fields(self):
        plan = FaultPlan(link_faults=(LinkFault(5, 1, 0, None),))
        res = run_simulation(replace(CFG, faults=plan))
        data = res.to_dict()
        assert data["fault_counters"] == res.fault_counters
        assert data["packets_lost"] == res.packets_lost


class TestCreditFaults:
    def test_drop_and_dup_counted(self):
        plan = FaultPlan(seed=3, credit_drop_rate=0.02, credit_dup_rate=0.02)
        res = run_simulation(replace(CFG, faults=plan))
        counters = res.fault_counters
        assert counters["credits_dropped"] > 0
        assert counters["credits_duplicated"] > 0

    def test_dup_storm_does_not_corrupt_the_run(self):
        # A duplicate storm inflates upstream credit counts; the fabric
        # must absorb the overflow (clamp + force_push) rather than
        # tripping internal invariants.
        storm = FaultPlan(seed=9, credit_dup_rate=0.3)
        res = run_simulation(replace(CFG, faults=storm))
        assert res.delivered_packets > 0
        absorbed = (
            res.fault_counters["credit_dups_absorbed"]
            + res.fault_counters["credit_overflows_absorbed"]
            + res.fault_counters["buffer_overflows"]
        )
        assert absorbed >= 0  # counters exist and never went negative

    def test_targeted_drop_fires_once(self):
        plan = FaultPlan(credit_faults=(CreditFault(5, 1, 0, 0, "drop"),))
        res = run_simulation(replace(CFG, faults=plan))
        assert res.fault_counters["credits_dropped"] == 1
