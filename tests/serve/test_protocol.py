"""Wire-format unit tests for the sweep-service protocol."""

import socket

import pytest

from repro.netsim.simulator import SIMULATOR_REV
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    MessageSocket,
    ProtocolError,
    check_welcome,
    decode_message,
    encode_message,
    hello_message,
    parse_address,
)


class TestFraming:
    def test_roundtrip(self):
        msg = {"type": "work", "key": "abc", "config": {"injection_rate": 0.1}}
        assert decode_message(encode_message(msg).rstrip(b"\n")) == msg

    def test_one_line_per_message(self):
        assert encode_message({"type": "lease"}).endswith(b"\n")
        assert encode_message({"type": "lease"}).count(b"\n") == 1

    def test_garbage_rejected(self):
        with pytest.raises(ProtocolError):
            decode_message(b"{not json")

    def test_typeless_message_rejected(self):
        with pytest.raises(ProtocolError):
            decode_message(b'{"no_type": 1}')
        with pytest.raises(ProtocolError):
            decode_message(b'[1, 2, 3]')


class TestHandshake:
    def test_hello_carries_simulator_salt(self):
        msg = hello_message("worker")
        assert msg["salt"] == f"sim-rev-{SIMULATOR_REV}"
        assert msg["version"] == PROTOCOL_VERSION

    def test_welcome_accepted(self):
        check_welcome({"type": "welcome", "version": PROTOCOL_VERSION})

    def test_error_reply_raises_with_server_message(self):
        with pytest.raises(ProtocolError, match="revision mismatch"):
            check_welcome({"type": "error", "message": "revision mismatch"})

    def test_version_skew_raises(self):
        with pytest.raises(ProtocolError, match="version mismatch"):
            check_welcome({"type": "welcome", "version": PROTOCOL_VERSION + 1})

    def test_eof_during_handshake_raises(self):
        with pytest.raises(ProtocolError, match="closed the connection"):
            check_welcome(None)


class TestParseAddress:
    def test_host_and_port(self):
        assert parse_address("example.com:4000") == ("example.com", 4000)

    def test_bare_port_defaults_to_localhost(self):
        assert parse_address(":4000") == ("127.0.0.1", 4000)

    def test_rejects_portless(self):
        with pytest.raises(ValueError):
            parse_address("example.com")
        with pytest.raises(ValueError):
            parse_address("example.com:http")


class TestMessageSocket:
    def test_send_recv_over_socketpair(self):
        a, b = socket.socketpair()
        left, right = MessageSocket(a), MessageSocket(b)
        try:
            left.send({"type": "lease"})
            assert right.recv() == {"type": "lease"}
            right.send({"type": "work", "key": "k", "config": {}})
            assert left.recv()["key"] == "k"
        finally:
            left.close()
            right.close()

    def test_recv_returns_none_on_eof(self):
        a, b = socket.socketpair()
        left, right = MessageSocket(a), MessageSocket(b)
        left.close()
        try:
            assert right.recv() is None
        finally:
            right.close()
