"""Shared harness: an in-process sweep server plus worker threads.

The server runs its asyncio loop on a background thread; workers run
the real synchronous ``run_worker`` loop on further threads (same
wire protocol as a remote machine, without subprocess startup cost).
Tests that need an actually killable worker spawn ``repro work`` as a
subprocess instead -- see ``test_serve_integration.py``.
"""

import asyncio
import json
import threading
import time

import pytest

from repro.serve.server import SweepServer
from repro.serve.worker import run_worker


class ServeHarness:
    def __init__(self, state_dir, **server_kwargs):
        self.state_dir = state_dir
        self.server = None
        self._loop = None
        self._stop = None
        self._started = threading.Event()
        self._server_kwargs = server_kwargs
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        if not self._started.wait(timeout=10.0):
            raise RuntimeError("sweep server failed to start")
        self.worker_threads = []

    def _run(self):
        async def amain():
            self.server = SweepServer(
                state_dir=self.state_dir, **self._server_kwargs
            )
            await self.server.start()
            self._loop = asyncio.get_running_loop()
            self._stop = asyncio.Event()
            self._started.set()
            await self._stop.wait()
            await self.server.close()

        asyncio.run(amain())

    @property
    def address(self) -> str:
        return f"127.0.0.1:{self.server.port}"

    def start_worker(
        self, worker_fn="repro.serve.testing:analytic_worker", **kwargs
    ):
        thread = threading.Thread(
            target=run_worker,
            args=(self.address,),
            kwargs=dict(worker_fn=worker_fn, log=lambda _: None, **kwargs),
            daemon=True,
        )
        thread.start()
        self.worker_threads.append(thread)
        return thread

    def events(self):
        """Parsed serve_event rows from the server telemetry log."""
        path = self.state_dir / "telemetry" / "server.jsonl"
        if not path.exists():
            return []
        return [
            json.loads(line)
            for line in path.read_text().splitlines()
            if line.strip()
        ]

    def wait_for_event(self, event: str, timeout: float = 10.0) -> dict:
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            for row in self.events():
                if row.get("event") == event:
                    return row
            time.sleep(0.05)
        raise AssertionError(f"no {event!r} event within {timeout}s")

    def stop(self):
        if self._loop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=10.0)


@pytest.fixture
def harness(tmp_path):
    h = ServeHarness(tmp_path / "state")
    yield h
    h.stop()
