"""End-to-end behavior of the distributed sweep service.

Everything here runs against a real server (asyncio loop on a thread)
speaking the real wire protocol; only the simulator is swapped for the
deterministic analytic model, so the suite stays fast.  The final test
drives the actual ``repro serve``/``repro work``/``repro sweep
--connect`` CLI with the real simulator and asserts the acceptance bar:
byte-identical stdout tables for local vs distributed execution.
"""

import os
import signal
import subprocess
import sys
import threading
from pathlib import Path

import pytest

import repro
from repro.eval.checkpoint import SweepCheckpoint, sweep_signature
from repro.eval.runner import (
    SweepPointError,
    SweepReporter,
    config_key,
    run_sweep,
)
from repro.netsim.simulator import SimulationConfig
from repro.serve.client import RemoteScheduler
from repro.serve.protocol import (
    MessageSocket,
    hello_message,
    parse_address,
)
from repro.serve.testing import analytic_result, analytic_worker

from .conftest import ServeHarness

SRC_DIR = str(Path(repro.__file__).resolve().parents[1])


def _configs(n=4, seed=1):
    return [
        SimulationConfig(injection_rate=0.05 * (i + 1), seed=seed)
        for i in range(n)
    ]


class _Capture(SweepReporter):
    def __init__(self):
        self.stats = None

    def sweep_finished(self, stats):
        self.stats = stats


class TestRemoteScheduler:
    def test_remote_results_match_local(self, harness):
        harness.start_worker()
        configs = _configs()
        results = run_sweep(
            configs, scheduler=RemoteScheduler(harness.address)
        )
        assert [r.avg_latency for r in results] == [
            analytic_result(c).avg_latency for c in configs
        ]
        # Full payload equality, not just the headline number: the
        # distributed path must be bit-identical to local execution.
        assert [r.to_payload() for r in results] == [
            analytic_result(c).to_payload() for c in configs
        ]

    def test_sequential_clients_hit_the_shared_cache(self, harness):
        harness.start_worker()
        configs = _configs()
        sched = RemoteScheduler(harness.address)
        run_sweep(configs, scheduler=sched)

        capture = _Capture()
        results = run_sweep(configs, scheduler=sched, reporter=capture)
        assert capture.stats.cache_hits == len(configs)
        assert [r.avg_latency for r in results] == [
            analytic_result(c).avg_latency for c in configs
        ]

    def test_concurrent_clients_compute_each_point_once(self, harness):
        computed = []

        def counting_worker(cfg_dict):
            computed.append(cfg_dict["injection_rate"])
            return analytic_worker(cfg_dict)

        harness.start_worker(worker_fn=counting_worker)
        configs = _configs()
        sched = RemoteScheduler(harness.address)
        outcomes = {}

        def client(name):
            outcomes[name] = run_sweep(configs, scheduler=sched)

        threads = [
            threading.Thread(target=client, args=(n,)) for n in ("a", "b")
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30.0)
        assert set(outcomes) == {"a", "b"}
        # Identical answers for both clients, one computation per point:
        # the second submitter's waiters attach to the first's tasks.
        assert [r.to_payload() for r in outcomes["a"]] == [
            r.to_payload() for r in outcomes["b"]
        ]
        assert sorted(computed) == sorted(
            c.injection_rate for c in configs
        )

    def test_reported_failures_exhaust_retries_then_surface(self, tmp_path):
        harness = ServeHarness(tmp_path / "state", retries=1, backoff=0.01)
        try:
            attempts = []

            def flaky(cfg_dict):
                attempts.append(cfg_dict["injection_rate"])
                raise ValueError("injected failure")

            harness.start_worker(worker_fn=flaky)
            configs = _configs(2)
            capture = _Capture()
            results = run_sweep(
                configs,
                scheduler=RemoteScheduler(harness.address),
                reporter=capture,
                on_failure="record",
            )
            assert results == [None, None]
            assert len(capture.stats.failures) == 2
            for failure in capture.stats.failures:
                assert failure.kind == "exception"
                assert failure.error == "ValueError"
                assert failure.attempts == 2  # original + 1 server retry
            assert len(attempts) == 4  # 2 points x 2 attempts
            # Retries are scheduled (and counted) server-side; the
            # client only ever sees the final failed verdict.
            retries = [
                row for row in harness.events() if row["event"] == "retry"
            ]
            assert len(retries) == 2
        finally:
            harness.stop()

    def test_on_failure_raise_propagates(self, tmp_path):
        harness = ServeHarness(tmp_path / "state", retries=0)
        try:
            harness.start_worker(
                worker_fn="repro.serve.testing:failing_worker"
            )
            with pytest.raises(SweepPointError):
                run_sweep(
                    _configs(2), scheduler=RemoteScheduler(harness.address)
                )
        finally:
            harness.stop()

    def test_salt_mismatch_refused_at_handshake(self, harness):
        host, port = parse_address(harness.address)
        sock = MessageSocket.connect(host, port, timeout=10.0)
        try:
            bad_hello = hello_message("client")
            bad_hello["salt"] = "sim-rev-999"
            sock.send(bad_hello)
            reply = sock.recv()
            assert reply["type"] == "error"
            assert "revision mismatch" in reply["message"]
        finally:
            sock.close()

    def test_resume_serves_journaled_points_without_workers(self, tmp_path):
        # A server crash loses in-memory state but not the per-sweep
        # checkpoint journal.  A restarted server must serve journaled
        # points as warm results -- here the *whole* sweep comes from
        # the journal, with zero workers attached.
        configs = _configs()
        keys = [config_key(c) for c in configs]
        state_dir = tmp_path / "state"
        ckpt = SweepCheckpoint(
            state_dir / "checkpoints" / f"{sweep_signature(keys)}.ckpt.jsonl",
            sweep_signature(keys),
        )
        for cfg, key in zip(configs, keys):
            ckpt.record(key, analytic_result(cfg).to_payload())
        ckpt.close()

        harness = ServeHarness(state_dir)
        try:
            capture = _Capture()
            results = run_sweep(
                configs,
                scheduler=RemoteScheduler(harness.address),
                reporter=capture,
            )
            assert capture.stats.cache_hits == len(configs)
            assert [r.to_payload() for r in results] == [
                analytic_result(c).to_payload() for c in configs
            ]
        finally:
            harness.stop()


class TestWorkerDeath:
    def _spawn_worker_proc(self, address, stall_s=None):
        env = os.environ.copy()
        env["PYTHONPATH"] = SRC_DIR
        if stall_s is not None:
            env["REPRO_WORK_STALL_S"] = str(stall_s)
        return subprocess.Popen(
            [
                sys.executable, "-m", "repro", "work",
                "--connect", address,
                "--worker-fn", "repro.serve.testing:analytic_worker",
            ],
            env=env,
            stderr=subprocess.DEVNULL,
        )

    def test_kill9_mid_lease_requeues_and_tables_match_serial(self, tmp_path):
        # The acceptance scenario: a worker is SIGKILLed while holding
        # a lease; the point must be requeued to a surviving worker and
        # the final results must be identical to a serial run.
        harness = ServeHarness(tmp_path / "state", lease_timeout=60.0)
        proc = None
        try:
            configs = _configs(4)
            # Doomed worker first: REPRO_WORK_STALL_S parks it inside
            # its first lease, deterministically mid-flight.
            proc = self._spawn_worker_proc(harness.address, stall_s=120)

            outcome = {}

            def client():
                outcome["results"] = run_sweep(
                    configs, scheduler=RemoteScheduler(harness.address)
                )

            client_thread = threading.Thread(target=client, daemon=True)
            client_thread.start()

            harness.wait_for_event("lease", timeout=30.0)
            os.kill(proc.pid, signal.SIGKILL)
            proc.wait(timeout=10.0)

            harness.wait_for_event("requeue", timeout=10.0)
            harness.start_worker()  # the survivor finishes the sweep
            client_thread.join(timeout=60.0)
            assert not client_thread.is_alive()

            # Bit-identical to serial local execution of the same model.
            assert [r.to_payload() for r in outcome["results"]] == [
                analytic_result(c).to_payload() for c in configs
            ]
            requeue = harness.wait_for_event("requeue")
            assert requeue["reason"] == "worker_disconnected"
        finally:
            if proc is not None and proc.poll() is None:
                proc.kill()
            harness.stop()


class TestServerTelemetry:
    def test_per_sweep_jsonl_and_server_events(self, harness):
        harness.start_worker()
        configs = _configs(3)
        run_sweep(configs, scheduler=RemoteScheduler(harness.address))

        events = [row["event"] for row in harness.events()]
        for expected in (
            "server_started", "worker_connected", "client_connected",
            "sweep_submitted", "lease", "point_done", "sweep_done",
        ):
            assert expected in events, expected

        sweep_logs = list(
            (harness.state_dir / "telemetry").glob("sweep-*.jsonl")
        )
        assert len(sweep_logs) == 1
        import json

        rows = [
            json.loads(line)
            for line in sweep_logs[0].read_text().splitlines()
        ]
        kinds = [r["kind"] for r in rows]
        assert kinds[0] == "sweep_started"
        assert kinds[-1] == "sweep_finished"
        points = [r for r in rows if r["kind"] == "point"]
        assert len(points) == len(configs)
        for row in points:
            # Same row contract as local JsonlReporter telemetry.
            for field in ("key", "config", "result", "cached",
                          "completed", "total"):
                assert field in row, field


class TestCliEquivalence:
    """The ROADMAP acceptance bar, on the real simulator."""

    SWEEP_ARGS = ["--rates", "0.05,0.15", "--cycles", "200", "--seed", "3"]

    def _run_cli(self, args, env=None):
        result = subprocess.run(
            [sys.executable, "-m", "repro"] + args,
            env=env, capture_output=True, text=True, timeout=540,
        )
        assert result.returncode == 0, result.stderr
        return result.stdout

    def test_distributed_tables_byte_identical_to_serial(self, tmp_path):
        env = os.environ.copy()
        env["PYTHONPATH"] = SRC_DIR

        serial = self._run_cli(
            ["sweep", *self.SWEEP_ARGS, "--no-cache"], env=env
        )

        serve = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--port", "0", "--workers", "2",
                "--state-dir", str(tmp_path / "state"),
            ],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
            text=True,
        )
        try:
            banner = serve.stdout.readline().strip()
            assert banner.startswith("serving on "), banner
            address = banner.split()[-1]
            distributed = self._run_cli(
                ["sweep", *self.SWEEP_ARGS, "--connect", address], env=env
            )
            assert distributed == serial
        finally:
            serve.terminate()
            serve.wait(timeout=15)
