"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.topology == "mesh"
        assert args.speculation == "pessimistic"

    def test_sweep_runner_defaults(self):
        args = build_parser().parse_args(["sweep"])
        assert args.jobs == 1
        assert args.no_cache is False
        assert args.cache_path is None
        assert args.progress is False


class TestCommands:
    def test_transitions(self, capsys):
        assert main(["transitions", "--topology", "fbfly", "--vcs-per-class", "4"]) == 0
        out = capsys.readouterr().out
        assert "96 / 256" in out

    def test_quality(self, capsys):
        rc = main(
            ["quality", "--target", "switch", "--samples", "50",
             "--rates", "0.5"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "sep_if" in out and "wf" in out

    def test_quality_vc(self, capsys):
        rc = main(
            ["quality", "--target", "vc", "--samples", "50", "--rates", "1.0"]
        )
        assert rc == 0
        assert "matching quality" in capsys.readouterr().out

    def test_simulate(self, capsys):
        rc = main(["simulate", "--rate", "0.05", "--cycles", "300"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "latency" in out

    def test_sweep(self, capsys, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_SWEEP_CACHE", str(tmp_path / "sweeps.json"))
        rc = main(
            ["sweep", "--rates", "0.05,0.1", "--cycles", "300"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "zero-load" in out
        assert "cache:" in out

    def test_sweep_parallel_jobs(self, capsys, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_SWEEP_CACHE", str(tmp_path / "sweeps.json"))
        rc = main(
            ["sweep", "--rates", "0.05,0.1", "--cycles", "300",
             "--jobs", "2", "--progress"]
        )
        assert rc == 0
        captured = capsys.readouterr()
        assert "zero-load" in captured.out
        assert "sweep done" in captured.err

    def test_cost_switch(self, capsys, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_COST_CACHE", str(tmp_path / "c.json"))
        rc = main(["cost", "--target", "switch", "--vcs-per-class", "1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "nonspec" in out and "pessimistic" in out


class TestFiguresCommand:
    def test_figures_lists_all(self, capsys):
        assert main(["figures"]) == 0
        out = capsys.readouterr().out
        for fid in ("fig4", "fig7", "fig13", "fig14", "claims"):
            assert fid in out
