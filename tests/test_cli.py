"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.topology == "mesh"
        assert args.speculation == "pessimistic"

    def test_sweep_runner_defaults(self):
        args = build_parser().parse_args(["sweep"])
        assert args.jobs == 1
        assert args.no_cache is False
        assert args.cache_path is None
        assert args.progress is False

    def test_sweep_observability_defaults(self):
        args = build_parser().parse_args(["sweep"])
        assert args.metrics is None
        assert args.trace is None
        assert args.sample_every == 100

    def test_sweep_hardening_defaults(self):
        args = build_parser().parse_args(["sweep"])
        assert args.faults is None
        assert args.watchdog is None
        assert args.timeout is None
        assert args.retries == 0
        assert args.backoff == 1.0
        assert args.resume is False
        assert args.checkpoint is None

    @pytest.mark.parametrize("argv", [
        ["sweep", "--jobs", "0"],
        ["sweep", "--jobs", "-2"],
        ["sweep", "--timeout", "0"],
        ["sweep", "--timeout", "-5"],
        ["sweep", "--retries", "-1"],
        ["sweep", "--backoff", "-0.5"],
    ])
    def test_sweep_rejects_nonsensical_runner_values(self, argv, capsys):
        # Bad worker/hardening values must die at the argparse layer
        # (exit code 2) before any simulation work starts.
        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(argv)
        assert exc.value.code == 2
        err = capsys.readouterr().err
        assert "must be" in err

    @pytest.mark.parametrize("argv,attr,expected", [
        (["sweep", "--jobs", "4"], "jobs", 4),
        (["sweep", "--timeout", "2.5"], "timeout", 2.5),
        (["sweep", "--retries", "0"], "retries", 0),
        (["sweep", "--backoff", "0"], "backoff", 0.0),
    ])
    def test_sweep_accepts_boundary_runner_values(self, argv, attr, expected):
        args = build_parser().parse_args(argv)
        assert getattr(args, attr) == expected

    def test_bench_defaults(self):
        args = build_parser().parse_args(["bench"])
        assert args.quick is False
        assert args.output == "BENCH_kernel.json"
        assert args.progress is False
        assert args.kernel == []
        assert args.dump_kernel is None
        assert args.dump_only is False

    def test_faults_subcommand_defaults(self):
        args = build_parser().parse_args(["faults"])
        assert args.archs == "sep_if,sep_of,wf"
        assert args.kind == "vcs"
        assert args.iterations == 5

    def test_report_args(self):
        args = build_parser().parse_args(["report", "somedir", "--top", "3"])
        assert args.dir == "somedir"
        assert args.top == 3


class TestCommands:
    def test_transitions(self, capsys):
        assert main(["transitions", "--topology", "fbfly", "--vcs-per-class", "4"]) == 0
        out = capsys.readouterr().out
        assert "96 / 256" in out

    def test_quality(self, capsys):
        rc = main(
            ["quality", "--target", "switch", "--samples", "50",
             "--rates", "0.5"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "sep_if" in out and "wf" in out

    def test_quality_vc(self, capsys):
        rc = main(
            ["quality", "--target", "vc", "--samples", "50", "--rates", "1.0"]
        )
        assert rc == 0
        assert "matching quality" in capsys.readouterr().out

    def test_simulate(self, capsys):
        rc = main(["simulate", "--rate", "0.05", "--cycles", "300"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "latency" in out

    def test_sweep(self, capsys, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_SWEEP_CACHE", str(tmp_path / "sweeps.json"))
        rc = main(
            ["sweep", "--rates", "0.05,0.1", "--cycles", "300"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "zero-load" in out
        assert "cache:" in out

    def test_sweep_parallel_jobs(self, capsys, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_SWEEP_CACHE", str(tmp_path / "sweeps.json"))
        rc = main(
            ["sweep", "--rates", "0.05,0.1", "--cycles", "300",
             "--jobs", "2", "--progress"]
        )
        assert rc == 0
        captured = capsys.readouterr()
        assert "zero-load" in captured.out
        assert "sweep done" in captured.err

    def test_sweep_shows_percentiles(self, capsys, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_SWEEP_CACHE", str(tmp_path / "sweeps.json"))
        rc = main(["sweep", "--rates", "0.05", "--cycles", "300"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "p50" in out and "p95" in out and "p99" in out

    def test_sweep_instrumented_and_report(self, capsys, tmp_path):
        obs_dir = tmp_path / "obs"
        trace = obs_dir / "trace.json"
        rc = main(
            ["sweep", "--rates", "0.05,0.1", "--cycles", "300",
             "--metrics", str(obs_dir), "--trace", str(trace),
             "--sample-every", "50", "--jobs", "2"]
        )
        assert rc == 0
        captured = capsys.readouterr()
        # Instrumented runs force serial/uncached with a visible note.
        assert "forces a serial run" in captured.err
        assert "disables the sweep cache" in captured.err
        assert (obs_dir / "metrics.jsonl").exists()
        assert (obs_dir / "sweep.jsonl").exists()
        assert (obs_dir / "manifest.json").exists()
        assert trace.exists()

        rc = main(["report", str(obs_dir)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "matching efficiency" in out
        assert "latency breakdown" in out

    def test_sweep_writes_manifest_next_to_cache(self, capsys, monkeypatch,
                                                 tmp_path):
        monkeypatch.setenv("REPRO_SWEEP_CACHE", str(tmp_path / "sweeps.json"))
        rc = main(["sweep", "--rates", "0.05", "--cycles", "300"])
        assert rc == 0
        assert (tmp_path / "sweeps.manifest.json").exists()

    def test_sweep_with_faults_is_deterministic(self, capsys, tmp_path):
        argv = ["sweep", "--rates", "0.05,0.1", "--cycles", "240",
                "--faults", "vcs=0.05,seed=3", "--no-cache"]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert first == second
        assert "zero-load" in first

    def test_sweep_bad_fault_spec_rejected(self, capsys):
        rc = main(["sweep", "--faults", "gremlins=1"])
        assert rc == 2
        assert "bad --faults spec" in capsys.readouterr().err

    def test_sweep_resume_checkpoint_cycle(self, capsys, tmp_path):
        ckpt = tmp_path / "sweep.ckpt.jsonl"
        argv = ["sweep", "--rates", "0.05", "--cycles", "240", "--no-cache",
                "--resume", "--checkpoint", str(ckpt)]
        assert main(argv) == 0
        capsys.readouterr()
        # Clean completion removes the journal; a rerun starts fresh.
        assert not ckpt.exists()
        assert main(argv) == 0
        assert "zero-load" in capsys.readouterr().out

    def test_faults_command_smoke(self, capsys, tmp_path):
        rc = main(
            ["faults", "--archs", "sep_if", "--rates", "0.0", "--cycles",
             "120", "--iterations", "1", "--no-cache"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "saturation throughput vs vcs fault rate" in out
        assert "sep_if" in out

    def test_faults_command_rejects_bad_arch(self, capsys):
        rc = main(["faults", "--archs", "quantum"])
        assert rc == 2
        assert "--archs" in capsys.readouterr().err

    def test_resilience_command_smoke(self, capsys, tmp_path):
        out_path = tmp_path / "resilience.json"
        rc = main(
            ["resilience", "--counts", "0,1", "--cycles", "150",
             "--no-cache", "--require-full-delivery", "1",
             "--output", str(out_path)]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "ft_dor delivered" in out
        assert "full delivery holds" in out
        artifact = json.loads(out_path.read_text())
        assert artifact["schema"] == "repro/resilience/v1"

    def test_resilience_gate_fails_on_an_undeliverable_mode(
        self, capsys, tmp_path
    ):
        # Plain DOR cannot tolerate a permanent fault, so gating a
        # default-only campaign must exit nonzero ("ft_dor missing").
        rc = main(
            ["resilience", "--counts", "1", "--cycles", "150",
             "--modes", "default", "--no-cache",
             "--require-full-delivery", "1"]
        )
        assert rc == 1
        assert "FAIL" in capsys.readouterr().err

    def test_resilience_rejects_bad_counts(self, capsys):
        rc = main(["resilience", "--counts", "three"])
        assert rc == 2
        assert "--counts" in capsys.readouterr().err

    def test_resilience_rejects_bad_mode(self, capsys):
        rc = main(["resilience", "--modes", "adaptive"])
        assert rc == 2
        assert "--modes" in capsys.readouterr().err

    def test_perf_report_renders_resilience_panel(self, capsys, tmp_path):
        out_path = tmp_path / "resilience.json"
        assert main(
            ["resilience", "--counts", "0", "--cycles", "150",
             "--no-cache", "--output", str(out_path)]
        ) == 0
        capsys.readouterr()
        html_path = tmp_path / "perf.html"
        rc = main(
            ["perf", "report", "--bench", str(tmp_path / "missing.json"),
             "--history", str(tmp_path / "missing.jsonl"),
             "--resilience", str(out_path), "--output", str(html_path)]
        )
        assert rc == 0
        html = html_path.read_text()
        assert "Resilience" in html
        assert "ft_dor routing" in html

    def test_report_missing_dir(self, capsys, tmp_path):
        rc = main(["report", str(tmp_path / "nope")])
        assert rc == 2
        assert "not a directory" in capsys.readouterr().err

    def test_report_empty_dir(self, capsys, tmp_path):
        rc = main(["report", str(tmp_path)])
        assert rc == 2
        assert "no telemetry found" in capsys.readouterr().err

    def test_bench_writes_report(self, capsys, monkeypatch, tmp_path):
        import json

        from repro.eval import kernel_bench

        # Shrink the windows so the smoke test stays fast; the real
        # quick windows are exercised by the CI bench-smoke job.
        monkeypatch.setattr(
            kernel_bench, "_QUICK_WINDOWS",
            dict(warmup_cycles=40, measure_cycles=120, drain_cycles=120),
        )
        out_path = tmp_path / "BENCH_kernel.json"
        ledger = tmp_path / "hist.jsonl"
        rc = main(["bench", "--quick", "--output", str(out_path),
                   "--history", str(ledger)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "kernel benchmark" in out
        assert "wrote" in out
        assert "appended history record" in out
        # Every run appends one fingerprinted ledger record.
        records = [json.loads(l) for l in ledger.read_text().splitlines()]
        assert len(records) == 1
        assert records[0]["schema"] == "repro/bench-history/v1"

        report = json.loads(out_path.read_text())
        assert report["schema"] == "repro/kernel-bench/v1"
        assert report["quick"] is True
        labels = [p["label"] for p in report["points"]]
        assert "mesh-V8-wf-r0.15" in labels
        for point in report["points"]:
            assert point["speedup_warm"] > 0
            assert point["speedup_warm_compiled"] > 0
            assert point["fast"]["warm_cycles_per_s"] > 0
            assert point["reference"]["warm_cycles_per_s"] > 0
            assert point["compiled"]["warm_cycles_per_s"] > 0

    def test_bench_rejects_unknown_kernel(self, capsys):
        rc = main(["bench", "--kernel", "fast", "--kernel", "warp9"])
        err = capsys.readouterr().err
        assert rc == 2
        assert "unknown kernel" in err
        # The error must list every registered kernel.
        for name in ("reference", "fast", "compiled"):
            assert name in err

    def test_bench_kernel_subset(self, capsys, monkeypatch, tmp_path):
        import json

        from repro.eval import kernel_bench

        monkeypatch.setattr(
            kernel_bench, "_QUICK_WINDOWS",
            dict(warmup_cycles=40, measure_cycles=120, drain_cycles=120),
        )
        out_path = tmp_path / "BENCH_kernel.json"
        rc = main(["bench", "--quick", "--output", str(out_path),
                   "--kernel", "fast", "--kernel", "compiled",
                   "--no-history"])
        assert rc == 0
        report = json.loads(out_path.read_text())
        assert report["kernels"] == ["fast", "compiled"]
        for point in report["points"]:
            assert "reference" not in point
            assert "speedup_warm" not in point  # needs the reference timing
            assert point["speedup_warm_compiled"] > 0

    def test_bench_dump_kernel_writes_sources(self, capsys, tmp_path):
        from repro.netsim.codegen import template_specs

        dump_dir = tmp_path / "kernels"
        rc = main(["bench", "--dump-kernel", str(dump_dir), "--dump-only"])
        assert rc == 0
        assert "dumped" in capsys.readouterr().err
        dumped = sorted(p.name for p in dump_dir.glob("*.py"))
        # Each design point dumps both variants: the plain kernel and
        # the profiled one (phase hooks emitted only when requested).
        expected = sorted(
            name
            for spec in template_specs()
            for name in (f"{spec.slug()}.py", f"{spec.slug()}-prof.py")
        )
        assert dumped == expected
        # Every dumped module is genuine generated source.
        for p in dump_dir.glob("*.py"):
            assert "def make_step" in p.read_text()

    def test_bench_dump_only_requires_dump_kernel(self, capsys):
        rc = main(["bench", "--dump-only"])
        assert rc == 2
        assert "--dump-kernel" in capsys.readouterr().err

    def test_cost_switch(self, capsys, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_COST_CACHE", str(tmp_path / "c.json"))
        rc = main(["cost", "--target", "switch", "--vcs-per-class", "1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "nonspec" in out and "pessimistic" in out


class TestFiguresCommand:
    def test_figures_lists_all(self, capsys):
        assert main(["figures"]) == 0
        out = capsys.readouterr().out
        for fid in ("fig4", "fig7", "fig13", "fig14", "claims"):
            assert fid in out


class TestLintCommand:
    @staticmethod
    def _bad_tree(tmp_path):
        """A synthetic source tree with one observer-guard violation."""
        pkg = tmp_path / "repro" / "netsim"
        pkg.mkdir(parents=True)
        (pkg / "bad.py").write_text(
            "def step(self):\n    self.observer.cycle_end(self, 0)\n"
        )
        return tmp_path / "repro"

    def test_defaults(self):
        args = build_parser().parse_args(["lint"])
        assert args.netlists is False and args.source is False
        assert args.rev_guard is None
        assert args.format == "text"
        assert args.baseline is None and args.write_baseline is None
        assert args.quick is False

    def test_quick_netlist_matrix_is_clean(self, capsys):
        assert main(["lint", "--netlists", "--quick"]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_source_violation_fails_the_run(self, capsys, tmp_path):
        root = self._bad_tree(tmp_path)
        rc = main(["lint", "--source", "--src-root", str(root)])
        assert rc == 1
        out = capsys.readouterr().out
        assert "SRC-OBSERVER-GUARD" in out and "bad.py" in out

    def test_json_report_written_to_file(self, tmp_path):
        import json

        root = self._bad_tree(tmp_path)
        out_path = tmp_path / "findings.json"
        rc = main([
            "lint", "--source", "--src-root", str(root),
            "--format", "json", "--output", str(out_path),
        ])
        assert rc == 1
        payload = json.loads(out_path.read_text())
        assert payload["summary"]["total"] == 1
        assert payload["findings"][0]["rule"] == "SRC-OBSERVER-GUARD"
        assert payload["meta"]["source_root"] == str(root)

    def test_baseline_suppresses_and_passes(self, capsys, tmp_path):
        import json

        root = self._bad_tree(tmp_path)
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps({
            "version": 1,
            "suppressions": [{
                "rule": "SRC-OBSERVER-GUARD",
                "scope": "repro/netsim/bad.py",
                "location": "*",
                "reason": "known",
            }],
        }))
        rc = main([
            "lint", "--source", "--src-root", str(root),
            "--baseline", str(baseline),
        ])
        assert rc == 0
        assert "1 baseline-suppressed" in capsys.readouterr().out

    def test_write_baseline_round_trip(self, capsys, tmp_path):
        root = self._bad_tree(tmp_path)
        baseline = tmp_path / "new-baseline.json"
        rc = main([
            "lint", "--source", "--src-root", str(root),
            "--write-baseline", str(baseline),
        ])
        assert rc == 1  # findings are reported even while baselining
        rc = main([
            "lint", "--source", "--src-root", str(root),
            "--baseline", str(baseline),
        ])
        assert rc == 0
        capsys.readouterr()

    def test_bad_baseline_is_a_usage_error(self, capsys, tmp_path):
        root = self._bad_tree(tmp_path)
        bad = tmp_path / "corrupt.json"
        bad.write_text("{not json")
        rc = main([
            "lint", "--source", "--src-root", str(root),
            "--baseline", str(bad),
        ])
        assert rc == 2
        assert "bad baseline" in capsys.readouterr().err

    def test_rev_guard_through_the_cli(self, monkeypatch, tmp_path, capsys):
        import subprocess

        def git(*args):
            subprocess.run(
                ["git", "-C", str(tmp_path), *args],
                check=True, capture_output=True,
            )

        git("init", "-q", "-b", "main")
        git("config", "user.email", "t@example.com")
        git("config", "user.name", "T")
        netsim = tmp_path / "src" / "repro" / "netsim"
        netsim.mkdir(parents=True)
        (netsim / "simulator.py").write_text("SIMULATOR_REV = 1\n")
        git("add", "-A")
        git("commit", "-q", "-m", "base")
        monkeypatch.chdir(tmp_path)

        assert main(["lint", "--rev-guard", "HEAD"]) == 0
        capsys.readouterr()
        (netsim / "simulator.py").write_text("SIMULATOR_REV = 1\nX = 2\n")
        rc = main(["lint", "--rev-guard", "HEAD"])
        assert rc == 1
        assert "SRC-SIM-REV" in capsys.readouterr().out
