"""Tests for SimObserver: determinism, metrics output, consistency."""

import json

import pytest

from repro.eval.design_points import DesignPoint
from repro.eval.matching import switch_request_grant_efficiency
from repro.netsim.simulator import SimulationConfig, run_simulation
from repro.obs.metrics import emit_warning
from repro.obs.observer import NullObserver, SimObserver


CFG = SimulationConfig(
    injection_rate=0.15,
    warmup_cycles=100,
    measure_cycles=300,
    drain_cycles=300,
    seed=7,
)


class TestDeterminism:
    def test_instrumented_run_is_bit_identical(self, tmp_path):
        plain = run_simulation(CFG)
        obs = SimObserver(
            metrics_path=tmp_path / "metrics.jsonl",
            trace_path=tmp_path / "trace.json",
            sample_every=50,
        )
        instrumented = run_simulation(CFG, observer=obs)
        obs.finalize()
        assert instrumented.avg_latency == plain.avg_latency
        assert instrumented.accepted_flit_rate == plain.accepted_flit_rate
        assert instrumented.misspeculations == plain.misspeculations
        assert instrumented.speculative_wins == plain.speculative_wins

    def test_null_observer_is_inert(self):
        plain = run_simulation(CFG)
        nulled = run_simulation(CFG, observer=NullObserver())
        assert nulled.avg_latency == plain.avg_latency


class TestMetricsOutput:
    def test_jsonl_rows_schema(self, tmp_path):
        path = tmp_path / "metrics.jsonl"
        obs = SimObserver(metrics_path=path, sample_every=100)
        run_simulation(CFG, observer=obs)
        obs.finalize()
        rows = [json.loads(l) for l in path.read_text().splitlines()]
        kinds = {r["kind"] for r in rows}
        assert "run_started" in kinds
        assert "sample" in kinds
        samples = [r for r in rows if r["kind"] == "sample"]
        names = {r["name"] for r in samples}
        for expected in (
            "sa_grants", "sa_requests_nonspec", "sa_requests_spec",
            "va_requests", "va_grants", "credit_stalls", "vc_starved",
            "buffer_occupancy", "vc_occupancy", "packets_injected",
        ):
            assert expected in names
        for r in samples:
            assert r["ctx"]["injection_rate"] == CFG.injection_rate
            assert r["ctx"]["seed"] == CFG.seed

    def test_in_memory_rows_without_path(self):
        obs = SimObserver(sample_every=100)
        run_simulation(CFG, observer=obs)
        obs.finalize()
        assert any(r["kind"] == "sample" for r in obs.rows)

    def test_counters_monotonic_across_samples(self):
        obs = SimObserver(sample_every=50)
        run_simulation(CFG, observer=obs)
        obs.finalize()
        series = {}
        for r in obs.rows:
            if r.get("kind") == "sample" and r["name"] == "sa_grants":
                key = r["labels"]["router"]
                series.setdefault(key, []).append((r["cycle"], r["value"]))
        assert series
        for points in series.values():
            values = [v for _, v in sorted(points)]
            assert values == sorted(values)

    def test_active_observer_captures_warnings(self, tmp_path):
        path = tmp_path / "metrics.jsonl"
        obs = SimObserver(metrics_path=path)
        emit_warning("unit_test_warning", "hello", n=1)
        obs.finalize()
        rows = [json.loads(l) for l in path.read_text().splitlines()]
        warning = next(r for r in rows if r["kind"] == "warning")
        assert warning["code"] == "unit_test_warning"
        # After finalize the sink is removed: no late writes, no error.
        emit_warning("after_close", "ignored")

    def test_sample_every_validation(self):
        with pytest.raises(ValueError):
            SimObserver(sample_every=0)


class TestMultiRun:
    def test_trace_timestamps_do_not_overlap_across_runs(self, tmp_path):
        trace_path = tmp_path / "trace.json"
        obs = SimObserver(trace_path=trace_path, sample_every=200)
        run_simulation(CFG, observer=obs)
        first_run_events = list(obs.tracer.events)
        run_simulation(CFG, observer=obs)
        obs.finalize()
        second_run_events = obs.tracer.events[len(first_run_events):]
        assert second_run_events
        max_first = max(e["ts"] for e in first_run_events)
        min_second = min(e["ts"] for e in second_run_events)
        assert min_second > max_first

    def test_registry_resets_between_runs(self):
        obs = SimObserver(sample_every=10_000)
        run_simulation(CFG, observer=obs)
        first = obs.registry.total("sa_grants")
        run_simulation(CFG, observer=obs)
        second = obs.registry.total("sa_grants")
        obs.finalize()
        # Identical configs: per-run counters match instead of doubling.
        assert first == second > 0


class TestMatchingEfficiencyConsistency:
    def test_in_network_efficiency_tracks_offline_allocator(self):
        """The instrumented sa_grants/sa_requests ratio must agree with
        the offline request-denominated allocator efficiency at a
        comparable request rate (the acceptance cross-check)."""
        obs = SimObserver(sample_every=10_000)
        run_simulation(CFG, observer=obs)
        obs.finalize()
        grants = obs.registry.total("sa_grants")
        requests = obs.registry.total("sa_requests_nonspec") + obs.registry.total(
            "sa_requests_spec"
        )
        assert requests > 0
        in_network = grants / requests

        # Offline reference at the observed per-VC request probability.
        point = DesignPoint("mesh", 5, CFG.vcs_per_class)
        cycles = CFG.warmup_cycles + CFG.measure_cycles + CFG.drain_cycles
        num_routers = 64
        req_rate = requests / (num_routers * cycles * point.num_vcs * 5)
        offline = switch_request_grant_efficiency(
            point, rate=max(req_rate, 0.01), num_samples=400, seed=1
        )
        # Loose tolerance: in-network requests are spatially correlated
        # (DOR concentrates traffic) while the offline model is uniform.
        assert in_network == pytest.approx(offline, abs=0.15)
        assert 0.5 < in_network <= 1.0
