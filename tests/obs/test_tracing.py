"""Tests for the flit lifecycle tracer and Chrome trace export."""

import json

import pytest

from repro.netsim.simulator import SimulationConfig, run_simulation
from repro.obs.observer import SimObserver
from repro.obs.tracing import PACKET_TRACK, FlitTracer, LatencyBreakdown


class _Pkt:
    def __init__(self, pid, birth_time=0):
        self.pid = pid
        self.birth_time = birth_time


class TestLatencyBreakdown:
    def test_components_sum_to_total(self):
        bd = LatencyBreakdown()
        bd.add(total=20, source_queue=2, va_wait=3, sa_wait=1, hops=4)
        bd.add(total=10, source_queue=0, va_wait=0, sa_wait=0, hops=2)
        d = bd.to_dict()
        assert d["packets"] == 2
        assert d["avg_total"] == pytest.approx(15.0)
        assert d["avg_total"] == pytest.approx(
            d["avg_source_queue"] + d["avg_va_wait"] + d["avg_sa_wait"]
            + d["avg_traversal"]
        )
        assert d["avg_hops"] == pytest.approx(3.0)

    def test_empty_breakdown_has_zero_averages(self):
        assert LatencyBreakdown().to_dict()["avg_total"] == 0.0


class TestFlitTracer:
    def test_hop_becomes_complete_event(self):
        tr = FlitTracer()
        pkt = _Pkt(7)
        tr.packet_injected(0, pkt, 10)
        tr.head_arrived(3, 1, 0, pkt, 12)
        tr.vc_granted(3, pkt, 14)
        tr.head_departed(3, pkt, 15)
        (ev,) = tr.events
        assert ev["ph"] == "X"
        assert ev["pid"] == 3 and ev["tid"] == 1
        assert ev["ts"] == 12 and ev["dur"] == 3
        assert ev["args"]["va_wait"] == 2
        assert ev["args"]["sa_wait"] == 1

    def test_ejection_emits_paired_async_events(self):
        tr = FlitTracer()
        pkt = _Pkt(9, birth_time=5)
        tr.packet_injected(2, pkt, 8)
        tr.packet_ejected(4, pkt, 30)
        begin, end = tr.events
        assert begin["ph"] == "b" and end["ph"] == "e"
        assert begin["id"] == end["id"] == 9
        assert begin["pid"] == end["pid"] == PACKET_TRACK
        assert begin["ts"] == 8 and end["ts"] == 30
        assert begin["args"]["total"] == 25
        assert begin["args"]["source_queue"] == 3
        assert tr.breakdown.packets == 1

    def test_unknown_packet_counts_dropped_event(self):
        tr = FlitTracer()
        tr.head_departed(0, _Pkt(99), 5)
        tr.packet_ejected(0, _Pkt(98), 5)
        assert tr.dropped_events == 2
        assert tr.events == []

    def test_ts_offset_shifts_all_timestamps(self):
        tr = FlitTracer()
        tr.ts_offset = 1000
        pkt = _Pkt(1, birth_time=0)
        tr.packet_injected(0, pkt, 2)
        tr.head_arrived(0, 0, 0, pkt, 3)
        tr.head_departed(0, pkt, 4)
        tr.packet_ejected(1, pkt, 6)
        hop = next(e for e in tr.events if e["ph"] == "X")
        begin = next(e for e in tr.events if e["ph"] == "b")
        assert hop["ts"] == 1003
        assert begin["ts"] == 1002
        # Durations are offset-invariant.
        assert hop["dur"] == 1
        assert begin["args"]["total"] == 6

    def test_chrome_trace_structure(self):
        tr = FlitTracer()
        pkt = _Pkt(1)
        tr.packet_injected(0, pkt, 0)
        tr.head_arrived(5, 2, 0, pkt, 1)
        tr.head_departed(5, pkt, 3)
        tr.packet_ejected(3, pkt, 8)
        doc = tr.to_chrome_trace(metadata={"note": "test"})
        assert set(doc) == {"traceEvents", "displayTimeUnit", "otherData"}
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        named = {e["pid"]: e["args"]["name"] for e in meta}
        assert named[5] == "router 5"
        assert named[PACKET_TRACK] == "packets"
        assert doc["otherData"]["packets_traced"] == 1
        assert doc["otherData"]["note"] == "test"


class TestTraceExport:
    def test_simulated_trace_is_valid_and_paired(self, tmp_path):
        cfg = SimulationConfig(
            injection_rate=0.1,
            warmup_cycles=50,
            measure_cycles=150,
            drain_cycles=150,
            seed=3,
        )
        trace_path = tmp_path / "trace.json"
        obs = SimObserver(trace_path=trace_path, sample_every=50)
        run_simulation(cfg, observer=obs)
        obs.finalize()

        doc = json.loads(trace_path.read_text())  # valid JSON end to end
        events = doc["traceEvents"]
        assert events, "expected a non-empty trace"

        # Every async begin has exactly one matching end (same id).
        begins = [e["id"] for e in events if e.get("ph") == "b"]
        ends = [e["id"] for e in events if e.get("ph") == "e"]
        assert sorted(begins) == sorted(ends)
        assert len(set(begins)) == len(begins)

        # Complete events are well formed.
        for e in events:
            if e.get("ph") == "X":
                assert e["dur"] >= 0
                assert e["ts"] >= 0
                assert "va_wait" in e["args"]

        # The embedded breakdown is internally consistent.
        bd = doc["otherData"]["breakdown"]
        assert bd["packets"] == doc["otherData"]["packets_traced"] > 0
        assert bd["avg_total"] == pytest.approx(
            bd["avg_source_queue"] + bd["avg_va_wait"] + bd["avg_sa_wait"]
            + bd["avg_traversal"]
        )
