"""Tests for the flit lifecycle tracer and Chrome trace export."""

import json

import pytest

from repro.netsim.simulator import SimulationConfig, run_simulation
from repro.obs.observer import SimObserver
from repro.obs.tracing import PACKET_TRACK, FlitTracer, LatencyBreakdown


class _Pkt:
    def __init__(self, pid, birth_time=0):
        self.pid = pid
        self.birth_time = birth_time


class TestLatencyBreakdown:
    def test_components_sum_to_total(self):
        bd = LatencyBreakdown()
        bd.add(total=20, source_queue=2, va_wait=3, sa_wait=1, hops=4)
        bd.add(total=10, source_queue=0, va_wait=0, sa_wait=0, hops=2)
        d = bd.to_dict()
        assert d["packets"] == 2
        assert d["avg_total"] == pytest.approx(15.0)
        assert d["avg_total"] == pytest.approx(
            d["avg_source_queue"] + d["avg_va_wait"] + d["avg_sa_wait"]
            + d["avg_traversal"]
        )
        assert d["avg_hops"] == pytest.approx(3.0)

    def test_empty_breakdown_has_zero_averages(self):
        assert LatencyBreakdown().to_dict()["avg_total"] == 0.0


class TestFlitTracer:
    def test_hop_becomes_complete_event(self):
        tr = FlitTracer()
        pkt = _Pkt(7)
        tr.packet_injected(0, pkt, 10)
        tr.head_arrived(3, 1, 0, pkt, 12)
        tr.vc_granted(3, pkt, 14)
        tr.head_departed(3, pkt, 15)
        (ev,) = tr.events
        assert ev["ph"] == "X"
        assert ev["pid"] == 3 and ev["tid"] == 1
        assert ev["ts"] == 12 and ev["dur"] == 3
        assert ev["args"]["va_wait"] == 2
        assert ev["args"]["sa_wait"] == 1

    def test_ejection_emits_paired_async_events(self):
        tr = FlitTracer()
        pkt = _Pkt(9, birth_time=5)
        tr.packet_injected(2, pkt, 8)
        tr.packet_ejected(4, pkt, 30)
        begin, end = tr.events
        assert begin["ph"] == "b" and end["ph"] == "e"
        assert begin["id"] == end["id"] == 9
        assert begin["pid"] == end["pid"] == PACKET_TRACK
        assert begin["ts"] == 8 and end["ts"] == 30
        assert begin["args"]["total"] == 25
        assert begin["args"]["source_queue"] == 3
        assert tr.breakdown.packets == 1

    def test_unknown_packet_counts_dropped_event(self):
        tr = FlitTracer()
        tr.head_departed(0, _Pkt(99), 5)
        tr.packet_ejected(0, _Pkt(98), 5)
        assert tr.dropped_events == 2
        assert tr.events == []

    def test_ts_offset_shifts_all_timestamps(self):
        tr = FlitTracer()
        tr.ts_offset = 1000
        pkt = _Pkt(1, birth_time=0)
        tr.packet_injected(0, pkt, 2)
        tr.head_arrived(0, 0, 0, pkt, 3)
        tr.head_departed(0, pkt, 4)
        tr.packet_ejected(1, pkt, 6)
        hop = next(e for e in tr.events if e["ph"] == "X")
        begin = next(e for e in tr.events if e["ph"] == "b")
        assert hop["ts"] == 1003
        assert begin["ts"] == 1002
        # Durations are offset-invariant.
        assert hop["dur"] == 1
        assert begin["args"]["total"] == 6

    def test_chrome_trace_structure(self):
        tr = FlitTracer()
        pkt = _Pkt(1)
        tr.packet_injected(0, pkt, 0)
        tr.head_arrived(5, 2, 0, pkt, 1)
        tr.head_departed(5, pkt, 3)
        tr.packet_ejected(3, pkt, 8)
        doc = tr.to_chrome_trace(metadata={"note": "test"})
        assert set(doc) == {"traceEvents", "displayTimeUnit", "otherData"}
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        named = {e["pid"]: e["args"]["name"] for e in meta}
        assert named[5] == "router 5"
        assert named[PACKET_TRACK] == "packets"
        assert doc["otherData"]["packets_traced"] == 1
        assert doc["otherData"]["note"] == "test"


class TestTraceExport:
    def test_simulated_trace_is_valid_and_paired(self, tmp_path):
        cfg = SimulationConfig(
            injection_rate=0.1,
            warmup_cycles=50,
            measure_cycles=150,
            drain_cycles=150,
            seed=3,
        )
        trace_path = tmp_path / "trace.json"
        obs = SimObserver(trace_path=trace_path, sample_every=50)
        run_simulation(cfg, observer=obs)
        obs.finalize()

        doc = json.loads(trace_path.read_text())  # valid JSON end to end
        events = doc["traceEvents"]
        assert events, "expected a non-empty trace"

        # Every async begin has exactly one matching end (same id).
        begins = [e["id"] for e in events if e.get("ph") == "b"]
        ends = [e["id"] for e in events if e.get("ph") == "e"]
        assert sorted(begins) == sorted(ends)
        assert len(set(begins)) == len(begins)

        # Complete events are well formed.
        for e in events:
            if e.get("ph") == "X":
                assert e["dur"] >= 0
                assert e["ts"] >= 0
                assert "va_wait" in e["args"]

        # The embedded breakdown is internally consistent.
        bd = doc["otherData"]["breakdown"]
        assert bd["packets"] == doc["otherData"]["packets_traced"] > 0
        assert bd["avg_total"] == pytest.approx(
            bd["avg_source_queue"] + bd["avg_va_wait"] + bd["avg_sa_wait"]
            + bd["avg_traversal"]
        )


class TestGoldenTraceSchema:
    """Golden document test: the exact Chrome trace-event JSON emitted
    for a scripted two-hop packet.  Any field rename, reordering of
    event emission, or pid/tid remapping shows up as a diff against
    this fixture -- the schema is what Perfetto (and
    ``scripts/validate_telemetry.py``) consume."""

    def _golden_doc(self):
        pkt = _Pkt(7, birth_time=8)
        tr = FlitTracer()
        tr.packet_injected(2, pkt, 10)
        tr.head_arrived(3, 1, 0, pkt, 12)
        tr.vc_granted(3, pkt, 14)
        tr.head_departed(3, pkt, 15)
        tr.head_arrived(4, 2, 1, pkt, 16)
        tr.head_departed(4, pkt, 18)  # speculative: VA+SA same cycle
        tr.packet_ejected(5, pkt, 20)
        return tr.to_chrome_trace()

    GOLDEN = {
        "traceEvents": [
            # Meta events name every track, routers first.
            {"ph": "M", "name": "process_name", "pid": 3,
             "args": {"name": "router 3"}},
            {"ph": "M", "name": "process_name", "pid": 4,
             "args": {"name": "router 4"}},
            {"ph": "M", "name": "process_name", "pid": PACKET_TRACK,
             "args": {"name": "packets"}},
            # One complete (ph "X") event per router hop, on track
            # pid = router id / tid = input port, VA/SA split in args.
            {"name": "pkt 7", "cat": "hop", "ph": "X", "ts": 12, "dur": 3,
             "pid": 3, "tid": 1,
             "args": {"packet": 7, "vc": 0, "va_wait": 2, "sa_wait": 1}},
            {"name": "pkt 7", "cat": "hop", "ph": "X", "ts": 16, "dur": 2,
             "pid": 4, "tid": 2,
             "args": {"packet": 7, "vc": 1, "va_wait": 2, "sa_wait": 0}},
            # Async begin/end pair spanning inject -> eject on the
            # synthetic packet track, tid = source terminal.
            {"cat": "packet", "id": 7, "name": "packet",
             "pid": PACKET_TRACK, "tid": 2, "ph": "b", "ts": 10,
             "args": {"src": 2, "dest": 5, "total": 12, "source_queue": 2,
                      "va_wait": 4, "sa_wait": 1, "hops": 2}},
            {"cat": "packet", "id": 7, "name": "packet",
             "pid": PACKET_TRACK, "tid": 2, "ph": "e", "ts": 20},
        ],
        "displayTimeUnit": "ns",
        "otherData": {
            "packets_traced": 1,
            "packets_in_flight": 0,
            "dropped_events": 0,
            "breakdown": {
                "packets": 1,
                "avg_total": 12.0,
                "avg_source_queue": 2.0,
                "avg_va_wait": 4.0,
                "avg_sa_wait": 1.0,
                "avg_traversal": 5.0,
                "avg_hops": 2.0,
            },
        },
    }

    def test_document_matches_golden(self):
        doc = self._golden_doc()
        assert doc == self.GOLDEN

    def test_golden_doc_is_json_round_trippable(self):
        doc = self._golden_doc()
        assert json.loads(json.dumps(doc)) == self.GOLDEN
