"""Tests for the self-contained HTML dashboard (``repro perf report``)."""

import json
import re

import pytest

from repro.cli import main
from repro.eval.bench_history import append_history, build_history_record
from repro.obs.perf_report import build_perf_report


def _bench_report(speedup=4.0):
    return {
        "schema": "repro/kernel-bench/v1",
        "simulator_rev": 2,
        "quick": True,
        "kernels": ["fast", "reference"],
        "points": [
            {
                "label": "mesh-V8-wf-r0.15",
                "cycles": 3600,
                "fast": {"cold_s": 0.6, "warm_s": 0.5,
                         "cold_cycles_per_s": 6000.0,
                         "warm_cycles_per_s": 7200.0},
                "reference": {"cold_s": 2.4, "warm_s": 2.0,
                              "cold_cycles_per_s": 1500.0,
                              "warm_cycles_per_s": 1800.0},
                "speedup_warm": speedup,
                "profile": {
                    "fast": {
                        "schema": "repro/phase-profile/v1",
                        "wall_s": 0.55,
                        "phases": {"sw_alloc": 0.3, "vc_alloc": 0.1,
                                   "traffic": 0.1},
                        "coverage": 0.98,
                    }
                },
            }
        ],
    }


def _metrics_dir(tmp_path):
    d = tmp_path / "obs"
    d.mkdir()
    rows = [
        {"kind": "sweep_started", "total": 1, "ts": 0.0},
        {"kind": "point", "key": "k", "config": {}, "cached": True,
         "completed": 1, "total": 1, "cache_hits": 1, "elapsed_s": 0.1,
         "result": {"injection_rate": 0.05, "avg_latency": 20.0,
                    "p50": 18, "p95": 30, "p99": 41}},
        {"kind": "sweep_finished", "completed": 1, "total": 1,
         "cache_hits": 1, "simulated": 0, "failed": 0, "retries": 0,
         "elapsed_s": 0.1, "sims_per_sec": 10.0, "ts": 0.1},
    ]
    (d / "sweep.jsonl").write_text(
        "".join(json.dumps(r) + "\n" for r in rows))
    metric_rows = [
        {"kind": "fault_counters", "cycle": 400, "ctx": {},
         "value": {"flits_dropped": 3, "credits_dropped": 1}},
        {"kind": "warning", "code": "watchdog_fired", "msg": "x"},
    ]
    (d / "metrics.jsonl").write_text(
        "".join(json.dumps(r) + "\n" for r in metric_rows))
    return d


class TestBuildPerfReport:
    def test_full_dashboard(self, tmp_path):
        bench = tmp_path / "BENCH_kernel.json"
        bench.write_text(json.dumps(_bench_report()))
        ledger = tmp_path / "hist.jsonl"
        append_history(
            build_history_record(_bench_report(4.0), timestamp=1.0), ledger)
        append_history(
            build_history_record(_bench_report(4.5), timestamp=2.0), ledger)
        html = build_perf_report(bench_path=bench, history_path=ledger,
                                 metrics_dir=_metrics_dir(tmp_path))
        assert "Kernel benchmark" in html
        assert "Phase breakdown" in html
        assert "Bench history (2 record(s))" in html
        assert "<polyline" in html  # the trajectory sparkline
        assert "Fault counters" in html
        assert "flits_dropped" in html
        assert "watchdog_fired" in html
        assert "cache hit rate 100%" in html

    def test_output_is_self_contained(self, tmp_path):
        bench = tmp_path / "b.json"
        bench.write_text(json.dumps(_bench_report()))
        html = build_perf_report(bench_path=bench)
        # No external assets of any kind: no scripts, no remote URLs.
        assert "<script" not in html
        assert not re.search(r'(src|href)\s*=\s*["\']https?://', html)
        assert not re.search(r'<link\b', html)

    def test_missing_inputs_render_as_notes(self, tmp_path):
        bench = tmp_path / "b.json"
        bench.write_text(json.dumps(_bench_report()))
        html = build_perf_report(
            bench_path=bench,
            history_path=tmp_path / "missing.jsonl",
        )
        assert "skipped missing input" in html
        assert "missing.jsonl" in html

    def test_no_inputs_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="no performance"):
            build_perf_report(bench_path=tmp_path / "a.json",
                              history_path=tmp_path / "b.jsonl")

    def test_unprofiled_report_prompts_for_profile_flag(self, tmp_path):
        report = _bench_report()
        del report["points"][0]["profile"]
        bench = tmp_path / "b.json"
        bench.write_text(json.dumps(report))
        html = build_perf_report(bench_path=bench)
        assert "--profile" in html


class TestPerfReportCli:
    def test_writes_html(self, capsys, tmp_path):
        bench = tmp_path / "b.json"
        bench.write_text(json.dumps(_bench_report()))
        out = tmp_path / "perf.html"
        rc = main(["perf", "report", "--bench", str(bench),
                   "--history", str(tmp_path / "none.jsonl"),
                   "--output", str(out)])
        assert rc == 0
        assert "wrote" in capsys.readouterr().out
        assert out.read_text().startswith("<!doctype html>")

    def test_exits_2_without_artifacts(self, capsys, tmp_path):
        rc = main(["perf", "report",
                   "--bench", str(tmp_path / "a.json"),
                   "--history", str(tmp_path / "b.jsonl"),
                   "--output", str(tmp_path / "perf.html")])
        assert rc == 2
        assert "no performance artifacts" in capsys.readouterr().err
        assert not (tmp_path / "perf.html").exists()
