"""Tests for the metrics registry and structured warnings."""

import math

import pytest

from repro.netsim.stats import batch_means
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    add_warning_sink,
    clear_recent_warnings,
    emit_warning,
    recent_warnings,
    remove_warning_sink,
)


class TestInstruments:
    def test_counter_monotonic(self):
        c = Counter()
        c.inc()
        c.inc(5)
        assert c.serialize() == 6

    def test_gauge_overwrites(self):
        g = Gauge()
        g.set(3.0)
        g.set(1.5)
        assert g.serialize() == 1.5

    def test_histogram_buckets_and_overflow(self):
        h = Histogram(bounds=(1, 2, 4))
        for v in (0, 1, 2, 3, 100):
            h.observe(v)
        assert h.counts == [2, 1, 1, 1]  # <=1, <=2, <=4, overflow
        assert h.count == 5
        assert h.total == 106
        assert h.mean == pytest.approx(106 / 5)
        payload = h.serialize()
        assert payload["le"] == [1, 2, 4]
        assert payload["count"] == 5

    def test_histogram_rejects_unsorted_bounds(self):
        with pytest.raises(ValueError):
            Histogram(bounds=(4, 2, 1))


class TestRegistry:
    def test_memoized_lookup(self):
        reg = MetricsRegistry()
        a = reg.counter("hits", router=3)
        b = reg.counter("hits", router=3)
        c = reg.counter("hits", router=4)
        assert a is b
        assert a is not c
        assert len(reg) == 2

    def test_label_order_is_irrelevant(self):
        reg = MetricsRegistry()
        a = reg.counter("x", router=1, port=2)
        b = reg.counter("x", port=2, router=1)
        assert a is b

    def test_rows_carry_context(self):
        reg = MetricsRegistry()
        reg.counter("grants", router=0).inc(7)
        reg.gauge("occ", router=0).set(2)
        rows = list(reg.rows(500, {"injection_rate": 0.2}))
        assert len(rows) == 2
        for row in rows:
            assert row["kind"] == "sample"
            assert row["cycle"] == 500
            assert row["ctx"] == {"injection_rate": 0.2}
        by_name = {r["name"]: r for r in rows}
        assert by_name["grants"]["type"] == "counter"
        assert by_name["grants"]["value"] == 7
        assert by_name["grants"]["labels"] == {"router": 0}

    def test_totals_across_labels(self):
        reg = MetricsRegistry()
        reg.counter("stalls", router=0).inc(3)
        reg.counter("stalls", router=1).inc(4)
        reg.counter("other", router=0).inc(100)
        assert reg.total("stalls") == 7
        assert len(reg.totals("stalls")) == 2


class TestWarnings:
    def setup_method(self):
        clear_recent_warnings()

    def test_emit_reaches_sink_and_ring(self):
        seen = []
        add_warning_sink(seen.append)
        try:
            w = emit_warning("test_code", "something odd", detail=42)
        finally:
            remove_warning_sink(seen.append)
        assert seen == [w]
        assert w.code == "test_code"
        assert w.context == {"detail": 42}
        assert recent_warnings()[-1] is w
        row = w.to_dict()
        assert row["kind"] == "warning"
        assert row["context"]["detail"] == 42

    def test_remove_unknown_sink_is_noop(self):
        remove_warning_sink(lambda w: None)  # must not raise

    def test_batch_means_underfilled_emits_warning(self):
        clear_recent_warnings()
        # Every sample at the same timestamp -> one populated batch.
        mean, stderr = batch_means([(5.0, 1.0), (5.0, 2.0)], num_batches=10)
        assert mean == pytest.approx(1.5)
        assert math.isnan(stderr)
        warnings = [w for w in recent_warnings()
                    if w.code == "batch_means_underfilled"]
        assert len(warnings) == 1
        assert warnings[0].context["populated_batches"] == 1
        assert warnings[0].context["num_batches"] == 10

    def test_batch_means_healthy_is_silent(self):
        clear_recent_warnings()
        mean, stderr = batch_means(
            [(float(i), float(i % 7)) for i in range(100)], num_batches=10
        )
        assert not math.isnan(stderr)
        assert recent_warnings() == []
