"""Tests for the phase-attribution profiler (``repro.obs.profiling``).

Three layers:

* accounting-model unit tests with an injected fake clock -- every
  second attributed exactly once, nested time subtracted from the
  enclosing outer segment;
* end-to-end ``profile_point`` runs on all three kernels -- phase
  coverage of measured wall time must clear the >=95% acceptance bar;
* the bit-identity guarantee -- attaching a profiler must not change a
  single payload across reference/fast/compiled.
"""

import pytest

from repro.netsim.simulator import SimulationConfig, run_simulation
from repro.obs.profiling import (
    PHASES,
    PROFILE_SCHEMA,
    PhaseProfiler,
    profile_point,
)

KERNELS = ("reference", "fast", "compiled")


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def advance(self, dt):
        self.now += dt

    def __call__(self):
        return self.now


def _cfg(**overrides):
    base = dict(
        topology="mesh",
        vcs_per_class=2,
        injection_rate=0.2,
        vc_alloc_arch="wf",
        sw_alloc_arch="wf",
        speculation="pessimistic",
        seed=3,
        warmup_cycles=60,
        measure_cycles=200,
        drain_cycles=200,
    )
    base.update(overrides)
    return SimulationConfig(**base)


class TestAccountingModel:
    def test_direct_attributes_interval(self):
        clock = FakeClock()
        prof = PhaseProfiler(clock=clock)
        t0 = prof.begin()
        clock.advance(2.0)
        prof.direct("setup", t0)
        assert prof.totals["setup"] == pytest.approx(2.0)
        assert prof.nested == 0.0

    def test_outer_subtracts_nested(self):
        clock = FakeClock()
        prof = PhaseProfiler(clock=clock)
        t0 = prof.begin()
        clock.advance(1.0)  # outer work before the nested phase
        t1 = prof.begin()
        clock.advance(3.0)  # nested vc_alloc
        prof.phase("vc_alloc", t1)
        clock.advance(0.5)  # outer work after
        prof.outer("sw_alloc", t0)
        assert prof.totals["vc_alloc"] == pytest.approx(3.0)
        assert prof.totals["sw_alloc"] == pytest.approx(1.5)
        # Every second attributed exactly once.
        assert prof.total() == pytest.approx(4.5)
        assert prof.nested == 0.0  # reset for the next segment

    def test_sequential_outers_chain(self):
        clock = FakeClock()
        prof = PhaseProfiler(clock=clock)
        t0 = prof.begin()
        clock.advance(1.0)
        t0 = prof.outer("delivery", t0)  # returns now: segments chain
        clock.advance(2.0)
        prof.outer("traffic", t0)
        assert prof.totals["delivery"] == pytest.approx(1.0)
        assert prof.totals["traffic"] == pytest.approx(2.0)

    def test_report_schema_and_coverage(self):
        clock = FakeClock()
        prof = PhaseProfiler(clock=clock)
        t0 = prof.begin()
        clock.advance(9.5)
        prof.direct("sw_alloc", t0)
        report = prof.report(wall_s=10.0)
        assert report["schema"] == PROFILE_SCHEMA
        assert report["coverage"] == pytest.approx(0.95)
        assert report["phases"] == {"sw_alloc": 9.5}
        # Zero phases are dropped from the snapshot.
        assert "routing" not in report["phases"]

    def test_phase_names_are_the_documented_taxonomy(self):
        prof = PhaseProfiler(clock=FakeClock())
        assert set(prof.totals) == set(PHASES)


class TestProfilePoint:
    @pytest.mark.parametrize("kernel", KERNELS)
    def test_coverage_clears_acceptance_bar(self, kernel):
        report = profile_point(_cfg(), kernel=kernel)
        assert report["schema"] == PROFILE_SCHEMA
        # Acceptance criterion: attributed phases sum to >=95% of the
        # measured wall time on every kernel.
        assert report["coverage"] >= 0.95
        assert set(report["phases"]) <= set(PHASES)
        # The simulation actually allocates: the core phases all appear.
        for name in ("traffic", "sw_alloc", "link_traversal", "setup"):
            assert report["phases"].get(name, 0.0) > 0.0

    def test_vc_alloc_attributed_under_contention(self):
        report = profile_point(_cfg(injection_rate=0.35), kernel="fast")
        assert report["phases"].get("vc_alloc", 0.0) > 0.0
        assert report["phases"].get("routing", 0.0) > 0.0


class TestBitIdentity:
    @pytest.mark.parametrize("kernel", KERNELS)
    def test_profiler_does_not_change_results(self, kernel):
        cfg = _cfg()
        plain = run_simulation(cfg, kernel=kernel)
        profiled = run_simulation(
            cfg, kernel=kernel, profiler=PhaseProfiler()
        )
        assert plain.to_dict() == profiled.to_dict()

    def test_compiled_router_recovers_after_detach(self):
        # A profiled compiled run followed by a plain one on the same
        # design point must re-select the unprofiled variant (the entry
        # check bootstraps per cycle) and stay bit-identical.
        cfg = _cfg()
        first = run_simulation(cfg, kernel="compiled",
                               profiler=PhaseProfiler())
        second = run_simulation(cfg, kernel="compiled")
        assert first.to_dict() == second.to_dict()
