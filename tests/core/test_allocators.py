"""Unit tests for the generic allocator implementations."""

import numpy as np
import pytest

from repro.core import (
    IterativeSLIPAllocator,
    MaximumSizeAllocator,
    SeparableInputFirstAllocator,
    SeparableOutputFirstAllocator,
    WavefrontAllocator,
    is_matching,
    is_maximal_matching,
    matching_size,
    maximum_matching_size,
)
from repro.core.arbiters import MatrixArbiter
from repro.core.base import as_request_matrix
from repro.core.maxsize import hopcroft_karp

ALL_ALLOCATORS = [
    SeparableInputFirstAllocator,
    SeparableOutputFirstAllocator,
    WavefrontAllocator,
    MaximumSizeAllocator,
    IterativeSLIPAllocator,
]
MAXIMAL_ALLOCATORS = [WavefrontAllocator, MaximumSizeAllocator]


def _rand_requests(rng, m, n, density):
    return rng.random((m, n)) < density


class TestBaseHelpers:
    def test_as_request_matrix_rejects_1d(self):
        with pytest.raises(ValueError):
            as_request_matrix([True, False])

    def test_as_request_matrix_rejects_wrong_shape(self):
        with pytest.raises(ValueError):
            as_request_matrix(np.zeros((2, 3), dtype=bool), shape=(3, 2))

    def test_is_matching_subset_rule(self):
        req = np.zeros((2, 2), dtype=bool)
        gnt = np.zeros((2, 2), dtype=bool)
        gnt[0, 0] = True  # grant without request
        assert not is_matching(req, gnt)

    def test_is_matching_row_rule(self):
        req = np.ones((2, 2), dtype=bool)
        gnt = np.zeros((2, 2), dtype=bool)
        gnt[0, 0] = gnt[0, 1] = True
        assert not is_matching(req, gnt)

    def test_is_matching_col_rule(self):
        req = np.ones((2, 2), dtype=bool)
        gnt = np.zeros((2, 2), dtype=bool)
        gnt[0, 0] = gnt[1, 0] = True
        assert not is_matching(req, gnt)

    def test_is_maximal_detects_missed_grant(self):
        req = np.eye(3, dtype=bool)
        gnt = np.zeros((3, 3), dtype=bool)
        gnt[0, 0] = True
        assert is_matching(req, gnt)
        assert not is_maximal_matching(req, gnt)

    def test_empty_matching_of_empty_requests_is_maximal(self):
        req = np.zeros((3, 3), dtype=bool)
        gnt = np.zeros((3, 3), dtype=bool)
        assert is_maximal_matching(req, gnt)

    def test_matching_size(self):
        gnt = np.eye(4, dtype=bool)
        assert matching_size(gnt) == 4


@pytest.mark.parametrize("cls", ALL_ALLOCATORS)
class TestAllocatorContract:
    def test_grants_are_matchings(self, cls):
        rng = np.random.default_rng(7)
        alloc = cls(5, 5)
        for density in (0.1, 0.4, 0.9):
            for _ in range(50):
                req = _rand_requests(rng, 5, 5, density)
                gnt = alloc.allocate(req)
                assert is_matching(req, gnt)

    def test_rectangular_matrices(self, cls):
        rng = np.random.default_rng(8)
        for m, n in [(3, 7), (7, 3), (1, 5), (5, 1)]:
            alloc = cls(m, n)
            for _ in range(30):
                req = _rand_requests(rng, m, n, 0.5)
                gnt = alloc.allocate(req)
                assert is_matching(req, gnt)

    def test_empty_requests_give_empty_grants(self, cls):
        alloc = cls(4, 4)
        gnt = alloc.allocate(np.zeros((4, 4), dtype=bool))
        assert not gnt.any()

    def test_identity_requests_fully_granted(self, cls):
        # Non-conflicting requests are granted by every implementation
        # (Section 4.3.2: "all three allocator types are guaranteed to
        # grant non-conflicting requests").
        alloc = cls(4, 4)
        req = np.eye(4, dtype=bool)
        for _ in range(5):
            assert matching_size(alloc.allocate(req)) == 4

    def test_shape_validation(self, cls):
        alloc = cls(3, 3)
        with pytest.raises(ValueError):
            alloc.allocate(np.zeros((3, 4), dtype=bool))

    def test_invalid_dimensions(self, cls):
        with pytest.raises(ValueError):
            cls(0, 3)

    def test_reset_reproduces_sequence(self, cls):
        rng = np.random.default_rng(9)
        reqs = [_rand_requests(rng, 4, 4, 0.6) for _ in range(10)]
        alloc = cls(4, 4)
        first = [alloc.allocate(r).copy() for r in reqs]
        alloc.reset()
        second = [alloc.allocate(r).copy() for r in reqs]
        for a, b in zip(first, second):
            assert np.array_equal(a, b)


@pytest.mark.parametrize("cls", MAXIMAL_ALLOCATORS)
class TestMaximalAllocators:
    def test_maximal(self, cls):
        rng = np.random.default_rng(10)
        alloc = cls(6, 6)
        for _ in range(100):
            req = _rand_requests(rng, 6, 6, 0.3)
            gnt = alloc.allocate(req)
            assert is_maximal_matching(req, gnt)


class TestSeparable:
    def test_input_first_single_bid_per_row(self):
        # With a full request matrix, input-first can produce at most
        # min(m, n) grants but often fewer due to bid collisions; on a
        # matrix where all rows request only column 0 exactly one grant
        # results.
        alloc = SeparableInputFirstAllocator(4, 4)
        req = np.zeros((4, 4), dtype=bool)
        req[:, 0] = True
        gnt = alloc.allocate(req)
        assert matching_size(gnt) == 1

    def test_output_first_single_offer_per_column(self):
        alloc = SeparableOutputFirstAllocator(4, 4)
        req = np.zeros((4, 4), dtype=bool)
        req[0, :] = True  # one requester wants everything
        gnt = alloc.allocate(req)
        assert matching_size(gnt) == 1

    def test_not_always_maximal(self):
        # Classic separable lockout: rows 0 and 1 both request col 0 and
        # col 1.  Input-first with aligned pointers may send both bids to
        # the same column.  We only assert the *possibility* over a
        # stream: wavefront always achieves 2, separable sometimes 1.
        rng = np.random.default_rng(11)
        alloc = SeparableInputFirstAllocator(4, 4)
        wf = WavefrontAllocator(4, 4)
        deficits = 0
        for _ in range(200):
            req = _rand_requests(rng, 4, 4, 0.6)
            if matching_size(alloc.allocate(req)) < matching_size(wf.allocate(req)):
                deficits += 1
        assert deficits > 0

    def test_matrix_arbiter_variant(self):
        rng = np.random.default_rng(12)
        alloc = SeparableInputFirstAllocator(4, 4, arbiter_factory=MatrixArbiter)
        for _ in range(50):
            req = _rand_requests(rng, 4, 4, 0.5)
            assert is_matching(req, alloc.allocate(req))

    def test_fairness_under_persistent_conflict(self):
        # Two rows permanently contend for a single column; the
        # on-success priority update must alternate grants.
        alloc = SeparableInputFirstAllocator(2, 2)
        req = np.array([[True, False], [True, False]])
        winners = []
        for _ in range(10):
            gnt = alloc.allocate(req)
            winners.append(int(np.flatnonzero(gnt[:, 0])[0]))
        assert winners.count(0) == 5
        assert winners.count(1) == 5

    def test_output_first_fairness_under_persistent_conflict(self):
        alloc = SeparableOutputFirstAllocator(2, 2)
        req = np.array([[True, False], [True, False]])
        winners = [int(np.flatnonzero(alloc.allocate(req)[:, 0])[0]) for _ in range(10)]
        assert winners.count(0) == 5
        assert winners.count(1) == 5


class TestWavefront:
    def test_diagonal_rotates(self):
        wf = WavefrontAllocator(4, 4)
        assert wf.priority_diagonal == 0
        req = np.zeros((4, 4), dtype=bool)
        req[1, 2] = True
        wf.allocate(req)
        assert wf.priority_diagonal == 1

    def test_idle_cycles_hold_the_diagonal(self):
        """Rotate-after-every-*allocation*: an empty request matrix
        performs no allocation, so the priority diagonal must not move
        (regression for the idle-cycle rotation bug)."""
        wf = WavefrontAllocator(4, 4)
        empty = np.zeros((4, 4), dtype=bool)
        req = np.zeros((4, 4), dtype=bool)
        req[0, 0] = True

        seen = []
        # Interleave idle cycles with real allocations: the diagonal
        # sequence must be driven by allocations alone.
        for _ in range(3):
            seen.append(wf.priority_diagonal)
            wf.allocate(empty)
            assert wf.priority_diagonal == seen[-1]
            grants = wf.allocate(req)
            assert grants.any()
        assert seen == [0, 1, 2]

    def test_fixed_priority_ablation_unaffected_by_idle(self):
        wf = WavefrontAllocator(3, 3, rotate_priority=False)
        wf.allocate(np.zeros((3, 3), dtype=bool))
        assert wf.priority_diagonal == 0

    def test_fixed_priority_variant_starves(self):
        wf = WavefrontAllocator(2, 2, rotate_priority=False)
        req = np.array([[True, True], [True, True]])
        # Fixed diagonal 0 always grants the same anti-diagonal cells
        # {(0,0),(1,1)}.
        for _ in range(5):
            gnt = wf.allocate(req)
            assert gnt[0, 0] and gnt[1, 1]

    def test_rotation_shares_grants(self):
        wf = WavefrontAllocator(2, 2)
        req = np.ones((2, 2), dtype=bool)
        patterns = {tuple(wf.allocate(req).ravel().tolist()) for _ in range(4)}
        assert len(patterns) == 2  # both diagonals get priority

    def test_full_matrix_gets_perfect_matching(self):
        wf = WavefrontAllocator(5, 5)
        req = np.ones((5, 5), dtype=bool)
        assert matching_size(wf.allocate(req)) == 5

    def test_rectangular_padding(self):
        wf = WavefrontAllocator(2, 6)
        req = np.ones((2, 6), dtype=bool)
        for _ in range(8):
            gnt = wf.allocate(req)
            assert matching_size(gnt) == 2
            assert is_maximal_matching(req, gnt)


class TestMaximumSize:
    def test_matches_bruteforce_on_small_matrices(self):
        rng = np.random.default_rng(13)

        def brute_force(req):
            m, n = req.shape
            best = 0
            cols = list(range(n))

            def rec(row, used, count):
                nonlocal best
                best = max(best, count)
                if row == m:
                    return
                rec(row + 1, used, count)
                for j in cols:
                    if req[row, j] and j not in used:
                        rec(row + 1, used | {j}, count + 1)

            rec(0, frozenset(), 0)
            return best

        for _ in range(40):
            req = rng.random((4, 4)) < 0.45
            assert maximum_matching_size(req) == brute_force(req)

    def test_beats_or_ties_everyone(self):
        rng = np.random.default_rng(14)
        others = [
            SeparableInputFirstAllocator(5, 5),
            SeparableOutputFirstAllocator(5, 5),
            WavefrontAllocator(5, 5),
        ]
        for _ in range(100):
            req = rng.random((5, 5)) < 0.5
            ms = maximum_matching_size(req)
            for alloc in others:
                assert matching_size(alloc.allocate(req)) <= ms

    def test_hopcroft_karp_known_case(self):
        # K_{3,3} minus a perfect matching still has a perfect matching.
        adjacency = [[1, 2], [0, 2], [0, 1]]
        match = hopcroft_karp(adjacency, 3)
        assert sorted(match) == [0, 1, 2]

    def test_hopcroft_karp_empty(self):
        assert hopcroft_karp([[], []], 3) == [-1, -1]

    def test_augmenting_path_needed(self):
        # Greedy would match row0-col0 and strand row1; HK must augment.
        req = np.array([[True, True], [True, False]])
        assert maximum_matching_size(req) == 2


class TestIterativeSLIP:
    def test_more_iterations_never_hurt(self):
        rng = np.random.default_rng(15)
        one = IterativeSLIPAllocator(6, 6, iterations=1)
        four = IterativeSLIPAllocator(6, 6, iterations=4)
        total1 = total4 = 0
        for _ in range(200):
            req = rng.random((6, 6)) < 0.6
            total1 += matching_size(one.allocate(req))
            total4 += matching_size(four.allocate(req))
        assert total4 >= total1

    def test_n_iterations_give_maximal(self):
        rng = np.random.default_rng(16)
        alloc = IterativeSLIPAllocator(5, 5, iterations=5)
        for _ in range(100):
            req = rng.random((5, 5)) < 0.5
            assert is_maximal_matching(req, alloc.allocate(req))

    def test_iterations_validation(self):
        with pytest.raises(ValueError):
            IterativeSLIPAllocator(4, 4, iterations=0)

    def test_desynchronization_under_full_load(self):
        # Under persistent full load iSLIP pointers desynchronize and the
        # allocator achieves 100% throughput (a perfect matching each
        # cycle) after a warm-up.
        alloc = IterativeSLIPAllocator(4, 4, iterations=1)
        req = np.ones((4, 4), dtype=bool)
        sizes = [matching_size(alloc.allocate(req)) for _ in range(20)]
        assert all(s == 4 for s in sizes[8:])
