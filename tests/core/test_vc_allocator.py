"""Unit tests for the VC allocator front-ends (Figure 3)."""

import numpy as np
import pytest

from repro.core import VC_ALLOCATOR_ARCHS, VCAllocator, VCPartition, VCRequest


def _empty(alloc):
    return [None] * (alloc.num_ports * alloc.num_vcs)


def _req(part, vc_in, port, resource_class=None):
    return VCRequest(port, tuple(part.candidate_vcs(vc_in, resource_class)))


def _grant_valid(alloc, requests, grants):
    """Check grant-side invariants of a VC allocation."""
    used_outputs = set()
    for i, g in enumerate(grants):
        if g is None:
            continue
        req = requests[i]
        assert req is not None, f"grant without request at {i}"
        port, vc = g
        assert port == req.output_port
        assert vc in req.candidate_vcs
        assert (port, vc) not in used_outputs, "output VC granted twice"
        used_outputs.add((port, vc))


@pytest.fixture(params=VC_ALLOCATOR_ARCHS)
def arch(request):
    return request.param


class TestBasics:
    def test_invalid_arch(self):
        with pytest.raises(ValueError):
            VCAllocator(5, VCPartition.mesh(1), arch="maxsize")

    def test_invalid_ports(self):
        with pytest.raises(ValueError):
            VCAllocator(0, VCPartition.mesh(1))

    def test_wrong_request_length(self, arch):
        alloc = VCAllocator(5, VCPartition.mesh(1), arch=arch)
        with pytest.raises(ValueError, match="request slots"):
            alloc.allocate([None] * 3)

    def test_port_out_of_range(self, arch):
        part = VCPartition.mesh(1)
        alloc = VCAllocator(5, part, arch=arch)
        reqs = _empty(alloc)
        reqs[0] = VCRequest(5, (0,))
        with pytest.raises(ValueError, match="output port"):
            alloc.allocate(reqs)

    def test_empty_candidates_rejected(self, arch):
        alloc = VCAllocator(5, VCPartition.mesh(1), arch=arch)
        reqs = _empty(alloc)
        reqs[0] = VCRequest(1, ())
        with pytest.raises(ValueError, match="empty candidate"):
            alloc.allocate(reqs)

    def test_sparse_rejects_illegal_transition(self, arch):
        part = VCPartition.mesh(1)  # V=2, request class: VC0, reply: VC1
        alloc = VCAllocator(5, part, arch=arch, sparse=True)
        reqs = _empty(alloc)
        reqs[0] = VCRequest(1, (1,))  # request-class VC asking for reply VC
        with pytest.raises(ValueError, match="illegal"):
            alloc.allocate(reqs)

    def test_dense_allows_any_transition(self, arch):
        part = VCPartition.mesh(1)
        alloc = VCAllocator(5, part, arch=arch, sparse=False)
        reqs = _empty(alloc)
        reqs[0] = VCRequest(1, (1,))
        grants = alloc.allocate(reqs)
        assert grants[0] == (1, 1)

    def test_no_requests(self, arch):
        alloc = VCAllocator(5, VCPartition.mesh(2), arch=arch)
        assert alloc.allocate(_empty(alloc)) == _empty(alloc)


class TestAllocationSemantics:
    def test_single_request_granted(self, arch):
        part = VCPartition.mesh(2)
        alloc = VCAllocator(5, part, arch=arch)
        reqs = _empty(alloc)
        vc_in = part.vc_index(0, 0, 0)
        reqs[vc_in] = _req(part, vc_in, 3)
        grants = alloc.allocate(reqs)
        _grant_valid(alloc, reqs, grants)
        assert grants[vc_in] is not None
        assert grants[vc_in][0] == 3

    def test_nonconflicting_requests_all_granted(self, arch):
        # Section 4.3.2: non-conflicting requests are always granted.
        part = VCPartition.mesh(2)
        alloc = VCAllocator(5, part, arch=arch)
        reqs = _empty(alloc)
        for p_in, port_out in [(0, 1), (1, 2), (2, 3)]:
            i = p_in * part.num_vcs + part.vc_index(0, 0, 0)
            reqs[i] = _req(part, part.vc_index(0, 0, 0), port_out)
        grants = alloc.allocate(reqs)
        _grant_valid(alloc, reqs, grants)
        assert sum(g is not None for g in grants) == 3

    def test_conflicting_single_vc_class_grants_exactly_one(self, arch):
        # C=1: two input VCs of the same class want the same output port;
        # only one output VC exists, so exactly one grant results.
        part = VCPartition.mesh(1)
        alloc = VCAllocator(5, part, arch=arch)
        reqs = _empty(alloc)
        v0 = part.vc_index(0, 0, 0)
        for p_in in (0, 1):
            reqs[p_in * part.num_vcs + v0] = _req(part, v0, 4)
        grants = alloc.allocate(reqs)
        _grant_valid(alloc, reqs, grants)
        assert sum(g is not None for g in grants) == 1

    def test_conflicting_multi_vc_class(self, arch):
        # C=2: two conflicting requests can both be granted on distinct
        # VCs; the wavefront always achieves this (maximum matching).
        part = VCPartition.mesh(2)
        alloc = VCAllocator(5, part, arch=arch)
        reqs = _empty(alloc)
        v0 = part.vc_index(0, 0, 0)
        for p_in in (0, 1):
            reqs[p_in * part.num_vcs + v0] = _req(part, v0, 4)
        grants = alloc.allocate(reqs)
        _grant_valid(alloc, reqs, grants)
        granted = sum(g is not None for g in grants)
        if arch == "wf":
            assert granted == 2
        else:
            assert granted >= 1

    def test_fairness_on_persistent_conflict(self, arch):
        part = VCPartition.mesh(1)
        alloc = VCAllocator(5, part, arch=arch)
        v0 = part.vc_index(0, 0, 0)
        counts = {0: 0, 1: 0}
        for _ in range(20):
            reqs = _empty(alloc)
            for p_in in (0, 1):
                reqs[p_in * part.num_vcs + v0] = _req(part, v0, 4)
            grants = alloc.allocate(reqs)
            for p_in in (0, 1):
                if grants[p_in * part.num_vcs + v0] is not None:
                    counts[p_in] += 1
        assert counts[0] > 0 and counts[1] > 0
        assert counts[0] + counts[1] == 20

    def test_reset_reproduces(self, arch):
        part = VCPartition.fbfly(2)
        alloc = VCAllocator(10, part, arch=arch)
        rng = np.random.default_rng(0)

        def random_requests():
            reqs = _empty(alloc)
            for p_in in range(10):
                for v_in in range(part.num_vcs):
                    if rng.random() < 0.3:
                        reqs[p_in * part.num_vcs + v_in] = _req(
                            part, v_in, int(rng.integers(10))
                        )
            return reqs

        streams = [random_requests() for _ in range(5)]
        first = [alloc.allocate(r) for r in streams]
        alloc.reset()
        second = [alloc.allocate(r) for r in streams]
        assert first == second

    def test_random_stress_valid(self, arch):
        part = VCPartition.fbfly(2)
        alloc = VCAllocator(10, part, arch=arch)
        rng = np.random.default_rng(1)
        for _ in range(30):
            reqs = _empty(alloc)
            for p_in in range(10):
                for v_in in range(part.num_vcs):
                    if rng.random() < 0.4:
                        reqs[p_in * part.num_vcs + v_in] = _req(
                            part, v_in, int(rng.integers(10))
                        )
            grants = alloc.allocate(reqs)
            _grant_valid(alloc, reqs, grants)


class TestSparseWavefrontPartitioning:
    def test_sparse_wf_uses_per_message_class_blocks(self):
        part = VCPartition.fbfly(2)
        sparse = VCAllocator(10, part, arch="wf", sparse=True)
        dense = VCAllocator(10, part, arch="wf", sparse=False)
        assert len(sparse._wavefronts) == 2
        assert len(dense._wavefronts) == 1
        block = 10 * part.num_resource_classes * part.vcs_per_class
        assert sparse._wavefronts[0].shape == (block, block)

    def test_sparse_and_dense_grant_counts_match(self):
        # Message classes never interact, so splitting the wavefront into
        # per-class blocks must not change the number of grants.
        part = VCPartition.mesh(2)
        sparse = VCAllocator(5, part, arch="wf", sparse=True)
        dense = VCAllocator(5, part, arch="wf", sparse=False)
        rng = np.random.default_rng(2)
        for _ in range(50):
            reqs = [None] * (5 * part.num_vcs)
            for p_in in range(5):
                for v_in in range(part.num_vcs):
                    if rng.random() < 0.5:
                        reqs[p_in * part.num_vcs + v_in] = _req(
                            part, v_in, int(rng.integers(5))
                        )
            g_sparse = sparse.allocate(reqs)
            g_dense = dense.allocate(reqs)
            assert sum(g is not None for g in g_sparse) == sum(
                g is not None for g in g_dense
            )

    def test_mesh_single_message_class_grants_cross_check(self):
        # Within one class the sparse/dense wavefronts see identical
        # request matrices.
        part = VCPartition(1, 1, 4)
        alloc = VCAllocator(5, part, arch="wf", sparse=True)
        assert len(alloc._wavefronts) == 1
