"""Unit tests for speculative switch allocation (Figure 9)."""

import numpy as np
import pytest

from repro.core import (
    SPECULATION_SCHEMES,
    SpeculativeSwitchAllocator,
)


def _none_reqs(P, V):
    return [[None] * V for _ in range(P)]


def _combined_valid(result, P):
    """Combined grants must form a port-level matching."""
    combined = result.combined()
    used_out = set()
    for p, g in enumerate(combined):
        if g is None:
            continue
        _, q = g
        assert q not in used_out
        used_out.add(q)
    # Non-speculative and speculative grants never collide on an input.
    for ns, sp in zip(result.nonspec, result.spec):
        assert ns is None or sp is None


@pytest.fixture(params=SPECULATION_SCHEMES)
def scheme(request):
    return request.param


class TestBasics:
    def test_invalid_scheme(self):
        with pytest.raises(ValueError):
            SpeculativeSwitchAllocator(5, 2, scheme="optimistic")

    def test_nonspec_scheme_ignores_speculation(self):
        alloc = SpeculativeSwitchAllocator(4, 2, scheme="nonspec")
        spec = _none_reqs(4, 2)
        spec[0][0] = 1
        res = alloc.allocate(_none_reqs(4, 2), spec)
        assert res.spec == [None] * 4
        assert res.spec_discarded == 0

    def test_spec_only_traffic_granted(self, scheme):
        if scheme == "nonspec":
            pytest.skip("baseline has no speculative path")
        alloc = SpeculativeSwitchAllocator(4, 2, scheme=scheme)
        spec = _none_reqs(4, 2)
        spec[0][0] = 1
        res = alloc.allocate(_none_reqs(4, 2), spec)
        assert res.spec[0] == (0, 1)
        assert res.spec_discarded == 0

    def test_nonspec_traffic_granted(self, scheme):
        alloc = SpeculativeSwitchAllocator(4, 2, scheme=scheme)
        ns = _none_reqs(4, 2)
        ns[2][1] = 3
        res = alloc.allocate(ns, _none_reqs(4, 2))
        assert res.nonspec[2] == (1, 3)


class TestMasking:
    def test_output_conflict_masks_speculative(self, scheme):
        if scheme == "nonspec":
            pytest.skip()
        alloc = SpeculativeSwitchAllocator(4, 2, scheme=scheme)
        ns = _none_reqs(4, 2)
        ns[0][0] = 3
        spec = _none_reqs(4, 2)
        spec[1][0] = 3  # same output port
        res = alloc.allocate(ns, spec)
        assert res.nonspec[0] == (0, 3)
        assert res.spec[1] is None
        assert res.spec_discarded == 1

    def test_input_conflict_masks_speculative(self, scheme):
        # An input port with both non-spec and spec activity: the spec
        # grant on the same input must be suppressed.  (The router never
        # issues both for the same VC, but different VCs can.)
        if scheme == "nonspec":
            pytest.skip()
        alloc = SpeculativeSwitchAllocator(4, 2, scheme=scheme)
        ns = _none_reqs(4, 2)
        ns[0][0] = 1
        spec = _none_reqs(4, 2)
        spec[0][1] = 2  # same input port, different VC and output
        res = alloc.allocate(ns, spec)
        assert res.nonspec[0] == (0, 1)
        assert res.spec[0] is None
        assert res.spec_discarded == 1

    def test_pessimistic_masks_on_losing_request(self):
        # The defining difference (Section 5.2): a non-speculative
        # request that LOSES arbitration still masks a speculative grant
        # under the pessimistic scheme, but not under the conventional
        # one.
        P, V = 4, 2
        ns = _none_reqs(P, V)
        ns[0][0] = 3  # will win output 3
        ns[1][0] = 3  # will lose output 3 (conflict) -- but it is still
        # a request on input 1
        spec = _none_reqs(P, V)
        spec[1][1] = 2  # spec grant on input 1, output 2

        pess = SpeculativeSwitchAllocator(P, V, scheme="pessimistic")
        conv = SpeculativeSwitchAllocator(P, V, scheme="conventional")

        res_p = pess.allocate(ns, spec)
        res_c = conv.allocate(ns, spec)

        # Exactly one non-spec winner at output 3 in both cases.
        ns_winners = [g for g in res_c.nonspec if g is not None]
        assert len(ns_winners) == 1 and ns_winners[0][1] == 3

        # Conventional: input 1 has no non-spec *grant*, so the spec
        # grant survives.  Pessimistic: input 1 has a non-spec *request*,
        # so the spec grant dies.
        if res_c.nonspec[1] is None:
            assert res_c.spec[1] == (1, 2)
        assert res_p.spec[1] is None or res_p.nonspec[1] is not None
        # With round-robin initial state, port 0 wins output 3.
        assert res_p.nonspec[1] is None
        assert res_p.spec[1] is None
        assert res_p.spec_discarded == 1

    def test_pessimistic_masks_on_losing_output_request(self):
        # Symmetric column case: a spec grant to an output that some
        # non-spec request targets (even if that request lost) dies under
        # pessimistic masking.
        P, V = 4, 2
        ns = _none_reqs(P, V)
        ns[0][0] = 3
        ns[1][0] = 3  # loses
        spec = _none_reqs(P, V)
        spec[2][0] = 3  # spec bid for contested output

        conv = SpeculativeSwitchAllocator(P, V, scheme="conventional")
        pess = SpeculativeSwitchAllocator(P, V, scheme="pessimistic")
        # Both schemes mask here (output 3 has a non-spec grant AND
        # request), so the spec grant dies either way.
        assert conv.allocate(ns, spec).spec[2] is None
        assert pess.allocate(ns, spec).spec[2] is None

    def test_pessimistic_never_beats_conventional(self):
        # Pessimistic masking discards a superset of what conventional
        # discards (requests superset grants) for identical inputs.
        rng = np.random.default_rng(6)
        P, V = 5, 2
        for _ in range(100):
            ns = _none_reqs(P, V)
            spec = _none_reqs(P, V)
            for p in range(P):
                for v in range(V):
                    r = rng.random()
                    if r < 0.25:
                        ns[p][v] = int(rng.integers(P))
                    elif r < 0.4:
                        spec[p][v] = int(rng.integers(P))
            conv = SpeculativeSwitchAllocator(P, V, scheme="conventional")
            pess = SpeculativeSwitchAllocator(P, V, scheme="pessimistic")
            res_c = conv.allocate(ns, spec)
            res_p = pess.allocate(ns, spec)
            surv_c = {p for p, g in enumerate(res_c.spec) if g is not None}
            surv_p = {p for p, g in enumerate(res_p.spec) if g is not None}
            assert surv_p <= surv_c

    def test_combined_always_valid(self, scheme):
        rng = np.random.default_rng(7)
        P, V = 5, 4
        alloc = SpeculativeSwitchAllocator(P, V, scheme=scheme)
        for _ in range(60):
            ns = _none_reqs(P, V)
            spec = _none_reqs(P, V)
            for p in range(P):
                for v in range(V):
                    r = rng.random()
                    if r < 0.3:
                        ns[p][v] = int(rng.integers(P))
                    elif r < 0.5:
                        spec[p][v] = int(rng.integers(P))
            res = alloc.allocate(ns, spec)
            _combined_valid(res, P)

    def test_zero_load_speculation_identical(self):
        # At "zero load" (a single head flit in the router) both schemes
        # grant the speculative request -- this is why the pessimistic
        # variant does not increase zero-load latency.
        for scheme in ("conventional", "pessimistic"):
            alloc = SpeculativeSwitchAllocator(5, 2, scheme=scheme)
            spec = _none_reqs(5, 2)
            spec[3][0] = 0
            res = alloc.allocate(_none_reqs(5, 2), spec)
            assert res.spec[3] == (0, 0), scheme

    def test_reset(self, scheme):
        alloc = SpeculativeSwitchAllocator(4, 2, scheme=scheme)
        ns = _none_reqs(4, 2)
        ns[0][0] = 1
        ns[1][0] = 1
        r1 = alloc.allocate(ns, _none_reqs(4, 2))
        alloc.reset()
        r2 = alloc.allocate(ns, _none_reqs(4, 2))
        assert r1.nonspec == r2.nonspec

    def test_wavefront_arch_supported(self, scheme):
        alloc = SpeculativeSwitchAllocator(4, 2, arch="wf", scheme=scheme)
        ns = _none_reqs(4, 2)
        ns[0][0] = 1
        res = alloc.allocate(ns, _none_reqs(4, 2))
        assert res.nonspec[0] == (0, 1)


def _arbiter_state(arb):
    """Deep-copy the priority state of any behavioural arbiter kind."""
    state = {}
    if hasattr(arb, "_pointer"):
        state["pointer"] = arb._pointer
    if hasattr(arb, "_beats"):
        state["beats"] = [list(row) for row in arb._beats]
    if hasattr(arb, "_group_arbs"):  # tree arbiter
        state["groups"] = [_arbiter_state(a) for a in arb._group_arbs]
        state["top"] = _arbiter_state(arb._top_arb)
    return state


def _spec_core_state(alloc):
    core = alloc._spec_alloc
    return {
        "vc": [_arbiter_state(a) for a in core._vc_arbs],
        "port": [_arbiter_state(a) for a in core._port_arbs],
    }


class TestKilledSpeculationLeavesPriorityUntouched:
    """A speculative grant masked off by the filter never happened, so
    the speculative core's arbiter priority state must not advance
    (update-on-success, the same iSLIP discipline the separable stages
    apply between their own two stages)."""

    @pytest.mark.parametrize("arbiter", ["rr", "m"])
    @pytest.mark.parametrize("arch", ["sep_if", "sep_of"])
    def test_pessimistic_kill_is_stateless(self, arch, arbiter):
        P, V = 4, 2
        alloc = SpeculativeSwitchAllocator(
            P, V, arch=arch, arbiter=arbiter, scheme="pessimistic"
        )
        ns = _none_reqs(P, V)
        ns[0][0] = 3
        spec = _none_reqs(P, V)
        spec[1][1] = 3  # masked: output 3 carries a non-spec request
        before = _spec_core_state(alloc)
        res = alloc.allocate(ns, spec)
        assert res.spec == [None] * P
        assert res.spec_discarded == 1
        assert _spec_core_state(alloc) == before

    @pytest.mark.parametrize("arbiter", ["rr", "m"])
    def test_conventional_kill_is_stateless(self, arbiter):
        P, V = 4, 2
        alloc = SpeculativeSwitchAllocator(
            P, V, arbiter=arbiter, scheme="conventional"
        )
        ns = _none_reqs(P, V)
        ns[0][0] = 2
        spec = _none_reqs(P, V)
        spec[3][0] = 2  # masked: output 2 carries a non-spec grant
        before = _spec_core_state(alloc)
        res = alloc.allocate(ns, spec)
        assert res.spec == [None] * P
        assert res.spec_discarded == 1
        assert _spec_core_state(alloc) == before

    @pytest.mark.parametrize("arbiter", ["rr", "m"])
    def test_surviving_grant_still_advances(self, arbiter):
        P, V = 4, 2
        alloc = SpeculativeSwitchAllocator(
            P, V, arbiter=arbiter, scheme="pessimistic"
        )
        spec = _none_reqs(P, V)
        spec[1][0] = 2
        spec[1][1] = 3  # contends in the VC stage at input 1
        before = _spec_core_state(alloc)
        res = alloc.allocate(_none_reqs(P, V), spec)
        assert res.spec[1] is not None
        assert _spec_core_state(alloc) != before

    def test_kill_does_not_shift_later_cycles(self):
        # End-to-end fairness check: two allocators that see the same
        # surviving grants must agree on all later cycles, regardless of
        # interleaved killed speculation.
        P, V = 4, 2
        a = SpeculativeSwitchAllocator(P, V, scheme="pessimistic")
        b = SpeculativeSwitchAllocator(P, V, scheme="pessimistic")

        # a sees a killed speculative grant; b sees nothing that cycle.
        ns = _none_reqs(P, V)
        ns[0][0] = 3
        spec = _none_reqs(P, V)
        spec[1][0] = 3
        res = a.allocate(ns, spec)
        assert res.spec_discarded == 1
        res_b = b.allocate(ns, _none_reqs(P, V))
        assert res.nonspec == res_b.nonspec

        # From here on, identical speculative traffic must produce
        # identical grants -- the killed grant left no trace in a.
        spec2 = _none_reqs(P, V)
        spec2[1][0] = 0
        spec2[1][1] = 2
        spec2[2][0] = 0
        for _ in range(3):
            ra = a.allocate(_none_reqs(P, V), spec2)
            rb = b.allocate(_none_reqs(P, V), spec2)
            assert ra.spec == rb.spec
