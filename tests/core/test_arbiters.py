"""Unit tests for arbiter primitives."""

import pytest

from repro.core.arbiters import (
    FixedPriorityArbiter,
    MatrixArbiter,
    RoundRobinArbiter,
    TreeArbiter,
    make_arbiter,
)

ALL_ARBITERS = [FixedPriorityArbiter, RoundRobinArbiter, MatrixArbiter]


def _mask(n, *indices):
    m = [False] * n
    for i in indices:
        m[i] = True
    return m


@pytest.mark.parametrize("cls", ALL_ARBITERS)
class TestArbiterContract:
    def test_no_requests_no_winner(self, cls):
        arb = cls(4)
        assert arb.select([False] * 4) is None

    def test_single_request_wins(self, cls):
        arb = cls(4)
        for i in range(4):
            assert arb.select(_mask(4, i)) == i

    def test_winner_is_a_requester(self, cls):
        arb = cls(5)
        reqs = _mask(5, 1, 3)
        for _ in range(10):
            w = arb.arbitrate(reqs)
            assert w in (1, 3)

    def test_wrong_width_rejected(self, cls):
        arb = cls(4)
        with pytest.raises(ValueError):
            arb.select([True] * 5)

    def test_advance_out_of_range_rejected(self, cls):
        arb = cls(4)
        with pytest.raises(ValueError):
            arb.advance(4)

    def test_select_is_pure(self, cls):
        arb = cls(4)
        reqs = _mask(4, 1, 2)
        first = arb.select(reqs)
        for _ in range(5):
            assert arb.select(reqs) == first

    def test_zero_inputs_rejected(self, cls):
        with pytest.raises(ValueError):
            cls(0)

    def test_reset_restores_initial_choice(self, cls):
        arb = cls(4)
        reqs = [True] * 4
        initial = arb.select(reqs)
        arb.arbitrate(reqs)
        arb.arbitrate(reqs)
        arb.reset()
        assert arb.select(reqs) == initial

    def test_arbitrate_update_false_keeps_state(self, cls):
        arb = cls(4)
        reqs = [True] * 4
        w1 = arb.arbitrate(reqs, update=False)
        w2 = arb.arbitrate(reqs, update=False)
        assert w1 == w2

    def test_single_input_arbiter(self, cls):
        arb = cls(1)
        assert arb.select([True]) == 0
        assert arb.select([False]) is None
        arb.advance(0)
        assert arb.select([True]) == 0


class TestFixedPriority:
    def test_lowest_index_always_wins(self):
        arb = FixedPriorityArbiter(5)
        assert arb.arbitrate(_mask(5, 2, 4)) == 2
        # No rotation: same winner forever.
        assert arb.arbitrate(_mask(5, 2, 4)) == 2

    def test_starvation(self):
        arb = FixedPriorityArbiter(3)
        for _ in range(10):
            assert arb.arbitrate([True, True, False]) == 0


class TestRoundRobin:
    def test_pointer_moves_past_winner(self):
        arb = RoundRobinArbiter(4)
        assert arb.arbitrate([True] * 4) == 0
        assert arb.pointer == 1
        assert arb.arbitrate([True] * 4) == 1
        assert arb.pointer == 2

    def test_round_robin_order_under_full_load(self):
        arb = RoundRobinArbiter(4)
        winners = [arb.arbitrate([True] * 4) for _ in range(8)]
        assert winners == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_skips_idle_inputs(self):
        arb = RoundRobinArbiter(4)
        winners = [arb.arbitrate(_mask(4, 1, 3)) for _ in range(4)]
        assert winners == [1, 3, 1, 3]

    def test_wraps_around(self):
        arb = RoundRobinArbiter(4)
        arb.advance(3)  # pointer -> 0
        assert arb.pointer == 0
        arb.advance(2)  # pointer -> 3
        assert arb.select(_mask(4, 0, 1)) == 0

    def test_weak_fairness_bound(self):
        # A persistent requester is served at least once per n grants.
        n = 6
        arb = RoundRobinArbiter(n)
        since_served = 0
        for _ in range(100):
            w = arb.arbitrate([True] * n)
            since_served = 0 if w == 5 else since_served + 1
            assert since_served < n


class TestMatrixArbiter:
    def test_initial_priority_is_index_order(self):
        arb = MatrixArbiter(4)
        assert arb.select([True] * 4) == 0

    def test_winner_becomes_least_recently_served(self):
        arb = MatrixArbiter(3)
        assert arb.arbitrate([True] * 3) == 0
        # 0 lost priority to everyone.
        assert arb.beats(1, 0) and arb.beats(2, 0)
        assert arb.arbitrate([True] * 3) == 1
        assert arb.arbitrate([True] * 3) == 2
        assert arb.arbitrate([True] * 3) == 0

    def test_least_recently_served_property(self):
        # Serve 2, then with {0, 2} requesting, 0 must win (served less
        # recently).
        arb = MatrixArbiter(3)
        arb.advance(0)
        arb.advance(2)
        assert arb.select(_mask(3, 0, 2)) == 0

    def test_strong_fairness_under_full_load(self):
        n = 5
        arb = MatrixArbiter(n)
        winners = [arb.arbitrate([True] * n) for _ in range(3 * n)]
        for i in range(n):
            assert winners.count(i) == 3

    def test_priority_matrix_total_order_invariant(self):
        # For any pair exactly one of beats(i,j) / beats(j,i) holds.
        arb = MatrixArbiter(4)
        for _ in range(20):
            arb.arbitrate([True] * 4)
            for i in range(4):
                for j in range(i + 1, 4):
                    assert arb.beats(i, j) != arb.beats(j, i)


class TestTreeArbiter:
    def test_dimensions(self):
        arb = TreeArbiter(3, 4)
        assert arb.num_inputs == 12

    def test_selects_within_group(self):
        arb = TreeArbiter(2, 3)
        # Only group 1 has requests.
        reqs = [False, False, False, False, True, True]
        w = arb.select(reqs)
        assert w in (4, 5)

    def test_no_requests(self):
        arb = TreeArbiter(2, 2)
        assert arb.select([False] * 4) is None

    def test_rotates_across_groups(self):
        arb = TreeArbiter(2, 2)
        winners = [arb.arbitrate([True] * 4) for _ in range(4)]
        groups = [w // 2 for w in winners]
        # Top-level round robin alternates groups under full load.
        assert groups == [0, 1, 0, 1]

    def test_advance_routes_to_group(self):
        arb = TreeArbiter(2, 2)
        arb.arbitrate([True, True, False, False])  # winner 0, group 0
        # group 0's local pointer moved past 0.
        assert arb.select([True, True, False, False]) == 1

    def test_matrix_leaf_factory(self):
        arb = TreeArbiter(2, 2, MatrixArbiter)
        assert arb.arbitrate([True] * 4) == 0

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            TreeArbiter(0, 4)
        with pytest.raises(ValueError):
            TreeArbiter(4, 0)

    def test_full_coverage_under_load(self):
        arb = TreeArbiter(3, 3)
        winners = {arb.arbitrate([True] * 9) for _ in range(30)}
        assert winners == set(range(9))


class TestMakeArbiter:
    def test_kinds(self):
        assert isinstance(make_arbiter("rr", 3), RoundRobinArbiter)
        assert isinstance(make_arbiter("m", 3), MatrixArbiter)
        assert isinstance(make_arbiter("fixed", 3), FixedPriorityArbiter)

    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown arbiter kind"):
            make_arbiter("lru", 3)
