"""Detailed behavioural tests of separable allocation dynamics.

These pin down the second-order behaviours the paper's analysis leans
on: bid-collision lockouts (Section 4.3.2), desynchronization of the
priority state over time, and the difference between updating priority
on success vs. unconditionally.
"""

import numpy as np
import pytest

from repro.core import (
    SeparableInputFirstAllocator,
    SeparableOutputFirstAllocator,
    WavefrontAllocator,
    matching_size,
)


class TestLockoutDynamics:
    def test_input_first_bid_collision(self):
        # Both rows want {0, 1}; with aligned pointers both bid on the
        # same column in cycle 1 (1 grant), then desynchronize (2
        # grants thereafter).
        alloc = SeparableInputFirstAllocator(2, 2)
        req = np.ones((2, 2), dtype=bool)
        sizes = [matching_size(alloc.allocate(req)) for _ in range(6)]
        assert sizes[0] == 1  # aligned pointers collide
        assert all(s == 2 for s in sizes[1:])  # desynchronized

    def test_output_first_offer_collision(self):
        # Both columns offer to the same row initially; the row accepts
        # one, the other column's offer is wasted.
        alloc = SeparableOutputFirstAllocator(2, 2)
        req = np.ones((2, 2), dtype=bool)
        sizes = [matching_size(alloc.allocate(req)) for _ in range(6)]
        assert sizes[0] == 1
        assert all(s == 2 for s in sizes[1:])

    def test_wavefront_never_locks_out(self):
        wf = WavefrontAllocator(2, 2)
        req = np.ones((2, 2), dtype=bool)
        assert all(matching_size(wf.allocate(req)) == 2 for _ in range(6))

    def test_steady_state_throughput_under_full_load(self):
        # After desynchronization, separable allocators also sustain a
        # perfect matching per cycle under persistent full load -- the
        # reason the network-level gap is smaller than the open-loop
        # matching-quality gap (Section 5.3.3).
        for cls in (SeparableInputFirstAllocator, SeparableOutputFirstAllocator):
            alloc = cls(4, 4)
            req = np.ones((4, 4), dtype=bool)
            for _ in range(16):  # warm-up
                alloc.allocate(req)
            sizes = [matching_size(alloc.allocate(req)) for _ in range(16)]
            assert sum(sizes) / len(sizes) >= 3.5, cls.__name__


class TestPriorityUpdateRule:
    def test_losing_bid_keeps_priority(self):
        # Row 0's stage-1 arbiter must NOT advance when its bid loses
        # stage 2 -- otherwise a requester could be skipped repeatedly
        # (the starvation the iSLIP update rule prevents).
        alloc = SeparableInputFirstAllocator(2, 2)
        # Row 0 wants both columns; row 1 wants only column 0.
        req = np.array([[True, True], [True, False]])
        # Cycle 1: row 0 bids col 0 (pointer at 0), row 1 bids col 0;
        # col 0 grants row 0 (pointer at 0).  Row 1 lost: its (trivial)
        # state and col 0's pointer now favor row 1.
        g1 = alloc.allocate(req)
        assert g1[0, 0] and not g1[1, 0]
        # Cycle 2: row 0's pointer moved past col 0, so it bids col 1;
        # row 1 bids col 0 and now wins it: a perfect matching.
        g2 = alloc.allocate(req)
        assert g2[0, 1] and g2[1, 0]

    def test_row_arbiter_frozen_when_no_requests(self):
        alloc = SeparableInputFirstAllocator(2, 2)
        req = np.array([[True, True], [False, False]])
        g1 = alloc.allocate(req)
        col1 = int(np.flatnonzero(g1[0])[0])
        empty = np.zeros((2, 2), dtype=bool)
        for _ in range(3):
            alloc.allocate(empty)  # no requests: no state change
        g2 = alloc.allocate(req)
        col2 = int(np.flatnonzero(g2[0])[0])
        assert col2 == (col1 + 1) % 2  # exactly one advance since g1


class TestRectangularThroughput:
    @pytest.mark.parametrize("cls", [
        SeparableInputFirstAllocator,
        SeparableOutputFirstAllocator,
        WavefrontAllocator,
    ])
    def test_tall_matrix_saturates_columns(self, cls):
        # 8 requesters, 2 resources, full load: every cycle must grant
        # exactly 2 once state settles.
        alloc = cls(8, 2)
        req = np.ones((8, 2), dtype=bool)
        for _ in range(8):
            alloc.allocate(req)
        sizes = [matching_size(alloc.allocate(req)) for _ in range(8)]
        assert min(sizes) >= 1
        assert sum(sizes) >= 14  # near-perfect column utilization

    @pytest.mark.parametrize("cls", [
        SeparableInputFirstAllocator,
        SeparableOutputFirstAllocator,
        WavefrontAllocator,
    ])
    def test_wide_matrix_saturates_rows(self, cls):
        alloc = cls(2, 8)
        req = np.ones((2, 8), dtype=bool)
        for _ in range(8):
            alloc.allocate(req)
        sizes = [matching_size(alloc.allocate(req)) for _ in range(8)]
        assert sum(sizes) >= 14
