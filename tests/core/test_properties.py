"""Property-based tests (hypothesis) on core allocation invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    IterativeSLIPAllocator,
    MaximumSizeAllocator,
    SeparableInputFirstAllocator,
    SeparableOutputFirstAllocator,
    SwitchAllocator,
    VCAllocator,
    VCPartition,
    VCRequest,
    WavefrontAllocator,
    is_matching,
    is_maximal_matching,
    matching_size,
    maximum_matching_size,
)
from repro.core.arbiters import MatrixArbiter, RoundRobinArbiter


@st.composite
def request_matrices(draw, max_dim=8):
    m = draw(st.integers(1, max_dim))
    n = draw(st.integers(1, max_dim))
    bits = draw(st.lists(st.booleans(), min_size=m * n, max_size=m * n))
    return np.array(bits, dtype=bool).reshape(m, n)


@st.composite
def request_matrix_streams(draw, dim=5, max_len=6):
    length = draw(st.integers(1, max_len))
    mats = []
    for _ in range(length):
        bits = draw(st.lists(st.booleans(), min_size=dim * dim, max_size=dim * dim))
        mats.append(np.array(bits, dtype=bool).reshape(dim, dim))
    return mats


ALLOCATOR_FACTORIES = [
    lambda m, n: SeparableInputFirstAllocator(m, n),
    lambda m, n: SeparableInputFirstAllocator(m, n, arbiter_factory=MatrixArbiter),
    lambda m, n: SeparableOutputFirstAllocator(m, n),
    lambda m, n: WavefrontAllocator(m, n),
    lambda m, n: MaximumSizeAllocator(m, n),
    lambda m, n: IterativeSLIPAllocator(m, n, iterations=2),
]


@given(req=request_matrices())
@settings(max_examples=150, deadline=None)
def test_all_allocators_return_matchings(req):
    m, n = req.shape
    for factory in ALLOCATOR_FACTORIES:
        alloc = factory(m, n)
        gnt = alloc.allocate(req)
        assert is_matching(req, gnt)


@given(req=request_matrices())
@settings(max_examples=150, deadline=None)
def test_wavefront_maximal(req):
    m, n = req.shape
    gnt = WavefrontAllocator(m, n).allocate(req)
    assert is_maximal_matching(req, gnt)


@given(req=request_matrices())
@settings(max_examples=150, deadline=None)
def test_maxsize_upper_bounds_everything(req):
    m, n = req.shape
    upper = maximum_matching_size(req)
    for factory in ALLOCATOR_FACTORIES:
        assert matching_size(factory(m, n).allocate(req)) <= upper


@given(req=request_matrices(max_dim=6))
@settings(max_examples=100, deadline=None)
def test_maximal_at_least_half_of_maximum(req):
    # Any maximal matching is a 2-approximation of the maximum.
    m, n = req.shape
    gnt = WavefrontAllocator(m, n).allocate(req)
    assert 2 * matching_size(gnt) >= maximum_matching_size(req)


@given(stream=request_matrix_streams())
@settings(max_examples=60, deadline=None)
def test_allocators_deterministic_after_reset(stream):
    for factory in ALLOCATOR_FACTORIES:
        alloc = factory(5, 5)
        first = [alloc.allocate(r).copy() for r in stream]
        alloc.reset()
        second = [alloc.allocate(r).copy() for r in stream]
        for a, b in zip(first, second):
            assert np.array_equal(a, b)


@given(
    reqs=st.lists(st.booleans(), min_size=6, max_size=6),
    rounds=st.integers(1, 12),
)
@settings(max_examples=100, deadline=None)
def test_round_robin_serves_every_persistent_requester(reqs, rounds):
    if not any(reqs):
        return
    arb = RoundRobinArbiter(6)
    persistent = [i for i, r in enumerate(reqs) if r]
    served = set()
    for _ in range(6 * rounds):
        w = arb.arbitrate(reqs)
        served.add(w)
    assert served == set(persistent)


@given(data=st.data())
@settings(max_examples=80, deadline=None)
def test_matrix_arbiter_total_order(data):
    n = data.draw(st.integers(2, 6))
    arb = MatrixArbiter(n)
    for _ in range(data.draw(st.integers(0, 10))):
        reqs = data.draw(st.lists(st.booleans(), min_size=n, max_size=n))
        arb.arbitrate(reqs)
    for i in range(n):
        for j in range(i + 1, n):
            assert arb.beats(i, j) != arb.beats(j, i)


@given(data=st.data())
@settings(max_examples=60, deadline=None)
def test_switch_allocator_grants_valid(data):
    P = data.draw(st.integers(2, 6))
    V = data.draw(st.integers(1, 4))
    arch = data.draw(st.sampled_from(["sep_if", "sep_of", "wf"]))
    alloc = SwitchAllocator(P, V, arch=arch)
    for _ in range(data.draw(st.integers(1, 5))):
        reqs = [
            [
                data.draw(st.one_of(st.none(), st.integers(0, P - 1)))
                for _ in range(V)
            ]
            for _ in range(P)
        ]
        grants = alloc.allocate(reqs)
        used = set()
        for p, g in enumerate(grants):
            if g is None:
                continue
            vc, q = g
            assert reqs[p][vc] == q
            assert q not in used
            used.add(q)


@given(data=st.data())
@settings(max_examples=40, deadline=None)
def test_vc_allocator_grants_valid(data):
    C = data.draw(st.sampled_from([1, 2]))
    part = VCPartition.mesh(C)
    P = 5
    arch = data.draw(st.sampled_from(["sep_if", "sep_of", "wf"]))
    alloc = VCAllocator(P, part, arch=arch)
    V = part.num_vcs
    reqs = []
    for p in range(P):
        for v in range(V):
            if data.draw(st.booleans()):
                port = data.draw(st.integers(0, P - 1))
                reqs.append(VCRequest(port, tuple(part.candidate_vcs(v))))
            else:
                reqs.append(None)
    grants = alloc.allocate(reqs)
    used = set()
    for i, g in enumerate(grants):
        if g is None:
            continue
        req = reqs[i]
        assert req is not None
        port, vc = g
        assert port == req.output_port
        assert vc in req.candidate_vcs
        assert (port, vc) not in used
        used.add((port, vc))


@given(data=st.data())
@settings(max_examples=50, deadline=None)
def test_vc_partition_roundtrip(data):
    M = data.draw(st.integers(1, 3))
    R = data.draw(st.integers(1, 3))
    C = data.draw(st.integers(1, 4))
    part = VCPartition(M, R, C)
    for v in range(part.num_vcs):
        m, r, c = part.vc_fields(v)
        assert part.vc_index(m, r, c) == v
    # Identity transitions: legal transitions = M * R * C^2.
    assert part.num_legal_transitions() == M * R * C * C
