"""Unit tests for the switch allocator front-ends (Figure 8)."""

import numpy as np
import pytest

from repro.core import (
    SWITCH_ALLOCATOR_ARCHS,
    SwitchAllocator,
    port_request_matrix,
)


def _none_reqs(P, V):
    return [[None] * V for _ in range(P)]


def _check_grants(requests, grants, P):
    """Validate switch allocation invariants."""
    used_out = set()
    for p, g in enumerate(grants):
        if g is None:
            continue
        vc, q = g
        assert requests[p][vc] == q, "grant does not match a request"
        assert q not in used_out, "output port granted twice"
        used_out.add(q)


@pytest.fixture(params=SWITCH_ALLOCATOR_ARCHS)
def arch(request):
    return request.param


class TestBasics:
    def test_invalid_arch(self):
        with pytest.raises(ValueError):
            SwitchAllocator(5, 2, arch="nope")

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            SwitchAllocator(0, 2)
        with pytest.raises(ValueError):
            SwitchAllocator(5, 0)

    def test_wrong_port_count(self, arch):
        alloc = SwitchAllocator(3, 2, arch=arch)
        with pytest.raises(ValueError):
            alloc.allocate(_none_reqs(2, 2))

    def test_wrong_vc_count(self, arch):
        alloc = SwitchAllocator(3, 2, arch=arch)
        with pytest.raises(ValueError):
            alloc.allocate(_none_reqs(3, 3))

    def test_out_of_range_port(self, arch):
        alloc = SwitchAllocator(3, 1, arch=arch)
        reqs = [[3], [None], [None]]
        with pytest.raises(ValueError):
            alloc.allocate(reqs)

    def test_no_requests(self, arch):
        alloc = SwitchAllocator(4, 2, arch=arch)
        assert alloc.allocate(_none_reqs(4, 2)) == [None] * 4


class TestSemantics:
    def test_single_request_granted(self, arch):
        alloc = SwitchAllocator(4, 2, arch=arch)
        reqs = _none_reqs(4, 2)
        reqs[1][0] = 3
        grants = alloc.allocate(reqs)
        assert grants[1] == (0, 3)
        assert grants[0] is grants[2] is grants[3] is None

    def test_at_most_one_grant_per_input_port(self, arch):
        alloc = SwitchAllocator(4, 4, arch=arch)
        reqs = [[0, 1, 2, 3] for _ in range(4)]
        grants = alloc.allocate(reqs)
        _check_grants(reqs, grants, 4)
        # grants list has one slot per port, so per-input uniqueness is
        # structural; verify each grant exists and is valid.
        assert all(g is not None for g in grants) or True

    def test_nonconflicting_all_granted(self, arch):
        # Section 5.3.2: at low load all allocators grant everything.
        alloc = SwitchAllocator(4, 2, arch=arch)
        reqs = _none_reqs(4, 2)
        for p in range(4):
            reqs[p][0] = (p + 1) % 4
        grants = alloc.allocate(reqs)
        _check_grants(reqs, grants, 4)
        assert all(g is not None for g in grants)

    def test_conflict_grants_exactly_one(self, arch):
        alloc = SwitchAllocator(4, 1, arch=arch)
        reqs = [[2] for _ in range(4)]
        grants = alloc.allocate(reqs)
        _check_grants(reqs, grants, 4)
        assert sum(g is not None for g in grants) == 1

    def test_fairness_on_persistent_conflict(self, arch):
        alloc = SwitchAllocator(3, 1, arch=arch)
        winners = []
        for _ in range(12):
            grants = alloc.allocate([[0], [0], [None]])
            winners.append(next(p for p, g in enumerate(grants) if g is not None))
        assert winners.count(0) > 0 and winners.count(1) > 0

    def test_wavefront_maximal_on_port_matrix(self):
        alloc = SwitchAllocator(4, 2, arch="wf")
        rng = np.random.default_rng(3)
        for _ in range(50):
            reqs = _none_reqs(4, 2)
            for p in range(4):
                for v in range(2):
                    if rng.random() < 0.5:
                        reqs[p][v] = int(rng.integers(4))
            grants = alloc.allocate(reqs)
            _check_grants(reqs, grants, 4)
            # Maximality: any port-level request not granted must conflict.
            port_req = port_request_matrix(reqs, 4)
            rows = {p for p, g in enumerate(grants) if g is not None}
            cols = {g[1] for g in grants if g is not None}
            for p in range(4):
                for q in range(4):
                    if port_req[p, q]:
                        assert p in rows or q in cols

    def test_sep_if_forwards_single_request_per_port(self):
        # All VCs at port 0 request different outputs; ports 1..3 idle.
        # Input-first can still only win one output for port 0.
        alloc = SwitchAllocator(4, 4, arch="sep_if")
        reqs = _none_reqs(4, 4)
        reqs[0] = [0, 1, 2, 3]
        grants = alloc.allocate(reqs)
        assert grants[0] is not None
        assert sum(g is not None for g in grants) == 1

    def test_sep_of_picks_vc_among_granted_ports(self):
        # Port 0's VCs request outputs 1 and 2; both outputs offer to
        # port 0 (no contention); exactly one VC must win.
        alloc = SwitchAllocator(3, 2, arch="sep_of")
        reqs = _none_reqs(3, 2)
        reqs[0] = [1, 2]
        grants = alloc.allocate(reqs)
        assert grants[0] is not None
        vc, q = grants[0]
        assert (vc, q) in [(0, 1), (1, 2)]

    def test_random_stress(self, arch):
        rng = np.random.default_rng(4)
        alloc = SwitchAllocator(10, 4, arch=arch)
        for _ in range(40):
            reqs = _none_reqs(10, 4)
            for p in range(10):
                for v in range(4):
                    if rng.random() < 0.4:
                        reqs[p][v] = int(rng.integers(10))
            grants = alloc.allocate(reqs)
            _check_grants(reqs, grants, 10)

    def test_reset_reproduces(self, arch):
        rng = np.random.default_rng(5)
        alloc = SwitchAllocator(5, 2, arch=arch)
        streams = []
        for _ in range(10):
            reqs = _none_reqs(5, 2)
            for p in range(5):
                for v in range(2):
                    if rng.random() < 0.5:
                        reqs[p][v] = int(rng.integers(5))
            streams.append(reqs)
        first = [alloc.allocate(r) for r in streams]
        alloc.reset()
        second = [alloc.allocate(r) for r in streams]
        assert first == second


class TestHelpers:
    def test_port_request_matrix(self):
        reqs = [[1, None], [None, None], [0, 1]]
        mat = port_request_matrix(reqs, 3)
        expected = np.array(
            [[False, True, False], [False, False, False], [True, True, False]]
        )
        assert np.array_equal(mat, expected)

    def test_crossbar_config(self):
        grants = [(0, 2), None, (1, 0)]
        xbar = SwitchAllocator.crossbar_config(grants, 3)
        assert xbar[0, 2] and xbar[2, 0]
        assert xbar.sum() == 2
