"""Unit tests for VC partitioning / sparse VC allocation structure."""

import numpy as np
import pytest

from repro.core import VCPartition


class TestConstruction:
    def test_defaults_identity_transitions(self):
        p = VCPartition(2, 2, 1)
        assert np.array_equal(p.resource_transitions, np.eye(2, dtype=bool))

    def test_num_vcs(self):
        assert VCPartition(2, 2, 4).num_vcs == 16
        assert VCPartition(1, 1, 1).num_vcs == 1

    def test_rejects_bad_counts(self):
        with pytest.raises(ValueError):
            VCPartition(0, 1, 1)
        with pytest.raises(ValueError):
            VCPartition(1, 0, 1)
        with pytest.raises(ValueError):
            VCPartition(1, 1, 0)

    def test_rejects_wrong_transition_shape(self):
        with pytest.raises(ValueError):
            VCPartition(1, 2, 1, np.ones((3, 3), dtype=bool))

    def test_rejects_dead_end_class(self):
        trans = np.array([[True, False], [False, False]])
        with pytest.raises(ValueError, match="successor"):
            VCPartition(1, 2, 1, trans)

    def test_transitions_frozen(self):
        p = VCPartition.fbfly(2)
        with pytest.raises(ValueError):
            p.resource_transitions[0, 0] = False


class TestIndexAlgebra:
    def test_roundtrip(self):
        p = VCPartition(2, 2, 4)
        for m in range(2):
            for r in range(2):
                for c in range(4):
                    idx = p.vc_index(m, r, c)
                    assert p.vc_fields(idx) == (m, r, c)

    def test_layout_is_message_major(self):
        p = VCPartition(2, 2, 2)
        # message class 0 occupies VCs 0..3, class 1 occupies 4..7
        assert [p.message_class_of(v) for v in range(8)] == [0] * 4 + [1] * 4

    def test_class_vcs_contiguous(self):
        p = VCPartition(2, 2, 4)
        assert p.class_vcs(1, 0) == [8, 9, 10, 11]

    def test_out_of_range(self):
        p = VCPartition(2, 1, 2)
        with pytest.raises(ValueError):
            p.vc_index(2, 0, 0)
        with pytest.raises(ValueError):
            p.vc_index(0, 1, 0)
        with pytest.raises(ValueError):
            p.vc_index(0, 0, 2)
        with pytest.raises(ValueError):
            p.vc_fields(4)


class TestTransitions:
    def test_mesh_transitions_stay_in_class(self):
        p = VCPartition.mesh(4)
        mat = p.transition_matrix()
        for vin in range(p.num_vcs):
            m_in, r_in, _ = p.vc_fields(vin)
            for vout in range(p.num_vcs):
                m_out, r_out, _ = p.vc_fields(vout)
                assert mat[vin, vout] == (m_in == m_out)

    def test_fbfly_figure4_count(self):
        # Figure 4: for 2x2x4 VCs only 96 of 256 transitions are legal.
        p = VCPartition.fbfly(4)
        assert p.num_legal_transitions() == 96

    def test_fbfly_max_successors(self):
        p = VCPartition.fbfly(4)
        # "any given VC is restricted to at most eight possible successor
        # and predecessor VCs"
        mat = p.transition_matrix()
        assert mat.sum(axis=1).max() == 8
        assert mat.sum(axis=0).max() == 8

    def test_fbfly_quadrant_confinement(self):
        p = VCPartition.fbfly(4)
        mat = p.transition_matrix()
        # No transition crosses the message-class boundary (VC 8).
        assert not mat[:8, 8:].any()
        assert not mat[8:, :8].any()

    def test_minimal_phase_cannot_go_nonminimal(self):
        p = VCPartition.fbfly(2)
        # resource class 0 = non-minimal, 1 = minimal.
        assert p.successor_classes(0) == [0, 1]
        assert p.successor_classes(1) == [1]
        assert p.predecessor_classes(0) == [0]
        assert p.predecessor_classes(1) == [0, 1]

    def test_max_successor_predecessor_counts(self):
        p = VCPartition.fbfly(1)
        assert p.max_successors() == 2
        assert p.max_predecessors() == 2
        q = VCPartition.mesh(4)
        assert q.max_successors() == 1

    def test_legal_transition_scalar(self):
        p = VCPartition.fbfly(1)
        nonmin_req = p.vc_index(0, 0, 0)
        min_req = p.vc_index(0, 1, 0)
        min_reply = p.vc_index(1, 1, 0)
        assert p.legal_transition(nonmin_req, min_req)
        assert not p.legal_transition(min_req, nonmin_req)
        assert not p.legal_transition(min_req, min_reply)

    def test_candidate_vcs_all_successors(self):
        p = VCPartition.fbfly(2)
        nonmin = p.vc_index(0, 0, 0)
        cands = p.candidate_vcs(nonmin)
        assert cands == p.class_vcs(0, 0) + p.class_vcs(0, 1)

    def test_candidate_vcs_restricted_class(self):
        p = VCPartition.fbfly(2)
        nonmin = p.vc_index(0, 0, 1)
        assert p.candidate_vcs(nonmin, resource_class=1) == p.class_vcs(0, 1)

    def test_candidate_vcs_illegal_class_rejected(self):
        p = VCPartition.fbfly(2)
        minimal = p.vc_index(0, 1, 0)
        with pytest.raises(ValueError, match="not a legal successor"):
            p.candidate_vcs(minimal, resource_class=0)

    def test_transition_count_formula(self):
        # Per message class: sum over r_in of C * (successors(r_in) * C).
        for C in (1, 2, 4):
            p = VCPartition.fbfly(C)
            per_class = C * C * (2 + 1)  # nonmin->2 classes, min->1 class
            assert p.num_legal_transitions() == 2 * per_class


class TestFactories:
    def test_uniform(self):
        p = VCPartition.uniform(8)
        assert p.num_vcs == 8
        assert p.num_legal_transitions() == 64

    def test_mesh_dims(self):
        p = VCPartition.mesh(2)
        assert (p.num_message_classes, p.num_resource_classes, p.vcs_per_class) == (2, 1, 2)

    def test_describe(self):
        assert VCPartition.fbfly(4).describe() == "2x2x4 VCs (V=16)"
        assert VCPartition.mesh(1).describe() == "2x1x1 VCs (V=2)"
