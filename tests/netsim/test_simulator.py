"""Tests for the simulation driver, traffic model and statistics."""

import numpy as np
import pytest

from repro.netsim.flit import PacketType
from repro.netsim.simulator import (
    FLITS_PER_TRANSACTION,
    SimulationConfig,
    build_network,
    run_simulation,
)
from repro.netsim.topology import build_mesh
from repro.netsim.traffic import permutation_dest, uniform_random_dest


class TestConfig:
    def test_packet_rate_conversion(self):
        cfg = SimulationConfig(injection_rate=0.3)
        assert cfg.packet_rate == pytest.approx(0.3 / FLITS_PER_TRANSACTION)

    def test_flits_per_transaction_matches_traffic_model(self):
        # read: 1 + 5; write: 5 + 1 -> always 6.
        for req in (PacketType.READ_REQUEST, PacketType.WRITE_REQUEST):
            assert req.size + req.reply_type.size == FLITS_PER_TRANSACTION


class TestTrafficHelpers:
    def test_uniform_random_never_self(self):
        rng = np.random.default_rng(0)
        for _ in range(200):
            assert uniform_random_dest(rng, 5, 16) != 5

    def test_uniform_random_covers_all_destinations(self):
        rng = np.random.default_rng(1)
        seen = {uniform_random_dest(rng, 0, 8) for _ in range(500)}
        assert seen == set(range(1, 8))

    def test_permutation_dest(self):
        perm = [3, 2, 1, 0]
        fn = permutation_dest(perm)
        rng = np.random.default_rng(0)
        assert fn(rng, 0, 4) == 3
        assert fn(rng, 3, 4) == 0


class TestTerminalBehaviour:
    def test_replies_take_priority_over_requests(self):
        net = build_mesh(4, packet_rate=0.0)
        term = net.terminals[0]
        from repro.netsim.flit import Packet

        req = Packet(0, 5, PacketType.READ_REQUEST, birth_time=0)
        rep = Packet(0, 6, PacketType.WRITE_REPLY, birth_time=0)
        term.request_queue.append(req)
        term.reply_queue.append(rep)
        net.run(3)
        # The reply's head must be injected first.
        assert rep.inject_time is not None
        assert req.inject_time is None or req.inject_time > rep.inject_time

    def test_vc_choice_respects_message_class(self):
        net = build_mesh(4, vcs_per_class=2, packet_rate=0.0)
        term = net.terminals[0]
        part = term.router.partition
        from repro.netsim.flit import Packet

        reply = Packet(0, 5, PacketType.READ_REPLY, birth_time=0)
        vc = term._choose_vc(net, reply)
        assert vc in part.class_vcs(1, 0)  # reply message class

    def test_injection_respects_credits(self):
        net = build_mesh(4, packet_rate=0.0)
        term = net.terminals[0]
        for v in range(term.router.num_vcs):
            term.credits[v] = 0
        from repro.netsim.flit import Packet

        term.request_queue.append(Packet(0, 5, PacketType.READ_REQUEST, 0))
        net.run(5)
        assert term.injected_flits == 0

    def test_generation_rate_statistics(self):
        # Over many cycles the geometric process produces ~rate packets.
        cfg = SimulationConfig(
            topology="mesh",
            injection_rate=0.3,
            warmup_cycles=0,
            measure_cycles=2000,
            drain_cycles=0,
        )
        net = build_network(cfg)
        net.run(2000)
        generated = sum(t.generated_packets for t in net.terminals)
        expected = cfg.packet_rate * 2000 * 64
        assert generated == pytest.approx(expected, rel=0.1)

    def test_deterministic_given_seed(self):
        cfg = SimulationConfig(
            topology="mesh",
            injection_rate=0.1,
            seed=5,
            warmup_cycles=100,
            measure_cycles=300,
            drain_cycles=300,
        )
        r1 = run_simulation(cfg)
        r2 = run_simulation(cfg)
        assert r1.avg_latency == r2.avg_latency
        assert r1.measured_packets == r2.measured_packets

    def test_different_seeds_differ(self):
        base = dict(
            topology="mesh",
            injection_rate=0.1,
            warmup_cycles=100,
            measure_cycles=300,
            drain_cycles=300,
        )
        r1 = run_simulation(SimulationConfig(seed=1, **base))
        r2 = run_simulation(SimulationConfig(seed=2, **base))
        assert r1.avg_latency != r2.avg_latency


class TestSimulationResults:
    def test_result_str(self):
        cfg = SimulationConfig(
            topology="mesh",
            injection_rate=0.05,
            warmup_cycles=50,
            measure_cycles=200,
            drain_cycles=300,
        )
        res = run_simulation(cfg)
        s = str(res)
        assert "latency" in s and "rate" in s

    def test_latency_by_message_class(self):
        cfg = SimulationConfig(
            topology="mesh",
            injection_rate=0.1,
            warmup_cycles=100,
            measure_cycles=500,
            drain_cycles=500,
        )
        res = run_simulation(cfg)
        assert set(res.latency_by_class) == {0, 1}
        for v in res.latency_by_class.values():
            assert v > 0

    def test_injected_rate_tracks_offered_load(self):
        cfg = SimulationConfig(
            topology="mesh",
            injection_rate=0.2,
            warmup_cycles=300,
            measure_cycles=1500,
            drain_cycles=500,
        )
        res = run_simulation(cfg)
        assert res.injected_flit_rate == pytest.approx(0.2, rel=0.15)
        assert res.accepted_flit_rate == pytest.approx(0.2, rel=0.15)
        assert not res.saturated

    def test_saturation_detected_at_absurd_load(self):
        cfg = SimulationConfig(
            topology="mesh",
            vcs_per_class=1,
            injection_rate=0.9,
            warmup_cycles=300,
            measure_cycles=800,
            drain_cycles=200,
        )
        res = run_simulation(cfg)
        assert res.saturated

    def test_zero_rate_runs_clean(self):
        cfg = SimulationConfig(
            topology="fbfly",
            injection_rate=0.0,
            warmup_cycles=10,
            measure_cycles=50,
            drain_cycles=10,
        )
        res = run_simulation(cfg)
        assert res.measured_packets == 0
        assert res.avg_latency == float("inf")
