"""Unit tests for DOR (mesh) and UGAL (flattened butterfly) routing."""

import numpy as np
import pytest

from repro.netsim.flit import Packet, PacketType
from repro.netsim.routing.dor import (
    DORMeshRouting,
    PORT_EAST,
    PORT_NORTH,
    PORT_SOUTH,
    PORT_TERMINAL,
    PORT_WEST,
)
from repro.netsim.routing.ugal import PHASE_MINIMAL, PHASE_NONMINIMAL, UGALRouting
from repro.netsim.topology import build_fbfly, build_mesh


def _pkt(src, dest, rc=0, inter=None):
    p = Packet(src=src, dest=dest, ptype=PacketType.READ_REQUEST, birth_time=0)
    p.resource_class = rc
    p.intermediate = inter
    return p


class TestDOR:
    def setup_method(self):
        self.k = 4
        self.routing = DORMeshRouting(self.k)
        self.net = build_mesh(self.k)

    def test_x_before_y(self):
        # From (0,0) to (2,2): must go east first.
        pkt = _pkt(0, 10)  # router 10 = (x=2, y=2)
        port = self.routing.route(self.net, self.net.routers[0], pkt)
        assert port == PORT_EAST

    def test_y_after_x_done(self):
        # From (2,0) [router 2] to (2,2) [router 10]: x aligned, go north.
        pkt = _pkt(2, 10)
        port = self.routing.route(self.net, self.net.routers[2], pkt)
        assert port == PORT_NORTH

    def test_west_and_south(self):
        pkt = _pkt(15, 0)
        assert self.routing.route(self.net, self.net.routers[15], pkt) == PORT_WEST
        pkt = _pkt(12, 0)  # (0,3) -> (0,0): south
        assert self.routing.route(self.net, self.net.routers[12], pkt) == PORT_SOUTH

    def test_ejection_at_destination(self):
        pkt = _pkt(5, 5)
        assert self.routing.route(self.net, self.net.routers[5], pkt) == PORT_TERMINAL

    def test_walk_terminates_with_correct_hops(self):
        # Following the route function step-by-step reaches the
        # destination in exactly the Manhattan distance.
        k = self.k
        for src in range(k * k):
            for dest in range(k * k):
                pkt = _pkt(src, dest)
                rid = src
                hops = 0
                while True:
                    port = self.routing.route(self.net, self.net.routers[rid], pkt)
                    if port == PORT_TERMINAL:
                        break
                    hops += 1
                    assert hops <= 2 * k, "routing loop"
                    x, y = rid % k, rid // k
                    if port == PORT_EAST:
                        x += 1
                    elif port == PORT_WEST:
                        x -= 1
                    elif port == PORT_NORTH:
                        y += 1
                    else:
                        y -= 1
                    rid = y * k + x
                assert rid == dest
                assert hops == self.routing.hops(src, dest)

    def test_prepare_sets_single_resource_class(self):
        pkt = _pkt(0, 3, rc=99)
        self.routing.prepare(self.net, self.net.terminals[0], pkt)
        assert pkt.resource_class == 0


class TestUGALPortMaps:
    def setup_method(self):
        self.routing = UGALRouting(4, 4, 4)

    def test_row_ports_distinct_and_in_range(self):
        for rid in range(16):
            c = rid % 4
            ports = [self.routing.row_port(rid, c2) for c2 in range(4) if c2 != c]
            assert sorted(ports) == [4, 5, 6]

    def test_col_ports_distinct_and_in_range(self):
        for rid in range(16):
            r = rid // 4
            ports = [self.routing.col_port(rid, r2) for r2 in range(4) if r2 != r]
            assert sorted(ports) == [7, 8, 9]

    def test_own_row_col_rejected(self):
        with pytest.raises(ValueError):
            self.routing.row_port(5, 1)  # router 5 is at col 1
        with pytest.raises(ValueError):
            self.routing.col_port(5, 1)  # and at row 1

    def test_hops(self):
        assert self.routing.hops(0, 0) == 0
        assert self.routing.hops(0, 3) == 1  # same row
        assert self.routing.hops(0, 12) == 1  # same column
        assert self.routing.hops(0, 15) == 2

    def test_first_hop_column_corrected_first(self):
        # router 0 (r0,c0) -> router 15 (r3,c3): row link to col 3 first.
        port = self.routing.first_hop_port(0, 15, 60)
        assert port == self.routing.row_port(0, 3)

    def test_first_hop_ejects_at_destination(self):
        assert self.routing.first_hop_port(3, 3, 14) == 14 % 4


class TestUGALDecisions:
    def setup_method(self):
        self.net = build_fbfly(4, 4, 4, vcs_per_class=1)
        self.routing = self.net.routing

    def test_zero_load_chooses_minimal(self):
        # All queues empty: q_min * H_min = 0 <= 0, so minimal.
        term = self.net.terminals[0]
        for _ in range(50):
            pkt = _pkt(0, 60)  # cross-corner traffic
            self.routing.prepare(self.net, term, pkt)
            assert pkt.resource_class == PHASE_MINIMAL
            assert pkt.intermediate is None

    def test_same_router_always_minimal(self):
        term = self.net.terminals[0]
        pkt = _pkt(0, 3)  # same router (terminals 0..3)
        self.routing.prepare(self.net, term, pkt)
        assert pkt.resource_class == PHASE_MINIMAL

    def test_congested_minimal_path_goes_nonminimal(self):
        # Exhaust credits on router 0's minimal first-hop port toward
        # router 3 (dest terminals 12..15) so UGAL deflects.
        term = self.net.terminals[0]
        router = self.net.routers[0]
        min_port = self.routing.first_hop_port(0, 3, 12)
        for v in range(router.num_vcs):
            router.credits[min_port][v] = 0  # fully occupied queue
        went_nonminimal = False
        for _ in range(100):
            pkt = _pkt(0, 12)
            self.routing.prepare(self.net, term, pkt)
            if pkt.resource_class == PHASE_NONMINIMAL:
                went_nonminimal = True
                assert pkt.intermediate is not None
                assert pkt.intermediate not in (0, 3)
                break
        assert went_nonminimal

    def test_phase_transition_at_intermediate(self):
        pkt = _pkt(0, 60, rc=PHASE_NONMINIMAL, inter=5)
        # Routed at the intermediate router: phase flips to minimal.
        self.routing.route(self.net, self.net.routers[5], pkt)
        assert pkt.resource_class == PHASE_MINIMAL

    def test_nonminimal_routes_toward_intermediate(self):
        pkt = _pkt(0, 60, rc=PHASE_NONMINIMAL, inter=2)
        port = self.routing.route(self.net, self.net.routers[0], pkt)
        assert port == self.routing.row_port(0, 2)

    def test_minimal_phase_routes_toward_destination(self):
        pkt = _pkt(0, 60, rc=PHASE_MINIMAL)
        port = self.routing.route(self.net, self.net.routers[0], pkt)
        # terminal 60 -> router 15 (col 3): row link first.
        assert port == self.routing.row_port(0, 3)

    def test_walk_nonminimal_visits_intermediate(self):
        pkt = _pkt(0, 63, rc=PHASE_NONMINIMAL, inter=5)
        rid = 0
        visited = [0]
        for _ in range(6):
            port = self.routing.route(self.net, self.net.routers[rid], pkt)
            if port < 4:
                break
            # follow the link
            link = self.net.routers[rid].out_links[port]
            rid = link[1].id
            visited.append(rid)
        assert rid == 15  # destination router of terminal 63
        assert 5 in visited
