"""Deterministic single-packet tests of the router pipeline timing,
credit conservation, and speculation semantics."""

import pytest

from repro.netsim.flit import Packet, PacketType
from repro.netsim.simulator import SimulationConfig, build_network, run_simulation
from repro.netsim.topology import build_mesh


def _inject_one(net, src, dest, ptype=PacketType.READ_REQUEST):
    pkt = Packet(src=src, dest=dest, ptype=ptype, birth_time=0)
    net.terminals[src].request_queue.append(pkt)
    return pkt


def _drain(net, cycles=200):
    net.run(cycles)


class TestZeroLoadTiming:
    """Hand-computed pipeline latencies for single packets.

    Timeline for a 1-flit packet over one hop (all links latency 1,
    speculative router): terminal sends the head at t=0 (arrives t=2);
    router A allocates at t=2 (VA + speculative SA in one cycle, ST at
    t=3, link) so router B sees it at t=5; B ejects likewise, and the
    terminal receives it at t=8.
    """

    def test_one_hop_read_request_speculative(self):
        net = build_mesh(4, speculation="pessimistic")
        pkt = _inject_one(net, 0, 1)
        _drain(net)
        assert pkt.arrival_time - pkt.birth_time == 8

    def test_one_hop_read_request_nonspeculative(self):
        # Without speculation each router adds one cycle (VA then SA).
        net = build_mesh(4, speculation="nonspec")
        pkt = _inject_one(net, 0, 1)
        _drain(net)
        assert pkt.arrival_time - pkt.birth_time == 10

    def test_per_hop_cost_is_three_cycles(self):
        # Each extra hop adds 3 cycles (allocation, ST, link).
        latencies = []
        for dest in (1, 2, 3):
            net = build_mesh(4, speculation="pessimistic")
            pkt = _inject_one(net, 0, dest)
            _drain(net)
            latencies.append(pkt.arrival_time - pkt.birth_time)
        assert latencies == [8, 11, 14]

    def test_serialization_adds_packet_length(self):
        # A 5-flit write request's tail trails the head by 4 cycles.
        net = build_mesh(4, speculation="pessimistic")
        pkt = _inject_one(net, 0, 1, PacketType.WRITE_REQUEST)
        _drain(net)
        assert pkt.arrival_time - pkt.birth_time == 8 + 4

    def test_conventional_matches_pessimistic_at_zero_load(self):
        # Section 5.3.3: identical at low load.
        lat = {}
        for scheme in ("pessimistic", "conventional"):
            net = build_mesh(4, speculation=scheme)
            pkt = _inject_one(net, 0, 5)
            _drain(net)
            lat[scheme] = pkt.arrival_time - pkt.birth_time
        assert lat["pessimistic"] == lat["conventional"]

    def test_reply_generated_next_cycle(self):
        net = build_mesh(4, speculation="pessimistic")
        pkt = _inject_one(net, 0, 1)
        delivered = []
        net.on_delivery = lambda p, now: delivered.append((p, now))
        _drain(net)
        # Request delivered at t=8; reply (5-flit read reply) born at 9.
        assert delivered[0][0] is pkt
        reply = delivered[1][0]
        assert reply.ptype == PacketType.READ_REPLY
        assert reply.birth_time == delivered[0][1] + 1
        assert reply.dest == 0 and reply.src == 1


class TestConservation:
    def test_credits_and_buffers_restored_after_drain(self):
        cfg = SimulationConfig(
            topology="mesh",
            injection_rate=0.1,
            warmup_cycles=0,
            measure_cycles=400,
            drain_cycles=0,
        )
        net = build_network(cfg)
        net.run(400)
        # Stop traffic and drain.
        for t in net.terminals:
            t.packet_rate = 0.0
        net.run(600)
        assert net.in_flight_flits() == 0
        for r in net.routers:
            for port in range(r.num_ports):
                for v in range(r.num_vcs):
                    assert r.credits[port][v] == r.buffer_depth, (
                        r.id,
                        port,
                        v,
                    )
                    assert r.output_holder[port][v] is None
        for t in net.terminals:
            assert all(c == t.router.buffer_depth for c in t.credits)
        assert net.total_injected_flits() == net.total_ejected_flits()

    def test_every_request_gets_a_reply(self):
        cfg = SimulationConfig(
            topology="fbfly",
            injection_rate=0.1,
            vcs_per_class=1,
            warmup_cycles=0,
            measure_cycles=300,
            drain_cycles=0,
        )
        net = build_network(cfg)
        requests = []
        replies = []
        net.on_delivery = lambda p, now: (
            requests.append(p) if p.ptype.is_request else replies.append(p)
        )
        net.run(300)
        for t in net.terminals:
            t.packet_rate = 0.0
        net.run(800)
        assert net.in_flight_flits() == 0
        assert len(requests) == len(replies)
        # Replies mirror their requests' endpoints.
        req_pairs = sorted((p.src, p.dest) for p in requests)
        rep_pairs = sorted((p.dest, p.src) for p in replies)
        assert req_pairs == rep_pairs

    def test_flits_delivered_in_order_within_packet(self):
        # Tail arrival == head arrival + (size - 1) at zero load implies
        # in-order contiguous delivery; verify explicitly via a hook.
        net = build_mesh(4, speculation="pessimistic")
        seen = []
        term = net.terminals[9]
        orig = term.receive_flit

        def spy(network, vc, flit, now):
            seen.append((flit.packet.pid, flit.index, now))
            return orig(network, vc, flit, now)

        term.receive_flit = spy
        pkt = _inject_one(net, 0, 9, PacketType.WRITE_REQUEST)
        _drain(net)
        indices = [i for (pid, i, _) in seen if pid == pkt.pid]
        assert indices == [0, 1, 2, 3, 4]


class TestSpeculationCounters:
    def test_nonspec_never_speculates(self):
        cfg = SimulationConfig(
            topology="mesh",
            injection_rate=0.1,
            speculation="nonspec",
            warmup_cycles=0,
            measure_cycles=300,
            drain_cycles=200,
        )
        res = run_simulation(cfg)
        assert res.speculative_wins == 0
        assert res.misspeculations == 0

    def test_speculative_wins_at_low_load(self):
        cfg = SimulationConfig(
            topology="mesh",
            injection_rate=0.05,
            speculation="pessimistic",
            warmup_cycles=0,
            measure_cycles=300,
            drain_cycles=200,
        )
        res = run_simulation(cfg)
        assert res.speculative_wins > 0
        # At low load nearly all speculations succeed.
        assert res.speculative_wins > 10 * max(res.misspeculations, 1)


class TestRouterGuards:
    def test_credit_overflow_detected(self):
        net = build_mesh(4)
        r = net.routers[0]
        with pytest.raises(RuntimeError, match="credit overflow"):
            r.receive_credit(0, 0)

    def test_unknown_topology_rejected(self):
        with pytest.raises(ValueError):
            build_network(SimulationConfig(topology="hypercube"))


class TestLookaheadAblation:
    def test_routing_stage_adds_one_cycle_per_hop(self):
        # 1-hop read request: 8 cycles with lookahead, +1 per router
        # without (two routers on the path).
        lat = {}
        for la in (True, False):
            net = build_mesh(4, speculation="pessimistic", lookahead=la)
            pkt = _inject_one(net, 0, 1)
            _drain(net)
            lat[la] = pkt.arrival_time - pkt.birth_time
        assert lat[True] == 8
        assert lat[False] == 10

    def test_lookahead_default_on(self):
        net = build_mesh(4)
        assert all(r.lookahead for r in net.routers)

    def test_non_lookahead_network_drains_clean(self):
        cfg = SimulationConfig(
            topology="mesh",
            injection_rate=0.1,
            lookahead=False,
            warmup_cycles=0,
            measure_cycles=300,
            drain_cycles=0,
        )
        net = build_network(cfg)
        net.run(300)
        for t in net.terminals:
            t.packet_rate = 0.0
        net.run(600)
        assert net.in_flight_flits() == 0
