"""UGAL vs minimal routing under adversarial traffic.

UGAL's reason to exist (and the reason the fbfly needs two resource
classes at all) is adversarial traffic that saturates the single
minimal channel between router pairs; Valiant-style deflection spreads
the load over intermediate routers.  A very large decision threshold
degenerates UGAL into always-minimal routing, which gives us the
baseline without a separate routing implementation.
"""

import numpy as np
import pytest

from repro.netsim.patterns import neighbor_pattern
from repro.netsim.routing.ugal import PHASE_NONMINIMAL
from repro.netsim.topology import build_fbfly


def _adversarial_dest(rng, src, num_terminals):
    """All four terminals of router r target terminals of router r+1
    (same row), concentrating 4 terminals' load onto one row link."""
    router = src // 4
    row, col = router // 4, router % 4
    dest_router = row * 4 + (col + 1) % 4
    return dest_router * 4 + int(rng.integers(4))


def _run(threshold, rate, cycles=1500, seed=3):
    net = build_fbfly(
        4,
        4,
        4,
        vcs_per_class=1,
        packet_rate=rate / 6.0,
        seed=seed,
        dest_fn=_adversarial_dest,
        ugal_threshold=threshold,
    )
    delivered = []
    net.on_delivery = lambda p, now: delivered.append(now - p.birth_time)
    net.run(cycles)
    ejected = net.total_ejected_flits()
    avg_lat = sum(delivered) / len(delivered) if delivered else float("inf")
    return ejected / (cycles * net.num_terminals), avg_lat, net


class TestUGALAdversarial:
    def test_minimal_only_with_huge_threshold(self):
        # threshold -> infinity degenerates UGAL to minimal routing.
        _, _, net = _run(threshold=10**9, rate=0.3, cycles=400)
        nonmin = sum(
            1
            for t in net.terminals
            for q in [t]
            if False
        )
        # No packet ever enters the non-minimal phase: check by counting
        # VCs of the non-minimal resource class ever being held.  Under
        # minimal-only routing, class-0 (non-minimal) VCs are unused.
        part = net.routers[0].partition
        nonmin_vcs = set()
        for m in range(part.num_message_classes):
            nonmin_vcs.update(part.class_vcs(m, PHASE_NONMINIMAL))
        for r in net.routers:
            for port in range(r.num_ports):
                for u in nonmin_vcs:
                    assert r.credits[port][u] == r.buffer_depth or True
        # Stronger check via routing decisions on fresh packets:
        from repro.netsim.flit import Packet, PacketType

        term = net.terminals[0]
        for _ in range(50):
            pkt = Packet(0, 60, PacketType.READ_REQUEST, 0)
            net.routing.prepare(net, term, pkt)
            assert pkt.intermediate is None

    def test_ugal_non_inferior_under_adversarial_load(self):
        # Past the minimal-path capacity UGAL must do at least as well
        # as minimal-only routing.  (The win of UGAL-L with local credit
        # signals is modest in this router -- per-packet VC reallocation
        # on the single contested channel limits both schemes -- but it
        # must never lose, and it drains source backlogs faster.)
        rate = 0.4
        acc_min, lat_min, net_min = _run(10**9, rate)
        acc_ugal, lat_ugal, net_ugal = _run(0, rate)
        assert acc_ugal > 0.93 * acc_min
        assert net_ugal.total_backlog() <= net_min.total_backlog()

    def test_ugal_harmless_at_low_adversarial_load(self):
        # Below the minimal-path capacity both routes deliver everything.
        rate = 0.1
        acc_min, _, _ = _run(10**9, rate)
        acc_ugal, _, _ = _run(0, rate)
        assert acc_min == pytest.approx(rate, rel=0.2)
        assert acc_ugal == pytest.approx(rate, rel=0.2)

    def test_nonminimal_packets_used_under_congestion(self):
        _, _, net = _run(threshold=0, rate=0.5, cycles=600)
        # Some packets must have taken the Valiant path: the routers'
        # non-minimal-phase activity shows up in speculative counters /
        # switch grants; verify directly on fresh routing decisions made
        # while the network is congested.
        from repro.netsim.flit import Packet, PacketType

        deflected = 0
        for src in range(0, 16, 4):
            term = net.terminals[src]
            for _ in range(20):
                pkt = Packet(src, _adversarial_dest(term.rng, src, 64),
                             PacketType.READ_REQUEST, 0)
                net.routing.prepare(net, term, pkt)
                if pkt.intermediate is not None:
                    deflected += 1
        assert deflected > 0
