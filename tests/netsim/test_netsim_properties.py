"""Property-based tests (hypothesis) on network-simulation invariants.

Flit conservation and flow-control integrity must hold for *any*
combination of topology, VC count, allocator architecture, speculation
scheme and load -- these sweeps are where subtle router bugs (credit
leaks, VC interleaving, lost flits) would surface.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netsim.simulator import SimulationConfig, build_network

CONFIG_STRATEGY = st.fixed_dictionaries(
    dict(
        topology=st.sampled_from(["mesh", "fbfly", "torus"]),
        vcs_per_class=st.sampled_from([1, 2]),
        sw_alloc_arch=st.sampled_from(["sep_if", "sep_of", "wf"]),
        vc_alloc_arch=st.sampled_from(["sep_if", "sep_of", "wf"]),
        speculation=st.sampled_from(["nonspec", "pessimistic", "conventional"]),
        injection_rate=st.sampled_from([0.05, 0.2, 0.5]),
        seed=st.integers(0, 3),
        lookahead=st.booleans(),
    )
)


@given(params=CONFIG_STRATEGY)
@settings(max_examples=40, deadline=None)
def test_conservation_under_random_configs(params):
    cfg = SimulationConfig(
        warmup_cycles=0, measure_cycles=150, drain_cycles=0, **params
    )
    net = build_network(cfg)
    net.run(150)
    for t in net.terminals:
        t.packet_rate = 0.0
    # Drain with a generous bound; saturated configurations need time.
    # The drain condition must include in-flight *credits*: a credit is
    # scheduled up to 2 + link_latency cycles after the ejection that
    # freed the slot, so "no flits anywhere" does not yet imply
    # "credits all returned" (this race was the ROADMAP wf/wf "leak").
    for _ in range(12):
        net.run(200)
        if (
            net.in_flight_flits() == 0
            and net.in_flight_credits() == 0
            and net.total_backlog() == 0
        ):
            break

    drained = (
        net.in_flight_flits() == 0
        and net.in_flight_credits() == 0
        and net.total_backlog() == 0
    )
    if drained:
        # Full conservation: everything injected was ejected, credits
        # are back to full, no output VC is still held.
        assert net.total_injected_flits() == net.total_ejected_flits()
        for r in net.routers:
            for port in range(r.num_ports):
                for v in range(r.num_vcs):
                    assert r.credits[port][v] == r.buffer_depth
                    assert r.output_holder[port][v] is None
    else:
        # Even while loaded, accounting must balance: flits are either
        # delivered, in flight, or still at a source.
        in_network = net.in_flight_flits()
        assert net.total_injected_flits() == net.total_ejected_flits() + in_network


def test_credit_return_race_roadmap_repro():
    """Pinned ROADMAP repro of the wf/wf "credit leak": the last flit
    ejects on the final cycle of a drain round and its credit is still
    in transit when flit-only drain checks report the network empty.
    With the credit-aware drain condition every credit comes home."""
    cfg = SimulationConfig(
        topology="mesh",
        vcs_per_class=2,
        sw_alloc_arch="wf",
        vc_alloc_arch="wf",
        speculation="nonspec",
        injection_rate=0.5,
        seed=2,
        lookahead=False,
        warmup_cycles=0,
        measure_cycles=150,
        drain_cycles=0,
    )
    net = build_network(cfg)
    net.run(150)
    for t in net.terminals:
        t.packet_rate = 0.0
    for _ in range(12):
        net.run(200)
        if (
            net.in_flight_flits() == 0
            and net.in_flight_credits() == 0
            and net.total_backlog() == 0
        ):
            break
    assert net.in_flight_flits() == 0
    assert net.in_flight_credits() == 0
    assert net.total_backlog() == 0
    for r in net.routers:
        for port in range(r.num_ports):
            for v in range(r.num_vcs):
                assert r.credits[port][v] == r.buffer_depth, (
                    r.id, port, v, r.credits[port][v],
                )
                assert r.output_holder[port][v] is None


@given(
    seed=st.integers(0, 5),
    rate=st.sampled_from([0.1, 0.3]),
)
@settings(max_examples=8, deadline=None)
def test_latencies_always_positive_and_causal(seed, rate):
    cfg = SimulationConfig(
        topology="mesh",
        injection_rate=rate,
        seed=seed,
        warmup_cycles=0,
        measure_cycles=250,
        drain_cycles=250,
    )
    net = build_network(cfg)
    violations = []

    def check(pkt, now):
        if pkt.arrival_time < pkt.birth_time:
            violations.append(pkt)
        if pkt.inject_time is not None and pkt.inject_time < pkt.birth_time:
            violations.append(pkt)
        # Minimum possible latency: inject + 2 routers + eject = 8.
        if pkt.arrival_time - pkt.birth_time < 8:
            violations.append(pkt)

    net.on_delivery = check
    net.run(500)
    assert not violations
