"""Pickle/transport round-trips for simulator config and results.

The parallel sweep engine ships ``SimulationConfig`` into worker
processes and ``SimulationResult`` back out, so both must survive
pickling — including the nested ``latency_summary`` and the
``latency_by_class`` dict — and the dict payload form used on the wire
must be lossless (JSON round-trips stringify dict keys; ``from_payload``
must restore them to ints).
"""

import math
import pickle

import pytest

from repro.netsim.simulator import (
    SimulationConfig,
    SimulationResult,
    run_simulation,
    run_simulation_worker,
)
from repro.netsim.stats import LatencySummary

FAST = dict(warmup_cycles=60, measure_cycles=150, drain_cycles=150)


@pytest.fixture(scope="module")
def real_result() -> SimulationResult:
    return run_simulation(SimulationConfig(injection_rate=0.1, **FAST))


class TestPickleRoundTrip:
    def test_config(self):
        cfg = SimulationConfig(topology="fbfly", vcs_per_class=2, seed=42)
        for proto in range(2, pickle.HIGHEST_PROTOCOL + 1):
            assert pickle.loads(pickle.dumps(cfg, proto)) == cfg

    def test_result_preserves_summary_and_classes(self, real_result):
        assert real_result.latency_summary is not None
        assert real_result.latency_by_class
        clone = pickle.loads(pickle.dumps(real_result))
        assert clone.latency_summary == real_result.latency_summary
        assert clone.latency_by_class == real_result.latency_by_class
        assert all(isinstance(k, int) for k in clone.latency_by_class)
        assert clone.config == real_result.config
        assert clone.avg_latency == real_result.avg_latency

    def test_result_with_nan_and_inf_fields(self):
        cfg = SimulationConfig()
        res = SimulationResult(
            config=cfg,
            avg_latency=float("inf"),
            measured_packets=0,
            delivered_packets=0,
            injected_flit_rate=0.9,
            accepted_flit_rate=0.3,
            saturated=True,
        )
        clone = pickle.loads(pickle.dumps(res))
        assert math.isinf(clone.avg_latency)
        assert math.isnan(clone.latency_stderr)
        assert clone.latency_summary is None


class TestPayloadRoundTrip:
    def test_payload_is_lossless(self, real_result):
        clone = SimulationResult.from_payload(real_result.to_payload())
        assert clone == real_result

    def test_payload_restores_int_class_keys_from_json(self, real_result):
        import json

        wire = json.loads(json.dumps(real_result.to_payload()))
        clone = SimulationResult.from_payload(wire)
        assert clone.latency_by_class == real_result.latency_by_class
        assert all(isinstance(k, int) for k in clone.latency_by_class)
        assert clone.latency_summary == real_result.latency_summary

    def test_worker_entry_point_matches_inline_run(self):
        cfg = SimulationConfig(injection_rate=0.08, seed=3, **FAST)
        via_worker = SimulationResult.from_payload(
            run_simulation_worker(cfg.to_dict())
        )
        inline = run_simulation(cfg)
        assert via_worker == inline

    def test_config_from_dict_ignores_unknown_keys(self):
        data = SimulationConfig(seed=9).to_dict()
        data["future_field"] = 123
        assert SimulationConfig.from_dict(data) == SimulationConfig(seed=9)
