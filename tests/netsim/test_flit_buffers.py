"""Unit tests for packets, flits and input-VC buffers."""

import pytest

from repro.netsim.buffers import InputVC
from repro.netsim.flit import (
    MESSAGE_CLASS_REPLY,
    MESSAGE_CLASS_REQUEST,
    Packet,
    PacketType,
)


class TestPacketTypes:
    def test_sizes(self):
        assert PacketType.READ_REQUEST.size == 1
        assert PacketType.WRITE_REQUEST.size == 5
        assert PacketType.READ_REPLY.size == 5
        assert PacketType.WRITE_REPLY.size == 1

    def test_message_classes(self):
        assert PacketType.READ_REQUEST.message_class == MESSAGE_CLASS_REQUEST
        assert PacketType.WRITE_REQUEST.message_class == MESSAGE_CLASS_REQUEST
        assert PacketType.READ_REPLY.message_class == MESSAGE_CLASS_REPLY
        assert PacketType.WRITE_REPLY.message_class == MESSAGE_CLASS_REPLY

    def test_reply_types(self):
        assert PacketType.READ_REQUEST.reply_type == PacketType.READ_REPLY
        assert PacketType.WRITE_REQUEST.reply_type == PacketType.WRITE_REPLY

    def test_reply_of_reply_rejected(self):
        with pytest.raises(ValueError):
            PacketType.READ_REPLY.reply_type

    def test_transaction_flit_total_is_six(self):
        # Section 4.3.3: "a request-reply packet pair ... always
        # comprises a total of six flits".
        for req in (PacketType.READ_REQUEST, PacketType.WRITE_REQUEST):
            assert req.size + req.reply_type.size == 6


class TestPacket:
    def test_make_flits_structure(self):
        pkt = Packet(src=0, dest=5, ptype=PacketType.WRITE_REQUEST, birth_time=3)
        flits = pkt.make_flits()
        assert len(flits) == 5
        assert flits[0].is_head and not flits[0].is_tail
        assert flits[-1].is_tail and not flits[-1].is_head
        assert all(not f.is_head and not f.is_tail for f in flits[1:-1])
        assert [f.index for f in flits] == list(range(5))
        assert all(f.packet is pkt for f in flits)

    def test_single_flit_packet_is_head_and_tail(self):
        pkt = Packet(src=0, dest=1, ptype=PacketType.READ_REQUEST, birth_time=0)
        (flit,) = pkt.make_flits()
        assert flit.is_head and flit.is_tail

    def test_unique_ids(self):
        a = Packet(0, 1, PacketType.READ_REQUEST, 0)
        b = Packet(0, 1, PacketType.READ_REQUEST, 0)
        assert a.pid != b.pid

    def test_repr_tags(self):
        pkt = Packet(0, 1, PacketType.WRITE_REQUEST, 0)
        flits = pkt.make_flits()
        assert repr(flits[0]).startswith("Flit(H")
        assert repr(flits[1]).startswith("Flit(B")
        assert repr(flits[-1]).startswith("Flit(T")


class TestInputVC:
    def _head(self):
        pkt = Packet(0, 1, PacketType.READ_REQUEST, 0)
        return pkt.make_flits()[0]

    def test_empty_state(self):
        ivc = InputVC(4)
        assert ivc.front is None
        assert not ivc.waiting_for_vc
        assert not ivc.active
        assert ivc.occupancy == 0

    def test_waiting_for_vc_when_head_at_front(self):
        ivc = InputVC(4)
        ivc.push(self._head())
        assert ivc.waiting_for_vc
        assert not ivc.active

    def test_active_after_assignment(self):
        ivc = InputVC(4)
        ivc.push(self._head())
        ivc.assign_output(2, 1)
        assert not ivc.waiting_for_vc
        assert ivc.active
        assert (ivc.output_port, ivc.output_vc) == (2, 1)

    def test_pop_tail_resets_state(self):
        ivc = InputVC(4)
        ivc.push(self._head())  # single-flit packet: head is tail
        ivc.assign_output(2, 1)
        flit, finished = ivc.pop_front()
        assert finished
        assert ivc.output_vc == -1
        assert ivc.output_port == -1

    def test_pop_body_keeps_state(self):
        pkt = Packet(0, 1, PacketType.WRITE_REQUEST, 0)
        flits = pkt.make_flits()
        ivc = InputVC(8)
        for f in flits:
            ivc.push(f)
        ivc.assign_output(1, 0)
        for i in range(4):
            _, finished = ivc.pop_front()
            assert not finished
            assert ivc.output_vc == 0
        _, finished = ivc.pop_front()
        assert finished

    def test_overflow_raises(self):
        ivc = InputVC(2)
        ivc.push(self._head())
        ivc.push(self._head())
        with pytest.raises(RuntimeError, match="overflow"):
            ivc.push(self._head())
