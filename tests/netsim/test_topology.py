"""Tests for topology construction and wiring consistency."""

import pytest

from repro.netsim.topology import build_fbfly, build_mesh


def _check_wiring(net):
    """Every output link must have a matching upstream entry at the
    receiver, with the same latency, pointing back at the sender."""
    for router in net.routers:
        for q, link in enumerate(router.out_links):
            if link is None:
                continue  # unused boundary port (mesh edges)
            kind, neighbor, dest_port, latency = link
            if kind == "router":
                up = neighbor.upstream[dest_port]
                assert up is not None
                up_kind, up_obj, up_port, up_lat = up
                assert up_kind == "router"
                assert up_obj is router
                assert up_port == q
                assert up_lat == latency
            else:
                assert neighbor.router is router
                assert neighbor.router_port == q


class TestMesh:
    def test_counts(self):
        net = build_mesh(8)
        assert len(net.routers) == 64
        assert len(net.terminals) == 64
        assert all(r.num_ports == 5 for r in net.routers)

    def test_wiring_consistent(self):
        _check_wiring(build_mesh(4))

    def test_all_links_unit_latency(self):
        net = build_mesh(4)
        for router in net.routers:
            for link in router.out_links:
                if link is not None:
                    assert link[3] == 1

    def test_partition(self):
        net = build_mesh(4, vcs_per_class=4)
        part = net.routers[0].partition
        assert part.num_message_classes == 2
        assert part.num_resource_classes == 1
        assert part.num_vcs == 8

    def test_edge_routers_have_all_ports_wired(self):
        # Boundary routers loop unused mesh ports back?  No: unused
        # boundary ports must never be routed to, but out_links entries
        # remain None there -- DOR never selects them.
        net = build_mesh(4)
        corner = net.routers[0]
        # corner (0,0) has no west/south neighbor:
        assert corner.out_links[2] is None
        assert corner.out_links[4] is None
        assert corner.out_links[1] is not None
        assert corner.out_links[3] is not None


class TestFbfly:
    def test_counts(self):
        net = build_fbfly(4, 4, 4)
        assert len(net.routers) == 16
        assert len(net.terminals) == 64
        assert all(r.num_ports == 10 for r in net.routers)

    def test_wiring_consistent(self):
        _check_wiring(build_fbfly(4, 4, 4))

    def test_link_latencies_match_span(self):
        net = build_fbfly(4, 4, 4)
        lats = set()
        for router in net.routers:
            r, c = router.id // 4, router.id % 4
            for q in range(4, 10):
                kind, neighbor, _, latency = router.out_links[q]
                assert kind == "router"
                r2, c2 = neighbor.id // 4, neighbor.id % 4
                span = abs(r - r2) + abs(c - c2)
                assert latency == span
                lats.add(latency)
        assert lats == {1, 2, 3}

    def test_row_column_full_connectivity(self):
        net = build_fbfly(4, 4, 4)
        for router in net.routers:
            r, c = router.id // 4, router.id % 4
            neighbors = {link[1].id for link in router.out_links[4:]}
            expected = {r * 4 + c2 for c2 in range(4) if c2 != c} | {
                r2 * 4 + c for r2 in range(4) if r2 != r
            }
            assert neighbors == expected

    def test_terminal_attachment(self):
        net = build_fbfly(4, 4, 4)
        for t in net.terminals:
            assert t.router.id == t.id // 4
            assert t.router_port == t.id % 4

    def test_partition(self):
        net = build_fbfly(4, 4, 4, vcs_per_class=2)
        part = net.routers[0].partition
        assert part.num_message_classes == 2
        assert part.num_resource_classes == 2
        assert part.num_vcs == 8


class TestMeshWiringFull(object):
    def test_mesh_unused_boundary_ports_never_receive(self):
        # Sanity on the DOR invariant backing the previous test: route
        # from every router toward every destination and check the
        # selected port is wired.
        net = build_mesh(4)
        routing = net.routing
        from repro.netsim.flit import Packet, PacketType

        for src in range(16):
            for dest in range(16):
                pkt = Packet(src, dest, PacketType.READ_REQUEST, 0)
                port = routing.route(net, net.routers[src], pkt)
                assert net.routers[src].out_links[port] is not None
