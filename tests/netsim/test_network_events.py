"""Tests for the network event calendar and terminal bookkeeping."""

import numpy as np
import pytest

from repro.netsim.flit import Packet, PacketType
from repro.netsim.network import Network
from repro.netsim.topology import build_mesh


class _Recorder:
    """Stub receiver capturing delivery times."""

    def __init__(self):
        self.flits = []
        self.credits = []

    def receive_flit(self, network, port, vc, flit):
        self.flits.append((network.time, port, vc, flit))

    def receive_credit(self, port, vc=None):
        if vc is None:  # terminal-style dispatch: only the VC is passed
            port, vc = None, port
        self.credits.append((port, vc))


class TestEventCalendar:
    def test_flit_delivered_at_scheduled_cycle(self):
        net = Network(routing=None)
        sink = _Recorder()
        flit = Packet(0, 1, PacketType.READ_REQUEST, 0).make_flits()[0]
        flit.out_port = 0  # pre-routed so no routing call happens
        net.schedule_flit(3, "router", sink, 2, 1, flit)
        # Drive the calendar manually (no routers/terminals attached).
        for _ in range(5):
            now = net.time
            for kind, obj, port, vc, f in net._flit_events.pop(now, ()):
                obj.receive_flit(net, port, vc, f)
            net.time += 1
        assert len(sink.flits) == 1
        t, port, vc, got = sink.flits[0]
        assert (t, port, vc) == (3, 2, 1)
        assert got is flit

    def test_credit_dispatch_kinds(self):
        net = Network(routing=None)
        sink = _Recorder()
        net.schedule_credit(0, "router", sink, 4, 2)
        net.schedule_credit(0, "terminal", sink, 0, 3)
        for kind, obj, port, vc in net._credit_events.pop(0, ()):
            if kind == "router":
                obj.receive_credit(port, vc)
            else:
                obj.receive_credit(vc)
        # terminal dispatch passes only the VC (port collapses).
        assert (4, 2) in sink.credits

    def test_calendar_is_garbage_free(self):
        # Processed slots are removed; an idle network keeps an empty
        # calendar (no unbounded growth).
        net = build_mesh(4, packet_rate=0.0)
        net.run(50)
        assert not net._flit_events
        assert not net._credit_events

    def test_delivery_hook_optional(self):
        net = build_mesh(4, packet_rate=0.0)
        pkt = Packet(0, 1, PacketType.READ_REQUEST, 0)
        net.terminals[0].request_queue.append(pkt)
        net.run(50)  # no on_delivery hook set: must not raise
        assert pkt.arrival_time is not None


class TestTerminalBookkeeping:
    def test_backlog_counts_both_queues(self):
        net = build_mesh(4, packet_rate=0.0)
        term = net.terminals[0]
        term.request_queue.append(Packet(0, 1, PacketType.READ_REQUEST, 99))
        term.reply_queue.append(Packet(0, 2, PacketType.WRITE_REPLY, 99))
        assert term.backlog == 2

    def test_read_fraction_controls_packet_mix(self):
        reads = writes = 0
        net = build_mesh(4, packet_rate=0.5, read_fraction=0.9, seed=4)
        net.on_delivery = lambda p, now: None
        net.run(400)
        for t in net.terminals:
            for p in list(t.request_queue):
                if p.ptype is PacketType.READ_REQUEST:
                    reads += 1
                else:
                    writes += 1
        # Only queued leftovers are inspected, but the 90/10 mix shows.
        total = reads + writes
        if total > 50:
            assert reads / total > 0.7

    def test_injected_counts_monotone(self):
        net = build_mesh(4, packet_rate=0.2, seed=2)
        net.run(100)
        first = net.total_injected_flits()
        net.run(100)
        assert net.total_injected_flits() >= first

    def test_aggregate_counters_consistent(self):
        net = build_mesh(4, packet_rate=0.1, seed=3)
        net.run(300)
        inj = net.total_injected_flits()
        ej = net.total_ejected_flits()
        assert inj >= ej
        assert inj - ej == net.in_flight_flits() or inj - ej >= 0


class TestChannelUtilization:
    def test_utilization_tracks_traffic(self):
        from repro.netsim.simulator import SimulationConfig, build_network

        cfg = SimulationConfig(
            topology="mesh", injection_rate=0.2, warmup_cycles=0,
            measure_cycles=0, drain_cycles=0,
        )
        net = build_network(cfg)
        net.run(400)
        util = net.channel_utilization()
        assert util, "no channels reported"
        assert all(0.0 <= u <= 1.0 for u in util.values())
        assert max(util.values()) > 0.01

    def test_empty_network_has_empty_report(self):
        from repro.netsim.topology import build_mesh

        net = build_mesh(4)
        assert net.channel_utilization() == {}
