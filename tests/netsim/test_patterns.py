"""Tests for the synthetic traffic patterns."""

import numpy as np
import pytest

from repro.netsim.patterns import (
    bit_complement_pattern,
    bit_reverse_pattern,
    hotspot_pattern,
    neighbor_pattern,
    shuffle_pattern,
    transpose_pattern,
)
from repro.netsim.simulator import SimulationConfig, build_network, run_simulation

RNG = np.random.default_rng(0)


class TestPermutations:
    def test_transpose(self):
        fn = transpose_pattern(64)  # 6 bits: swap high/low 3 bits
        assert fn(RNG, 0b000001, 64) == 0b001000
        assert fn(RNG, 0b101011, 64) == 0b011101

    def test_transpose_requires_even_bits(self):
        with pytest.raises(ValueError):
            transpose_pattern(32)

    def test_bit_complement(self):
        fn = bit_complement_pattern(64)
        assert fn(RNG, 0, 64) == 63
        assert fn(RNG, 0b101010, 64) == 0b010101

    def test_bit_reverse(self):
        fn = bit_reverse_pattern(64)
        assert fn(RNG, 0b100000, 64) == 0b000001
        assert fn(RNG, 0b110010, 64) == 0b010011

    def test_shuffle(self):
        fn = shuffle_pattern(64)
        assert fn(RNG, 0b100001, 64) == 0b000011

    def test_neighbor(self):
        fn = neighbor_pattern(64)
        assert fn(RNG, 5, 64) == 6
        assert fn(RNG, 63, 64) == 0

    def test_power_of_two_required(self):
        with pytest.raises(ValueError):
            bit_reverse_pattern(60)

    def test_self_addressed_falls_back_to_random(self):
        # Terminal 0 maps to itself under transpose; must not self-send.
        fn = transpose_pattern(64)
        for _ in range(50):
            assert fn(RNG, 0, 64) != 0

    def test_permutations_are_valid_destinations(self):
        for maker in (transpose_pattern, bit_complement_pattern,
                      bit_reverse_pattern, shuffle_pattern, neighbor_pattern):
            fn = maker(64)
            for src in range(64):
                dest = fn(RNG, src, 64)
                assert 0 <= dest < 64
                assert dest != src


class TestHotspot:
    def test_hot_fraction_targets_hotspots(self):
        fn = hotspot_pattern([7], hot_fraction=1.0)
        rng = np.random.default_rng(1)
        assert all(fn(rng, 3, 64) == 7 for _ in range(20))

    def test_validation(self):
        with pytest.raises(ValueError):
            hotspot_pattern([])
        with pytest.raises(ValueError):
            hotspot_pattern([1], hot_fraction=0.0)

    def test_hotspot_self_skipped(self):
        fn = hotspot_pattern([7], hot_fraction=1.0)
        rng = np.random.default_rng(2)
        for _ in range(50):
            assert fn(rng, 7, 64) != 7


class TestSimulationIntegration:
    def test_unknown_pattern_rejected(self):
        with pytest.raises(ValueError, match="unknown traffic pattern"):
            build_network(SimulationConfig(traffic_pattern="tornado"))

    @pytest.mark.parametrize("pattern", ["transpose", "bit_complement", "hotspot"])
    def test_patterns_run_clean(self, pattern):
        cfg = SimulationConfig(
            topology="mesh",
            injection_rate=0.05,
            traffic_pattern=pattern,
            warmup_cycles=100,
            measure_cycles=300,
            drain_cycles=400,
        )
        res = run_simulation(cfg)
        assert res.measured_packets > 0
        assert res.avg_latency > 0
        assert not res.saturated
