"""Fault-tolerant routing (``routing="ft_dor"`` / ``"ft_ugal"``).

The acceptance bar for the robustness work (docs/ROBUSTNESS.md): any
single permanent link fault on the mesh must not cost a single packet
under fault-tolerant routing at low load, while the same fault under
plain DOR strands traffic.  The hypothesis case samples the faulted
link from every directed inter-router link of the 8x8 mesh; the
deterministic cases pin the VC partition, the detour tables and the
cross-kernel contracts.
"""

from dataclasses import replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eval.resilience import mesh_link_candidates
from repro.faults import FaultPlan, LinkFault
from repro.netsim.routing.dor import DORMeshRouting
from repro.netsim.routing.ft import FTDORMeshRouting
from repro.netsim.simulator import SimulationConfig, run_simulation
from repro.netsim.topology import build_mesh

# V = 8 on the mesh: the default partition spends it as 2 message
# classes x 4 VCs, the ft partition as 2 x 2 classes x 2 VCs -- same
# total buffering, so the comparison charges ft for its escape layer.
FT_CFG = SimulationConfig(
    vcs_per_class=2,
    routing="ft_dor",
    injection_rate=0.05,
    warmup_cycles=60,
    measure_cycles=120,
    drain_cycles=300,
    watchdog_cycles=400,
)
DOR_CFG = replace(FT_CFG, routing="default", vcs_per_class=4)

LINKS = mesh_link_candidates()


def single_fault(router: int, port: int) -> FaultPlan:
    return FaultPlan(link_faults=(LinkFault(router, port, 0, None),))


class TestPartition:
    def test_escape_layer_doubles_the_resource_classes(self):
        part = FTDORMeshRouting(8).partition(2)
        assert part.num_message_classes == 2
        assert part.num_resource_classes == 2
        assert part.vcs_per_class == 2
        assert part.num_vcs == 8

    def test_transition_is_one_way_into_the_escape_class(self):
        part = FTDORMeshRouting(8).partition(1)
        assert list(part.resource_transitions[0]) == [True, True]
        assert list(part.resource_transitions[1]) == [False, True]

    def test_builder_wires_the_partition(self):
        net = build_mesh(vcs_per_class=1, routing="ft_dor")
        assert isinstance(net.routing, FTDORMeshRouting)
        assert net.routers[0].num_vcs == 4  # 2 classes x 2 phases x 1 VC

    def test_unknown_routing_mode_rejected(self):
        with pytest.raises(ValueError, match="ft_dor"):
            build_mesh(routing="adaptive")

    def test_torus_rejects_ft_routing(self):
        cfg = replace(FT_CFG, topology="torus")
        with pytest.raises(ValueError, match="routing"):
            run_simulation(cfg)


class TestDetourTables:
    def test_fault_free_routes_match_dor(self):
        net = build_mesh(vcs_per_class=1, routing="ft_dor")
        dor = DORMeshRouting(8)
        ft = net.routing
        assert ft.fault_state is None

        class Pkt:
            message_class = 0
            resource_class = 0
            escape_phase = 0

        for rid in (0, 9, 27, 63):
            for dest in (0, 7, 56, 63):
                if rid == dest:
                    continue
                pkt = Pkt()
                pkt.dest = dest
                assert ft.route(net, net.routers[rid], pkt) == dor.route(
                    net, net.routers[rid], pkt
                )
                assert pkt.resource_class == 0  # no spurious escapes

    def test_single_fault_keeps_every_pair_routable(self):
        net = build_mesh(vcs_per_class=1, routing="ft_dor")
        state = single_fault(27, 1).materialize(
            [r.num_ports for r in net.routers], net.routers[0].num_vcs, 1000
        )
        net.attach_fault_state(state)
        assert all(
            net.routing.routable(s, d) for s in range(64) for d in range(64)
        )

    def test_ejection_fault_partitions_only_that_terminal(self):
        net = build_mesh(vcs_per_class=1, routing="ft_dor")
        state = single_fault(27, 0).materialize(  # port 0 = terminal
            [r.num_ports for r in net.routers], net.routers[0].num_vcs, 1000
        )
        net.attach_fault_state(state)
        routable = net.routing.routable
        assert not routable(0, 27)
        assert routable(27, 0)  # injection still works; ejection is dead
        assert routable(0, 63)

    def test_detach_restores_the_fault_free_tables(self):
        net = build_mesh(vcs_per_class=1, routing="ft_dor")
        state = single_fault(27, 1).materialize(
            [r.num_ports for r in net.routers], net.routers[0].num_vcs, 1000
        )
        net.attach_fault_state(state)
        net.attach_fault_state(None)
        assert net.routing.fault_state is None
        assert net.terminals[0].routable_fn is None


class TestAcceptance:
    """ISSUE acceptance: one permanent link fault, V=8 mesh, low load."""

    def test_ft_dor_delivers_everything(self):
        cfg = replace(FT_CFG, faults=single_fault(27, 1))
        result = run_simulation(cfg)
        assert result.delivered_fraction == 1.0
        assert not result.degraded_mode
        assert result.fault_counters["watchdog_degraded_trips"] == 0
        assert result.fault_counters["packets_unroutable"] == 0
        assert result.fault_counters["escape_reroutes"] > 0

    def test_plain_dor_strands_packets_on_the_same_fault(self):
        cfg = replace(DOR_CFG, faults=single_fault(27, 1))
        result = run_simulation(cfg)
        assert result.packets_lost > 0
        assert result.delivered_fraction < 1.0

    @settings(max_examples=6, deadline=None)
    @given(link=st.sampled_from(LINKS))
    def test_any_single_link_fault_is_tolerated(self, link):
        plan = single_fault(*link)
        ft = run_simulation(replace(FT_CFG, faults=plan))
        assert ft.delivered_fraction == 1.0
        assert not ft.degraded_mode
        assert ft.fault_counters["watchdog_degraded_trips"] == 0
        dor = run_simulation(replace(DOR_CFG, faults=plan))
        assert dor.packets_lost > 0


class TestKernelContracts:
    def test_reference_and_fast_agree_under_faults(self):
        cfg = replace(FT_CFG, faults=single_fault(9, 3))
        fast = run_simulation(cfg, kernel="fast").to_payload()
        ref = run_simulation(cfg, kernel="reference").to_payload()
        assert fast == ref

    def test_compiled_matches_fast_under_faults(self):
        # The compiled kernel delegates fault-state cycles to the fast
        # kernel, so agreement is the contract being restated -- pinned
        # here so a future codegen fault path must keep it.
        cfg = replace(FT_CFG, faults=single_fault(9, 3))
        fast = run_simulation(cfg, kernel="fast").to_payload()
        compiled = run_simulation(cfg, kernel="compiled").to_payload()
        assert fast == compiled

    def test_fault_free_ft_bit_identical_across_kernels(self):
        payloads = [
            run_simulation(FT_CFG, kernel=k).to_payload()
            for k in ("reference", "fast", "compiled")
        ]
        assert payloads[0] == payloads[1] == payloads[2]


class TestFTFbfly:
    def test_single_link_fault_tolerated_with_ft_ugal(self):
        cfg = SimulationConfig(
            topology="fbfly",
            vcs_per_class=1,
            routing="ft_ugal",
            injection_rate=0.05,
            warmup_cycles=60,
            measure_cycles=120,
            drain_cycles=300,
            watchdog_cycles=400,
            faults=single_fault(3, 5),  # an inter-router express link
        )
        result = run_simulation(cfg)
        assert result.delivered_fraction == 1.0
        assert not result.degraded_mode

    def test_fault_free_ft_ugal_matches_plain_ugal(self):
        base = SimulationConfig(
            topology="fbfly",
            vcs_per_class=1,
            injection_rate=0.1,
            warmup_cycles=60,
            measure_cycles=120,
            drain_cycles=120,
        )
        a = run_simulation(replace(base, routing="ft_ugal")).to_payload()
        b = run_simulation(base).to_payload()
        # Config differs (the routing field); every measured number
        # must not.
        a.pop("config"), b.pop("config")
        assert a == b
