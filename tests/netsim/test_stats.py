"""Tests for latency statistics helpers."""

import math

import numpy as np
import pytest

from repro.netsim.simulator import SimulationConfig, build_network, run_simulation
from repro.netsim.stats import batch_means, summarize_latencies


class TestSummarize:
    def test_simple(self):
        s = summarize_latencies([1, 2, 3, 4, 5])
        assert s.count == 5
        assert s.mean == 3
        assert s.minimum == 1 and s.maximum == 5
        assert s.p50 == 3

    def test_single_value(self):
        s = summarize_latencies([7])
        assert s.mean == 7 and s.p99 == 7 and s.std == 0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize_latencies([])

    def test_percentiles_interpolated(self):
        s = summarize_latencies([0, 10])
        assert s.p50 == 5
        assert s.p95 == pytest.approx(9.5)

    def test_percentile_ordering(self):
        rng = np.random.default_rng(0)
        s = summarize_latencies(rng.exponential(10, size=1000).tolist())
        assert s.minimum <= s.p50 <= s.p95 <= s.p99 <= s.maximum

    def test_std_matches_numpy(self):
        rng = np.random.default_rng(1)
        data = rng.normal(20, 5, size=500)
        s = summarize_latencies(data.tolist())
        assert s.std == pytest.approx(float(np.std(data)), rel=1e-9)

    def test_str(self):
        assert "p95" in str(summarize_latencies([1, 2, 3]))


class TestBatchMeans:
    def test_constant_signal_zero_error(self):
        samples = [(t, 5.0) for t in range(100)]
        mean, se = batch_means(samples)
        assert mean == 5.0
        assert se == 0.0

    def test_mean_estimate(self):
        rng = np.random.default_rng(2)
        samples = [(t, float(rng.normal(10, 2))) for t in range(2000)]
        mean, se = batch_means(samples, num_batches=20)
        assert mean == pytest.approx(10, abs=0.3)
        assert 0 < se < 0.5

    def test_more_data_shrinks_error(self):
        rng = np.random.default_rng(3)
        small = [(t, float(rng.normal(0, 1))) for t in range(200)]
        large = [(t, float(rng.normal(0, 1))) for t in range(20000)]
        _, se_small = batch_means(small)
        _, se_large = batch_means(large)
        assert se_large < se_small

    def test_validation(self):
        with pytest.raises(ValueError):
            batch_means([])
        with pytest.raises(ValueError):
            batch_means([(0, 1.0)], num_batches=1)

    def test_single_batch_populated_gives_nan(self):
        mean, se = batch_means([(0, 3.0)], num_batches=5)
        assert mean == 3.0
        assert math.isnan(se)

    def test_identical_timestamps_collapse_to_one_batch(self):
        # Zero time span: every sample lands in batch 0 (the span guard
        # prevents a division by zero); stderr is undefined.
        mean, se = batch_means([(42, 1.0), (42, 2.0), (42, 3.0)])
        assert mean == 2.0
        assert math.isnan(se)

    def test_final_timestamp_clamped_into_last_batch(self):
        # t == t1 maps to bucket index num_batches and must be clamped,
        # not dropped or wrapped.
        mean, se = batch_means([(0, 2.0), (10, 4.0)], num_batches=2)
        assert mean == 3.0
        # batch means [2, 4]: var = 2, se = sqrt(var / k) = 1.
        assert se == pytest.approx(1.0)

    def test_unpopulated_batches_are_skipped_not_zeroed(self):
        # Two clusters with a long gap: empty middle batches must not
        # contribute zero-valued means (which would bias the grand mean).
        samples = [(t, 10.0) for t in range(5)] + [(t, 10.0) for t in (100, 101)]
        mean, se = batch_means(samples, num_batches=10)
        assert mean == 10.0
        assert se == 0.0


def _capture_deliveries(cfg):
    """All (birth_time, arrival_time) pairs delivered over a full run.

    Replays the exact schedule :func:`run_simulation` executes (same
    config, same seed, same kernel), but records every delivery instead
    of filtering -- an independent oracle for the measurement-window
    rule.
    """
    net = build_network(cfg)
    deliveries = []
    net.on_delivery = lambda pkt, now: deliveries.append(
        (pkt.birth_time, pkt.arrival_time)
    )
    net.run(cfg.warmup_cycles + cfg.measure_cycles + cfg.drain_cycles)
    return deliveries


class TestMeasurementWindow:
    """The warmup/measurement boundary: a packet is measured iff
    ``warmup <= birth_time < warmup + measure`` (half-open, filtered on
    *birth* time, regardless of when it arrives)."""

    CFG = dict(topology="mesh", injection_rate=0.3, seed=5,
               warmup_cycles=100, measure_cycles=300, drain_cycles=400)

    def test_measured_count_matches_birth_time_window(self):
        cfg = SimulationConfig(**self.CFG)
        res = run_simulation(cfg)
        deliveries = _capture_deliveries(cfg)
        lo, hi = cfg.warmup_cycles, cfg.warmup_cycles + cfg.measure_cycles
        expected = sum(1 for b, _a in deliveries if lo <= b < hi)
        assert res.measured_packets == expected > 0

    def test_window_is_half_open(self):
        cfg = SimulationConfig(**self.CFG)
        res = run_simulation(cfg)
        deliveries = _capture_deliveries(cfg)
        lo, hi = cfg.warmup_cycles, cfg.warmup_cycles + cfg.measure_cycles
        births = [b for b, _a in deliveries]
        # The boundary cycles are populated at this load/seed, so the
        # half-open rule is actually distinguished from the
        # alternatives here.
        assert lo in births and hi in births
        closed = sum(1 for b in births if lo <= b <= hi)
        shifted = sum(1 for b in births if lo < b <= hi)
        half_open = sum(1 for b in births if lo <= b < hi)
        assert res.measured_packets == half_open
        assert half_open != closed and half_open != shifted

    def test_warmup_born_packets_excluded_even_if_delivered_late(self):
        cfg = SimulationConfig(**self.CFG)
        res = run_simulation(cfg)
        deliveries = _capture_deliveries(cfg)
        lo = cfg.warmup_cycles
        # Transient packets: born during warmup, delivered after it.
        straddlers = [(b, a) for b, a in deliveries if b < lo <= a]
        assert straddlers, "expected warmup/measurement straddlers"
        total_delivered = len(deliveries)
        assert res.measured_packets < total_delivered

    def test_zero_warmup_measures_from_cycle_zero(self):
        cfg = SimulationConfig(**{**self.CFG, "warmup_cycles": 0})
        res = run_simulation(cfg)
        deliveries = _capture_deliveries(cfg)
        hi = cfg.measure_cycles
        expected = sum(1 for b, _a in deliveries if 0 <= b < hi)
        assert res.measured_packets == expected
        # Packets from the very first cycles count (no implicit warmup).
        assert min(b for b, _a in deliveries) <= 1

    def test_zero_measure_window_measures_nothing(self):
        cfg = SimulationConfig(**{**self.CFG, "measure_cycles": 0,
                                  "drain_cycles": 100})
        res = run_simulation(cfg)
        assert res.measured_packets == 0
        assert res.latency_summary is None
        assert math.isinf(res.avg_latency)


class TestSimulationIntegration:
    def test_result_carries_summary(self):
        cfg = SimulationConfig(
            topology="mesh",
            injection_rate=0.1,
            warmup_cycles=100,
            measure_cycles=500,
            drain_cycles=500,
        )
        res = run_simulation(cfg)
        assert res.latency_summary is not None
        assert res.latency_summary.mean == pytest.approx(res.avg_latency)
        assert res.latency_summary.p95 >= res.latency_summary.p50
        assert res.latency_stderr < 2.0  # tight at low load

    def test_empty_run_has_no_summary(self):
        cfg = SimulationConfig(
            topology="mesh",
            injection_rate=0.0,
            warmup_cycles=5,
            measure_cycles=20,
            drain_cycles=5,
        )
        res = run_simulation(cfg)
        assert res.latency_summary is None
        assert math.isnan(res.latency_stderr)


class TestResultSerialization:
    def test_to_dict_round_trips_through_json(self):
        import json

        cfg = SimulationConfig(
            topology="mesh",
            injection_rate=0.1,
            warmup_cycles=50,
            measure_cycles=300,
            drain_cycles=300,
        )
        res = run_simulation(cfg)
        blob = json.dumps(res.to_dict())
        data = json.loads(blob)
        assert data["topology"] == "mesh"
        assert data["avg_latency"] == pytest.approx(res.avg_latency)
        assert "p95" in data
