"""Tests for latency statistics helpers."""

import math

import numpy as np
import pytest

from repro.netsim.simulator import SimulationConfig, run_simulation
from repro.netsim.stats import batch_means, summarize_latencies


class TestSummarize:
    def test_simple(self):
        s = summarize_latencies([1, 2, 3, 4, 5])
        assert s.count == 5
        assert s.mean == 3
        assert s.minimum == 1 and s.maximum == 5
        assert s.p50 == 3

    def test_single_value(self):
        s = summarize_latencies([7])
        assert s.mean == 7 and s.p99 == 7 and s.std == 0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize_latencies([])

    def test_percentiles_interpolated(self):
        s = summarize_latencies([0, 10])
        assert s.p50 == 5
        assert s.p95 == pytest.approx(9.5)

    def test_percentile_ordering(self):
        rng = np.random.default_rng(0)
        s = summarize_latencies(rng.exponential(10, size=1000).tolist())
        assert s.minimum <= s.p50 <= s.p95 <= s.p99 <= s.maximum

    def test_std_matches_numpy(self):
        rng = np.random.default_rng(1)
        data = rng.normal(20, 5, size=500)
        s = summarize_latencies(data.tolist())
        assert s.std == pytest.approx(float(np.std(data)), rel=1e-9)

    def test_str(self):
        assert "p95" in str(summarize_latencies([1, 2, 3]))


class TestBatchMeans:
    def test_constant_signal_zero_error(self):
        samples = [(t, 5.0) for t in range(100)]
        mean, se = batch_means(samples)
        assert mean == 5.0
        assert se == 0.0

    def test_mean_estimate(self):
        rng = np.random.default_rng(2)
        samples = [(t, float(rng.normal(10, 2))) for t in range(2000)]
        mean, se = batch_means(samples, num_batches=20)
        assert mean == pytest.approx(10, abs=0.3)
        assert 0 < se < 0.5

    def test_more_data_shrinks_error(self):
        rng = np.random.default_rng(3)
        small = [(t, float(rng.normal(0, 1))) for t in range(200)]
        large = [(t, float(rng.normal(0, 1))) for t in range(20000)]
        _, se_small = batch_means(small)
        _, se_large = batch_means(large)
        assert se_large < se_small

    def test_validation(self):
        with pytest.raises(ValueError):
            batch_means([])
        with pytest.raises(ValueError):
            batch_means([(0, 1.0)], num_batches=1)

    def test_single_batch_populated_gives_nan(self):
        mean, se = batch_means([(0, 3.0)], num_batches=5)
        assert mean == 3.0
        assert math.isnan(se)


class TestSimulationIntegration:
    def test_result_carries_summary(self):
        cfg = SimulationConfig(
            topology="mesh",
            injection_rate=0.1,
            warmup_cycles=100,
            measure_cycles=500,
            drain_cycles=500,
        )
        res = run_simulation(cfg)
        assert res.latency_summary is not None
        assert res.latency_summary.mean == pytest.approx(res.avg_latency)
        assert res.latency_summary.p95 >= res.latency_summary.p50
        assert res.latency_stderr < 2.0  # tight at low load

    def test_empty_run_has_no_summary(self):
        cfg = SimulationConfig(
            topology="mesh",
            injection_rate=0.0,
            warmup_cycles=5,
            measure_cycles=20,
            drain_cycles=5,
        )
        res = run_simulation(cfg)
        assert res.latency_summary is None
        assert math.isnan(res.latency_stderr)


class TestResultSerialization:
    def test_to_dict_round_trips_through_json(self):
        import json

        cfg = SimulationConfig(
            topology="mesh",
            injection_rate=0.1,
            warmup_cycles=50,
            measure_cycles=300,
            drain_cycles=300,
        )
        res = run_simulation(cfg)
        blob = json.dumps(res.to_dict())
        data = json.loads(blob)
        assert data["topology"] == "mesh"
        assert data["avg_latency"] == pytest.approx(res.avg_latency)
        assert "p95" in data
