"""Tests for the torus topology and dateline routing (Section 4.2's
resource-class example, implemented end to end)."""

import numpy as np
import pytest

from repro.netsim.flit import Packet, PacketType
from repro.netsim.routing.dor import (
    PORT_EAST,
    PORT_NORTH,
    PORT_SOUTH,
    PORT_TERMINAL,
    PORT_WEST,
)
from repro.netsim.routing.torus import (
    TorusDatelineRouting,
    X_POST,
    X_PRE,
    Y_POST,
    Y_PRE,
)
from repro.netsim.simulator import SimulationConfig, run_simulation
from repro.netsim.topology import build_torus


def _pkt(src, dest, rc=X_PRE):
    p = Packet(src=src, dest=dest, ptype=PacketType.READ_REQUEST, birth_time=0)
    p.resource_class = rc
    return p


class TestPartition:
    def test_four_resource_classes_total_order(self):
        part = TorusDatelineRouting.partition(1)
        assert part.num_resource_classes == 4
        # Upper-triangular transitions: class never decreases.
        for r in range(4):
            assert part.successor_classes(r) == list(range(r, 4))

    def test_transition_sparsity(self):
        # 10 of 16 class pairs legal per message class.
        part = TorusDatelineRouting.partition(1)
        assert part.num_legal_transitions() == 2 * 10

    def test_k_validation(self):
        with pytest.raises(ValueError):
            TorusDatelineRouting(2)


class TestRouting:
    def setup_method(self):
        self.k = 4
        self.routing = TorusDatelineRouting(self.k)
        self.net = build_torus(self.k)

    def test_shortest_direction_uses_wraparound(self):
        # Router 0 -> router 3 (same row): one hop west around the wrap.
        pkt = _pkt(0, 3)
        assert self.routing.route(self.net, self.net.routers[0], pkt) == PORT_WEST

    def test_wrap_hop_moves_to_post_dateline_class(self):
        pkt = _pkt(0, 3)  # westward 0 -> 3 crosses the x seam
        self.routing.route(self.net, self.net.routers[0], pkt)
        assert pkt.resource_class == X_POST

    def test_interior_hop_stays_pre_dateline(self):
        pkt = _pkt(0, 1)
        self.routing.route(self.net, self.net.routers[0], pkt)
        assert pkt.resource_class == X_PRE

    def test_y_phase_after_x(self):
        pkt = _pkt(0, 4)  # directly north one hop
        self.routing.route(self.net, self.net.routers[0], pkt)
        assert pkt.resource_class == Y_PRE

    def test_y_wrap_from_x_pre_jumps_to_y_post(self):
        pkt = _pkt(0, 12)  # (0,0) -> (0,3): south around the wrap
        port = self.routing.route(self.net, self.net.routers[0], pkt)
        assert port == PORT_SOUTH
        assert pkt.resource_class == Y_POST

    def test_class_monotone_along_any_walk(self):
        k = self.k
        for src in range(k * k):
            for dest in range(k * k):
                if src == dest:
                    continue
                pkt = _pkt(src, dest)
                self.net.routing.prepare(self.net, self.net.terminals[src], pkt)
                rid = src
                last = pkt.resource_class
                for _ in range(2 * k + 1):
                    port = self.routing.route(self.net, self.net.routers[rid], pkt)
                    assert pkt.resource_class >= last
                    last = pkt.resource_class
                    if port == PORT_TERMINAL:
                        break
                    link = self.net.routers[rid].out_links[port]
                    rid = link[1].id
                assert rid == dest

    def test_walk_length_is_torus_distance(self):
        k = self.k
        for src in (0, 5, 15):
            for dest in range(k * k):
                if src == dest:
                    continue
                pkt = _pkt(src, dest)
                rid, hops = src, 0
                while True:
                    port = self.routing.route(self.net, self.net.routers[rid], pkt)
                    if port == PORT_TERMINAL:
                        break
                    rid = self.net.routers[rid].out_links[port][1].id
                    hops += 1
                    assert hops <= k
                assert hops == self.routing.hops(src, dest)

    def test_prepare_sets_initial_class(self):
        term = self.net.terminals[0]
        pkt = _pkt(0, 3)
        self.net.routing.prepare(self.net, term, pkt)
        assert pkt.resource_class == X_POST  # first hop crosses the seam


class TestTopology:
    def test_all_ports_wired(self):
        net = build_torus(4)
        for router in net.routers:
            for port in range(5):
                assert router.out_links[port] is not None
                assert router.upstream[port] is not None

    def test_wrap_links_exist(self):
        net = build_torus(4)
        # Router 3 (x=3,y=0) east neighbor is router 0.
        kind, neighbor, dest_port, lat = net.routers[3].out_links[PORT_EAST]
        assert neighbor.id == 0
        assert dest_port == PORT_WEST

    def test_partition_dimensions(self):
        net = build_torus(4, vcs_per_class=2)
        part = net.routers[0].partition
        assert part.num_vcs == 2 * 4 * 2  # M * R * C


class TestTorusSimulation:
    def test_deadlock_free_under_load(self):
        # Without datelines a loaded ring deadlocks; with them the
        # network must drain completely.
        cfg = SimulationConfig(
            topology="torus",
            vcs_per_class=1,
            injection_rate=0.3,
            warmup_cycles=0,
            measure_cycles=800,
            drain_cycles=0,
        )
        from repro.netsim.simulator import build_network

        net = build_network(cfg)
        net.run(800)
        for t in net.terminals:
            t.packet_rate = 0.0
        net.run(1500)
        assert net.in_flight_flits() == 0

    def test_torus_beats_mesh_at_load(self):
        # Wraparound halves the average distance: lower latency at the
        # same offered load.
        results = {}
        for topo in ("mesh", "torus"):
            cfg = SimulationConfig(
                topology=topo,
                vcs_per_class=1,
                injection_rate=0.15,
                warmup_cycles=200,
                measure_cycles=600,
                drain_cycles=800,
            )
            results[topo] = run_simulation(cfg).avg_latency
        assert results["torus"] < results["mesh"]

    def test_sparse_vc_allocation_accepts_torus_requests(self):
        # The router builds its VC allocator with sparse=True; any
        # illegal transition would raise in validation mode.  Re-run a
        # short sim with validation enabled to prove legality.
        cfg = SimulationConfig(
            topology="torus",
            vcs_per_class=2,
            injection_rate=0.1,
            warmup_cycles=0,
            measure_cycles=400,
            drain_cycles=400,
        )
        from repro.netsim.simulator import build_network

        net = build_network(cfg)
        for r in net.routers:
            r.vc_alloc.check_requests = True  # strict validation
        net.run(800)  # raises on any illegal VC transition
        assert net.total_ejected_flits() > 0
