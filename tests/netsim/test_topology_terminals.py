"""Topology-derived terminal counts and configurable hotspot placement.

Two satellite fixes ride together here: ``build_network`` used to hand
``_resolve_pattern`` a hardcoded 64 terminals (a silent mis-mapping
trap for any future non-64-terminal topology), and the hotspot pattern
hardcoded its hotspot set to ``[0, N // 2]`` (unsweepable, invisible
to the cache key).
"""

import dataclasses

import pytest

from repro.eval.runner import config_key
from repro.netsim.simulator import (
    SimulationConfig,
    build_network,
    topology_num_terminals,
)


class TestTopologyNumTerminals:
    @pytest.mark.parametrize("topology", ["mesh", "fbfly", "torus"])
    def test_matches_the_built_network(self, topology):
        # The helper must stay derived from the same geometry the
        # builders receive -- a drift here silently mis-maps every
        # permutation pattern.
        net = build_network(SimulationConfig(topology=topology))
        assert topology_num_terminals(topology) == net.num_terminals

    def test_unknown_topology_rejected(self):
        with pytest.raises(ValueError, match="unknown topology"):
            topology_num_terminals("hypercube")


class TestHotspotPlacement:
    def test_default_placement_preserved(self):
        # hotspot_terminals=None keeps the historical [0, N // 2]
        # placement and the historical serialized form.
        cfg = SimulationConfig(traffic_pattern="hotspot")
        assert "hotspot_terminals" not in cfg.to_dict()
        build_network(cfg)  # default placement still builds

    def test_explicit_placement_builds_and_roundtrips(self):
        cfg = SimulationConfig(
            traffic_pattern="hotspot", hotspot_terminals=[3, 17, 42]
        )
        build_network(cfg)
        again = SimulationConfig.from_dict(cfg.to_dict())
        assert again.hotspot_terminals == [3, 17, 42]

    def test_out_of_range_hotspot_rejected(self):
        cfg = SimulationConfig(
            traffic_pattern="hotspot", hotspot_terminals=[0, 64]
        )
        with pytest.raises(ValueError, match="out of range"):
            build_network(cfg)

    def test_placement_enters_the_cache_key(self):
        base = SimulationConfig(traffic_pattern="hotspot")
        moved = dataclasses.replace(base, hotspot_terminals=[1, 2])
        default_explicit = dataclasses.replace(
            base, hotspot_terminals=[0, 32]
        )
        assert config_key(base) != config_key(moved)
        # Even spelling out the default placement keys differently:
        # None means "the historical default", not "[0, 32]", so
        # pre-existing cache entries are never served a lie.
        assert config_key(base) != config_key(default_explicit)

    def test_non_hotspot_configs_keep_legacy_keys(self):
        # Pinned from the pre-hotspot-field build: the default config's
        # serialized form (and so its cache key) must not change.
        assert "hotspot_terminals" not in SimulationConfig().to_dict()
        assert config_key(SimulationConfig()) == (
            "41eb76681cff1e9e66613164299f6b65"
        )
