"""Gate-vs-behavioural cross-validation of the speculative switch
allocator netlists (Figure 9): single-cycle-from-reset function must
match :class:`repro.core.speculative.SpeculativeSwitchAllocator` for
both masking schemes, including the combined crossbar outputs."""

import numpy as np
import pytest

from repro.core import SpeculativeSwitchAllocator
from repro.hw.cells import CELL_INDEX
from repro.hw.netlist import Netlist
from repro.hw.simulate import NetlistSimulator
from repro.hw.sw_alloc_gates import build_switch_allocator_netlist

_DFF = CELL_INDEX["DFF"]


def _make_sim(P, V, arch, scheme):
    nl = build_switch_allocator_netlist(P, V, arch, "rr", scheme)
    sim = NetlistSimulator(nl, reg_init=1)
    if arch == "wf":
        # Two replicated-array diagonal rings (nonspec core first, spec
        # core second); each builder creates its P pointer registers
        # before its per-port pre-selection masks.
        regs = [i for i, k in enumerate(nl.kinds) if k == _DFF]
        # Identify ring registers: their D input is a hold-mux whose
        # *both* data legs are DFFs (self + previous ring stage).  The
        # arbiter pointer registers also sit behind MUX2 cells, but
        # with a combinational next-state on the update leg, so this
        # shape is unique to the rotate-enabled diagonal rings.
        _MUX2 = CELL_INDEX["MUX2"]
        ring = [
            q
            for q in regs
            if nl.kinds[nl.reg_d[q]] == _MUX2
            and all(nl.kinds[f] == _DFF for f in nl.fanins[nl.reg_d[q]][:2])
        ]
        assert len(ring) == 2 * P
        for q in ring:
            sim.set_register(q, 0)
        sim.set_register(ring[0], 1)
        sim.set_register(ring[P], 1)
    return sim


def _stimulus(P, V, requests):
    stim = []
    for p in range(P):
        for v in range(V):
            q = requests[p][v]
            stim.extend(1 if qq == q else 0 for qq in range(P))
    return stim


@pytest.mark.parametrize("arch", ["sep_if", "sep_of", "wf"])
@pytest.mark.parametrize("scheme", ["pessimistic", "conventional"])
def test_speculative_netlist_matches_behavioural(arch, scheme):
    P, V = 4, 2
    rng = np.random.default_rng(hash((arch, scheme)) % 2**32)
    for trial in range(12):
        beh = SpeculativeSwitchAllocator(P, V, arch=arch, scheme=scheme)
        sim = _make_sim(P, V, arch, scheme)

        ns = [[None] * V for _ in range(P)]
        sp = [[None] * V for _ in range(P)]
        for p in range(P):
            for v in range(V):
                r = rng.random()
                if r < 0.3:
                    ns[p][v] = int(rng.integers(P))
                elif r < 0.55:
                    sp[p][v] = int(rng.integers(P))

        stim = _stimulus(P, V, ns) + _stimulus(P, V, sp)
        out = sim.output_values(stim)
        # Outputs per port: P combined-crossbar bits, then per VC an
        # interleaved (nonspec grant, masked speculative grant) pair.
        per_port = np.array(out).reshape(P, P + 2 * V)
        xbar = per_port[:, :P]
        vc_ns = per_port[:, P :: 2][:, :V]
        vc_sp = per_port[:, P + 1 :: 2][:, :V]

        res = beh.allocate(ns, sp)
        exp_xbar = np.zeros((P, P), dtype=int)
        exp_ns = np.zeros((P, V), dtype=int)
        exp_sp = np.zeros((P, V), dtype=int)
        for p, g in enumerate(res.nonspec):
            if g is not None:
                exp_ns[p][g[0]] = 1
                exp_xbar[p][g[1]] = 1
        for p, g in enumerate(res.spec):
            if g is not None:
                exp_sp[p][g[0]] = 1
                exp_xbar[p][g[1]] = 1

        assert np.array_equal(vc_ns, exp_ns), (trial, ns, sp, vc_ns, exp_ns)
        assert np.array_equal(vc_sp, exp_sp), (trial, ns, sp, vc_sp, exp_sp)
        assert np.array_equal(xbar, exp_xbar), (trial, ns, sp, xbar, exp_xbar)


def test_nonspec_scheme_has_single_core():
    nl_1 = build_switch_allocator_netlist(4, 2, "sep_if", "rr", "nonspec")
    nl_2 = build_switch_allocator_netlist(4, 2, "sep_if", "rr", "pessimistic")
    assert nl_2.num_gates > 1.8 * nl_1.num_gates
