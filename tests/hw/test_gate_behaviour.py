"""Cross-validation: gate-level netlists vs behavioural models.

The structural netlists in ``repro.hw`` must compute the same functions
as the behavioural allocators in ``repro.core``.  Arbiters are compared
cycle-by-cycle (state evolution included); allocators are compared
single-cycle from reset (the behavioural front-ends and the netlists
use slightly different internal arbiter decompositions, so priority
trajectories may legally diverge after the first conflict, but the
reset-state combinational function must agree exactly).
"""

import numpy as np
import pytest

from repro.core import (
    MatrixArbiter,
    RoundRobinArbiter,
    SwitchAllocator,
    VCAllocator,
    VCPartition,
    VCRequest,
    WavefrontAllocator,
)
from repro.hw.alloc_gates import build_wavefront_matrix
from repro.hw.arbiter_gates import build_arbiter
from repro.hw.netlist import Netlist
from repro.hw.simulate import NetlistSimulator
from repro.hw.sw_alloc_gates import build_switch_allocator_netlist
from repro.hw.vc_alloc_gates import build_vc_allocator_netlist

CELL_DFF = "DFF"


def _reg_ids(nl):
    from repro.hw.cells import CELL_INDEX

    dff = CELL_INDEX[CELL_DFF]
    return [nid for nid, k in enumerate(nl.kinds) if k == dff]


def _arbiter_sim(kind, n):
    nl = Netlist()
    reqs = nl.inputs(n)
    grants, fin = build_arbiter(nl, kind, reqs)
    fin(None)
    for g in grants:
        nl.mark_output(g)
    # rr masks and matrix upper-triangle state reset to 1 (index 0 has
    # priority), matching the behavioural arbiters.
    return NetlistSimulator(nl, reg_init=1)


class TestArbiterEquivalence:
    @pytest.mark.parametrize("n", [2, 3, 5, 8])
    def test_round_robin_matches_behavioural(self, n):
        rng = np.random.default_rng(20 + n)
        sim = _arbiter_sim("rr", n)
        beh = RoundRobinArbiter(n)
        for _ in range(60):
            reqs = (rng.random(n) < 0.5).astype(int).tolist()
            gate_grants = sim.step(reqs)
            gate_winner = [i for i, name in enumerate(range(n)) if list(gate_grants.values())[i]]
            w = beh.arbitrate(reqs)
            expected = [] if w is None else [w]
            assert gate_winner == expected, (reqs, gate_winner, w)

    @pytest.mark.parametrize("n", [2, 3, 5, 8])
    def test_matrix_matches_behavioural(self, n):
        rng = np.random.default_rng(40 + n)
        sim = _arbiter_sim("m", n)
        beh = MatrixArbiter(n)
        for _ in range(60):
            reqs = (rng.random(n) < 0.5).astype(int).tolist()
            gate = sim.step(reqs)
            gate_winner = [i for i in range(n) if list(gate.values())[i]]
            w = beh.arbitrate(reqs)
            expected = [] if w is None else [w]
            assert gate_winner == expected, (reqs, gate_winner, w)

    @pytest.mark.parametrize("kind", ["rr", "m", "fixed"])
    def test_at_most_one_grant(self, kind):
        rng = np.random.default_rng(3)
        sim = _arbiter_sim(kind, 6)
        for _ in range(40):
            reqs = (rng.random(6) < 0.6).astype(int).tolist()
            outs = list(sim.step(reqs).values())
            assert sum(outs) <= 1
            for i, o in enumerate(outs):
                if o:
                    assert reqs[i]

    def test_tree_rr_one_grant_from_requester(self):
        nl = Netlist()
        reqs = nl.inputs(12)
        grants, fin = build_arbiter(nl, "rr", reqs, tree_groups=3)
        fin(None)
        for g in grants:
            nl.mark_output(g)
        sim = NetlistSimulator(nl, reg_init=1)
        rng = np.random.default_rng(4)
        for _ in range(40):
            r = (rng.random(12) < 0.5).astype(int).tolist()
            outs = list(sim.step(r).values())
            assert sum(outs) <= 1
            if any(r):
                assert sum(outs) == 1
            for i, o in enumerate(outs):
                if o:
                    assert r[i]


def _wavefront_sim(n):
    nl = Netlist()
    req = [nl.inputs(n) for _ in range(n)]
    grants = build_wavefront_matrix(nl, req)
    for row in grants:
        for g in row:
            nl.mark_output(g)
    sim = NetlistSimulator(nl, reg_init=0)
    regs = _reg_ids(nl)
    sim.set_register(regs[0], 1)  # diagonal pointer one-hot at 0
    return sim


class TestWavefrontEquivalence:
    @pytest.mark.parametrize("n", [2, 4, 6])
    def test_matches_behavioural_over_cycles(self, n):
        rng = np.random.default_rng(50 + n)
        sim = _wavefront_sim(n)
        beh = WavefrontAllocator(n, n)
        for _ in range(4 * n):
            req = rng.random((n, n)) < 0.4
            flat = req.astype(int).ravel().tolist()
            gate = np.array(list(sim.step(flat).values())).reshape(n, n)
            expected = beh.allocate(req)
            assert np.array_equal(gate.astype(bool), expected), (
                req,
                gate,
                expected,
            )


class TestVCAllocatorNetlistFunction:
    @pytest.mark.parametrize("arch", ["sep_if", "sep_of", "wf"])
    @pytest.mark.parametrize("C", [1, 2])
    def test_single_cycle_matches_behavioural(self, arch, C):
        P = 3
        part = VCPartition.mesh(C)
        V = part.num_vcs
        rng = np.random.default_rng(hash((arch, C)) % 2**32)

        for trial in range(15):
            # Fresh instances: compare the reset-state function.
            beh = VCAllocator(P, part, arch=arch, sparse=True)
            nl = build_vc_allocator_netlist(P, part, arch, "rr", sparse=True)
            sim = NetlistSimulator(nl, reg_init=1)
            if arch == "wf":
                # Wavefront blocks: zero all pointer regs, then set the
                # first of each block's diagonal ring.
                regs = _reg_ids(nl)
                block = P * part.num_resource_classes * part.vcs_per_class
                for r in regs:
                    sim.set_register(r, 0)
                for b in range(part.num_message_classes):
                    sim.set_register(regs[b * block], 1)

            # Random requests.
            requests = []
            for p in range(P):
                for v in range(V):
                    if rng.random() < 0.5:
                        requests.append(
                            VCRequest(
                                int(rng.integers(P)),
                                tuple(part.candidate_vcs(v)),
                            )
                        )
                    else:
                        requests.append(None)

            # Drive the netlist: per input VC, one request line per
            # successor class, then the P-wide one-hot destination.
            stim = []
            for p in range(P):
                for v in range(V):
                    req = requests[p * V + v]
                    m_in, r_in, _ = part.vc_fields(v)
                    n_classes = len(part.successor_classes(r_in))
                    if req is None:
                        stim.extend([0] * n_classes)
                        stim.extend([0] * P)
                    else:
                        stim.extend([1] * n_classes)
                        stim.extend(
                            [1 if q == req.output_port else 0 for q in range(P)]
                        )

            gate_out = sim.output_values(stim)
            beh_grants = beh.allocate(requests)

            # Netlist output: V-wide grant vector per input VC.
            for i in range(P * V):
                vec = gate_out[i * V : (i + 1) * V]
                g = beh_grants[i]
                expected = [0] * V
                if g is not None:
                    expected[g[1]] = 1
                assert vec == expected, (trial, i, vec, g)


class TestSwitchAllocatorNetlistFunction:
    @pytest.mark.parametrize("arch", ["sep_if", "sep_of", "wf"])
    def test_single_cycle_matches_behavioural(self, arch):
        P, V = 4, 2
        rng = np.random.default_rng(hash(arch) % 2**32)
        for trial in range(15):
            beh = SwitchAllocator(P, V, arch=arch)
            nl = build_switch_allocator_netlist(P, V, arch, "rr", "nonspec")
            sim = NetlistSimulator(nl, reg_init=1)
            if arch == "wf":
                regs = _reg_ids(nl)
                for r in regs[:P]:
                    sim.set_register(r, 0)
                sim.set_register(regs[0], 1)

            requests = [
                [
                    int(rng.integers(P)) if rng.random() < 0.5 else None
                    for _ in range(V)
                ]
                for _ in range(P)
            ]
            stim = []
            for p in range(P):
                for v in range(V):
                    q = requests[p][v]
                    stim.extend([1 if q == qq else 0 for qq in range(P)])

            out = sim.output_values(stim)
            # Outputs interleave per port: P crossbar bits, then V VC bits.
            per_port = np.array(out).reshape(P, P + V)
            xbar = per_port[:, :P]
            vcg = per_port[:, P:]

            grants = beh.allocate(requests)
            exp_xbar = np.zeros((P, P), dtype=int)
            exp_vcg = np.zeros((P, V), dtype=int)
            for p, g in enumerate(grants):
                if g is not None:
                    vc, q = g
                    exp_xbar[p][q] = 1
                    exp_vcg[p][vc] = 1
            assert np.array_equal(xbar, exp_xbar), (trial, requests, xbar, exp_xbar)
            assert np.array_equal(vcg, exp_vcg), (trial, requests, vcg, exp_vcg)
