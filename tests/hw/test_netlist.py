"""Unit tests for the netlist representation and cell library."""

import pytest

from repro.hw.cells import CELLS, CELL_INDEX, cell_by_name
from repro.hw.netlist import KIND_INPUT, Netlist


class TestCells:
    def test_lookup(self):
        assert cell_by_name("INV").num_inputs == 1
        assert cell_by_name("AND3").num_inputs == 3
        assert cell_by_name("MUX2").num_inputs == 3

    def test_unknown_cell(self):
        with pytest.raises(KeyError, match="known cells"):
            cell_by_name("XNOR3")

    def test_index_consistent(self):
        for name, ix in CELL_INDEX.items():
            assert CELLS[ix].name == name

    def test_dff_is_sequential(self):
        assert cell_by_name("DFF").sequential
        assert not cell_by_name("INV").sequential

    def test_positive_parameters(self):
        for c in CELLS:
            assert c.logical_effort > 0
            assert c.parasitic > 0
            assert c.input_cap_ff > 0
            assert c.area_um2 > 0
            assert c.leakage_nw > 0


class TestNetlistConstruction:
    def test_inputs_and_gates(self):
        nl = Netlist("t")
        a = nl.input("a")
        b = nl.input("b")
        g = nl.gate("AND2", a, b)
        nl.mark_output(g, "y")
        assert nl.num_nets == 3
        assert nl.num_gates == 1
        assert nl.num_inputs == 2
        assert nl.kinds[a] == KIND_INPUT

    def test_gate_arity_checked(self):
        nl = Netlist()
        a = nl.input()
        with pytest.raises(ValueError, match="needs 2 inputs"):
            nl.gate("AND2", a)

    def test_forward_reference_rejected(self):
        nl = Netlist()
        a = nl.input()
        with pytest.raises(ValueError, match="does not exist"):
            nl.gate("INV", a + 5)

    def test_sequential_via_gate_rejected(self):
        nl = Netlist()
        a = nl.input()
        with pytest.raises(ValueError, match="sequential"):
            nl.gate("DFF", a)

    def test_register_connection(self):
        nl = Netlist()
        q = nl.reg()
        d = nl.gate("INV", q)  # toggle flop: sequential feedback is fine
        nl.connect_reg(q, d)
        nl.validate()
        assert nl.num_registers == 1

    def test_register_double_connect_rejected(self):
        nl = Netlist()
        q = nl.reg()
        a = nl.input()
        nl.connect_reg(q, a)
        with pytest.raises(ValueError, match="already connected"):
            nl.connect_reg(q, a)

    def test_connect_non_register_rejected(self):
        nl = Netlist()
        a = nl.input()
        b = nl.input()
        with pytest.raises(ValueError, match="not a register"):
            nl.connect_reg(a, b)

    def test_unconnected_register_fails_validation(self):
        nl = Netlist()
        nl.reg()
        with pytest.raises(ValueError, match="unconnected"):
            nl.validate()

    def test_no_endpoints_fails_validation(self):
        nl = Netlist()
        nl.input()
        with pytest.raises(ValueError, match="endpoints"):
            nl.validate()

    def test_const_deduplicated(self):
        nl = Netlist()
        assert nl.const(0) == nl.const(0)
        assert nl.const(1) == nl.const(1)
        assert nl.const(0) != nl.const(1)

    def test_mark_output_validates(self):
        nl = Netlist()
        with pytest.raises(ValueError):
            nl.mark_output(7)

    def test_cell_histogram(self):
        nl = Netlist()
        a, b = nl.inputs(2)
        nl.gate("AND2", a, b)
        nl.gate("AND2", a, b)
        nl.gate("INV", a)
        hist = nl.cell_histogram()
        assert hist["AND2"] == 2
        assert hist["INV"] == 1

    def test_consumers(self):
        nl = Netlist()
        a = nl.input()
        x = nl.gate("INV", a)
        y = nl.gate("INV", a)
        q = nl.reg()
        nl.connect_reg(q, x)
        cons = nl.consumers()
        assert set(cons[a]) == {x, y}
        assert cons[x] == [q]

    def test_repr(self):
        nl = Netlist("demo")
        a = nl.input()
        nl.mark_output(nl.gate("INV", a))
        assert "demo" in repr(nl)
        assert "gates=1" in repr(nl)
