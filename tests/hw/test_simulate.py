"""Tests for the functional netlist simulator."""

import pytest

from repro.hw.netlist import Netlist
from repro.hw.simulate import NetlistSimulator


class TestCombinational:
    def test_every_gate_type(self):
        nl = Netlist()
        a, b, c, d = nl.inputs(4)
        gates = {
            "INV": nl.gate("INV", a),
            "BUF": nl.gate("BUF", a),
            "AND2": nl.gate("AND2", a, b),
            "AND3": nl.gate("AND3", a, b, c),
            "AND4": nl.gate("AND4", a, b, c, d),
            "OR2": nl.gate("OR2", a, b),
            "OR3": nl.gate("OR3", a, b, c),
            "OR4": nl.gate("OR4", a, b, c, d),
            "NAND2": nl.gate("NAND2", a, b),
            "NOR2": nl.gate("NOR2", a, b),
            "XOR2": nl.gate("XOR2", a, b),
            "MUX2": nl.gate("MUX2", a, b, c),  # c ? b : a
        }
        for g in gates.values():
            nl.mark_output(g)
        sim = NetlistSimulator(nl)

        def run(bits):
            vals = sim.evaluate(bits)
            return {name: vals[g] for name, g in gates.items()}

        v = run([1, 0, 1, 1])
        assert v["INV"] == 0 and v["BUF"] == 1
        assert v["AND2"] == 0 and v["AND3"] == 0 and v["AND4"] == 0
        assert v["OR2"] == 1 and v["OR3"] == 1 and v["OR4"] == 1
        assert v["NAND2"] == 1 and v["NOR2"] == 0
        assert v["XOR2"] == 1
        assert v["MUX2"] == 0  # sel=1 -> b = 0

        v = run([1, 1, 0, 1])
        assert v["AND2"] == 1 and v["XOR2"] == 0
        assert v["MUX2"] == 1  # sel=0 -> a = 1

    def test_constants(self):
        nl = Netlist()
        a = nl.input()
        nl.mark_output(nl.gate("AND2", a, nl.const(1)))
        nl.mark_output(nl.gate("OR2", a, nl.const(0)))
        sim = NetlistSimulator(nl)
        assert sim.output_values([1]) == [1, 1]
        assert sim.output_values([0]) == [0, 0]

    def test_wrong_input_count(self):
        nl = Netlist()
        nl.inputs(3)
        nl.mark_output(nl.gate("INV", 0))
        sim = NetlistSimulator(nl)
        with pytest.raises(ValueError):
            sim.evaluate([1, 0])

    def test_num_inputs(self):
        nl = Netlist()
        nl.inputs(5)
        nl.mark_output(nl.gate("INV", 0))
        assert NetlistSimulator(nl).num_inputs == 5


class TestSequential:
    def _toggle_flop(self):
        nl = Netlist()
        q = nl.reg()
        nl.connect_reg(q, nl.gate("INV", q))
        nl.mark_output(q, "q")
        return nl

    def test_toggle_flop(self):
        sim = NetlistSimulator(self._toggle_flop(), reg_init=0)
        values = [sim.step([])["q"] for _ in range(6)]
        assert values == [0, 1, 0, 1, 0, 1]

    def test_reg_init(self):
        sim = NetlistSimulator(self._toggle_flop(), reg_init=1)
        assert sim.step([])["q"] == 1

    def test_set_register(self):
        nl = self._toggle_flop()
        sim = NetlistSimulator(nl, reg_init=0)
        (reg,) = [i for i, k in enumerate(nl.kinds) if k >= 0 and not nl.fanins[i]]
        sim.set_register(reg, 1)
        assert sim.step([])["q"] == 1

    def test_set_register_rejects_non_register(self):
        nl = Netlist()
        a = nl.input()
        nl.mark_output(nl.gate("INV", a))
        sim = NetlistSimulator(nl)
        with pytest.raises(ValueError):
            sim.set_register(a, 1)

    def test_shift_register(self):
        nl = Netlist()
        d = nl.input("d")
        q1 = nl.reg()
        q2 = nl.reg()
        nl.connect_reg(q1, d)
        nl.connect_reg(q2, q1)
        nl.mark_output(q2, "out")
        sim = NetlistSimulator(nl)
        outs = [sim.step([x])["out"] for x in (1, 0, 1, 1, 0, 0)]
        # Two cycles of delay.
        assert outs == [0, 0, 1, 0, 1, 1]

    def test_unconnected_register_rejected(self):
        nl = Netlist()
        nl.reg()
        with pytest.raises(ValueError):
            NetlistSimulator(nl)

    def test_named_outputs(self):
        nl = Netlist()
        a = nl.input()
        nl.mark_output(nl.gate("INV", a), "y")
        sim = NetlistSimulator(nl)
        assert sim.step([0]) == {"y": 1}
