"""Tests for logic builders, allocator netlist builders, and the
synthesis driver (capacity model, scaling trends)."""

import pytest

from repro.core import VCPartition
from repro.hw import (
    SynthesisCapacityError,
    analyze_timing,
    synthesize,
    synthesize_switch_allocator,
    synthesize_vc_allocator,
    total_area,
)
from repro.hw.alloc_gates import (
    build_separable_matrix,
    build_wavefront_matrix,
    wavefront_gate_estimate,
)
from repro.hw.logic import (
    and_reduce,
    fanout_tree,
    fixed_priority_grants,
    onehot_mux,
    or_reduce,
    prefix_or,
    rotate_left,
)
from repro.hw.netlist import Netlist
from repro.hw.simulate import NetlistSimulator
from repro.hw.vc_alloc_gates import estimate_vc_allocator_gates


class TestLogicBuilders:
    @pytest.mark.parametrize("n", [1, 2, 3, 4, 5, 9, 17])
    def test_or_reduce_function(self, n):
        nl = Netlist()
        ins = nl.inputs(n)
        nl.mark_output(or_reduce(nl, ins))
        sim = NetlistSimulator(nl)
        for pattern in range(min(2**n, 64)):
            bits = [(pattern >> i) & 1 for i in range(n)]
            assert sim.output_values(bits)[0] == (1 if any(bits) else 0)

    @pytest.mark.parametrize("n", [2, 4, 7])
    def test_and_reduce_function(self, n):
        nl = Netlist()
        ins = nl.inputs(n)
        nl.mark_output(and_reduce(nl, ins))
        sim = NetlistSimulator(nl)
        for pattern in range(2**n):
            bits = [(pattern >> i) & 1 for i in range(n)]
            assert sim.output_values(bits)[0] == (1 if all(bits) else 0)

    def test_reduce_rejects_empty(self):
        nl = Netlist()
        with pytest.raises(ValueError):
            or_reduce(nl, [])

    def test_reduce_rejects_bad_op(self):
        nl = Netlist()
        a = nl.input()
        from repro.hw.logic import reduce_tree

        with pytest.raises(ValueError):
            reduce_tree(nl, "XOR", [a])

    def test_reduce_depth_logarithmic(self):
        # 64-input OR: depth must be ceil(log4(64)) = 3 gate levels.
        nl = Netlist()
        ins = nl.inputs(64)
        nl.mark_output(or_reduce(nl, ins))
        t = analyze_timing(nl)
        # path: input + 3 OR4 levels
        assert len(t.critical_path) == 4

    @pytest.mark.parametrize("n", [2, 3, 8])
    def test_prefix_or_function(self, n):
        nl = Netlist()
        ins = nl.inputs(n)
        for net in prefix_or(nl, ins):
            nl.mark_output(net)
        sim = NetlistSimulator(nl)
        for pattern in range(2**n):
            bits = [(pattern >> i) & 1 for i in range(n)]
            outs = sim.output_values(bits)
            acc = 0
            for i in range(n):
                acc |= bits[i]
                assert outs[i] == acc

    @pytest.mark.parametrize("n", [1, 2, 5, 8])
    def test_fixed_priority_grants_function(self, n):
        nl = Netlist()
        ins = nl.inputs(n)
        for net in fixed_priority_grants(nl, ins):
            nl.mark_output(net)
        sim = NetlistSimulator(nl)
        for pattern in range(2**n):
            bits = [(pattern >> i) & 1 for i in range(n)]
            outs = sim.output_values(bits)
            first = next((i for i, b in enumerate(bits) if b), None)
            expected = [1 if i == first else 0 for i in range(n)]
            assert outs == expected

    def test_onehot_mux_function(self):
        nl = Netlist()
        sels = nl.inputs(3)
        data = nl.inputs(3)
        nl.mark_output(onehot_mux(nl, sels, data))
        sim = NetlistSimulator(nl)
        assert sim.output_values([0, 1, 0, 1, 1, 0])[0] == 1
        assert sim.output_values([0, 1, 0, 1, 0, 1])[0] == 0
        assert sim.output_values([0, 0, 0, 1, 1, 1])[0] == 0

    def test_onehot_mux_length_mismatch(self):
        nl = Netlist()
        with pytest.raises(ValueError):
            onehot_mux(nl, nl.inputs(2), nl.inputs(3))

    def test_fanout_tree_leaf_count_and_function(self):
        nl = Netlist()
        a = nl.input()
        leaves = fanout_tree(nl, a, 37)
        assert len(leaves) == 37
        for leaf in leaves[:: 7]:
            nl.mark_output(leaf)
        sim = NetlistSimulator(nl)
        assert all(v == 1 for v in sim.output_values([1]))
        assert all(v == 0 for v in sim.output_values([0]))

    def test_fanout_tree_small_passthrough(self):
        nl = Netlist()
        a = nl.input()
        assert fanout_tree(nl, a, 3) == [a, a, a]
        assert nl.num_gates == 0

    def test_fanout_tree_rejects_zero(self):
        nl = Netlist()
        a = nl.input()
        with pytest.raises(ValueError):
            fanout_tree(nl, a, 0)

    def test_rotate_left(self):
        assert rotate_left([1, 2, 3, 4], 1) == [2, 3, 4, 1]
        assert rotate_left([1, 2, 3], 0) == [1, 2, 3]
        assert rotate_left([1, 2, 3], 4) == [2, 3, 1]


class TestAllocGateBuilders:
    def test_wavefront_rejects_non_square(self):
        nl = Netlist()
        req = [nl.inputs(3), nl.inputs(3)]
        with pytest.raises(ValueError, match="square"):
            build_wavefront_matrix(nl, req)

    def test_wavefront_size_one(self):
        nl = Netlist()
        req = [[nl.input()]]
        g = build_wavefront_matrix(nl, req)
        assert g == req

    def test_wavefront_area_scales_cubically(self):
        areas = []
        for n in (8, 16):
            nl = Netlist()
            req = [nl.inputs(n) for _ in range(n)]
            for row in build_wavefront_matrix(nl, req):
                for x in row:
                    nl.mark_output(x)
            areas.append(total_area(nl))
        ratio = areas[1] / areas[0]
        assert 6 < ratio < 10  # ~2^3 for doubling n

    def test_wavefront_delay_scales_linearly(self):
        delays = []
        for n in (8, 16):
            nl = Netlist()
            req = [nl.inputs(n) for _ in range(n)]
            for row in build_wavefront_matrix(nl, req):
                for x in row:
                    nl.mark_output(x)
            delays.append(analyze_timing(nl).delay_ps)
        ratio = delays[1] / delays[0]
        assert 1.5 < ratio < 2.5

    def test_wavefront_estimate_tracks_actual(self):
        for n in (5, 10, 20):
            nl = Netlist()
            req = [nl.inputs(n) for _ in range(n)]
            for row in build_wavefront_matrix(nl, req):
                for x in row:
                    nl.mark_output(x)
            est = wavefront_gate_estimate(n)
            assert 0.5 * est <= nl.num_gates <= 1.5 * est

    @pytest.mark.parametrize("input_first", [True, False])
    def test_separable_matrix_valid_matching_function(self, input_first):
        import numpy as np

        n = 4
        nl = Netlist()
        req = [nl.inputs(n) for _ in range(n)]
        g = build_separable_matrix(nl, req, input_first, "rr")
        for row in g:
            for x in row:
                nl.mark_output(x)
        sim = NetlistSimulator(nl, reg_init=1)
        rng = np.random.default_rng(0)
        for _ in range(30):
            mat = (rng.random((n, n)) < 0.5).astype(int)
            out = np.array(sim.output_values(mat.ravel().tolist())).reshape(n, n)
            assert ((out == 1) & (mat == 0)).sum() == 0  # subset of requests
            assert (out.sum(axis=0) <= 1).all()
            assert (out.sum(axis=1) <= 1).all()


class TestSynthesisDriver:
    def test_vc_report_fields(self):
        r = synthesize_vc_allocator(5, VCPartition.mesh(1), "sep_if", "rr", True)
        assert r.delay_ns > 0
        assert r.area_um2 > 0
        assert r.power_mw > 0
        assert r.num_cells > 0
        assert r.meta["sparse"] is True
        assert "sep_if" in r.name

    def test_switch_report_fields(self):
        r = synthesize_switch_allocator(5, 2, "sep_if", "rr", "pessimistic")
        assert r.delay_ns > 0
        assert r.meta["speculation"] == "pessimistic"

    def test_capacity_error_on_large_wavefront(self):
        with pytest.raises(SynthesisCapacityError) as exc:
            synthesize_vc_allocator(10, VCPartition.fbfly(4), "wf", "rr", True)
        assert exc.value.cells > exc.value.budget

    def test_capacity_error_on_large_matrix_arbiters(self):
        with pytest.raises(SynthesisCapacityError):
            synthesize_vc_allocator(10, VCPartition.fbfly(4), "sep_if", "m", True)

    def test_largest_point_rr_separable_succeeds(self):
        r = synthesize_vc_allocator(10, VCPartition.fbfly(4), "sep_if", "rr", True)
        assert r.num_cells < 500_000

    def test_sparse_cheaper_than_dense(self):
        dense = synthesize_vc_allocator(5, VCPartition.mesh(2), "sep_if", "rr", False)
        sparse = synthesize_vc_allocator(5, VCPartition.mesh(2), "sep_if", "rr", True)
        assert sparse.area_um2 < dense.area_um2
        assert sparse.delay_ns < dense.delay_ns
        assert sparse.power_mw < dense.power_mw

    def test_pessimistic_faster_than_conventional(self):
        conv = synthesize_switch_allocator(5, 2, "sep_if", "rr", "conventional")
        pess = synthesize_switch_allocator(5, 2, "sep_if", "rr", "pessimistic")
        nonspec = synthesize_switch_allocator(5, 2, "sep_if", "rr", "nonspec")
        assert pess.delay_ns < conv.delay_ns
        assert nonspec.delay_ns <= pess.delay_ns * 1.05

    def test_speculation_roughly_doubles_area(self):
        nonspec = synthesize_switch_allocator(5, 2, "sep_if", "rr", "nonspec")
        pess = synthesize_switch_allocator(5, 2, "sep_if", "rr", "pessimistic")
        assert 1.6 < pess.area_um2 / nonspec.area_um2 < 2.8

    def test_unknown_arch_rejected(self):
        with pytest.raises(ValueError):
            synthesize_switch_allocator(5, 2, "foo", "rr")
        with pytest.raises(ValueError):
            estimate_vc_allocator_gates(5, VCPartition.mesh(1), "sep_if", "lru")

    def test_synthesize_plain_netlist(self):
        nl = Netlist("plain")
        a, b = nl.inputs(2)
        nl.mark_output(nl.gate("AND2", a, b))
        r = synthesize(nl)
        assert r.name == "plain"
        assert r.num_cells == 1
