"""Property-based tests (hypothesis) for the hardware cost model."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw.area import total_area
from repro.hw.cells import CELLS
from repro.hw.logic import fixed_priority_grants, or_reduce, prefix_or
from repro.hw.netlist import Netlist
from repro.hw.power import analyze_power, signal_probabilities
from repro.hw.simulate import NetlistSimulator
from repro.hw.sizing import recover_timing
from repro.hw.timing import analyze_timing, compute_arrivals


@st.composite
def random_netlists(draw):
    """A random combinational DAG over a handful of inputs."""
    nl = Netlist()
    num_inputs = draw(st.integers(2, 6))
    nets = nl.inputs(num_inputs)
    combinational = [
        c.name
        for c in CELLS
        if not c.sequential
    ]
    for _ in range(draw(st.integers(1, 25))):
        cell = draw(st.sampled_from(combinational))
        arity = next(c.num_inputs for c in CELLS if c.name == cell)
        ins = [nets[draw(st.integers(0, len(nets) - 1))] for _ in range(arity)]
        nets.append(nl.gate(cell, *ins))
    # Mark a few outputs, always including the last net.
    nl.mark_output(nets[-1])
    for _ in range(draw(st.integers(0, 3))):
        nl.mark_output(nets[draw(st.integers(0, len(nets) - 1))])
    return nl


@given(nl=random_netlists())
@settings(max_examples=80, deadline=None)
def test_arrivals_monotone_along_fanin(nl):
    arrivals = compute_arrivals(nl)
    for nid, fanin in enumerate(nl.fanins):
        if nl.kinds[nid] >= 0:
            for f in fanin:
                assert arrivals[nid] > arrivals[f]


@given(nl=random_netlists())
@settings(max_examples=80, deadline=None)
def test_probabilities_in_unit_interval(nl):
    for p in signal_probabilities(nl):
        assert -1e-9 <= p <= 1 + 1e-9


@given(nl=random_netlists())
@settings(max_examples=50, deadline=None)
def test_power_and_area_positive(nl):
    assert total_area(nl) > 0
    rep = analyze_power(nl, frequency_ghz=1.0)
    assert rep.dynamic_mw >= 0
    assert rep.leakage_mw > 0


@given(nl=random_netlists())
@settings(max_examples=40, deadline=None)
def test_sizing_never_worsens_delay(nl):
    before = analyze_timing(nl).delay_ps
    recover_timing(nl, max_iterations=4)
    assert analyze_timing(nl).delay_ps <= before + 1e-9


@given(nl=random_netlists(), data=st.data())
@settings(max_examples=50, deadline=None)
def test_simulation_agrees_with_probability_extremes(nl, data):
    # Deterministic all-zero / all-one stimulation must match the
    # probability model evaluated at p=0 / p=1.
    sim = NetlistSimulator(nl)
    n = sim.num_inputs
    for value, prob in ((0, 0.0), (1, 1.0)):
        vals = sim.evaluate([value] * n)
        probs = signal_probabilities(nl, input_probability=prob)
        for nid in range(nl.num_nets):
            if nl.kinds[nid] >= 0 or nl.kinds[nid] == -1:
                assert abs(probs[nid] - vals[nid]) < 1e-9, nid


@given(
    n=st.integers(1, 12),
    bits=st.lists(st.booleans(), min_size=12, max_size=12),
)
@settings(max_examples=80, deadline=None)
def test_priority_network_matches_python_semantics(n, bits):
    nl = Netlist()
    ins = nl.inputs(n)
    grants = fixed_priority_grants(nl, ins)
    pre = prefix_or(nl, ins)
    any_net = or_reduce(nl, ins)
    for g in grants:
        nl.mark_output(g)
    for p in pre:
        nl.mark_output(p)
    nl.mark_output(any_net)
    sim = NetlistSimulator(nl)
    stim = [1 if b else 0 for b in bits[:n]]
    out = sim.output_values(stim)
    gnt, prefix, any_out = out[:n], out[n : 2 * n], out[-1]
    first = next((i for i, b in enumerate(stim) if b), None)
    assert gnt == [1 if i == first else 0 for i in range(n)]
    acc = 0
    for i in range(n):
        acc |= stim[i]
        assert prefix[i] == acc
    assert any_out == (1 if any(stim) else 0)
