"""Tests for the rotation-based wavefront implementation (Hurt et al.,
the area-efficient alternative mentioned in Section 2.2)."""

import numpy as np
import pytest

from repro.core import WavefrontAllocator
from repro.hw.alloc_gates import (
    build_wavefront_matrix,
    build_wavefront_matrix_rotated,
    rotated_wavefront_gate_estimate,
)
from repro.hw.area import total_area
from repro.hw.netlist import Netlist
from repro.hw.simulate import NetlistSimulator
from repro.hw.timing import analyze_timing


def _build(n, builder):
    nl = Netlist()
    req = [nl.inputs(n) for _ in range(n)]
    grants = builder(nl, req)
    for row in grants:
        for x in row:
            nl.mark_output(x)
    nl.validate()
    return nl


class TestRotatedWavefront:
    @pytest.mark.parametrize("n", [2, 3, 4, 5, 7, 8])
    def test_matches_behavioural_over_cycles(self, n):
        # Includes non-power-of-two sizes (exercises the counter wrap).
        nl = _build(n, build_wavefront_matrix_rotated)
        sim = NetlistSimulator(nl, reg_init=0)
        beh = WavefrontAllocator(n, n)
        rng = np.random.default_rng(100 + n)
        for _ in range(3 * n + 2):
            req = rng.random((n, n)) < 0.4
            out = np.array(
                list(sim.step(req.astype(int).ravel().tolist()).values())
            ).reshape(n, n)
            assert np.array_equal(out.astype(bool), beh.allocate(req))

    def test_matches_replicated_implementation(self):
        n = 5
        a = NetlistSimulator(_build(n, build_wavefront_matrix), reg_init=0)
        b = NetlistSimulator(_build(n, build_wavefront_matrix_rotated), reg_init=0)
        # Replicated variant keeps a one-hot ring: set its first bit.
        from repro.hw.cells import CELL_INDEX

        dff = CELL_INDEX["DFF"]
        regs = [i for i, k in enumerate(a.nl.kinds) if k == dff]
        a.set_register(regs[0], 1)
        rng = np.random.default_rng(0)
        for _ in range(12):
            req = (rng.random((n, n)) < 0.5).astype(int).ravel().tolist()
            out_a = a.output_values(req)
            out_b = b.output_values(req)
            a.step(req)
            b.step(req)
            assert out_a == out_b

    def test_area_much_smaller_than_replicated(self):
        n = 16
        rep = _build(n, build_wavefront_matrix)
        rot = _build(n, build_wavefront_matrix_rotated)
        assert total_area(rot) < 0.4 * total_area(rep)

    def test_delay_higher_than_replicated(self):
        # The paper's reason for preferring the replicated version.
        n = 16
        rep = _build(n, build_wavefront_matrix)
        rot = _build(n, build_wavefront_matrix_rotated)
        assert analyze_timing(rot).delay_ps > analyze_timing(rep).delay_ps

    def test_estimate_tracks_actual(self):
        for n in (4, 8, 16):
            nl = _build(n, build_wavefront_matrix_rotated)
            est = rotated_wavefront_gate_estimate(n)
            assert 0.5 * est <= nl.num_gates <= 1.6 * est

    def test_rejects_non_square(self):
        nl = Netlist()
        req = [nl.inputs(3), nl.inputs(3)]
        with pytest.raises(ValueError):
            build_wavefront_matrix_rotated(nl, req)

    def test_size_one_passthrough(self):
        nl = Netlist()
        req = [[nl.input()]]
        assert build_wavefront_matrix_rotated(nl, req) == req
