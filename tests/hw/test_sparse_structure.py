"""Structural checks that sparse VC allocation shrinks the hardware the
way Section 4.2 predicts (arbiter ports reduced by the message-class
factor and by successor/predecessor class counts)."""

import pytest

from repro.core import VCPartition
from repro.hw.netlist import Netlist
from repro.hw.vc_alloc_gates import (
    build_vc_allocator_netlist,
    estimate_vc_allocator_gates,
)


def _counts(nl: Netlist):
    return nl.num_gates, nl.num_registers, nl.num_inputs


class TestSparseStructure:
    def test_input_count_reduced_by_class_granularity(self):
        # Dense: one request line per candidate output VC (V per input
        # VC).  Sparse: one per candidate *class* (successors(r)).
        part = VCPartition.fbfly(4)  # V=16
        P = 10
        dense = build_vc_allocator_netlist(P, part, "sep_if", "rr", False)
        sparse = build_vc_allocator_netlist(P, part, "sep_if", "rr", True)
        V = part.num_vcs
        # Dense: V request lines + P dest lines per input VC.
        assert dense.num_inputs == P * V * (V + P)
        # Sparse: nonmin VCs have 2 successor classes, min VCs 1; per
        # message class half the VCs are in each resource class.
        per_port = (V // 2) * 2 + (V // 2) * 1
        assert sparse.num_inputs == P * (per_port + V * P)

    def test_register_reduction_tracks_arbiter_width(self):
        # Round-robin arbiters keep one mask DFF per input: output-stage
        # width drops from P*V (dense) to P*preds*C (sparse).
        part = VCPartition.mesh(2)  # V=4, 1 resource class
        P = 5
        dense = build_vc_allocator_netlist(P, part, "sep_if", "rr", False)
        sparse = build_vc_allocator_netlist(P, part, "sep_if", "rr", True)
        assert sparse.num_registers < 0.6 * dense.num_registers

    def test_matrix_state_quadratic_reduction(self):
        # Matrix arbiter state is quadratic in width, so sparse saves
        # far more registers for the m variants than for rr.
        part = VCPartition.mesh(2)
        P = 5

        def reg_ratio(arbiter):
            dense = build_vc_allocator_netlist(P, part, "sep_if", arbiter, False)
            sparse = build_vc_allocator_netlist(P, part, "sep_if", arbiter, True)
            return sparse.num_registers / dense.num_registers

        assert reg_ratio("m") < reg_ratio("rr")

    @pytest.mark.parametrize("arch", ["sep_if", "sep_of"])
    @pytest.mark.parametrize("sparse", [True, False])
    def test_estimates_track_actuals(self, arch, sparse):
        part = VCPartition.fbfly(1)
        nl = build_vc_allocator_netlist(10, part, arch, "rr", sparse)
        est = estimate_vc_allocator_gates(10, part, arch, "rr", sparse)
        assert 0.4 * est <= nl.num_gates <= 2.0 * est

    def test_wavefront_message_class_split(self):
        # Sparse wavefront: M blocks of (P*R*C)^2 tiles instead of one
        # (P*V)^2 block -- a 1/M area factor before the output muxes.
        part = VCPartition.mesh(1)  # M=2, R=1, C=1; V=2
        P = 5
        dense = build_vc_allocator_netlist(P, part, "wf", "rr", False)
        sparse = build_vc_allocator_netlist(P, part, "wf", "rr", True)
        # n^3 scaling: dense block (PV=10)^3 vs 2 sparse blocks (5)^3
        # => roughly a 4x tile reduction.
        assert sparse.num_gates < 0.45 * dense.num_gates

    def test_single_message_class_sparse_equals_dense_structure(self):
        # With M=R=1 there is nothing to exploit: gate counts match to
        # within the request-line granularity difference.
        part = VCPartition(1, 1, 2)
        dense = build_vc_allocator_netlist(4, part, "sep_if", "rr", False)
        sparse = build_vc_allocator_netlist(4, part, "sep_if", "rr", True)
        assert sparse.num_registers == dense.num_registers
