"""Unit tests for timing, area, power and sizing analyses."""

import pytest

from repro.hw.area import area_by_cell, total_area
from repro.hw.cells import TAU_PS, cell_by_name
from repro.hw.netlist import Netlist
from repro.hw.power import analyze_power, signal_probabilities
from repro.hw.sizing import recover_timing
from repro.hw.timing import SETUP_PS, analyze_timing, compute_arrivals, compute_loads


def _inv_chain(n):
    nl = Netlist("chain")
    x = nl.input("a")
    for _ in range(n):
        x = nl.gate("INV", x)
    nl.mark_output(x, "y")
    return nl


class TestTiming:
    def test_chain_delay_monotone_in_length(self):
        d = [analyze_timing(_inv_chain(n)).delay_ps for n in (1, 2, 4, 8)]
        assert d[0] < d[1] < d[2] < d[3]
        # Roughly linear: doubling length roughly doubles combinational
        # delay (minus the constant setup allowance).
        comb = [x - SETUP_PS for x in d]
        assert 1.7 < comb[3] / comb[2] < 2.3

    def test_single_inv_delay_value(self):
        # d = tau * (p + g*h) with h = load/cin; output load is 4x INV.
        nl = _inv_chain(1)
        t = analyze_timing(nl)
        inv = cell_by_name("INV")
        h = (4 * inv.input_cap_ff) / inv.input_cap_ff
        expected = TAU_PS * (inv.parasitic + inv.logical_effort * h) + SETUP_PS
        assert t.delay_ps == pytest.approx(expected)

    def test_fanout_increases_delay(self):
        def fan(n):
            nl = Netlist()
            a = nl.input()
            x = nl.gate("INV", a)
            sinks = [nl.gate("INV", x) for _ in range(n)]
            for s_ in sinks:
                nl.mark_output(s_)
            return analyze_timing(nl).delay_ps

        assert fan(1) < fan(4) < fan(16)

    def test_critical_path_backtrack(self):
        nl = Netlist()
        a = nl.input()
        short = nl.gate("INV", a)
        long = nl.gate("INV", nl.gate("INV", nl.gate("INV", a)))
        y = nl.gate("AND2", short, long)
        nl.mark_output(y)
        t = analyze_timing(nl)
        assert t.critical_endpoint == y
        assert len(t.critical_path) == 5  # input + 3 INV + AND2
        assert t.critical_path[0] == a

    def test_register_paths(self):
        # reg -> logic -> reg: delay includes clk-to-q and setup.
        nl = Netlist()
        q = nl.reg()
        d = nl.gate("INV", q)
        nl.connect_reg(q, d)
        t = analyze_timing(nl)
        dff = cell_by_name("DFF")
        assert t.delay_ps > TAU_PS * dff.parasitic

    def test_upsizing_reduces_gate_delay(self):
        nl = _inv_chain(4)
        base = analyze_timing(nl).delay_ps
        for nid, k in enumerate(nl.kinds):
            if k >= 0:
                nl.sizes[nid] = 4.0
        assert analyze_timing(nl).delay_ps < base

    def test_loads_include_wire_cap(self):
        nl = Netlist()
        a = nl.input()
        nl.mark_output(nl.gate("INV", a))
        loads = compute_loads(nl)
        inv = cell_by_name("INV")
        assert loads[a] > inv.input_cap_ff  # pin + wire

    def test_no_endpoints_raises(self):
        nl = Netlist()
        nl.input()
        with pytest.raises(ValueError):
            analyze_timing(nl)

    def test_arrivals_zero_at_inputs(self):
        nl = _inv_chain(3)
        arr = compute_arrivals(nl)
        assert arr[0] == 0.0


class TestArea:
    def test_sums_unit_areas(self):
        nl = Netlist()
        a, b = nl.inputs(2)
        nl.mark_output(nl.gate("AND2", a, b))
        assert total_area(nl) == pytest.approx(cell_by_name("AND2").area_um2)

    def test_scales_with_size(self):
        nl = Netlist()
        a, b = nl.inputs(2)
        g = nl.gate("AND2", a, b)
        nl.mark_output(g)
        base = total_area(nl)
        nl.sizes[g] = 2.0
        assert total_area(nl) == pytest.approx(2 * base)

    def test_breakdown(self):
        nl = Netlist()
        a, b = nl.inputs(2)
        nl.mark_output(nl.gate("AND2", a, b))
        nl.mark_output(nl.gate("INV", a))
        by = area_by_cell(nl)
        assert set(by) == {"AND2", "INV"}
        assert sum(by.values()) == pytest.approx(total_area(nl))

    def test_inputs_are_free(self):
        nl = Netlist()
        nl.inputs(10)
        a = nl.input()
        nl.mark_output(nl.gate("INV", a))
        assert total_area(nl) == pytest.approx(cell_by_name("INV").area_um2)


class TestPower:
    def test_input_probability_default(self):
        nl = Netlist()
        a, b = nl.inputs(2)
        g = nl.gate("AND2", a, b)
        nl.mark_output(g)
        p = signal_probabilities(nl)
        assert p[a] == 0.5
        assert p[g] == pytest.approx(0.25)

    def test_gate_probability_models(self):
        nl = Netlist()
        a, b = nl.inputs(2)
        nets = {
            "AND2": (nl.gate("AND2", a, b), 0.25),
            "OR2": (nl.gate("OR2", a, b), 0.75),
            "NAND2": (nl.gate("NAND2", a, b), 0.75),
            "NOR2": (nl.gate("NOR2", a, b), 0.25),
            "XOR2": (nl.gate("XOR2", a, b), 0.5),
            "INV": (nl.gate("INV", a), 0.5),
        }
        for net, _ in nets.values():
            nl.mark_output(net)
        p = signal_probabilities(nl)
        for name, (net, expected) in nets.items():
            assert p[net] == pytest.approx(expected), name

    def test_mux_probability(self):
        nl = Netlist()
        d0, d1, s = nl.inputs(3)
        g = nl.gate("MUX2", d0, d1, s)
        nl.mark_output(g)
        assert signal_probabilities(nl)[g] == pytest.approx(0.5)

    def test_const_probability(self):
        nl = Netlist()
        one = nl.const(1)
        a = nl.input()
        g = nl.gate("AND2", a, one)
        nl.mark_output(g)
        p = signal_probabilities(nl)
        assert p[one] == 1.0
        assert p[g] == pytest.approx(0.5)

    def test_register_fixed_point(self):
        # q' = NOT q: probability converges to 0.5.
        nl = Netlist()
        q = nl.reg()
        nl.connect_reg(q, nl.gate("INV", q))
        p = signal_probabilities(nl)
        assert p[q] == pytest.approx(0.5, abs=0.05)

    def test_power_positive_and_scales_with_frequency(self):
        nl = _inv_chain_with_output()
        p1 = analyze_power(nl, frequency_ghz=1.0)
        p2 = analyze_power(nl, frequency_ghz=2.0)
        assert p1.dynamic_mw > 0
        assert p2.dynamic_mw == pytest.approx(2 * p1.dynamic_mw)
        assert p2.leakage_mw == pytest.approx(p1.leakage_mw)

    def test_default_frequency_is_min_cycle(self):
        nl = _inv_chain_with_output()
        from repro.hw.timing import analyze_timing as at

        p = analyze_power(nl)
        assert p.frequency_ghz == pytest.approx(at(nl).min_cycle_ghz)

    def test_constant_nets_consume_no_dynamic_power(self):
        nl = Netlist()
        one = nl.const(1)
        a = nl.input()
        g = nl.gate("AND2", a, one)
        nl.mark_output(g)
        p = analyze_power(nl, frequency_ghz=1.0)
        assert p.dynamic_mw > 0  # from a and g, not the constant


def _inv_chain_with_output():
    nl = Netlist()
    x = nl.input()
    for _ in range(4):
        x = nl.gate("INV", x)
    nl.mark_output(x)
    return nl


class TestSizing:
    def test_improves_or_preserves_delay(self):
        from repro.hw.arbiter_gates import build_arbiter

        nl = Netlist()
        reqs = nl.inputs(16)
        g, fin = build_arbiter(nl, "rr", reqs)
        fin(None)
        for x in g:
            nl.mark_output(x)
        before = analyze_timing(nl).delay_ps
        result = recover_timing(nl)
        assert result.final_delay_ps <= before
        assert result.initial_delay_ps == pytest.approx(before)

    def test_area_grows_when_resizing(self):
        from repro.hw.arbiter_gates import build_arbiter

        nl = Netlist()
        reqs = nl.inputs(16)
        g, fin = build_arbiter(nl, "rr", reqs)
        fin(None)
        for x in g:
            nl.mark_output(x)
        a0 = total_area(nl)
        result = recover_timing(nl)
        if result.gates_resized:
            assert total_area(nl) > a0

    def test_respects_max_size(self):
        from repro.hw.cells import MAX_SIZE

        nl = _inv_chain_with_output()
        recover_timing(nl, max_iterations=50)
        assert max(nl.sizes) <= MAX_SIZE

    def test_registers_not_resized(self):
        nl = Netlist()
        q = nl.reg()
        d = nl.gate("INV", q)
        nl.connect_reg(q, d)
        recover_timing(nl, max_iterations=5)
        assert nl.sizes[q] == 1.0


class TestCriticalPathReport:
    def test_format_contains_stages(self):
        from repro.hw.timing import format_critical_path

        nl = Netlist("demo")
        a = nl.input("a")
        x = nl.gate("INV", a)
        y = nl.gate("AND2", x, a)
        nl.mark_output(y)
        text = format_critical_path(nl)
        assert "demo" in text
        assert "INPUT" in text
        assert "AND2" in text
        assert "setup" in text

    def test_increments_sum_to_delay(self):
        from repro.hw.timing import SETUP_PS, analyze_timing, format_critical_path

        nl = Netlist()
        x = nl.input()
        for _ in range(5):
            x = nl.gate("INV", x)
        nl.mark_output(x)
        rep = analyze_timing(nl)
        # Last node's arrival + setup equals the reported delay.
        assert rep.arrivals[rep.critical_path[-1]] + SETUP_PS == rep.delay_ps
        assert format_critical_path(nl, rep)  # renders without error
