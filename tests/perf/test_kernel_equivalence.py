"""Differential equivalence harness: the three-kernel test matrix.

Three layers of defence pin the fast and compiled simulation kernels to
the reference implementation:

1. End-to-end differential runs: every design point of the bit-identity
   matrix (``scripts/check_bit_identity.py``) at reduced depth, all
   kernels side by side, asserting the full ``SimulationResult``
   payloads (and observer metric rows) match exactly.  CI runs the same
   matrix at full depth via the script.
2. The three-kernel design-point matrix: every representative compiled
   template design point (``repro.netsim.codegen.template_specs``) on
   both paper topologies, under all three kernels, comparing both the
   end-of-run payloads and the complete post-run network state --
   arbiter priorities, credits, buffer occupancy, holder registers and
   speculation counters.
3. Component-level property tests: the sparse allocator entry points
   used only by the fast kernel (``allocate_sparse``,
   ``grant_uncontested``, ``allocate_pairs``) against the dense paths
   used by the reference kernel, plus the compiled-kernel codegen entry
   points (``generate_source`` determinism, whole-network lockstep with
   the fast kernel on randomized traffic), over randomized multi-cycle
   request streams, comparing both the grants and the post-cycle
   arbiter priority state.
"""

from __future__ import annotations

import dataclasses
import sys
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.arbiters import (
    FixedPriorityArbiter,
    MatrixArbiter,
    RoundRobinArbiter,
    TreeArbiter,
)
from repro.core.speculative import SpeculativeSwitchAllocator
from repro.core.switch_allocator import SwitchAllocator
from repro.core.vc_allocator import VCAllocator, VCRequest
from repro.core.vc_partition import VCPartition
from repro.core.wavefront import WavefrontAllocator
from repro.netsim import codegen
from repro.netsim.codegen import KERNELS
from repro.netsim.simulator import SimulationConfig, build_network, run_simulation

# The CLI face of the harness owns the config matrix; reuse it here so
# the two can never drift apart.
sys.path.insert(0, str(Path(__file__).resolve().parents[2] / "scripts"))
import check_bit_identity as cbi  # noqa: E402


# ---------------------------------------------------------------------------
# Layer 1: end-to-end differential runs
# ---------------------------------------------------------------------------

# Shorter than the script's windows (this runs in tier-1 on every
# commit); still long enough to pass warmup, fill the network and
# exercise the drain logic.
_WINDOWS = dict(warmup_cycles=80, measure_cycles=250, drain_cycles=400)


def _design_points():
    params = []
    for label, cfg, observed in cbi.config_matrix(quick=True):
        cfg = dataclasses.replace(cfg, **_WINDOWS)
        params.append(pytest.param(cfg, observed, id=label.replace("/", "-")))
    return params


def test_kernel_probe_passes_on_healthy_kernels():
    assert cbi.kernel_probe() is None


def test_empty_matrix_is_an_error_not_a_pass(monkeypatch, capsys):
    """`ALL IDENTICAL (0 design points)` is a vacuous pass; the harness
    must refuse it rather than green-light CI on nothing."""
    monkeypatch.setattr(cbi, "config_matrix", lambda quick: [])
    rc = cbi.main(["--quick"])
    assert rc == 2
    assert "NOT established" in capsys.readouterr().err


def test_unavailable_kernel_is_an_error(monkeypatch, capsys):
    def broken(cfg, kernel="fast"):
        raise RuntimeError("fast kernel removed")

    monkeypatch.setattr(cbi, "build_network", broken)
    rc = cbi.main(["--quick"])
    err = capsys.readouterr().err
    assert rc == 2
    assert "unavailable" in err
    assert "bit identity cannot be checked" in err


def test_unknown_kernel_name_is_rejected(capsys):
    rc = cbi.main(["--quick", "--kernel", "turbo"])
    err = capsys.readouterr().err
    assert rc == 2
    assert "unknown kernel" in err
    for name in KERNELS:
        assert name in err


@pytest.mark.parametrize("cfg,observed", _design_points())
def test_kernels_bit_identical(cfg, observed):
    payloads, rows = cbi.run_point(cfg, observed)
    for kernel in cbi.DEFAULT_KERNELS:
        assert cbi.diff_payloads(payloads[kernel], payloads["reference"], kernel) == []
        if observed:
            assert rows[kernel] == rows["reference"]


# ---------------------------------------------------------------------------
# Layer 2: sparse-vs-dense component properties
# ---------------------------------------------------------------------------


def _arb_state(arb):
    """Complete priority state of an arbiter, as a comparable value."""
    if isinstance(arb, RoundRobinArbiter):
        return ("rr", arb.pointer)
    if isinstance(arb, MatrixArbiter):
        return ("m", tuple(tuple(row) for row in arb._beats))
    if isinstance(arb, TreeArbiter):
        return (
            "tree",
            tuple(_arb_state(a) for a in arb._group_arbs),
            _arb_state(arb._top_arb),
        )
    assert isinstance(arb, FixedPriorityArbiter)
    return ("fixed",)


def _sw_state(alloc: SwitchAllocator):
    state = [_arb_state(a) for a in alloc._vc_arbs]
    state += [_arb_state(a) for a in alloc._port_arbs]
    if alloc._wavefront is not None:
        state.append(("wf", alloc._wavefront.priority_diagonal))
    return state


def _vc_state(alloc: VCAllocator):
    state = [_arb_state(a) for a in alloc._input_arbs]
    state += [_arb_state(a) for a in alloc._output_arbs]
    state += [("wf", wf.priority_diagonal) for wf in alloc._wavefronts]
    return state


# -- wavefront pair sweep ---------------------------------------------------


@st.composite
def _wf_case(draw):
    m = draw(st.integers(1, 6))
    n = draw(st.integers(1, 6))
    rotations = draw(st.integers(0, max(m, n) - 1))
    cells = draw(
        st.sets(
            st.tuples(st.integers(0, m - 1), st.integers(0, n - 1)),
            max_size=m * n,
        )
    )
    return m, n, rotations, sorted(cells)


@given(case=_wf_case())
@settings(max_examples=200, deadline=None)
def test_wavefront_pairs_matches_dense(case):
    m, n, rotations, cells = case
    dense_wf = WavefrontAllocator(m, n)
    pair_wf = WavefrontAllocator(m, n)
    for _ in range(rotations):
        dense_wf.advance_priority()
        pair_wf.advance_priority()

    req = np.zeros((m, n), dtype=bool)
    for i, j in cells:
        req[i, j] = True
    dense_grants = dense_wf.allocate(req)
    pair_grants = pair_wf.allocate_pairs(cells)

    assert set(pair_grants) == set(zip(*(x.tolist() for x in np.nonzero(dense_grants))))
    assert pair_wf.priority_diagonal == dense_wf.priority_diagonal


# -- switch allocator -------------------------------------------------------

_P, _V = 4, 3


@st.composite
def _sw_cycles(draw, max_cycles=4):
    cycles = []
    for _ in range(draw(st.integers(1, max_cycles))):
        items = []
        for p in range(_P):
            for v in range(_V):
                if draw(st.booleans()):
                    items.append((p, v, draw(st.integers(0, _P - 1))))
        cycles.append(items)
    return cycles


def _sw_dense(items):
    requests = [[None] * _V for _ in range(_P)]
    for p, v, q in items:
        requests[p][v] = q
    return requests


@pytest.mark.parametrize("arch", ["sep_if", "sep_of", "wf"])
@pytest.mark.parametrize("arbiter", ["rr", "m"])
@given(cycles=_sw_cycles())
@settings(max_examples=40, deadline=None)
def test_switch_sparse_matches_dense(arch, arbiter, cycles):
    dense_alloc = SwitchAllocator(_P, _V, arch, arbiter)
    sparse_alloc = SwitchAllocator(_P, _V, arch, arbiter)
    for items in cycles:
        dense_grants = dense_alloc.allocate(_sw_dense(items))
        sparse_grants = sparse_alloc.allocate_sparse(items)
        assert sparse_grants == dense_grants
    assert _sw_state(sparse_alloc) == _sw_state(dense_alloc)


@st.composite
def _uncontested_items(draw):
    ports = sorted(draw(st.sets(st.integers(0, _P - 1), min_size=1)))
    outs = draw(st.permutations(list(range(_P))))
    return [
        (p, draw(st.integers(0, _V - 1)), outs[k]) for k, p in enumerate(ports)
    ]


@pytest.mark.parametrize("arch", ["sep_if", "sep_of", "wf"])
@pytest.mark.parametrize("arbiter", ["rr", "m"])
@given(warmup=_sw_cycles(max_cycles=2), items=_uncontested_items())
@settings(max_examples=40, deadline=None)
def test_grant_uncontested_matches_sparse(arch, arbiter, warmup, items):
    full = SwitchAllocator(_P, _V, arch, arbiter)
    shortcut = SwitchAllocator(_P, _V, arch, arbiter)
    for cycle in warmup:  # start from a randomized priority state
        full.allocate_sparse(cycle)
        shortcut.allocate_sparse(cycle)

    grants = full.allocate_sparse(items)
    shortcut.grant_uncontested(items)

    # A conflict-free request set is granted in full by every arch ...
    expected = [None] * _P
    for p, v, q in items:
        expected[p] = (v, q)
    assert grants == expected
    # ... and the shortcut leaves the arbiters in the identical state.
    assert _sw_state(shortcut) == _sw_state(full)


# -- speculative switch allocation ------------------------------------------


@st.composite
def _spec_cycles(draw, max_cycles=4):
    cycles = []
    for _ in range(draw(st.integers(1, max_cycles))):
        ns, sp = [], []
        for p in range(_P):
            for v in range(_V):
                kind = draw(st.integers(0, 3))
                if kind == 1:
                    ns.append((p, v, draw(st.integers(0, _P - 1))))
                elif kind == 2:
                    sp.append((p, v, draw(st.integers(0, _P - 1))))
        cycles.append((ns, sp))
    return cycles


@pytest.mark.parametrize("scheme", ["pessimistic", "conventional"])
@pytest.mark.parametrize("arch", ["sep_if", "wf"])
@given(cycles=_spec_cycles())
@settings(max_examples=40, deadline=None)
def test_speculative_sparse_matches_dense(scheme, arch, cycles):
    dense_alloc = SpeculativeSwitchAllocator(_P, _V, arch, "rr", scheme)
    sparse_alloc = SpeculativeSwitchAllocator(_P, _V, arch, "rr", scheme)
    for ns_items, sp_items in cycles:
        dense = dense_alloc.allocate(_sw_dense(ns_items), _sw_dense(sp_items))
        sparse = sparse_alloc.allocate_sparse(ns_items, sp_items)
        assert sparse.nonspec == dense.nonspec
        assert sparse.spec == dense.spec
        assert sparse.spec_discarded == dense.spec_discarded
    assert _sw_state(sparse_alloc._nonspec_alloc) == _sw_state(
        dense_alloc._nonspec_alloc
    )
    assert _sw_state(sparse_alloc._spec_alloc) == _sw_state(dense_alloc._spec_alloc)


def test_speculative_ns_empty_commits_inline():
    """The ns-empty shortcut must grant AND advance exactly like the
    staged path (nothing can be masked when the nonspec side is idle)."""
    for scheme in ("pessimistic", "conventional"):
        fast = SpeculativeSwitchAllocator(_P, _V, "sep_if", "rr", scheme)
        ref = SpeculativeSwitchAllocator(_P, _V, "sep_if", "rr", scheme)
        sp_items = [(0, 1, 2), (1, 0, 2), (2, 2, 0)]
        out_fast = fast.allocate_sparse([], sp_items)
        out_ref = ref.allocate(_sw_dense([]), _sw_dense(sp_items))
        assert out_fast.nonspec == out_ref.nonspec
        assert out_fast.spec == out_ref.spec
        assert out_fast.spec_discarded == out_ref.spec_discarded == 0
        assert _sw_state(fast._spec_alloc) == _sw_state(ref._spec_alloc)


# -- VC allocator -----------------------------------------------------------

_PARTITIONS = {
    "single-class": VCPartition(1, 1, 3),
    "two-classes": VCPartition(2, 1, 2),
}


@st.composite
def _vc_cycles(draw, partition, num_ports, max_cycles=4):
    V = partition.num_vcs
    legal = {
        v: [u for u in range(V) if partition.legal_transition(v, u)]
        for v in range(V)
    }
    cycles = []
    for _ in range(draw(st.integers(1, max_cycles))):
        items = []
        for i in range(num_ports * V):
            if draw(st.booleans()):
                cands = sorted(
                    draw(st.sets(st.sampled_from(legal[i % V]), min_size=1))
                )
                items.append((i, draw(st.integers(0, num_ports - 1)), tuple(cands)))
        cycles.append(items)
    return cycles


def _vc_dense(items, n):
    requests = [None] * n
    for i, q, cands in items:
        requests[i] = VCRequest(q, cands)
    return requests


@pytest.mark.parametrize("part_name", sorted(_PARTITIONS))
@pytest.mark.parametrize("arch", ["sep_if", "sep_of", "wf"])
@pytest.mark.parametrize("arbiter", ["rr", "m"])
@pytest.mark.parametrize("masked", [False, True])
@given(data=st.data())
@settings(max_examples=25, deadline=None)
def test_vc_sparse_matches_dense(part_name, arch, arbiter, masked, data):
    partition = _PARTITIONS[part_name]
    P = 3
    n = P * partition.num_vcs
    dense_alloc = VCAllocator(P, partition, arch, arbiter)
    sparse_alloc = VCAllocator(P, partition, arch, arbiter)
    if masked:
        # Two stuck output VCs (a faulted run): both paths must prune
        # candidates identically, including fully-masked requests.
        mask = frozenset({1, n - 1})
        dense_alloc.fault_mask = mask
        sparse_alloc.fault_mask = mask
    cycles = data.draw(_vc_cycles(partition, P))
    for items in cycles:
        dense_grants = dense_alloc.allocate(_vc_dense(items, n))
        sparse_grants = sparse_alloc.allocate_sparse(items)
        assert len(sparse_grants) == len(items)
        for pos, (i, _q, _cands) in enumerate(items):
            assert sparse_grants[pos] == dense_grants[i]
        granted_idx = {i for i, _q, _c in items}
        for i in range(n):
            if i not in granted_idx:
                assert dense_grants[i] is None
    assert _vc_state(sparse_alloc) == _vc_state(dense_alloc)


# ---------------------------------------------------------------------------
# Three-kernel design-point matrix: payloads AND post-run network state
# ---------------------------------------------------------------------------

#: Cycles for the state-comparison runs: past warmup, deep into
#: steady-state contention, before the schedule drains.
_STATE_CYCLES = 330


def _net_state(net):
    """Complete comparable state of every router in a network.

    Packet ids come from a process-global counter, so they are
    normalized to first-seen order; everything else (arbiter
    priorities, credits, buffer contents, holder registers, counters)
    is compared verbatim.
    """
    pidmap = {}

    def norm(pid):
        return pidmap.setdefault(pid, len(pidmap))

    state = []
    for r in net.routers:
        state.append(
            {
                "busy": sorted(r._busy),
                "credits": [list(c) for c in r.credits],
                "holder": [list(h) for h in r.output_holder],
                "counters": (
                    r.switch_grants,
                    r.speculative_wins,
                    r.misspeculations,
                ),
                "ivc": [
                    (
                        ivc.output_port,
                        ivc.output_vc,
                        [norm(f.packet.pid) for f in ivc.queue],
                    )
                    for port in r.input_vcs
                    for ivc in port
                ],
                "va": _vc_state(r.vc_alloc),
                "sa": [
                    _sw_state(core)
                    for core in (
                        r.sw_alloc._nonspec_alloc,
                        r.sw_alloc._spec_alloc,
                    )
                    if core is not None
                ],
            }
        )
    return state


def _matrix_params():
    """Every compiled template design point on both paper topologies."""
    params = []
    for spec in codegen.template_specs():
        for topo in ("mesh", "fbfly"):
            cfg = SimulationConfig(
                topology=topo,
                vcs_per_class=spec.vcs_per_class,
                injection_rate=0.3,
                vc_alloc_arch=spec.vc_arch,
                vc_alloc_arbiter=spec.vc_arbiter,
                sw_alloc_arch=spec.sw_arch,
                sw_alloc_arbiter=spec.sw_arbiter,
                speculation=spec.scheme,
                lookahead=spec.lookahead,
                seed=11,
                **_WINDOWS,
            )
            params.append(pytest.param(cfg, id=f"{topo}-{spec.slug()}"))
    return params


@pytest.mark.parametrize("cfg", _matrix_params())
def test_three_kernel_matrix_payload_and_state(cfg):
    payloads = {k: run_simulation(cfg, kernel=k).to_payload() for k in KERNELS}
    for kernel in ("fast", "compiled"):
        assert cbi.diff_payloads(payloads[kernel], payloads["reference"], kernel) == []

    states = {}
    for kernel in KERNELS:
        net = build_network(cfg, kernel=kernel)
        net.run(_STATE_CYCLES)
        states[kernel] = _net_state(net)
    assert states["fast"] == states["reference"]
    assert states["compiled"] == states["reference"]


# ---------------------------------------------------------------------------
# Compiled-kernel codegen entry points (property tests)
# ---------------------------------------------------------------------------

_ARCHS = ("sep_if", "sep_of", "wf")


@given(data=st.data())
@settings(max_examples=25, deadline=None)
def test_generated_source_is_deterministic_and_compiles(data):
    """``generate_source`` over the whole spec space: same spec, same
    text, and the text always compiles to a ``make_step`` factory."""
    spec = codegen.KernelSpec(
        num_ports=data.draw(st.sampled_from((3, 5, 10))),
        num_message_classes=data.draw(st.integers(1, 2)),
        num_resource_classes=data.draw(st.integers(1, 2)),
        vcs_per_class=data.draw(st.integers(1, 4)),
        vc_arch=data.draw(st.sampled_from(_ARCHS)),
        vc_arbiter=data.draw(st.sampled_from(("rr", "m", "fixed"))),
        sw_arch=data.draw(st.sampled_from(_ARCHS)),
        sw_arbiter=data.draw(st.sampled_from(("rr", "m", "fixed"))),
        scheme=data.draw(st.sampled_from(("pessimistic", "conventional", "nonspec"))),
        lookahead=data.draw(st.booleans()),
    )
    src = codegen.generate_source(spec)
    assert src == codegen.generate_source(spec)
    ns: dict = {}
    exec(compile(src, f"<test-kernel:{spec.slug()}>", "exec"), ns)
    assert callable(ns["make_step"])


@given(data=st.data())
@settings(max_examples=8, deadline=None)
def test_compiled_kernel_matches_fast_on_random_traffic(data):
    """Whole-network lockstep: a randomized design point under
    randomized request patterns leaves the compiled and fast kernels in
    bit-identical network state after every cycle count."""
    cfg = SimulationConfig(
        topology="mesh",
        vcs_per_class=data.draw(st.integers(1, 3)),
        injection_rate=data.draw(st.sampled_from((0.1, 0.3, 0.5))),
        vc_alloc_arch=data.draw(st.sampled_from(_ARCHS)),
        sw_alloc_arch=data.draw(st.sampled_from(_ARCHS)),
        speculation=data.draw(
            st.sampled_from(("pessimistic", "conventional", "nonspec"))
        ),
        seed=data.draw(st.integers(0, 1 << 16)),
        warmup_cycles=40,
        measure_cycles=120,
        drain_cycles=160,
    )
    cycles = data.draw(st.integers(40, 200))
    states = {}
    for kernel in ("fast", "compiled"):
        net = build_network(cfg, kernel=kernel)
        net.run(cycles)
        states[kernel] = _net_state(net)
    assert states["compiled"] == states["fast"]
