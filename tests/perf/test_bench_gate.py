"""Tests for the kernel-bench regression gate
(``scripts/check_bench_regression.py``)."""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parents[2] / "scripts"))
import check_bench_regression as gate  # noqa: E402


def _report(speedups: dict) -> dict:
    return {
        "schema": "repro/kernel-bench/v1",
        "simulator_rev": 2,
        "quick": True,
        "points": [
            {
                "label": label,
                "cycles": 1800,
                "fast": {"cold_s": 1.0, "warm_s": 1.0,
                         "cold_cycles_per_s": 1800.0,
                         "warm_cycles_per_s": 1800.0},
                "reference": {"cold_s": s, "warm_s": s,
                              "cold_cycles_per_s": 1800.0 / s,
                              "warm_cycles_per_s": 1800.0 / s},
                "speedup_cold": s,
                "speedup_warm": s,
            }
            for label, s in speedups.items()
        ],
    }


def _write(tmp_path, name, report):
    path = tmp_path / name
    path.write_text(json.dumps(report))
    return str(path)


class TestGate:
    def test_passes_within_threshold(self, tmp_path, capsys):
        base = _write(tmp_path, "base.json", _report({"a": 3.0, "b": 2.0}))
        cur = _write(tmp_path, "cur.json", _report({"a": 2.5, "b": 1.9}))
        assert gate.main([cur, base]) == 0
        assert "passed" in capsys.readouterr().out

    def test_fails_beyond_threshold(self, tmp_path, capsys):
        base = _write(tmp_path, "base.json", _report({"a": 3.0}))
        cur = _write(tmp_path, "cur.json", _report({"a": 2.0}))
        assert gate.main([cur, base]) == 1
        out = capsys.readouterr().out
        assert "REGRESSED" in out and "FAILED" in out

    def test_threshold_is_configurable(self, tmp_path):
        base = _write(tmp_path, "base.json", _report({"a": 3.0}))
        cur = _write(tmp_path, "cur.json", _report({"a": 2.0}))
        assert gate.main([cur, base, "--threshold", "0.40"]) == 0

    def test_missing_point_fails(self, tmp_path, capsys):
        base = _write(tmp_path, "base.json", _report({"a": 3.0, "b": 2.0}))
        cur = _write(tmp_path, "cur.json", _report({"a": 3.0}))
        assert gate.main([cur, base]) == 1
        assert "missing" in capsys.readouterr().out

    def test_extra_current_points_ignored(self, tmp_path):
        base = _write(tmp_path, "base.json", _report({"a": 3.0}))
        cur = _write(tmp_path, "cur.json", _report({"a": 3.0, "new": 0.5}))
        assert gate.main([cur, base]) == 0

    def test_floor_enforced(self, tmp_path, capsys):
        base = _write(tmp_path, "base.json", _report({"a": 3.4}))
        cur = _write(tmp_path, "cur.json", _report({"a": 3.1}))
        # Within the 20% relative gate but below an absolute floor.
        assert gate.main([cur, base, "--floor", "a=3.2"]) == 1
        assert "floor" in capsys.readouterr().out
        assert gate.main([cur, base, "--floor", "a=3.0"]) == 0

    def test_bad_floor_spec_rejected(self, tmp_path):
        base = _write(tmp_path, "base.json", _report({"a": 3.0}))
        cur = _write(tmp_path, "cur.json", _report({"a": 3.0}))
        with pytest.raises(SystemExit):
            gate.main([cur, base, "--floor", "nonsense"])

    def test_non_report_json_rejected(self, tmp_path):
        bogus = tmp_path / "bogus.json"
        bogus.write_text("{}")
        with pytest.raises(SystemExit):
            gate.load(str(bogus))
