"""Traffic-pattern invariance (Section 3.2's robustness remark).

The paper states its conclusions are "largely invariant to traffic
pattern selection".  This benchmark re-runs the headline network-level
comparison -- wavefront vs separable input-first switch allocation on
the VC-rich flattened butterfly -- under non-uniform synthetic patterns
and checks the winner does not flip.
"""

import pytest

from conftest import (
    SIM_DRAIN_CYCLES,
    SIM_MEASURE_CYCLES,
    SIM_WARMUP_CYCLES,
    run_once,
    save_result,
)
from repro.eval.netperf import latency_sweep
from repro.eval.tables import format_table
from repro.netsim.simulator import SimulationConfig

PATTERNS = ("uniform", "transpose", "hotspot")
RATES = (0.1, 0.3, 0.45, 0.55)


def _base(pattern, arch):
    return SimulationConfig(
        topology="fbfly",
        vcs_per_class=4,
        sw_alloc_arch=arch,
        traffic_pattern=pattern,
        speculation="pessimistic",
        warmup_cycles=SIM_WARMUP_CYCLES,
        measure_cycles=SIM_MEASURE_CYCLES,
        drain_cycles=SIM_DRAIN_CYCLES,
    )


def test_pattern_invariance_wf_vs_sep_if(benchmark):
    def collect():
        table = {}
        for pattern in PATTERNS:
            curves = {
                arch: latency_sweep(
                    _base(pattern, arch), RATES, stop_after_saturation=False
                )
                for arch in ("sep_if", "wf")
            }
            # Permutation patterns: compare saturation at a COMMON
            # latency threshold (3x the sep_if zero-load).  Hotspot
            # traffic saturates on the hot terminals' ejection bandwidth
            # -- allocator-independent, with a knife-edge latency knee
            # that makes the latency-crossing metric noisy -- so compare
            # the *accepted throughput* at the highest offered load.
            if pattern == "hotspot":
                table[pattern] = {
                    arch: max(p.accepted for p in c.points)
                    for arch, c in curves.items()
                }
            else:
                z_ref = curves["sep_if"].zero_load
                table[pattern] = {
                    arch: c.saturation_rate(zero_load=z_ref)
                    for arch, c in curves.items()
                }
        return table

    table = run_once(benchmark, collect)
    rows = [
        [pattern, f"{s['sep_if']:.3f}", f"{s['wf']:.3f}",
         f"{s['wf'] / s['sep_if']:.2f}x"]
        for pattern, s in table.items()
    ]
    save_result(
        "traffic_pattern_invariance",
        format_table(
            ["pattern", "sep_if saturation", "wf saturation", "wf advantage"],
            rows,
            title="fbfly 2x2x4, switch allocator saturation by traffic pattern",
        ),
    )
    # The ordering (wf >= sep_if, within noise) holds for every pattern:
    # near-parity on the ejection-bound hotspot (accepted throughput),
    # clear wins on the permutation patterns (saturation rate).
    for pattern, s in table.items():
        assert s["wf"] >= 0.93 * s["sep_if"], (pattern, s)
    assert table["transpose"]["wf"] > 1.05 * table["transpose"]["sep_if"]
