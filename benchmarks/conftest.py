"""Shared infrastructure for the figure-regeneration benchmarks.

Each benchmark module regenerates one table/figure from the paper,
asserts its qualitative shape (who wins, by roughly what factor, where
crossovers fall), saves the rendered table under ``benchmarks/results/``
and reports wall time through pytest-benchmark.

Fidelity knobs (environment variables):

* ``REPRO_SAMPLES``  -- request matrices per matching-quality point
  (paper: 10000; default here: 500).
* ``REPRO_SIM_CYCLES`` -- measurement cycles per network-simulation
  point (default 1200; the paper's simulator runs far longer).
* ``REPRO_FULL=1``   -- paper fidelity for both knobs.
* ``REPRO_JOBS``     -- worker processes for the network sweeps
  (default 1; results are bit-identical at any job count).

Simulation sweeps are memoized in ``benchmarks/.sweep_cache.json``
(keyed by the full config + simulator revision, so fidelity-knob or
code changes re-simulate automatically); synthesis results likewise in
``benchmarks/.cost_cache.json``.
"""

import os
from pathlib import Path

import pytest

from repro.eval.cost import CostCache
from repro.eval.runner import ResultCache

RESULTS_DIR = Path(__file__).parent / "results"

FULL = os.environ.get("REPRO_FULL", "") == "1"
NUM_SAMPLES = int(os.environ.get("REPRO_SAMPLES", "10000" if FULL else "500"))
SIM_MEASURE_CYCLES = int(
    os.environ.get("REPRO_SIM_CYCLES", "10000" if FULL else "1200")
)
SIM_WARMUP_CYCLES = max(300, SIM_MEASURE_CYCLES // 3)
SIM_DRAIN_CYCLES = SIM_MEASURE_CYCLES
SIM_JOBS = int(os.environ.get("REPRO_JOBS", "1"))


def save_result(name: str, text: str) -> None:
    """Persist a rendered figure table and echo it to stdout."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n===== {name} =====\n{text}\n")


@pytest.fixture(scope="session")
def cost_cache():
    """Repo-local synthesis cache shared by the cost benchmarks."""
    return CostCache(str(Path(__file__).parent / ".cost_cache.json"))


@pytest.fixture(scope="session")
def sweep_cache():
    """Repo-local simulation-result cache shared by the network sweeps."""
    return ResultCache(Path(__file__).parent / ".sweep_cache.json")


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
