"""Methodology fidelity check: the Section 3.1 experiment run on the
actual gate-level netlists reproduces the behavioural quality numbers.

The paper measures matching quality by open-loop simulation of the RTL;
this repo's Figure 7/12 benchmarks use the (much faster) behavioural
models.  This benchmark justifies that substitution quantitatively by
driving the synthesized switch allocator netlists with the same
pseudo-random request streams and comparing grant counts: they agree
exactly, because the netlists are cycle-exact implementations of the
behavioural allocators (see tests/hw/test_gate_behaviour.py).
"""

from conftest import run_once, save_result
from repro.eval.design_points import DesignPoint
from repro.eval.matching import switch_matching_quality
from repro.eval.rtl_quality import rtl_switch_matching_quality
from repro.eval.tables import format_table

RATES = (0.2, 0.6, 1.0)


def test_rtl_vs_behavioural_quality(benchmark):
    def collect():
        rtl = rtl_switch_matching_quality(5, 2, rates=RATES, num_samples=200, seed=9)
        beh = switch_matching_quality(
            DesignPoint("mesh", 5, 1), rates=RATES, num_samples=200, seed=9
        )
        return rtl, beh

    rtl, beh = run_once(benchmark, collect)
    rows = []
    for arch in ("sep_if", "sep_of", "wf"):
        for i, rate in enumerate(RATES):
            rows.append(
                [arch, rate, f"{rtl[arch].quality[i]:.4f}", f"{beh[arch].quality[i]:.4f}"]
            )
    save_result(
        "rtl_fidelity",
        format_table(
            ["arch", "rate", "RTL quality", "behavioural quality"],
            rows,
            title="Gate-level vs behavioural matching quality (mesh P=5 V=2)",
        ),
    )
    for arch in ("sep_if", "sep_of", "wf"):
        assert rtl[arch].quality == beh[arch].quality
