"""Figure 14: latency vs injection rate per speculation scheme.

Reproduces the six panels comparing non-speculative (``nonspec``),
conventional speculative (``spec_gnt``) and pessimistic speculative
(``spec_req``) switch allocation with a separable input-first switch
allocator, and asserts the Section 5.3.3 findings:

* speculation improves zero-load latency, more on the mesh (paper: 23%)
  than on the low-diameter flattened butterfly (paper: 14%);
* both speculative schemes are identical at low load;
* the pessimistic scheme gives up at most a few percent of saturation
  throughput vs the conventional scheme (paper: <4%);
* the saturation gain from speculation is largest for few-VC networks.
"""

import pytest

from conftest import (
    SIM_DRAIN_CYCLES,
    SIM_JOBS,
    SIM_MEASURE_CYCLES,
    SIM_WARMUP_CYCLES,
    run_once,
    save_result,
)
from repro.eval.design_points import ALL_POINTS
from repro.eval.netperf import latency_sweep
from repro.eval.tables import format_curves
from repro.netsim.simulator import SimulationConfig

# Paper's scheme names: spec_gnt = conventional, spec_req = pessimistic.
SCHEMES = {"nonspec": "nonspec", "spec_gnt": "conventional", "spec_req": "pessimistic"}

RATE_GRID = {
    ("mesh", 1): (0.05, 0.15, 0.25, 0.32, 0.38),
    ("mesh", 2): (0.05, 0.15, 0.25, 0.35, 0.42),
    ("mesh", 4): (0.05, 0.15, 0.25, 0.35, 0.45),
    ("fbfly", 1): (0.05, 0.2, 0.35, 0.45, 0.55),
    ("fbfly", 2): (0.05, 0.2, 0.4, 0.55, 0.65),
    ("fbfly", 4): (0.05, 0.2, 0.4, 0.55, 0.68),
}


def _base(point, scheme):
    return SimulationConfig(
        topology=point.topology,
        vcs_per_class=point.vcs_per_class,
        sw_alloc_arch="sep_if",
        vc_alloc_arch="sep_if",
        speculation=scheme,
        warmup_cycles=SIM_WARMUP_CYCLES,
        measure_cycles=SIM_MEASURE_CYCLES,
        drain_cycles=SIM_DRAIN_CYCLES,
    )


@pytest.mark.parametrize("point", ALL_POINTS, ids=lambda p: p.label)
def test_fig14_speculation_network_performance(benchmark, point, sweep_cache):
    rates = RATE_GRID[(point.topology, point.vcs_per_class)]

    def sweep_all():
        return {
            label: latency_sweep(
                _base(point, scheme), rates, label=label,
                stop_after_saturation=False,
                jobs=SIM_JOBS, cache=sweep_cache,
            )
            for label, scheme in SCHEMES.items()
        }

    curves = run_once(benchmark, sweep_all)
    tag = point.label.replace(" ", "_").replace("(", "").replace(")", "")
    save_result(
        f"fig14_speculation_{tag}",
        format_curves(
            "inj rate",
            list(rates),
            {a: [p.latency for p in c.points] for a, c in curves.items()},
            title=f"Figure 14 panel: {point.label} (latency, cycles)",
        )
        + "\nsaturation rates: "
        + ", ".join(f"{a}={c.saturation_rate():.3f}" for a, c in curves.items()),
    )

    z_nonspec = curves["nonspec"].zero_load
    z_gnt = curves["spec_gnt"].zero_load
    z_req = curves["spec_req"].zero_load

    # Speculation cuts zero-load latency; the two schemes agree at low
    # load (Section 5.3.3).
    assert z_gnt < z_nonspec
    assert z_req < z_nonspec
    assert abs(z_gnt - z_req) < 0.03 * z_gnt

    improvement = 1 - z_req / z_nonspec
    if point.topology == "mesh":
        assert 0.12 < improvement < 0.35  # paper: up to 23%
    else:
        assert 0.06 < improvement < 0.30  # paper: 14%

    # Pessimistic gives up only a small fraction of saturation
    # throughput vs conventional (paper: <4%; allow sim noise).
    sat_gnt = curves["spec_gnt"].saturation_rate()
    sat_req = curves["spec_req"].saturation_rate()
    assert sat_req > 0.88 * sat_gnt


def test_fig14_speculation_gain_largest_with_few_vcs(benchmark, sweep_cache):
    """Section 5.3.3: the saturation-rate gain from speculation is
    larger in networks with fewer VCs (14% for mesh 2x1x1 vs <5% for
    the VC-rich configurations)."""

    def collect():
        gains = {}
        for C in (1, 4):
            point = next(
                p for p in ALL_POINTS if p.topology == "mesh" and p.vcs_per_class == C
            )
            rates = RATE_GRID[("mesh", C)]
            curves = {
                scheme: latency_sweep(
                    _base(point, scheme), rates, stop_after_saturation=False,
                    jobs=SIM_JOBS, cache=sweep_cache,
                )
                for scheme in ("nonspec", "pessimistic")
            }
            # Saturation compared at a COMMON absolute latency threshold
            # (3x the non-speculative zero-load): the speculative router
            # must not be held to a stricter limit just because its
            # zero-load latency is lower.
            z_ref = curves["nonspec"].zero_load
            sat = {
                s: c.saturation_rate(zero_load=z_ref) for s, c in curves.items()
            }
            gains[C] = sat["pessimistic"] / sat["nonspec"]
        return gains

    gains = run_once(benchmark, collect)
    save_result(
        "fig14_speculation_gain",
        f"speculation saturation gain on mesh: C=1 -> {gains[1]:.3f}, "
        f"C=4 -> {gains[4]:.3f} (paper: +14% and <+5%)",
    )
    assert gains[1] >= gains[4] - 0.05
    assert gains[1] > 1.0
