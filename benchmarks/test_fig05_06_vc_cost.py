"""Figures 5 & 6: VC allocator area vs delay and power vs delay.

For each of the six design points, synthesizes every allocator variant
(sep_if/m, sep_if/rr, sep_of/m, sep_of/rr, wf/rr) dense and sparse, and
checks the qualitative results of Section 4.3.1:

* sparse VC allocation reduces delay, area and power across the board;
* the wavefront allocator's cost grows fastest with the VC count;
* matrix arbiters cost area/power over round-robin for a small delay
  gain;
* the infeasible points (synthesis capacity) match the paper's missing
  data points.
"""

import pytest

from conftest import run_once, save_result, cost_cache  # noqa: F401
from repro.eval.cost import sparse_savings, vc_allocator_costs
from repro.eval.design_points import ALL_POINTS, FBFLY_POINTS, MESH_POINTS
from repro.eval.tables import format_cost_results


@pytest.mark.parametrize("point", ALL_POINTS, ids=lambda p: p.label)
def test_fig05_06_vc_allocator_cost(benchmark, cost_cache, point):
    results = run_once(
        benchmark, lambda: vc_allocator_costs(point, cache=cost_cache)
    )
    tag = point.label.replace(" ", "_").replace("(", "").replace(")", "")
    save_result(
        f"fig05_06_vc_cost_{tag}",
        format_cost_results(results, title=f"Figures 5/6 panel: {point.label}"),
    )

    ok = {(r.curve, r.variant): r for r in results if not r.failed}
    failed = {(r.curve, r.variant) for r in results if r.failed}

    # Sparse never worse than dense on any metric where both exist.
    for curve, s in sparse_savings(results).items():
        assert s["delay"] > 0, curve
        assert s["area"] > 0, curve
        assert s["power"] > 0, curve

    if point.topology == "mesh":
        # All sparse variants are feasible on the mesh.
        for curve in ("sep_if/rr", "sep_of/rr", "sep_if/m", "sep_of/m", "wf/rr"):
            assert (curve, "sparse") in ok, curve
    else:
        # Paper: wavefront fails for the two larger fbfly configs even
        # with sparse allocation; rr-separable succeeds everywhere.
        if point.vcs_per_class >= 2:
            assert ("wf/rr", "sparse") in failed
        else:
            assert ("wf/rr", "sparse") in ok
        assert ("sep_if/rr", "sparse") in ok
        assert ("sep_of/rr", "sparse") in ok
        if point.vcs_per_class == 4:
            # Only the round-robin separable variants synthesize.
            assert ("sep_if/m", "sparse") in failed
            assert ("sep_of/m", "sparse") in failed

    # Matrix arbiters: lower (or equal) delay, higher power than rr.
    for arch in ("sep_if", "sep_of"):
        m = ok.get((f"{arch}/m", "sparse"))
        rr = ok.get((f"{arch}/rr", "sparse"))
        if m and rr:
            assert m.delay_ns <= rr.delay_ns * 1.05
            assert m.power_mw > rr.power_mw


def test_fig05_wavefront_cost_grows_fastest(benchmark, cost_cache):
    """The wf area ratio between C=2 and C=1 mesh points exceeds the
    separable ratio (Section 4.3.1 scaling observation)."""

    def collect():
        out = {}
        for point in MESH_POINTS[:2]:
            for r in vc_allocator_costs(
                point,
                variants=[("sep_if", "rr"), ("wf", "rr")],
                cache=cost_cache,
            ):
                if not r.failed and r.variant == "sparse":
                    out[(point.vcs_per_class, r.arch)] = r.area_um2
        return out

    areas = run_once(benchmark, collect)
    wf_ratio = areas[(2, "wf")] / areas[(1, "wf")]
    sep_ratio = areas[(2, "sep_if")] / areas[(1, "sep_if")]
    assert wf_ratio > sep_ratio


def test_fig05_wavefront_best_tradeoff_at_single_vc(benchmark, cost_cache):
    """Paper: for C=1, sparse wf is among the best area-delay tradeoffs;
    as C grows, wf delay exceeds the separable implementations'."""

    def collect():
        one = {
            r.curve: r
            for r in vc_allocator_costs(MESH_POINTS[0], cache=cost_cache)
            if not r.failed and r.variant == "sparse"
        }
        four = {
            r.curve: r
            for r in vc_allocator_costs(MESH_POINTS[2], cache=cost_cache)
            if not r.failed and r.variant == "sparse"
        }
        return one, four

    one, four = run_once(benchmark, collect)
    # At C=1 the wavefront is delay-competitive with the rr separable
    # variants (within ~30%; removing the separable allocators' dead
    # update-enable trees unloaded their grant nets and pushed the
    # ratio just past the old 25% bound -- 1.26x as of the DRC-driven
    # cleanups)...
    assert one["wf/rr"].delay_ns <= 1.30 * min(
        one["sep_if/rr"].delay_ns, one["sep_of/rr"].delay_ns
    )
    # ... and at C=4 it is clearly slower than separable input-first.
    assert four["wf/rr"].delay_ns > 1.5 * four["sep_if/rr"].delay_ns
