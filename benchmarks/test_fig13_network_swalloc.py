"""Figure 13: latency vs injection rate per switch allocator.

Reproduces the six panels (mesh/fbfly x C in {1,2,4}) with the three
switch allocator architectures, using a separable input-first VC
allocator and pessimistic speculation as in Section 5.3.3, and asserts:

* zero-load latency is allocator-independent;
* input- and output-first separable allocators perform nearly
  identically at network level (despite the Figure 12 quality gap);
* the wavefront's saturation-throughput advantage over sep_if is small
  on the mesh and grows with VC count on the flattened butterfly
  (paper: >20% at 2x2x4).
"""

import pytest

from conftest import (
    SIM_DRAIN_CYCLES,
    SIM_JOBS,
    SIM_MEASURE_CYCLES,
    SIM_WARMUP_CYCLES,
    run_once,
    save_result,
)
from repro.eval.design_points import ALL_POINTS
from repro.eval.netperf import latency_sweep
from repro.eval.tables import format_curves
from repro.netsim.simulator import SimulationConfig

ARCHS = ("sep_if", "sep_of", "wf")

# Sweep grids roughly matching each panel's x-axis in the paper.
RATE_GRID = {
    ("mesh", 1): (0.05, 0.15, 0.25, 0.32, 0.38),
    ("mesh", 2): (0.05, 0.15, 0.25, 0.35, 0.42),
    ("mesh", 4): (0.05, 0.15, 0.25, 0.35, 0.45),
    ("fbfly", 1): (0.05, 0.2, 0.35, 0.45, 0.55),
    ("fbfly", 2): (0.05, 0.2, 0.4, 0.55, 0.65),
    ("fbfly", 4): (0.05, 0.2, 0.4, 0.55, 0.68),
}


def _base(point, arch):
    return SimulationConfig(
        topology=point.topology,
        vcs_per_class=point.vcs_per_class,
        sw_alloc_arch=arch,
        vc_alloc_arch="sep_if",
        speculation="pessimistic",
        warmup_cycles=SIM_WARMUP_CYCLES,
        measure_cycles=SIM_MEASURE_CYCLES,
        drain_cycles=SIM_DRAIN_CYCLES,
    )


@pytest.mark.parametrize("point", ALL_POINTS, ids=lambda p: p.label)
def test_fig13_switch_allocator_network_performance(benchmark, point, sweep_cache):
    rates = RATE_GRID[(point.topology, point.vcs_per_class)]

    def sweep_all():
        return {
            arch: latency_sweep(
                _base(point, arch), rates, label=arch, stop_after_saturation=False,
                jobs=SIM_JOBS, cache=sweep_cache,
            )
            for arch in ARCHS
        }

    curves = run_once(benchmark, sweep_all)
    tag = point.label.replace(" ", "_").replace("(", "").replace(")", "")
    save_result(
        f"fig13_network_{tag}",
        format_curves(
            "inj rate",
            list(rates),
            {a: [p.latency for p in c.points] for a, c in curves.items()},
            title=f"Figure 13 panel: {point.label} (latency, cycles)",
        )
        + "\nsaturation rates: "
        + ", ".join(
            f"{a}={c.saturation_rate():.3f}" for a, c in curves.items()
        ),
    )

    # Zero-load latency is allocator-independent (within noise).
    z = [c.zero_load for c in curves.values()]
    assert max(z) < min(z) * 1.08

    sat = {a: c.saturation_rate() for a, c in curves.items()}
    # sep_if and sep_of are nearly identical at network level.
    assert abs(sat["sep_if"] - sat["sep_of"]) < 0.12 * max(sat["sep_if"], sat["sep_of"])
    # The wavefront never loses meaningfully.
    assert sat["wf"] > 0.92 * sat["sep_if"]

    if point.topology == "fbfly" and point.vcs_per_class == 4:
        # Paper: >20% advantage at 2x2x4; allow simulator noise.
        assert sat["wf"] > 1.10 * sat["sep_if"]


def test_fig13_wf_advantage_grows_with_vcs_on_fbfly(benchmark, sweep_cache):
    """Section 5.3.3: the wavefront's saturation advantage on the
    flattened butterfly grows from C=1 to C=4."""

    def collect():
        adv = {}
        for point in ALL_POINTS:
            if point.topology != "fbfly" or point.vcs_per_class == 2:
                continue
            rates = RATE_GRID[(point.topology, point.vcs_per_class)]
            sat = {}
            for arch in ("sep_if", "wf"):
                curve = latency_sweep(
                    _base(point, arch), rates, stop_after_saturation=False,
                    jobs=SIM_JOBS, cache=sweep_cache,
                )
                sat[arch] = curve.saturation_rate()
            adv[point.vcs_per_class] = sat["wf"] / sat["sep_if"]
        return adv

    adv = run_once(benchmark, collect)
    save_result(
        "fig13_wf_advantage",
        f"wf/sep_if saturation ratio on fbfly: C=1 -> {adv[1]:.3f}, "
        f"C=4 -> {adv[4]:.3f} (paper: ~1.04 and >1.20)",
    )
    assert adv[4] > adv[1]
