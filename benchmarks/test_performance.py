"""Performance microbenchmarks for the library itself.

Unlike the figure benchmarks (run once, assert shape), these use
pytest-benchmark's statistical timing to track the hot paths a
downstream user cares about: per-cycle allocator cost, network
simulation throughput, and netlist analysis speed.
"""

import numpy as np
import pytest

from repro.core import (
    MaximumSizeAllocator,
    SeparableInputFirstAllocator,
    SeparableOutputFirstAllocator,
    SwitchAllocator,
    WavefrontAllocator,
)
from repro.hw.netlist import Netlist
from repro.hw.sw_alloc_gates import build_switch_allocator_netlist
from repro.hw.timing import analyze_timing
from repro.netsim.simulator import SimulationConfig, build_network

ALLOCATORS = {
    "sep_if": SeparableInputFirstAllocator,
    "sep_of": SeparableOutputFirstAllocator,
    "wf": WavefrontAllocator,
    "maxsize": MaximumSizeAllocator,
}


@pytest.mark.parametrize("name", list(ALLOCATORS))
def test_perf_allocator_dense_requests(benchmark, name):
    """One allocation of a dense 16x16 request matrix."""
    alloc = ALLOCATORS[name](16, 16)
    rng = np.random.default_rng(0)
    reqs = [rng.random((16, 16)) < 0.5 for _ in range(64)]
    idx = iter(range(10**9))

    def run():
        return alloc.allocate(reqs[next(idx) % 64])

    benchmark(run)


@pytest.mark.parametrize("name", ["sep_if", "wf"])
def test_perf_allocator_sparse_requests(benchmark, name):
    """One allocation of a large-but-sparse matrix (the network
    simulator's regime; the wavefront's sort-by-diagonal fast path)."""
    alloc = ALLOCATORS[name](160, 160)
    rng = np.random.default_rng(1)
    reqs = []
    for _ in range(64):
        mat = np.zeros((160, 160), dtype=bool)
        for i in rng.integers(0, 160, size=12):
            mat[i, rng.integers(0, 160)] = True
        reqs.append(mat)
    idx = iter(range(10**9))

    def run():
        return alloc.allocate(reqs[next(idx) % 64])

    benchmark(run)


def test_perf_switch_allocation_cycle(benchmark):
    """A loaded P=10, V=4 switch allocation (per-router-cycle cost)."""
    alloc = SwitchAllocator(10, 4, "sep_if")
    alloc.check_requests = False
    rng = np.random.default_rng(2)
    reqs = [
        [
            [int(rng.integers(10)) if rng.random() < 0.4 else None for _ in range(4)]
            for _ in range(10)
        ]
        for _ in range(32)
    ]
    idx = iter(range(10**9))
    benchmark(lambda: alloc.allocate(reqs[next(idx) % 32]))


@pytest.mark.parametrize("topology", ["mesh", "fbfly", "torus"])
def test_perf_simulation_cycles(benchmark, topology):
    """Wall time of 100 network cycles at moderate load."""
    cfg = SimulationConfig(
        topology=topology, vcs_per_class=2, injection_rate=0.2
    )
    net = build_network(cfg)
    net.run(200)  # warm the network into steady state

    benchmark.pedantic(lambda: net.run(100), rounds=3, iterations=1)


def test_perf_static_timing(benchmark):
    """Timing analysis of a ~17k-gate switch allocator netlist."""
    nl = build_switch_allocator_netlist(10, 8, "sep_if", "rr", "pessimistic")

    benchmark(lambda: analyze_timing(nl))
