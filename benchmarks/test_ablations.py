"""Ablation benchmarks for design choices the paper discusses in
passing (DESIGN.md section 6).

* **iSLIP iterations** (Section 2.1: "multiple iterations can be
  performed to improve matching quality ... tight delay constraints
  typically render this undesirable"): how many iterations does a
  separable allocator need to close the gap to the wavefront?
* **Wavefront priority rotation** (Section 2.2: weak fairness via
  rotating diagonal): fixing the diagonal starves requesters.
* **Gate sizing** (Section 4.3.1: synthesis compensates delay with
  larger gates): delay/area before vs after timing recovery.
* **Matrix vs round-robin fairness**: grant-share skew under asymmetric
  load.
"""

import numpy as np
import pytest

from conftest import run_once, save_result
from repro.core import (
    IterativeSLIPAllocator,
    MatrixArbiter,
    RoundRobinArbiter,
    SeparableInputFirstAllocator,
    WavefrontAllocator,
    matching_size,
)
from repro.eval.tables import format_table
from repro.hw.netlist import Netlist
from repro.hw.sw_alloc_gates import build_switch_allocator_netlist
from repro.hw.timing import analyze_timing
from repro.hw.area import total_area
from repro.hw.sizing import recover_timing


def test_ablation_islip_iterations(benchmark):
    """One extra iteration recovers most of the wavefront's matching
    advantage -- but would double allocation delay, which is the
    paper's argument for single-pass allocators."""

    def collect():
        rng = np.random.default_rng(3)
        n = 10
        wf = WavefrontAllocator(n, n)
        slips = {k: IterativeSLIPAllocator(n, n, iterations=k) for k in (1, 2, 3, 4)}
        totals = {k: 0 for k in slips}
        totals["wf"] = 0
        for _ in range(2000):
            req = rng.random((n, n)) < 0.5
            totals["wf"] += matching_size(wf.allocate(req))
            for k, alloc in slips.items():
                totals[k] += matching_size(alloc.allocate(req))
        return {k: v / totals["wf"] for k, v in totals.items() if k != "wf"}

    ratios = run_once(benchmark, collect)
    save_result(
        "ablation_islip",
        format_table(
            ["iterations", "grants vs wavefront"],
            [[k, f"{v:.3f}"] for k, v in sorted(ratios.items())],
            title="iSLIP iterations vs wavefront matching (10x10, p=0.5)",
        ),
    )
    assert ratios[1] < ratios[2] <= ratios[3] + 1e-6
    # One iteration leaves a visible gap; three close it almost fully.
    assert ratios[1] < 0.97
    assert ratios[3] > 0.99


def test_ablation_wavefront_rotation_fairness(benchmark):
    """With a fixed priority diagonal, cells on the favored diagonal win
    every cycle and others starve; rotation equalizes grant shares."""

    def collect():
        n = 4
        req = np.ones((n, n), dtype=bool)
        shares = {}
        for rotate in (True, False):
            wf = WavefrontAllocator(n, n, rotate_priority=rotate)
            wins = np.zeros((n, n))
            for _ in range(400):
                wins += wf.allocate(req)
            shares[rotate] = wins.max() / wins.sum()
        return shares

    shares = run_once(benchmark, collect)
    save_result(
        "ablation_wf_rotation",
        f"max cell grant share, full load 4x4: rotating={shares[True]:.3f}, "
        f"fixed={shares[False]:.3f} (uniform would be {1/16:.3f})",
    )
    # Fixed diagonal: 4 cells take everything (share 1/4 each).
    assert shares[False] == pytest.approx(0.25)
    # Rotation spreads grants near-uniformly.
    assert shares[True] < 0.10


def test_ablation_gate_sizing(benchmark):
    """Timing recovery trades area for delay, reproducing the mechanism
    behind the paper's 'faster -- and therefore, larger -- gates'."""

    def collect():
        nl = build_switch_allocator_netlist(10, 4, "sep_if", "rr", "nonspec")
        before_delay = analyze_timing(nl).delay_ps
        before_area = total_area(nl)
        recover_timing(nl, max_iterations=10)
        after_delay = analyze_timing(nl).delay_ps
        after_area = total_area(nl)
        return before_delay, before_area, after_delay, after_area

    bd, ba, ad, aa = run_once(benchmark, collect)
    save_result(
        "ablation_sizing",
        f"switch allocator P=10 V=4 sep_if/rr: unsized {bd/1000:.2f} ns / "
        f"{ba:.0f} um2 -> sized {ad/1000:.2f} ns / {aa:.0f} um2",
    )
    assert ad <= bd
    assert aa >= ba


def test_ablation_arbiter_fairness(benchmark):
    """Matrix (LRS) arbitration equalizes service exactly under full
    load; round-robin is also fair there, but under *asymmetric* load
    the matrix arbiter tracks least-recently-served more closely."""

    def collect():
        rng = np.random.default_rng(11)
        n = 4
        # Input 0 requests every cycle; inputs 1..3 request half the time.
        out = {}
        for name, arb in (("rr", RoundRobinArbiter(n)), ("m", MatrixArbiter(n))):
            wins = [0] * n
            for _ in range(4000):
                reqs = [True] + (rng.random(3) < 0.5).tolist()
                w = arb.arbitrate(reqs)
                if w is not None:
                    wins[w] += 1
            total = sum(wins)
            out[name] = [w / total for w in wins]
        return out

    shares = run_once(benchmark, collect)
    save_result(
        "ablation_arbiter_fairness",
        format_table(
            ["arbiter"] + [f"input {i}" for i in range(4)],
            [[k] + [f"{x:.3f}" for x in v] for k, v in shares.items()],
            title="Grant shares, input 0 persistent, others p=0.5",
        ),
    )
    # The persistent requester gets the largest share under both
    # policies, but neither allows starvation of the others.
    for policy in ("rr", "m"):
        assert shares[policy][0] == max(shares[policy])
        assert min(shares[policy]) > 0.1


def test_ablation_wavefront_implementations(benchmark):
    """Section 2.2's implementation note: the rotation-based loop-free
    wavefront (Hurt et al. [9]) is far smaller than the replicated-array
    version but slower at the paper's design sizes -- which is why the
    paper synthesizes the replicated variant."""
    from repro.hw.alloc_gates import (
        build_wavefront_matrix,
        build_wavefront_matrix_rotated,
    )

    def collect():
        rows = []
        for n in (10, 20, 40):
            stats = {}
            for name, builder in (
                ("replicated", build_wavefront_matrix),
                ("rotated", build_wavefront_matrix_rotated),
            ):
                nl = Netlist()
                req = [nl.inputs(n) for _ in range(n)]
                for row in builder(nl, req):
                    for x in row:
                        nl.mark_output(x)
                stats[name] = (analyze_timing(nl).delay_ps / 1000, total_area(nl))
            rows.append(
                [
                    n,
                    f"{stats['replicated'][0]:.2f}",
                    f"{stats['replicated'][1]:,.0f}",
                    f"{stats['rotated'][0]:.2f}",
                    f"{stats['rotated'][1]:,.0f}",
                ]
            )
        return rows

    rows = run_once(benchmark, collect)
    save_result(
        "ablation_wavefront_impl",
        format_table(
            ["n", "replicated delay (ns)", "replicated area",
             "rotated delay (ns)", "rotated area"],
            rows,
            title="Loop-free wavefront implementations (Section 2.2)",
        ),
    )
    # Rotated: much smaller, but slower -- at every size measured.
    for row in rows:
        assert float(row[3]) > float(row[1])  # delay
        assert float(row[4].replace(",", "")) < 0.5 * float(row[2].replace(",", ""))


def test_ablation_buffer_depth(benchmark):
    """Sensitivity to the fixed 8-flit-per-VC buffers of Section 3.2:
    deeper buffers raise saturation throughput with diminishing
    returns (the credit round-trip must be covered)."""
    from repro.eval.netperf import latency_sweep
    from repro.netsim.simulator import SimulationConfig

    def collect():
        rates = (0.1, 0.2, 0.3, 0.38, 0.45)
        sats = {}
        for depth in (2, 4, 8, 16):
            base = SimulationConfig(
                topology="mesh",
                vcs_per_class=1,
                buffer_depth=depth,
                warmup_cycles=400,
                measure_cycles=1200,
                drain_cycles=1200,
            )
            curve = latency_sweep(base, rates, stop_after_saturation=False)
            sats[depth] = curve.saturation_rate()
        return sats

    sats = run_once(benchmark, collect)
    save_result(
        "ablation_buffer_depth",
        format_table(
            ["flits per VC", "saturation (flits/cycle)"],
            [[d, f"{s:.3f}"] for d, s in sorted(sats.items())],
            title="Mesh 2x1x1 saturation vs input buffer depth",
        ),
    )
    # Monotone non-decreasing, with diminishing returns beyond 8.
    assert sats[2] <= sats[4] + 0.02 <= sats[8] + 0.04
    gain_4_to_8 = sats[8] - sats[4]
    gain_8_to_16 = sats[16] - sats[8]
    assert gain_8_to_16 <= gain_4_to_8 + 0.03
