#!/usr/bin/env python
"""Demonstrate the sweep engine's parallel speedup and cache hit rate.

Runs a 12-point fig13-style latency sweep (mesh 2x1x1, sep_if switch
allocator, pessimistic speculation) three ways and reports wall time:

1. serial, cold cache;
2. ``--jobs N`` parallel, cold cache (expect ~min(N, cores)x speedup —
   each point is an independent cycle-accurate simulation);
3. serial again, warm cache (expect >= 90% of points served from cache
   in ~0 time).

All three produce bit-identical curves; the script asserts that.

Usage::

    PYTHONPATH=src python benchmarks/sweep_speedup.py [--jobs 4]
        [--cycles 600]
"""

import argparse
import os
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.eval.netperf import latency_sweep  # noqa: E402
from repro.eval.runner import ResultCache  # noqa: E402
from repro.netsim.simulator import SimulationConfig  # noqa: E402

RATES = [0.02, 0.05, 0.08, 0.11, 0.14, 0.17, 0.20, 0.23, 0.26, 0.29, 0.32, 0.35]


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--jobs", type=int, default=4)
    ap.add_argument("--cycles", type=int, default=600,
                    help="measurement cycles per point")
    args = ap.parse_args()

    base = SimulationConfig(
        topology="mesh", vcs_per_class=1, sw_alloc_arch="sep_if",
        vc_alloc_arch="sep_if", speculation="pessimistic",
        warmup_cycles=args.cycles // 3, measure_cycles=args.cycles,
        drain_cycles=args.cycles,
    )

    print(f"12-point fig13-style sweep, {os.cpu_count()} CPU(s) visible")

    t0 = time.perf_counter()
    serial = latency_sweep(base, RATES, stop_after_saturation=False, jobs=1)
    t_serial = time.perf_counter() - t0
    print(f"serial, no cache:      {t_serial:6.2f}s")

    with tempfile.TemporaryDirectory() as tmp:
        cache = ResultCache(Path(tmp) / "sweep_cache.json")
        t0 = time.perf_counter()
        parallel = latency_sweep(
            base, RATES, stop_after_saturation=False,
            jobs=args.jobs, cache=cache,
        )
        t_parallel = time.perf_counter() - t0
        print(f"--jobs {args.jobs}, cold cache: {t_parallel:6.2f}s  "
              f"({t_serial / t_parallel:4.2f}x vs serial)")

        cache2 = ResultCache(cache.path)  # fresh handle, cold counters
        t0 = time.perf_counter()
        cached = latency_sweep(
            base, RATES, stop_after_saturation=False,
            jobs=args.jobs, cache=cache2,
        )
        t_cached = time.perf_counter() - t0
        hit_rate = cache2.hits / max(cache2.hits + cache2.misses, 1)
        print(f"second invocation:     {t_cached:6.2f}s  "
              f"({cache2.hits}/{len(RATES)} points from cache, "
              f"{hit_rate:.0%} hit rate)")

    assert serial.points == parallel.points == cached.points, \
        "parallel/cached results diverged from serial"
    assert hit_rate >= 0.90, f"cache hit rate {hit_rate:.0%} < 90%"
    print("OK: identical curves; cache hit rate >= 90%")
    return 0


if __name__ == "__main__":
    sys.exit(main())
