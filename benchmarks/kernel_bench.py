#!/usr/bin/env python
"""Fast-kernel vs. reference-kernel throughput benchmark.

Thin wrapper over :mod:`repro.eval.kernel_bench` (the same engine backs
``repro bench``).  Emits ``BENCH_kernel.json`` in the current directory
unless ``--output`` says otherwise::

    PYTHONPATH=src python benchmarks/kernel_bench.py [--quick]
        [--output BENCH_kernel.json]

Gate a fresh report against a committed baseline with
``scripts/check_bench_regression.py``.
"""

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.eval.kernel_bench import (  # noqa: E402
    format_bench,
    run_kernel_bench,
    write_report,
)


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true",
                    help="short windows, mesh points only (CI smoke)")
    ap.add_argument("--output", default="BENCH_kernel.json",
                    help="report path (default: BENCH_kernel.json)")
    args = ap.parse_args()

    report = run_kernel_bench(quick=args.quick, progress=print)
    write_report(report, Path(args.output))
    print(format_bench(report))
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
