"""Figure 7: VC allocator matching quality vs requests/VC/cycle.

Regenerates all six panels and asserts the Section 4.3.2 findings:
quality identically 1 for the C=1 points and for the wavefront
everywhere; separable variants degrade with rate and with C; input-
first beats output-first; wavefront's high-load advantage reaches the
paper's reported 10-25% range on the largest configurations.
"""

import pytest

from conftest import NUM_SAMPLES, run_once, save_result
from repro.eval.design_points import ALL_POINTS
from repro.eval.matching import vc_matching_quality
from repro.eval.tables import format_curves

RATES = (0.1, 0.2, 0.4, 0.6, 0.8, 1.0)


@pytest.mark.parametrize("point", ALL_POINTS, ids=lambda p: p.label)
def test_fig07_vc_matching_quality(benchmark, point):
    curves = run_once(
        benchmark,
        lambda: vc_matching_quality(point, rates=RATES, num_samples=NUM_SAMPLES),
    )
    tag = point.label.replace(" ", "_").replace("(", "").replace(")", "")
    save_result(
        f"fig07_vc_quality_{tag}",
        format_curves(
            "req/VC/cycle",
            list(RATES),
            {k: c.quality for k, c in curves.items()},
            title=f"Figure 7 panel: {point.label}",
        ),
    )

    wf = curves["wf"]
    sep_if = curves["sep_if"]
    sep_of = curves["sep_of"]

    # Wavefront yields maximum matchings at every design point.
    assert all(q == pytest.approx(1.0) for q in wf.quality)

    if point.vcs_per_class == 1:
        # C=1: every allocator achieves quality 1 (Figure 7a/7d).
        for c in (sep_if, sep_of):
            assert all(q == pytest.approx(1.0) for q in c.quality)
    else:
        # Separable quality degrades with load ...
        assert sep_if.at(1.0) < sep_if.at(0.1)
        assert sep_of.at(1.0) < sep_of.at(0.1)
        # ... input-first stays ahead of output-first under load ...
        assert sep_if.at(1.0) >= sep_of.at(1.0) - 0.01
        # ... and the wavefront's high-load win is in the paper's range
        # (up to 20%/25% over sep_if/sep_of).
        assert 1.05 < wf.at(1.0) / sep_if.at(1.0) < 1.45
        assert 1.05 < wf.at(1.0) / sep_of.at(1.0) < 1.50


def test_fig07_degradation_grows_with_vcs_per_class(benchmark):
    def collect():
        out = {}
        for point in ALL_POINTS:
            if point.topology != "mesh":
                continue
            curves = vc_matching_quality(
                point, archs=("sep_if",), rates=(1.0,), num_samples=NUM_SAMPLES
            )
            out[point.vcs_per_class] = curves["sep_if"].at(1.0)
        return out

    q = run_once(benchmark, collect)
    assert q[1] > q[2] > q[4]
