"""Figures 10 & 11: switch allocator area/power vs delay.

Each variant curve carries three points: non-speculative, pessimistic
speculative, conventional speculative.  Asserts the Section 5.3.1
findings: sep_if offers the lowest delay and usually pareto-dominates;
wf is the most expensive; pessimistic speculation cuts delay vs the
conventional scheme (up to ~23%) and approaches the non-speculative
delay; speculation roughly doubles allocator area.
"""

import pytest

from conftest import run_once, save_result, cost_cache  # noqa: F401
from repro.eval.cost import speculation_delay_savings, switch_allocator_costs
from repro.eval.design_points import ALL_POINTS
from repro.eval.tables import format_cost_results


@pytest.mark.parametrize("point", ALL_POINTS, ids=lambda p: p.label)
def test_fig10_11_switch_allocator_cost(benchmark, cost_cache, point):
    results = run_once(
        benchmark, lambda: switch_allocator_costs(point, cache=cost_cache)
    )
    tag = point.label.replace(" ", "_").replace("(", "").replace(")", "")
    save_result(
        f"fig10_11_sw_cost_{tag}",
        format_cost_results(results, title=f"Figures 10/11 panel: {point.label}"),
    )

    ok = {(r.curve, r.variant): r for r in results if not r.failed}
    # Every switch allocator design point is synthesizable (P x P cores
    # are small compared to the VC allocators).
    assert len(ok) == len(results)

    # Separable input-first offers the lowest delay per speculation
    # scheme among the rr variants (Section 5.3.1).
    for scheme in ("nonspec", "pessimistic", "conventional"):
        d_if = ok[("sep_if/rr", scheme)].delay_ns
        d_of = ok[("sep_of/rr", scheme)].delay_ns
        assert d_if <= d_of * 1.02, (point.label, scheme)

    # The wavefront is the most expensive implementation in area.
    for scheme in ("nonspec", "pessimistic"):
        a_wf = ok[("wf/rr", scheme)].area_um2
        assert a_wf > ok[("sep_if/rr", scheme)].area_um2
        assert a_wf > ok[("sep_of/rr", scheme)].area_um2

    # Pessimistic < conventional delay for every variant; the paper's
    # maximum saving is 23%.
    savings = speculation_delay_savings(results)
    assert savings, "no (pessimistic, conventional) pairs synthesized"
    for curve, s in savings.items():
        assert 0.0 < s < 0.35, (curve, s)

    # Pessimistic approaches the non-speculative delay (within ~15%;
    # sep_of/rr at V=16 sits at 1.13x once the dead update-enable
    # logic is gone -- the old 1.12 bound was calibrated against cost
    # results cached before the DRC-driven netlist cleanups and only
    # held while those stale entries were being served).
    for curve in ("sep_if/rr", "sep_of/rr", "wf/rr"):
        pess = ok[(curve, "pessimistic")].delay_ns
        nonspec = ok[(curve, "nonspec")].delay_ns
        assert pess <= nonspec * 1.15, curve

    # Speculation roughly doubles area (two allocator cores + masking).
    for curve in ("sep_if/rr", "wf/rr"):
        ratio = ok[(curve, "pessimistic")].area_um2 / ok[(curve, "nonspec")].area_um2
        assert 1.5 < ratio < 3.0, curve


def test_fig10_pessimistic_savings_peak(benchmark, cost_cache):
    """The largest pessimistic-vs-conventional delay saving across all
    points lands in the paper's reported neighborhood (up to 23%)."""

    def collect():
        best = 0.0
        for point in ALL_POINTS:
            results = switch_allocator_costs(point, cache=cost_cache)
            for s in speculation_delay_savings(results).values():
                best = max(best, s)
        return best

    best = run_once(benchmark, collect)
    save_result(
        "fig10_peak_speculation_saving",
        f"peak pessimistic-vs-conventional delay saving: {best:.1%} "
        "(paper: up to 23%)",
    )
    assert 0.10 < best < 0.35
