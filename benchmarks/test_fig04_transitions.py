"""Figure 4: VC transition matrix for the flattened butterfly, 2x2x4 VCs.

Regenerates the legal-transition matrix and checks the numbers the
paper calls out: 96 of 256 transitions legal, at most 8 successors/
predecessors per VC, all transitions confined to the message-class
quadrants.
"""

import numpy as np

from conftest import run_once, save_result
from repro.core import VCPartition
from repro.eval.tables import format_table


def _render(part):
    mat = part.transition_matrix()
    V = part.num_vcs
    rows = []
    for vin in range(V):
        m, r, c = part.vc_fields(vin)
        marks = "".join("o" if mat[vin, vout] else "." for vout in range(V))
        rows.append([vin, f"m{m}/r{r}/c{c}", marks])
    header = format_table(
        ["in VC", "class", "legal output VCs (o)"],
        rows,
        title=f"Figure 4: VC transition matrix, fbfly {part.describe()}",
    )
    return header + f"\nlegal transitions: {part.num_legal_transitions()} / {V * V}"


def test_fig04_transition_matrix(benchmark):
    part = VCPartition.fbfly(4)

    text = run_once(benchmark, lambda: _render(part))
    save_result("fig04_transitions", text)

    mat = part.transition_matrix()
    # Headline numbers from Section 4.2.
    assert part.num_legal_transitions() == 96
    assert mat.sum(axis=1).max() == 8
    assert mat.sum(axis=0).max() == 8
    # Quadrant confinement (message classes never mix).
    assert not mat[:8, 8:].any() and not mat[8:, :8].any()
    # Within a message class: non-minimal rows reach both halves,
    # minimal rows only the minimal half.
    assert np.array_equal(mat[0, :8], np.ones(8, dtype=bool))
    assert np.array_equal(mat[4, :8], np.r_[np.zeros(4, bool), np.ones(4, bool)])
