"""Figure 12: switch allocator matching quality vs requests/VC/cycle.

Asserts the Section 5.3.2 shapes: near-maximum matchings at low load
for all three allocators; the wavefront dips then *recovers* at high
load on VC-rich configurations; output-first tracks the wavefront from
below; input-first flattens out lowest because it forwards only one
request per input port.
"""

import pytest

from conftest import NUM_SAMPLES, run_once, save_result
from repro.eval.design_points import ALL_POINTS
from repro.eval.matching import switch_matching_quality
from repro.eval.tables import format_curves

RATES = (0.05, 0.1, 0.2, 0.4, 0.6, 0.8, 1.0)


@pytest.mark.parametrize("point", ALL_POINTS, ids=lambda p: p.label)
def test_fig12_switch_matching_quality(benchmark, point):
    curves = run_once(
        benchmark,
        lambda: switch_matching_quality(point, rates=RATES, num_samples=NUM_SAMPLES),
    )
    tag = point.label.replace(" ", "_").replace("(", "").replace(")", "")
    save_result(
        f"fig12_sw_quality_{tag}",
        format_curves(
            "req/VC/cycle",
            list(RATES),
            {k: c.quality for k, c in curves.items()},
            title=f"Figure 12 panel: {point.label}",
        ),
    )

    wf = curves["wf"]
    sep_if = curves["sep_if"]
    sep_of = curves["sep_of"]

    # Near-maximum matchings at low load, for every allocator.  (At
    # V=16 even a 0.05 per-VC rate is ~0.8 requests per *port*, so the
    # low-load quality sits slightly below 1, as in the paper's panels.)
    low_bar = 0.95 if point.num_vcs < 16 else 0.90
    for c in (wf, sep_if, sep_of):
        assert c.at(0.05) > low_bar

    # Wavefront dominates (or matches) the separable variants under
    # high load at every design point.
    assert wf.at(1.0) >= sep_of.at(1.0) - 0.01
    assert wf.at(1.0) >= sep_if.at(1.0) - 0.01

    if point.num_vcs >= 8:
        # Dip-then-recover: quality at full load exceeds the mid-load
        # trough (Section 5.3.2's "starts to increase again").
        trough = min(wf.quality)
        assert wf.at(1.0) > trough + 0.02
        assert wf.at(1.0) > 0.9
        # Input-first flattens below output-first at high load.
        assert sep_if.at(1.0) < sep_of.at(1.0)


def test_fig12_quality_gap_grows_with_radix(benchmark):
    """The wf-over-sep_if advantage is larger on the higher-radix
    flattened butterfly than on the mesh (same V per class)."""

    def collect():
        gaps = {}
        for point in ALL_POINTS:
            if point.vcs_per_class != 4:
                continue
            curves = switch_matching_quality(
                point, rates=(1.0,), num_samples=NUM_SAMPLES
            )
            gaps[point.topology] = (
                curves["wf"].at(1.0) - curves["sep_if"].at(1.0)
            )
        return gaps

    gaps = run_once(benchmark, collect)
    assert gaps["fbfly"] > gaps["mesh"] - 0.02
