"""Extension experiments beyond the paper (DESIGN.md section 6).

* **Rotated wavefront rescue**: the Hurt et al. implementation makes the
  two flattened-butterfly wavefront VC allocators that failed synthesis
  in the paper feasible -- but their delay still loses badly to the
  separable input-first allocator, independently confirming the paper's
  recommendation for high-VC design points.
* **Lookahead routing**: quantifies the pipeline-stage saving that the
  paper's router assumes (Section 3.2, [Galles 1997]).
* **Torus with dateline VCs**: sparse VC allocation on the Section 4.2
  textbook example (4 totally ordered resource classes).
"""

import pytest

from conftest import (
    SIM_DRAIN_CYCLES,
    SIM_MEASURE_CYCLES,
    SIM_WARMUP_CYCLES,
    run_once,
    save_result,
    cost_cache,  # noqa: F401
)
from repro.core import VCPartition
from repro.eval.tables import format_table
from repro.hw import SynthesisCapacityError, synthesize_vc_allocator
from repro.netsim.routing.torus import TorusDatelineRouting
from repro.netsim.simulator import SimulationConfig, run_simulation


def test_extension_rotated_wavefront_rescues_failed_points(benchmark):
    def collect():
        rows = []
        for C in (2, 4):
            part = VCPartition.fbfly(C)
            with pytest.raises(SynthesisCapacityError):
                synthesize_vc_allocator(10, part, "wf", "rr", True)
            rot = synthesize_vc_allocator(
                10, part, "wf", "rr", True, wavefront_impl="rotated"
            )
            sep = synthesize_vc_allocator(10, part, "sep_if", "rr", True)
            rows.append(
                [f"fbfly 2x2x{C}", f"{rot.delay_ns:.2f}", f"{rot.area_um2:,.0f}",
                 f"{sep.delay_ns:.2f}", f"{sep.area_um2:,.0f}"]
            )
        return rows

    rows = run_once(benchmark, collect)
    save_result(
        "extension_rotated_wf",
        format_table(
            ["point", "rotated wf delay (ns)", "rotated wf area",
             "sep_if/rr delay (ns)", "sep_if/rr area"],
            rows,
            title="Rotated wavefront rescues the paper's failed synthesis "
            "points -- and still loses on delay",
        ),
    )
    # Feasible now, but >2x slower than separable input-first: the
    # paper's architectural conclusion stands even with the better
    # wavefront implementation.
    for row in rows:
        assert float(row[1]) > 2.0 * float(row[3])


def test_extension_lookahead_routing(benchmark):
    def collect():
        out = {}
        for lookahead in (True, False):
            cfg = SimulationConfig(
                topology="mesh",
                vcs_per_class=1,
                injection_rate=0.05,
                lookahead=lookahead,
                warmup_cycles=SIM_WARMUP_CYCLES,
                measure_cycles=SIM_MEASURE_CYCLES,
                drain_cycles=SIM_DRAIN_CYCLES,
            )
            out[lookahead] = run_simulation(cfg).avg_latency
        return out

    lat = run_once(benchmark, collect)
    saving = 1 - lat[True] / lat[False]
    save_result(
        "extension_lookahead",
        f"mesh zero-load latency: lookahead {lat[True]:.1f} vs routing stage "
        f"{lat[False]:.1f} cycles ({saving:.0%} saved by lookahead routing)",
    )
    # One cycle per hop: ~15-30% of mesh zero-load latency.
    assert 0.10 < saving < 0.35


def test_extension_torus_dateline(benchmark):
    def collect():
        part = TorusDatelineRouting.partition(2)
        sparse = synthesize_vc_allocator(5, part, "sep_if", "rr", True)
        dense = synthesize_vc_allocator(5, part, "sep_if", "rr", False)
        cfg = SimulationConfig(
            topology="torus",
            vcs_per_class=1,
            injection_rate=0.2,
            warmup_cycles=SIM_WARMUP_CYCLES,
            measure_cycles=SIM_MEASURE_CYCLES,
            drain_cycles=SIM_DRAIN_CYCLES,
        )
        res = run_simulation(cfg)
        return part, sparse, dense, res

    part, sparse, dense, res = run_once(benchmark, collect)
    save_result(
        "extension_torus",
        f"torus dateline partition {part.describe()}: "
        f"{part.num_legal_transitions()}/{part.num_vcs ** 2} legal transitions; "
        f"sep_if/rr VC allocator dense {dense.delay_ns:.2f} ns / "
        f"{dense.area_um2:,.0f} um2 -> sparse {sparse.delay_ns:.2f} ns / "
        f"{sparse.area_um2:,.0f} um2; 8x8 torus at 0.2 flits/cycle: "
        f"{res.avg_latency:.1f} cycles avg latency",
    )
    # Sparse allocation exploits the dateline structure heavily.
    assert sparse.area_um2 < 0.6 * dense.area_um2
    assert not res.saturated
