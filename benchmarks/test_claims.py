"""Headline quantitative claims from the abstract and conclusions.

* Sparse VC allocation reduces the VC allocator's delay, area and power
  by up to 41%, 90% and 83% respectively (Sections 4.2/4.3.1).
* The pessimistic speculation mechanism reduces switch allocator delay
  by up to 23% vs the conventional implementation (Section 5.2/5.3.1).
* Network-level performance is largely insensitive to the VC allocator
  choice (Section 4.3.3).

Absolute percentages depend on the cell library; the assertions accept
a band around the paper's numbers (see EXPERIMENTS.md).
"""

from conftest import (
    SIM_DRAIN_CYCLES,
    SIM_MEASURE_CYCLES,
    SIM_WARMUP_CYCLES,
    run_once,
    save_result,
    cost_cache,  # noqa: F401
)
from repro.eval.cost import sparse_savings, vc_allocator_costs
from repro.eval.design_points import ALL_POINTS
from repro.eval.netperf import latency_sweep
from repro.eval.tables import format_table
from repro.netsim.simulator import SimulationConfig


def test_claim_sparse_vc_allocation_savings(benchmark, cost_cache):
    def collect():
        best = {"delay": 0.0, "area": 0.0, "power": 0.0}
        rows = []
        for point in ALL_POINTS:
            results = vc_allocator_costs(point, cache=cost_cache)
            for curve, s in sparse_savings(results).items():
                rows.append(
                    [point.label, curve, f"{s['delay']:.1%}",
                     f"{s['area']:.1%}", f"{s['power']:.1%}"]
                )
                for k in best:
                    best[k] = max(best[k], s[k])
        return best, rows

    best, rows = run_once(benchmark, collect)
    save_result(
        "claims_sparse_vc",
        format_table(
            ["design point", "variant", "delay saved", "area saved", "power saved"],
            rows,
            title="Sparse VC allocation savings (paper: up to 41% / 90% / 83%)",
        )
        + f"\nmax: delay {best['delay']:.1%}, area {best['area']:.1%}, "
        f"power {best['power']:.1%}",
    )
    # Paper: up to 41% / 90% / 83%.  Same order of magnitude required.
    assert 0.25 < best["delay"] < 0.60
    assert 0.55 < best["area"] < 0.95
    assert 0.50 < best["power"] < 0.95


def test_claim_vc_allocator_choice_does_not_matter_at_network_level(benchmark):
    """Section 4.3.3: zero-load latency and saturation bandwidth are
    virtually unchanged across VC allocator architectures."""
    rates = (0.05, 0.2, 0.35, 0.45, 0.55)

    def collect():
        curves = {}
        for arch in ("sep_if", "sep_of", "wf"):
            base = SimulationConfig(
                topology="fbfly",
                vcs_per_class=2,
                vc_alloc_arch=arch,
                sw_alloc_arch="sep_if",
                speculation="pessimistic",
                warmup_cycles=SIM_WARMUP_CYCLES,
                measure_cycles=SIM_MEASURE_CYCLES,
                drain_cycles=SIM_DRAIN_CYCLES,
            )
            curves[arch] = latency_sweep(base, rates, stop_after_saturation=False)
        return curves

    curves = run_once(benchmark, collect)
    zs = {a: c.zero_load for a, c in curves.items()}
    sats = {a: c.saturation_rate() for a, c in curves.items()}
    save_result(
        "claims_vc_alloc_insensitive",
        "VC allocator choice, fbfly 2x2x2: zero-load "
        + ", ".join(f"{a}={z:.1f}" for a, z in zs.items())
        + " | saturation "
        + ", ".join(f"{a}={s:.3f}" for a, s in sats.items()),
    )
    assert max(zs.values()) < 1.05 * min(zs.values())
    assert max(sats.values()) < 1.10 * min(sats.values())
