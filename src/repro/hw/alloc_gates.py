"""Gate-level generic allocator netlists.

Matrix-in / matrix-out building blocks shared by the VC and switch
allocator netlists:

* :func:`build_separable_matrix` -- separable input-/output-first
  allocation over an ``m x n`` request-net matrix (Figure 1);
* :func:`build_wavefront_matrix` -- the loop-free replicated wavefront
  array of Section 2.2 / Figure 2: one unrolled ``n x n`` tile array per
  possible priority diagonal plus a one-hot output multiplexer, which is
  what gives the synthesized wavefront its cubic area growth.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from .arbiter_gates import build_arbiter
from .logic import fanout_tree, onehot_mux, or_reduce
from .netlist import Netlist
from .trace import WavefrontTrace, WfTileTrace, active_trace

__all__ = [
    "build_separable_matrix",
    "build_wavefront_matrix",
    "build_wavefront_matrix_rotated",
    "wavefront_gate_estimate",
    "rotated_wavefront_gate_estimate",
    "separable_gate_estimate",
]

NetMatrix = List[List[int]]


def build_separable_matrix(
    nl: Netlist,
    requests: NetMatrix,
    input_first: bool,
    arbiter: str = "rr",
    col_tree_groups: Optional[int] = None,
) -> NetMatrix:
    """Separable allocator over a request-net matrix; returns grant nets.

    Priority updates in each stage are gated on end-to-end success
    (an OR over the row/column of final grants), mirroring the
    behavioural models.
    """
    m = len(requests)
    n = len(requests[0]) if m else 0
    finishers: List[Callable[[Optional[int]], None]] = []

    if input_first:
        # Stage 1: row arbiters pick a single bid per requester.
        bids: NetMatrix = []
        row_fins = []
        for i in range(m):
            g, fin = build_arbiter(nl, arbiter, requests[i])
            bids.append(g)
            row_fins.append(fin)
        # Stage 2: column arbiters resolve the forwarded bids.
        grants: NetMatrix = [[0] * n for _ in range(m)]
        for j in range(n):
            col = [bids[i][j] for i in range(m)]
            g, fin = build_arbiter(nl, arbiter, col, tree_groups=col_tree_groups)
            finishers.append(fin)
            for i in range(m):
                grants[i][j] = g[i]
        # Row arbiters advance only when their bid won downstream.
        for i in range(m):
            success = or_reduce(nl, grants[i])
            row_fins[i](success)
        for fin in finishers:
            fin(None)  # column grants are final
    else:
        # Stage 1: column arbiters offer each resource to one requester.
        offers: NetMatrix = [[0] * n for _ in range(m)]
        col_fins = []
        for j in range(n):
            col = [requests[i][j] for i in range(m)]
            g, fin = build_arbiter(nl, arbiter, col, tree_groups=col_tree_groups)
            col_fins.append(fin)
            for i in range(m):
                offers[i][j] = g[i]
        # Stage 2: row arbiters accept one of the offered resources.
        grants = []
        for i in range(m):
            g, fin = build_arbiter(nl, arbiter, offers[i])
            grants.append(g)
            finishers.append(fin)
        for j in range(n):
            success = or_reduce(nl, [grants[i][j] for i in range(m)])
            col_fins[j](success)
        for fin in finishers:
            fin(None)  # row grants are final
    return grants


def build_wavefront_matrix(nl: Netlist, requests: NetMatrix) -> NetMatrix:
    """Loop-free replicated wavefront allocator over a square net matrix.

    One unrolled tile-array copy per starting diagonal; the active copy
    is selected by a one-hot rotating diagonal pointer (DFF ring).  Tile
    logic per Figure 2: ``gnt = req AND x AND y``; the row/column
    availability tokens are killed downstream of a grant.
    """
    n = len(requests)
    if any(len(row) != n for row in requests):
        raise ValueError("wavefront request matrix must be square")
    if n == 1:
        return [[requests[0][0]]]

    # Rotating one-hot diagonal pointer: a DFF ring that advances only
    # when at least one request is present ("rotate after every
    # allocation" -- an empty matrix allocates nothing, so the priority
    # diagonal must hold; see WavefrontAllocator).  A non-empty matrix
    # always produces a grant, so enabling on the request OR is exactly
    # the grant-issued condition without putting the grant logic in
    # front of the state update.
    ptr = [nl.reg() for _ in range(n)]
    rotate_en = or_reduce(nl, [r for row in requests for r in row])
    en_leaves = fanout_tree(nl, rotate_en, n)
    for d in range(n):
        nl.connect_reg(
            ptr[d], nl.gate("MUX2", ptr[d], ptr[(d - 1) % n], en_leaves[d])
        )

    trace = active_trace()
    record = None
    if trace is not None:
        record = WavefrontTrace(
            n=n,
            request_nets=[list(row) for row in requests],
            ptr_regs=list(ptr),
            rotate_en=rotate_en,
        )
        trace.wavefronts.append(record)

    # Requests fan out to every copy through buffer trees.
    req_leaves = [[fanout_tree(nl, requests[i][j], n) for j in range(n)] for i in range(n)]
    # Copy-select signals drive up to n^2 AND gates each.
    sel_leaves = [fanout_tree(nl, ptr[d], n * n) for d in range(n)]

    copy_grants: List[NetMatrix] = []
    for d in range(n):
        # x_token[i]: availability token walking along row i, in wave
        # order; y_token[j]: along column j.
        x_token: List[Optional[int]] = [None] * n
        y_token: List[Optional[int]] = [None] * n
        gnt_d: NetMatrix = [[0] * n for _ in range(n)]
        tiles: List[WfTileTrace] = []
        for k in range(n):
            diag = (d + k) % n
            for i in range(n):
                j = (diag - i) % n
                req = req_leaves[i][j][d]
                x = x_token[i]
                y = y_token[j]
                if x is None and y is None:
                    gnt = req
                elif x is None:
                    gnt = nl.gate("AND2", req, y)
                elif y is None:
                    gnt = nl.gate("AND2", req, x)
                else:
                    gnt = nl.gate("AND3", req, x, y)
                gnt_d[i][j] = gnt
                tile = (
                    WfTileTrace(i=i, j=j, k=k, req_leaf=req, gnt=gnt,
                                x_in=x, y_in=y)
                    if record is not None
                    else None
                )
                if k < n - 1:  # tokens past the last diagonal are unused
                    ngnt = nl.gate("INV", gnt)
                    x_token[i] = ngnt if x is None else nl.gate("AND2", x, ngnt)
                    y_token[j] = ngnt if y is None else nl.gate("AND2", y, ngnt)
                    if tile is not None:
                        tile.x_out = x_token[i]
                        tile.y_out = y_token[j]
                if tile is not None:
                    tiles.append(tile)
        copy_grants.append(gnt_d)
        if record is not None:
            record.copies.append(tiles)
            record.copy_grant_nets.append([list(row) for row in gnt_d])

    # One-hot select of the active copy's grant matrix.
    grants: NetMatrix = [[0] * n for _ in range(n)]
    for i in range(n):
        for j in range(n):
            sels = [sel_leaves[d][i * n + j] for d in range(n)]
            data = [copy_grants[d][i][j] for d in range(n)]
            grants[i][j] = onehot_mux(nl, sels, data)
    if record is not None:
        record.grant_nets = [list(row) for row in grants]
    return grants


def build_wavefront_matrix_rotated(nl: Netlist, requests: NetMatrix) -> NetMatrix:
    """Rotation-based loop-free wavefront allocator (Hurt et al. [9]).

    The more area-efficient alternative the paper mentions in Section
    2.2: instead of replicating the tile array per priority diagonal,
    the request matrix is barrel-rotated so the active diagonal lands on
    the main diagonal, a *single* fixed-priority array allocates, and
    the grants are rotated back.  Costs ``2 n^2 log2(n)`` muxes plus one
    ``n x n`` array instead of ``n`` arrays -- but the two barrel
    shifters sit on the critical path, which is why the paper found the
    replicated version faster at its design sizes (see the
    ``ablation_wavefront_impl`` benchmark).

    Functionally identical to :func:`build_wavefront_matrix`: rotating
    rows up by the diagonal index ``d`` maps the cells with
    ``(i + j) mod n == d`` onto the main anti-diagonal, preserving rows
    and columns, so the greedy wave sweep grants exactly the same cells.
    """
    n = len(requests)
    if any(len(row) != n for row in requests):
        raise ValueError("wavefront request matrix must be square")
    if n == 1:
        return [[requests[0][0]]]

    # Binary diagonal counter: log2-ceil(n) bits, incremented mod n each
    # cycle (ripple increment + wrap detect).
    bits = max(1, (n - 1).bit_length())
    cnt = [nl.reg() for _ in range(bits)]
    # increment: sum = cnt + 1
    inc = []
    carry = None
    for b in range(bits):
        if carry is None:
            inc.append(nl.gate("INV", cnt[b]))
            carry = cnt[b]
        else:
            inc.append(nl.gate("XOR2", cnt[b], carry))
            carry = nl.gate("AND2", cnt[b], carry)
    if n & (n - 1) == 0:
        nxt = inc
    else:
        # Wrap to zero when the incremented value reaches n:
        # wrap = AND(eq_terms), realized as NOT(OR(NOT term)).
        eq_terms = []
        for b in range(bits):
            bit = (n >> b) & 1
            eq_terms.append(inc[b] if bit else nl.gate("INV", inc[b]))
        nwrap = or_reduce(nl, [nl.gate("INV", t) for t in eq_terms])
        nxt = [nl.gate("AND2", inc[b], nwrap) for b in range(bits)]
    # Hold the counter on request-less cycles (same rotate-on-allocation
    # rule as the replicated array's pointer ring).
    rotate_en = or_reduce(nl, [r for row in requests for r in row])
    en_leaves = fanout_tree(nl, rotate_en, bits)
    for b in range(bits):
        nl.connect_reg(cnt[b], nl.gate("MUX2", cnt[b], nxt[b], en_leaves[b]))

    def barrel_rotate(matrix: NetMatrix, up: bool) -> NetMatrix:
        """Rotate rows by the counter (up=True: row i <- row i+d)."""
        cur = matrix
        for b in range(bits):
            shift = (1 << b) % n
            sel_leaf = fanout_tree(nl, cnt[b], n * n)
            nxt_m: NetMatrix = [[0] * n for _ in range(n)]
            for i in range(n):
                src = (i + shift) % n if up else (i - shift) % n
                for j in range(n):
                    nxt_m[i][j] = nl.gate(
                        "MUX2", cur[i][j], cur[src][j], sel_leaf[i * n + j]
                    )
            cur = nxt_m
        return cur

    rotated = barrel_rotate(requests, up=True)

    # Single fixed-priority array: priority injected at the main
    # anti-diagonal (cells with (i + j) mod n == 0 see free tokens).
    x_token = [None] * n
    y_token = [None] * n
    gnt_rot: NetMatrix = [[0] * n for _ in range(n)]
    for k in range(n):
        for i in range(n):
            j = (k - i) % n
            req = rotated[i][j]
            x = x_token[i]
            y = y_token[j]
            if x is None and y is None:
                gnt = req
            elif x is None:
                gnt = nl.gate("AND2", req, y)
            elif y is None:
                gnt = nl.gate("AND2", req, x)
            else:
                gnt = nl.gate("AND3", req, x, y)
            gnt_rot[i][j] = gnt
            if k < n - 1:
                ngnt = nl.gate("INV", gnt)
                x_token[i] = ngnt if x is None else nl.gate("AND2", x, ngnt)
                y_token[j] = ngnt if y is None else nl.gate("AND2", y, ngnt)

    return barrel_rotate(gnt_rot, up=False)


def rotated_wavefront_gate_estimate(n: int) -> int:
    """Gate estimate for the rotation-based wavefront."""
    if n <= 1:
        return 1
    bits = max(1, (n - 1).bit_length())
    shifters = 2 * n * n * bits
    array = 4 * n * n
    # Rotate-enable: request OR tree plus one hold mux per counter bit.
    enable = n * n // 3 + bits
    return shifters + array + 4 * bits + enable


def wavefront_gate_estimate(n: int) -> int:
    """Gate-count estimate for the replicated wavefront array.

    ~4 gates/tile across n copies of an n x n array, plus the output
    multiplexer (~4/3 gates per (copy, cell)) and fanout buffers.
    """
    if n <= 1:
        return 1
    tiles = 4 * n * n * n
    mux = int(n * n * (n + n / 3.0))
    buffers = int(n * n * (n / 3.0)) + int(n * (n * n / 3.0))
    # Rotate-enable: request OR tree plus one hold mux per ring stage.
    enable = n * n // 3 + n
    return tiles + mux + buffers + enable


def separable_gate_estimate(
    m: int,
    n: int,
    arbiter: str,
    row_width: Optional[int] = None,
    col_width: Optional[int] = None,
    col_tree_groups: Optional[int] = None,
) -> int:
    """Gate-count estimate for a separable matrix allocator."""
    from .arbiter_gates import arbiter_gate_estimate

    rw = row_width if row_width is not None else n
    cw = col_width if col_width is not None else m
    rows = m * arbiter_gate_estimate(arbiter, rw)
    cols = n * arbiter_gate_estimate(arbiter, cw, tree_groups=col_tree_groups)
    glue = 2 * m * n
    return rows + cols + glue
