"""Critical-path gate sizing (synthesis timing recovery).

Design Compiler meets a delay target by, among other things, swapping
cells for higher-drive variants along the critical path.  The paper
relies on this effect to explain why the large wavefront allocators get
*both* slow and big ("synthesis tries to compensate ... by using faster
-- and therefore, larger -- gates").  This pass reproduces the
mechanism: it repeatedly upsizes gates on the current critical path,
which reduces their own stage effort while increasing the load on their
drivers, until no improvement remains or the drive-strength ceiling is
reached.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from .cells import CELL_INDEX, MAX_SIZE
from .netlist import Netlist
from .timing import analyze_timing

__all__ = ["SizingResult", "recover_timing"]

_DFF = CELL_INDEX["DFF"]


@dataclass
class SizingResult:
    """Outcome of :func:`recover_timing`."""

    initial_delay_ps: float
    final_delay_ps: float
    iterations: int
    gates_resized: int

    @property
    def improvement(self) -> float:
        """Fractional delay reduction achieved."""
        if self.initial_delay_ps == 0:
            return 0.0
        return 1.0 - self.final_delay_ps / self.initial_delay_ps


def recover_timing(
    nl: Netlist,
    max_iterations: int = 6,
    upsize_factor: float = 1.6,
    min_improvement: float = 0.005,
) -> SizingResult:
    """Iteratively upsize critical-path gates in place.

    Each round resizes every combinational gate on the current critical
    path (registers keep unit drive) by ``upsize_factor`` up to
    ``MAX_SIZE``, then re-times.  Stops early when a round improves the
    critical path by less than ``min_improvement`` or nothing can grow.
    """
    report = analyze_timing(nl)
    initial = report.delay_ps
    best = initial
    # Sizing state of the best netlist seen so far.  Upsizing a
    # critical-path gate also raises the input load it presents to its
    # drivers, so a round can make the overall path *slower*; such a
    # round must be rolled back, not just excluded from the report,
    # or the caller's netlist ends up worse than it started.
    best_sizes = list(nl.sizes)
    resized = 0
    it = 0
    kinds = nl.kinds
    sizes = nl.sizes
    for it in range(1, max_iterations + 1):
        round_resized = 0
        for net in report.critical_path:
            k = kinds[net]
            if k < 0 or k == _DFF:
                continue
            if sizes[net] < MAX_SIZE:
                sizes[net] = min(sizes[net] * upsize_factor, MAX_SIZE)
                round_resized += 1
        if not round_resized:
            break
        report = analyze_timing(nl)
        if report.delay_ps < best:
            resized += round_resized
            improvement = 1.0 - report.delay_ps / best
            best = report.delay_ps
            best_sizes = list(sizes)
            if improvement < min_improvement:
                break
        else:
            # The round regressed (or went sideways): restore the best
            # sizing and stop searching.
            sizes[:] = best_sizes
            break
    return SizingResult(initial, best, it, resized)
