"""Standard-cell library for the gate-level cost model.

Stands in for the commercial 45 nm low-power library the paper
synthesizes against (worst-case corner: 0.9 V, 125 C).  Each cell
carries the parameters the rest of ``repro.hw`` needs:

* ``logical_effort`` / ``parasitic`` -- the logical-effort delay model
  ``d = tau * (p + g * h)`` with ``h = C_load / C_in``;
* ``input_cap_ff`` -- input pin capacitance of a unit-sized cell;
* ``area_um2`` -- unit-size cell area;
* ``leakage_nw`` -- unit-size leakage power at the worst-case corner.

Values are modelled on openly published 45 nm educational libraries
(NanGate-class), derated for a low-power process at the slow corner via
``TAU_PS``.  Absolute numbers are indicative; the reproduction targets
orderings and scaling trends (see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

__all__ = [
    "Cell",
    "CELLS",
    "CELL_INDEX",
    "cell_by_name",
    "TAU_PS",
    "VDD",
    "WIRE_CAP_FF",
    "MAX_SIZE",
]

# Delay unit of the logical-effort model, picoseconds.  FO4 = 5*tau.
# 75 ps FO4 is representative of a 45 nm LP process at 0.9 V / 125 C.
TAU_PS = 15.0

# Supply voltage (V) for dynamic power.
VDD = 0.9

# Wire load added per fanout connection (fF); crude but keeps high-
# fanout nets honest.
WIRE_CAP_FF = 0.35

# Maximum drive-strength multiplier the sizing pass may apply.
MAX_SIZE = 16.0


@dataclass(frozen=True)
class Cell:
    """One combinational or sequential standard cell."""

    name: str
    num_inputs: int
    logical_effort: float  # g
    parasitic: float  # p, in units of tau
    input_cap_ff: float  # unit-size input capacitance
    area_um2: float  # unit-size area
    leakage_nw: float  # unit-size leakage
    sequential: bool = False


# NanGate-45-class parameters.  Logical efforts follow Sutherland et al.
# ("Logical Effort"); areas/caps/leakage are representative unit-drive
# values.
CELLS: Tuple[Cell, ...] = (
    Cell("INV", 1, 1.00, 1.0, 1.2, 0.80, 8.0),
    Cell("BUF", 1, 1.00, 2.0, 1.2, 1.06, 10.0),
    Cell("NAND2", 2, 4 / 3, 2.0, 1.3, 1.06, 11.0),
    Cell("NOR2", 2, 5 / 3, 2.0, 1.4, 1.06, 12.0),
    Cell("AND2", 2, 4 / 3, 3.0, 1.3, 1.33, 13.0),
    Cell("AND3", 3, 5 / 3, 3.6, 1.4, 1.60, 16.0),
    Cell("AND4", 4, 2.00, 4.2, 1.5, 1.86, 19.0),
    Cell("OR2", 2, 5 / 3, 3.0, 1.4, 1.33, 14.0),
    Cell("OR3", 3, 7 / 3, 3.6, 1.5, 1.60, 17.0),
    Cell("OR4", 4, 3.00, 4.2, 1.6, 1.86, 20.0),
    Cell("XOR2", 2, 4.00, 4.0, 1.8, 1.86, 22.0),
    Cell("MUX2", 3, 2.00, 4.0, 1.5, 2.13, 21.0),  # inputs: (d0, d1, sel)
    # DFF: parasitic models clk-to-q; input cap is the D pin.
    Cell("DFF", 1, 1.00, 6.0, 1.3, 4.25, 45.0, sequential=True),
)

CELL_INDEX: Dict[str, int] = {c.name: i for i, c in enumerate(CELLS)}


def cell_by_name(name: str) -> Cell:
    """Look up a cell; raises ``KeyError`` with the known names listed."""
    try:
        return CELLS[CELL_INDEX[name]]
    except KeyError:
        raise KeyError(
            f"unknown cell {name!r}; known cells: {sorted(CELL_INDEX)}"
        ) from None
