"""Gate-level arbiter netlists.

Structural implementations of the arbiters from Section 2.1, matching
the behavioural models in :mod:`repro.core.arbiters` at the architecture
level:

* fixed-priority: parallel-prefix OR network, log depth;
* round-robin (``rr``): dual fixed-priority arbiters (masked by a
  one-hot rotating pointer held in DFFs, and unmasked) with a per-bit
  mux -- the classical structure;
* matrix (``m``): n(n-1)/2 priority-state flip-flops with shallow grant
  logic after an OR reduction -- fast but quadratic state, the
  cost/fairness tradeoff the paper measures;
* tree: a stage of group arbiters in parallel with a top-level arbiter
  (only meaningful for round-robin; matrix arbiters are flat n^2
  structures in this model, which is what makes the ``m`` variants of
  the largest design points fail synthesis, cf. Section 4.3.1).

Builders are *two-phase*: they return ``(grants, finish)`` where
``finish(update_enable)`` emits the priority-state update logic.  The
split exists because separable allocators gate priority updates on
*downstream* success (grants computed later in the netlist), and gates
may only reference already-created nets.
"""

from __future__ import annotations

import math
from typing import Callable, List, Optional, Sequence, Tuple

from .logic import (
    fanout_tree,
    fixed_priority_grants,
    or_reduce,
    rotating_mask_update,
)
from .netlist import Netlist
from .trace import ArbiterTrace, TreeTrace, active_trace

__all__ = [
    "ArbiterNets",
    "build_fixed_priority",
    "build_round_robin",
    "build_matrix",
    "build_tree_rr",
    "build_arbiter",
    "arbiter_gate_estimate",
    "is_stateless",
]

# (grant nets, finish(update_enable_net_or_None) -> None)
ArbiterNets = Tuple[List[int], Callable[[Optional[int]], None]]


def _no_state(_enable: Optional[int]) -> None:
    return None


def is_stateless(finish: Callable[[Optional[int]], None]) -> bool:
    """True when ``finish`` came from an arbiter with no priority state.

    Fixed-priority and single-request arbiters ignore their update
    enable entirely; callers that build an update-enable net (e.g. a
    downstream-success OR tree) can skip the logic when nobody consumes
    it -- otherwise the tree is dead on arrival and the netlist DRC
    rightly flags it.
    """
    return finish is _no_state


def build_fixed_priority(nl: Netlist, requests: Sequence[int]) -> ArbiterNets:
    """Static-priority arbiter; stateless, so ``finish`` is a no-op."""
    grants = fixed_priority_grants(nl, requests)
    trace = active_trace()
    if trace is not None and len(requests) > 1:
        trace.arbiters.append(
            ArbiterTrace(
                kind="fixed",
                request_nets=list(requests),
                grant_nets=list(grants),
                finished=True,
            )
        )
    return grants, _no_state


def build_round_robin(nl: Netlist, requests: Sequence[int]) -> ArbiterNets:
    """Round-robin arbiter with a registered thermometer mask.

    The priority mask (1 for indices at/after the pointer) is stored
    directly in DFFs rather than decoded from a one-hot pointer, keeping
    the critical path to mask-AND, one prefix network and the final
    mask-select mux -- the standard fast implementation.
    """
    n = len(requests)
    if n == 1:
        return [requests[0]], _no_state

    mask = [nl.reg() for _ in range(n)]
    masked = [nl.gate("AND2", requests[i], mask[i]) for i in range(n)]

    gnt_masked = fixed_priority_grants(nl, masked)
    gnt_unmasked = fixed_priority_grants(nl, requests)
    any_masked = fanout_tree(nl, or_reduce(nl, masked), n)
    grants = [
        nl.gate("MUX2", gnt_unmasked[i], gnt_masked[i], any_masked[i])
        for i in range(n)
    ]

    trace = active_trace()
    record = None
    if trace is not None:
        record = ArbiterTrace(
            kind="rr",
            request_nets=list(requests),
            grant_nets=list(grants),
            state_regs=list(mask),
        )
        trace.arbiters.append(record)

    def finish(update_enable: Optional[int]) -> None:
        # On a successful grant to i the new mask is 1 strictly after i
        # (the winner becomes lowest priority): mask'[j] = prefix(gnt)[j-1].
        any_grant = or_reduce(nl, grants)
        upd = (
            nl.gate("AND2", any_grant, update_enable)
            if update_enable is not None
            else any_grant
        )
        rotating_mask_update(nl, mask, grants, upd)
        if record is not None:
            record.update_enable = update_enable
            record.finished = True

    return grants, finish


def build_matrix(nl: Netlist, requests: Sequence[int]) -> ArbiterNets:
    """Matrix (least-recently-served) arbiter.

    Stores the strict upper triangle of the priority matrix in DFFs and
    derives the lower triangle by inversion.
    """
    n = len(requests)
    if n == 1:
        return [requests[0]], _no_state

    w_reg = {}
    beats: List[List[Optional[int]]] = [[None] * n for _ in range(n)]
    for i in range(n):
        for j in range(i + 1, n):
            q = nl.reg()
            w_reg[(i, j)] = q
            beats[i][j] = q
            beats[j][i] = nl.gate("INV", q)

    grants: List[int] = []
    deny_nets: List[Optional[int]] = []
    deny_terms: List[List[Tuple[int, int, int]]] = []
    for i in range(n):
        row_terms: List[Tuple[int, int, int]] = []
        terms: List[int] = []
        for j in range(n):
            if j == i:
                continue
            term = nl.gate("AND2", requests[j], beats[j][i])  # type: ignore[arg-type]
            terms.append(term)
            row_terms.append((j, term, beats[j][i]))  # type: ignore[arg-type]
        deny = or_reduce(nl, terms)
        deny_nets.append(deny)
        deny_terms.append(row_terms)
        grants.append(nl.gate("AND2", requests[i], nl.gate("INV", deny)))

    trace = active_trace()
    record = None
    if trace is not None:
        record = ArbiterTrace(
            kind="matrix",
            request_nets=list(requests),
            grant_nets=list(grants),
            state_regs=[w_reg[p] for p in sorted(w_reg)],
            pairs=sorted(w_reg),
            deny_nets=deny_nets,
            deny_terms=deny_terms,
        )
        trace.arbiters.append(record)

    def finish(update_enable: Optional[int]) -> None:
        # Winner i loses priority to everyone:
        # w[i][j]' = (w[i][j] AND NOT gnt[i]) OR gnt[j].
        # Row i only consumes NOT gnt[i] at columns j > i and column j
        # only consumes gnt[j] at rows i < j, so each fanout tree is
        # sized to its actual sink count (a full-width tree leaves
        # floating buffers the DRC flags on wide arbiters).
        ngnt_leaves = [
            fanout_tree(nl, nl.gate("INV", g), n - 1 - i) if i < n - 1 else []
            for i, g in enumerate(grants)
        ]
        gnt_leaves = [
            fanout_tree(nl, g, j) if j else []
            for j, g in enumerate(grants)
        ]
        if update_enable is not None:
            upd_leaves = fanout_tree(nl, update_enable, len(w_reg))
        for idx, ((i, j), q) in enumerate(w_reg.items()):
            hold = nl.gate("AND2", q, ngnt_leaves[i][j - i - 1])
            nxt = nl.gate("OR2", hold, gnt_leaves[j][i])
            if update_enable is not None:
                nxt = nl.gate("MUX2", q, nxt, upd_leaves[idx])
            nl.connect_reg(q, nxt)
        if record is not None:
            record.update_enable = update_enable
            record.finished = True

    return grants, finish


def build_tree_rr(
    nl: Netlist, requests: Sequence[int], num_groups: int
) -> ArbiterNets:
    """Two-level round-robin tree arbiter (Section 4.1).

    A stage of per-group arbiters runs in parallel with a top-level
    arbiter across group-any signals; final grants AND the two levels.
    """
    n = len(requests)
    if n % num_groups:
        raise ValueError("group count must divide the request count")
    gs = n // num_groups

    finishers: List[Callable[[Optional[int]], None]] = []
    group_any: List[int] = []
    local_grants: List[List[int]] = []
    for g in range(num_groups):
        sub = list(requests[g * gs : (g + 1) * gs])
        group_any.append(or_reduce(nl, sub))
        lg, fin = build_round_robin(nl, sub)
        local_grants.append(lg)
        finishers.append(fin)
    top, top_fin = build_round_robin(nl, group_any)
    finishers.append(top_fin)

    grants: List[int] = []
    for g in range(num_groups):
        for k in range(gs):
            grants.append(nl.gate("AND2", local_grants[g][k], top[g]))

    trace = active_trace()
    if trace is not None:
        trace.trees.append(
            TreeTrace(
                group_request_nets=[
                    list(requests[g * gs : (g + 1) * gs])
                    for g in range(num_groups)
                ],
                group_any_nets=list(group_any),
                local_grant_nets=[list(lg) for lg in local_grants],
                top_grant_nets=list(top),
                grant_nets=list(grants),
            )
        )

    def finish(update_enable: Optional[int]) -> None:
        for fin in finishers:
            fin(update_enable)

    return grants, finish


def build_arbiter(
    nl: Netlist,
    kind: str,
    requests: Sequence[int],
    tree_groups: Optional[int] = None,
) -> ArbiterNets:
    """Dispatch on the paper's arbiter shorthand (``rr``/``m``/``fixed``).

    ``tree_groups`` requests a two-level tree decomposition for wide
    round-robin arbiters; matrix arbiters are always flat.
    """
    if kind == "fixed":
        return build_fixed_priority(nl, requests)
    if kind == "rr":
        if tree_groups and tree_groups > 1 and len(requests) > tree_groups:
            return build_tree_rr(nl, requests, tree_groups)
        return build_round_robin(nl, requests)
    if kind == "m":
        return build_matrix(nl, requests)
    raise ValueError(f"unknown arbiter kind {kind!r}")


def arbiter_gate_estimate(kind: str, n: int, tree_groups: Optional[int] = None) -> int:
    """Cheap gate-count estimate used by the synthesis capacity model."""
    if n <= 1:
        return 0
    if kind == "fixed":
        return int(n * math.log2(n)) + 2 * n
    if kind == "rr":
        if tree_groups and tree_groups > 1 and n > tree_groups:
            gs = n // tree_groups
            return (
                tree_groups * arbiter_gate_estimate("rr", gs)
                + arbiter_gate_estimate("rr", tree_groups)
                + 2 * n
            )
        # two prefix networks, two priority stages, muxes, pointer DFFs.
        return int(3 * n * math.log2(n)) + 8 * n
    if kind == "m":
        # n(n-1)/2 state DFFs plus ~4 gates per matrix entry.
        return int(2.5 * n * n) + 4 * n
    raise ValueError(f"unknown arbiter kind {kind!r}")
