"""Build-time structural traces for formal verification.

The gate builders in :mod:`repro.hw` flatten everything into one
anonymous sea of cells -- good for cost modelling, hopeless for
verification, which needs to know *which* nets are an arbiter's request
vector, grant vector and priority registers.  This module lets
:mod:`repro.verify` recover that structure without re-deriving it:
while a :func:`tracing` context is active, the builders append one
record per component instance describing the net ids of its interface.

A trace records net *locations* only (ids into the netlist), never
logic -- the verifier independently proves that the logic between those
nets matches the behavioural oracle, so a wrong trace can only cause a
spurious failure, never a spurious pass of wrong hardware.  Tracing is
off by default and adds zero work to untraced builds (one module-level
``None`` check per component).
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Tuple

__all__ = [
    "ArbiterTrace",
    "TreeTrace",
    "WfTileTrace",
    "WavefrontTrace",
    "PreselectTrace",
    "BuildTrace",
    "tracing",
    "active_trace",
]


@dataclass
class ArbiterTrace:
    """One flat arbiter instance (fixed / round-robin / matrix).

    ``state_regs`` are the priority registers in builder order: the
    rotating mask bits for ``rr`` (empty for stateless instances), the
    upper-triangle ``w[i][j]`` bits for ``matrix`` (``pairs[k]`` gives
    the ``(i, j)`` each register holds).  ``deny_nets``/``deny_terms``
    expose the matrix deny tree for structural checking at widths where
    an exhaustive sweep cannot reach: ``deny_terms[i]`` lists
    ``(j, term_net, beats_net)`` for each competing input ``j``.
    """

    kind: str  # "fixed" | "rr" | "matrix"
    request_nets: List[int]
    grant_nets: List[int] = field(default_factory=list)
    state_regs: List[int] = field(default_factory=list)
    pairs: List[Tuple[int, int]] = field(default_factory=list)
    update_enable: Optional[int] = None
    finished: bool = False
    deny_nets: List[Optional[int]] = field(default_factory=list)
    deny_terms: List[List[Tuple[int, int, int]]] = field(default_factory=list)
    role: str = ""


@dataclass
class TreeTrace:
    """A two-level tree round-robin arbiter; the leaf/top ``rr``
    instances are recorded separately as :class:`ArbiterTrace`."""

    group_request_nets: List[List[int]]
    group_any_nets: List[int]
    local_grant_nets: List[List[int]]
    top_grant_nets: List[int]
    grant_nets: List[int]
    role: str = ""


@dataclass
class WfTileTrace:
    """One wavefront cell evaluation in one priority copy: grant
    ``gnt = req & x_in & y_in`` and the consumed-token outputs."""

    i: int
    j: int
    k: int  # wave index within the copy
    req_leaf: int
    gnt: int
    x_in: Optional[int] = None  # None on the starting diagonal
    y_in: Optional[int] = None
    x_out: Optional[int] = None
    y_out: Optional[int] = None


@dataclass
class WavefrontTrace:
    """A rotating-priority wavefront block (``build_wavefront_matrix``).

    ``copies[d]`` lists the tile traces of the priority-``d`` copy;
    ``copy_grant_nets[d][i][j]`` is that copy's grant for cell (i, j)
    and ``grant_nets[i][j]`` the pointer-muxed final grant.
    """

    n: int
    request_nets: List[List[int]]
    ptr_regs: List[int]
    rotate_en: Optional[int] = None
    update_enable: Optional[int] = None
    copies: List[List[WfTileTrace]] = field(default_factory=list)
    copy_grant_nets: List[List[List[int]]] = field(default_factory=list)
    grant_nets: List[List[int]] = field(default_factory=list)
    role: str = ""


@dataclass
class PreselectTrace:
    """Per-input-port VC preselect of the ``wf`` switch-allocator core:
    a register-masked round-robin line over the port's V requests, plus
    the OR-of-AND reduction producing the port's VC grants."""

    port: int
    mask_regs: List[int]
    line_nets: List[List[int]]  # [q][v] request line into the select
    sel_nets: List[List[int]]  # [q][v] one-hot select out
    xbar_row: List[int] = field(default_factory=list)
    grants_v: List[int] = field(default_factory=list)
    update_enable: Optional[int] = None
    role: str = ""


@dataclass
class BuildTrace:
    """Everything recorded while one netlist was built under tracing."""

    arbiters: List[ArbiterTrace] = field(default_factory=list)
    trees: List[TreeTrace] = field(default_factory=list)
    wavefronts: List[WavefrontTrace] = field(default_factory=list)
    preselects: List[PreselectTrace] = field(default_factory=list)

    def remap(self, fn: Callable[[int], int]) -> "BuildTrace":
        """A copy with every recorded net id passed through ``fn``.

        Used by the mutation harness when a rebuild shifts net ids
        (e.g. inserting an inverter pair renumbers everything after the
        insertion point).
        """

        def m(x: Optional[int]) -> Optional[int]:
            return None if x is None else fn(x)

        out = BuildTrace()
        for a in self.arbiters:
            out.arbiters.append(
                ArbiterTrace(
                    kind=a.kind,
                    request_nets=[fn(x) for x in a.request_nets],
                    grant_nets=[fn(x) for x in a.grant_nets],
                    state_regs=[fn(x) for x in a.state_regs],
                    pairs=list(a.pairs),
                    update_enable=m(a.update_enable),
                    finished=a.finished,
                    deny_nets=[m(x) for x in a.deny_nets],
                    deny_terms=[
                        [(j, fn(t), fn(b)) for j, t, b in terms]
                        for terms in a.deny_terms
                    ],
                    role=a.role,
                )
            )
        for t in self.trees:
            out.trees.append(
                TreeTrace(
                    group_request_nets=[
                        [fn(x) for x in g] for g in t.group_request_nets
                    ],
                    group_any_nets=[fn(x) for x in t.group_any_nets],
                    local_grant_nets=[
                        [fn(x) for x in g] for g in t.local_grant_nets
                    ],
                    top_grant_nets=[fn(x) for x in t.top_grant_nets],
                    grant_nets=[fn(x) for x in t.grant_nets],
                    role=t.role,
                )
            )
        for w in self.wavefronts:
            out.wavefronts.append(
                WavefrontTrace(
                    n=w.n,
                    request_nets=[[fn(x) for x in row] for row in w.request_nets],
                    ptr_regs=[fn(x) for x in w.ptr_regs],
                    rotate_en=m(w.rotate_en),
                    update_enable=m(w.update_enable),
                    copies=[
                        [
                            WfTileTrace(
                                i=t.i, j=t.j, k=t.k,
                                req_leaf=fn(t.req_leaf),
                                gnt=fn(t.gnt),
                                x_in=m(t.x_in), y_in=m(t.y_in),
                                x_out=m(t.x_out), y_out=m(t.y_out),
                            )
                            for t in copy
                        ]
                        for copy in w.copies
                    ],
                    copy_grant_nets=[
                        [[fn(x) for x in row] for row in copy]
                        for copy in w.copy_grant_nets
                    ],
                    grant_nets=[[fn(x) for x in row] for row in w.grant_nets],
                    role=w.role,
                )
            )
        for p in self.preselects:
            out.preselects.append(
                PreselectTrace(
                    port=p.port,
                    mask_regs=[fn(x) for x in p.mask_regs],
                    line_nets=[[fn(x) for x in row] for row in p.line_nets],
                    sel_nets=[[fn(x) for x in row] for row in p.sel_nets],
                    xbar_row=[fn(x) for x in p.xbar_row],
                    grants_v=[fn(x) for x in p.grants_v],
                    update_enable=m(p.update_enable),
                    role=p.role,
                )
            )
        return out


#: The currently-active trace, if any.  Builders consult this through
#: :func:`active_trace`; everything else leaves it alone.
_ACTIVE: Optional[BuildTrace] = None


def active_trace() -> Optional[BuildTrace]:
    """The trace collecting records right now, or None."""
    return _ACTIVE


@contextmanager
def tracing() -> Iterator[BuildTrace]:
    """Collect build traces for every netlist built inside the block."""
    global _ACTIVE
    prev = _ACTIVE
    trace = BuildTrace()
    _ACTIVE = trace
    try:
        yield trace
    finally:
        _ACTIVE = prev
