"""Generic combinational building blocks for allocator netlists.

All builders append gates to an existing :class:`~repro.hw.netlist.Netlist`
and return net ids.  They implement the structures the paper's RTL
generator would emit: balanced reduction trees (log depth), parallel-
prefix OR networks (for priority logic), one-hot multiplexers, and
explicit fanout buffer trees for nets that drive many sinks (standing in
for the buffering synthesis would insert).
"""

from __future__ import annotations

from typing import List, Sequence

from .cells import CELL_INDEX
from .netlist import Netlist

__all__ = [
    "reduce_tree",
    "or_reduce",
    "and_reduce",
    "prefix_or",
    "fixed_priority_grants",
    "onehot_mux",
    "fanout_tree",
    "rotate_left",
]

_IX_AND = [None, None, CELL_INDEX["AND2"], CELL_INDEX["AND3"], CELL_INDEX["AND4"]]
_IX_OR = [None, None, CELL_INDEX["OR2"], CELL_INDEX["OR3"], CELL_INDEX["OR4"]]
_IX_BUF = CELL_INDEX["BUF"]
_IX_INV = CELL_INDEX["INV"]
_IX_OR2 = CELL_INDEX["OR2"]
_IX_AND2 = CELL_INDEX["AND2"]


def reduce_tree(nl: Netlist, op: str, nets: Sequence[int]) -> int:
    """Balanced reduction of ``nets`` with 2-4 input ``AND``/``OR`` cells.

    Depth is logarithmic in ``len(nets)`` -- the property that lets
    separable allocators scale to high radix (Section 2.1).
    """
    table = _IX_AND if op == "AND" else _IX_OR if op == "OR" else None
    if table is None:
        raise ValueError(f"op must be 'AND' or 'OR', got {op!r}")
    if not nets:
        raise ValueError("cannot reduce zero nets")
    level = list(nets)
    while len(level) > 1:
        nxt: List[int] = []
        i = 0
        n = len(level)
        while i < n:
            take = min(4, n - i)
            if take == 1:
                nxt.append(level[i])
            else:
                nxt.append(nl.gate_ix(table[take], level[i : i + take]))
            i += take
        level = nxt
    return level[0]


def or_reduce(nl: Netlist, nets: Sequence[int]) -> int:
    return reduce_tree(nl, "OR", nets)


def and_reduce(nl: Netlist, nets: Sequence[int]) -> int:
    return reduce_tree(nl, "AND", nets)


def prefix_or(nl: Netlist, nets: Sequence[int]) -> List[int]:
    """Inclusive parallel-prefix OR (Kogge-Stone): out[i] = OR(nets[0..i]).

    Log depth, ``n log n`` OR2 cells -- the priority network inside
    fixed-priority arbiters.
    """
    pre = list(nets)
    n = len(pre)
    dist = 1
    while dist < n:
        nxt = list(pre)
        for i in range(dist, n):
            if pre[i] == pre[i - dist]:
                continue  # OR(x, x) = x; sparse class-shared request
                # lines feed the same net to several arbiter inputs and
                # synthesis folds the cell away -- so we never build it.
            nxt[i] = nl.gate_ix(_IX_OR2, (pre[i], pre[i - dist]))
        pre = nxt
        dist *= 2
    return pre


def fixed_priority_grants(nl: Netlist, requests: Sequence[int]) -> List[int]:
    """Grant vector of a static-priority arbiter: lowest index wins.

    ``gnt[i] = req[i] AND NOT OR(req[0..i-1])`` via a prefix network.
    Only prefixes up to ``n-2`` are consumed, so the network spans
    ``requests[:-1]`` -- the full-width tail would be dead logic (the
    netlist DRC's ``DRC-FLOATING``/``DRC-DEAD`` rules flag it).
    """
    n = len(requests)
    if n == 1:
        return [requests[0]]
    pre = prefix_or(nl, requests[:-1])
    grants = [requests[0]]
    for i in range(1, n):
        blocked = nl.gate_ix(_IX_INV, (pre[i - 1],))
        grants.append(nl.gate_ix(_IX_AND2, (requests[i], blocked)))
    return grants


def rotating_mask_update(
    nl: Netlist, mask: Sequence[int], grants: Sequence[int], update: int
) -> None:
    """Connect a registered thermometer mask's next-state logic.

    The shared rotate-past-the-winner template of round-robin arbiters
    and the wavefront VC pre-selection: on ``update`` the new mask is 1
    strictly after the granted index (``mask'[i] = prefix(gnt)[i-1]``),
    otherwise the mask holds.  Bit 0's next value is constant 0, so it
    gets ``NOR(update, NOT mask[0])`` instead of a constant-input mux:
    same function, nothing for constant propagation to clean up, and
    still a single gate stage on the late-arriving ``update`` path (the
    inverter sits on the register output, valid from the cycle start).
    """
    n = len(mask)
    upd_leaf = fanout_tree(nl, update, n)
    pre = prefix_or(nl, grants[:-1])
    nmask0 = nl.gate_ix(_IX_INV, (mask[0],))
    nl.connect_reg(mask[0], nl.gate("NOR2", upd_leaf[0], nmask0))
    for i in range(1, n):
        nl.connect_reg(
            mask[i], nl.gate("MUX2", mask[i], pre[i - 1], upd_leaf[i])
        )


def onehot_mux(nl: Netlist, selects: Sequence[int], data: Sequence[int]) -> int:
    """One-hot multiplexer: OR over AND(select_i, data_i)."""
    if len(selects) != len(data):
        raise ValueError("selects and data must have equal length")
    if len(selects) == 1:
        return nl.gate_ix(_IX_AND2, (selects[0], data[0]))
    terms = [nl.gate_ix(_IX_AND2, (s, d)) for s, d in zip(selects, data)]
    return or_reduce(nl, terms)


def fanout_tree(nl: Netlist, net: int, count: int, branch: int = 4) -> List[int]:
    """Buffer tree distributing ``net`` to ``count`` sinks.

    Returns ``count`` leaf nets, each intended to drive at most a
    handful of loads.  Models the buffering synthesis inserts on
    high-fanout nets (e.g. requests broadcast to every replicated
    wavefront array copy).
    """
    if count < 1:
        raise ValueError("count must be >= 1")
    if count <= branch:
        return [net] * count
    # Number of first-level buffers.
    groups = (count + branch - 1) // branch
    parents = fanout_tree(nl, net, groups, branch)
    leaves: List[int] = []
    remaining = count
    for parent in parents:
        take = min(branch, remaining)
        buf = nl.gate_ix(_IX_BUF, (parent,))
        leaves.extend([buf] * take)
        remaining -= take
        if remaining == 0:
            break
    return leaves


def rotate_left(nets: Sequence[int], amount: int) -> List[int]:
    """Cyclic rotation of a net vector (pure wiring, no gates)."""
    n = len(nets)
    amount %= n
    return list(nets[amount:]) + list(nets[:amount])
