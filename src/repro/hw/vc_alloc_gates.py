"""Gate-level VC allocator netlists (Figure 3) with sparse optimization.

Builds complete VC allocators for a router with ``P`` ports and a
:class:`~repro.core.vc_partition.VCPartition` describing the VC space.
With ``sparse=True`` the static restrictions of Section 4.2 are applied:

* the allocator splits into ``M`` independent per-message-class slices
  (for the wavefront: ``M`` smaller arrays);
* separable arbiter widths shrink from ``V`` / ``P*V`` to the successor/
  predecessor class counts times ``C``;
* requests select whole classes rather than individual VCs (one request
  line per candidate class, fanned out to the ``C`` per-VC arbiter
  inputs by wiring).

The resource-class restriction deliberately does **not** shrink the
wavefront arrays (the paper notes it "does not apply to the wavefront-
based implementation" except in special cases); illegal cells are tied
to constant-0 requests but their tiles remain, exactly like the RTL.

Runtime inputs per input VC: a request line per candidate class (sparse)
or per candidate output VC (dense), plus a one-hot destination-port
vector.  Outputs: the V-wide granted-VC vector per input VC.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..core.vc_partition import VCPartition
from .alloc_gates import (
    build_wavefront_matrix,
    build_wavefront_matrix_rotated,
    rotated_wavefront_gate_estimate,
    separable_gate_estimate,
    wavefront_gate_estimate,
)
from .arbiter_gates import arbiter_gate_estimate, build_arbiter, is_stateless
from .logic import or_reduce
from .netlist import Netlist

#: req[p][v]: candidate output VC -> request net; dest[p][v]: P-wide
#: one-hot destination vector (see ``_build_inputs``).
ReqNets = List[List[Dict[int, int]]]
DestNets = List[List[List[int]]]

__all__ = ["build_vc_allocator_netlist", "estimate_vc_allocator_gates"]


class _VCStructure:
    """Static candidate structure shared by all the builders."""

    def __init__(
        self, num_ports: int, partition: VCPartition, sparse: bool
    ) -> None:
        self.P = num_ports
        self.part = partition
        self.V = partition.num_vcs
        self.sparse = sparse
        # candidate output VCs per input VC class index (same for every port)
        if sparse:
            self.candidates = [
                partition.candidate_vcs(v) for v in range(self.V)
            ]
        else:
            self.candidates = [list(range(self.V)) for _ in range(self.V)]
        # requesters (input VC class indices) that may target output VC u
        self.requesters: List[List[int]] = [[] for _ in range(self.V)]
        for v in range(self.V):
            for u in self.candidates[v]:
                self.requesters[u].append(v)


def _build_inputs(nl: Netlist, s: _VCStructure) -> Tuple[list, list]:
    """Create request/destination input nets for every input VC.

    Returns ``(req, dest)`` where ``req[p][v]`` maps candidate output VC
    -> request net (class-shared lines under sparse operation) and
    ``dest[p][v]`` is the P-wide one-hot destination vector.
    """
    req: List[List[Dict[int, int]]] = []
    dest: List[List[List[int]]] = []
    part = s.part
    for p in range(s.P):
        req_p = []
        dest_p = []
        for v in range(s.V):
            lines: Dict[int, int] = {}
            if s.sparse:
                # One request line per candidate class, shared by its C VCs.
                m_in, r_in, _ = part.vc_fields(v)
                for r_out in part.successor_classes(r_in):
                    line = nl.input(f"req_p{p}v{v}_c{r_out}")
                    for u in part.class_vcs(m_in, r_out):
                        lines[u] = line
            else:
                for u in s.candidates[v]:
                    lines[u] = nl.input(f"req_p{p}v{v}_u{u}")
            req_p.append(lines)
            dest_p.append(nl.inputs(s.P, f"dest_p{p}v{v}_"))
        req.append(req_p)
        dest.append(dest_p)
    return req, dest


def _mark_grant_outputs(nl: Netlist, grants: List[List[int]]) -> None:
    for i, vec in enumerate(grants):
        for u, net in enumerate(vec):
            nl.mark_output(net, f"gnt_{i}_{u}")


def build_vc_allocator_netlist(
    num_ports: int,
    partition: VCPartition,
    arch: str = "sep_if",
    arbiter: str = "rr",
    sparse: bool = True,
    wavefront_impl: str = "replicated",
) -> Netlist:
    """Construct the full VC allocator netlist for one design point.

    ``wavefront_impl`` selects the loop-free wavefront realization:
    ``"replicated"`` (the paper's choice: one tile array per priority
    diagonal) or ``"rotated"`` (Hurt et al. [9]: barrel-rotate into a
    single array -- far smaller, somewhat slower; see the
    ``ablation_wavefront_impl`` benchmark).
    """
    if wavefront_impl not in ("replicated", "rotated"):
        raise ValueError(f"unknown wavefront implementation {wavefront_impl!r}")
    s = _VCStructure(num_ports, partition, sparse)
    suffix = f"_{wavefront_impl}" if arch == "wf" else ""
    nl = Netlist(
        f"vc_{arch}_{arbiter}_P{num_ports}_{partition.describe()}"
        f"_{'sparse' if sparse else 'dense'}{suffix}"
    )
    req, dest = _build_inputs(nl, s)
    if arch == "sep_if":
        grants = _build_sep_if(nl, s, req, dest, arbiter)
    elif arch == "sep_of":
        grants = _build_sep_of(nl, s, req, dest, arbiter)
    elif arch == "wf":
        grants = _build_wf(nl, s, req, dest, wavefront_impl)
    else:
        raise ValueError(f"unknown VC allocator arch {arch!r}")
    _mark_grant_outputs(nl, grants)
    nl.validate()
    return nl


# ----------------------------------------------------------------------
def _build_sep_if(
    nl: Netlist, s: _VCStructure, req: ReqNets, dest: DestNets, arbiter: str
) -> List[List[int]]:
    P, V = s.P, s.V

    # Stage 1: per input VC, arbitrate among candidate output VCs.
    sel: List[List[Dict[int, int]]] = []
    input_finishers = []
    for p in range(P):
        sel_p = []
        for v in range(V):
            cands = s.candidates[v]
            lines = [req[p][v][u] for u in cands]
            g, fin = build_arbiter(nl, arbiter, lines)
            sel_p.append(dict(zip(cands, g)))
            input_finishers.append(((p, v), fin))
        sel.append(sel_p)

    # Forward the selected bid to the destination port's output VC.
    # fwd[(q, u)] collects nets indexed by requester (p, v).
    fwd: Dict[Tuple[int, int], List[Tuple[int, int, int]]] = {}
    for p in range(P):
        for v in range(V):
            for u, g in sel[p][v].items():
                for q in range(P):
                    net = nl.gate("AND2", g, dest[p][v][q])
                    fwd.setdefault((q, u), []).append((p, v, net))

    # Stage 2: output-VC arbiters (tree-structured by input port for rr).
    grant_net: Dict[Tuple[int, int, int, int], int] = {}
    for (q, u), entries in fwd.items():
        entries.sort()  # group by input port for the tree decomposition
        lines = [net for (_, _, net) in entries]
        groups = P if arbiter == "rr" and len(lines) > P else None
        g, fin = build_arbiter(nl, arbiter, lines, tree_groups=groups)
        fin(None)  # output-stage grants are final
        for (p, v, _), gn in zip(entries, g):
            grant_net[(p, v, q, u)] = gn

    # Grant reduction: V-wide granted-VC vector per input VC.
    grants: List[List[int]] = []
    nets_by_pv: Dict[Tuple[int, int], List[int]] = {}
    for p in range(P):
        for v in range(V):
            vec = []
            all_nets = []
            for u in range(V):
                nets = [
                    grant_net[(p, v, q, u)]
                    for q in range(P)
                    if (p, v, q, u) in grant_net
                ]
                vec.append(or_reduce(nl, nets) if nets else nl.const(0))
                all_nets.extend(nets)
            grants.append(vec)
            nets_by_pv[(p, v)] = all_nets
    for (p, v), fin in input_finishers:
        if is_stateless(fin):
            # Width-1 (sparse C=1) and fixed-priority input arbiters
            # hold no state; building their downstream-success OR tree
            # would leave it dangling.
            continue
        nets = nets_by_pv[(p, v)]
        fin(or_reduce(nl, nets) if nets else None)
    return grants


def _build_sep_of(
    nl: Netlist, s: _VCStructure, req: ReqNets, dest: DestNets, arbiter: str
) -> List[List[int]]:
    P, V = s.P, s.V

    # Requests are forwarded eagerly to every candidate output VC.
    fwd: Dict[Tuple[int, int], List[Tuple[int, int, int]]] = {}
    for p in range(P):
        for v in range(V):
            for u, line in req[p][v].items():
                for q in range(P):
                    net = nl.gate("AND2", line, dest[p][v][q])
                    fwd.setdefault((q, u), []).append((p, v, net))

    # Stage 1: output-VC arbiters offer themselves to one requester.
    offer_net: Dict[Tuple[int, int, int, int], int] = {}
    output_finishers = []
    for (q, u), entries in fwd.items():
        entries.sort()
        lines = [net for (_, _, net) in entries]
        groups = P if arbiter == "rr" and len(lines) > P else None
        g, fin = build_arbiter(nl, arbiter, lines, tree_groups=groups)
        output_finishers.append(((q, u), fin))
        for (p, v, _), gn in zip(entries, g):
            offer_net[(p, v, q, u)] = gn

    # Stage 2: per input VC, reduce offers per candidate VC and accept one.
    grants: List[List[int]] = []
    accepted: Dict[Tuple[int, int], List[int]] = {}
    for p in range(P):
        for v in range(V):
            cands = s.candidates[v]
            back = []
            for u in cands:
                nets = [
                    offer_net[(p, v, q, u)]
                    for q in range(P)
                    if (p, v, q, u) in offer_net
                ]
                back.append(or_reduce(nl, nets) if nets else nl.const(0))
            g, fin = build_arbiter(nl, arbiter, back)
            fin(None)  # input-stage grants are final
            vec = [nl.const(0)] * V
            for u, gn in zip(cands, g):
                vec[u] = gn
            grants.append(vec)
            accepted[(p, v)] = vec

    # Output arbiters advance only when their offer was accepted:
    # success(q, u) = OR over requesters of (offer AND accepted VC).
    for (q, u), fin in output_finishers:
        if is_stateless(fin):
            continue  # no priority state -> no acceptance tree needed
        terms = []
        for key, net in offer_net.items():
            pp, vv, qq, uu = key
            if (qq, uu) == (q, u):
                terms.append(nl.gate("AND2", net, accepted[(pp, vv)][u]))
        fin(or_reduce(nl, terms) if terms else None)
    return grants


def _build_wf(
    nl: Netlist,
    s: _VCStructure,
    req: ReqNets,
    dest: DestNets,
    wavefront_impl: str = "replicated",
) -> List[List[int]]:
    P, V = s.P, s.V
    part = s.part
    zero = nl.const(0)

    # Forwarded request matrix over (input VC, output VC) flat indices.
    n = P * V
    fwd = [[zero] * n for _ in range(n)]
    for p in range(P):
        for v in range(V):
            for u, line in req[p][v].items():
                for q in range(P):
                    fwd[p * V + v][q * V + u] = nl.gate(
                        "AND2", line, dest[p][v][q]
                    )

    if s.sparse and part.num_message_classes > 1:
        # M independent per-message-class wavefront blocks.
        blocks = []
        for m in range(part.num_message_classes):
            rows = [
                p * V + vc
                for p in range(P)
                for r in range(part.num_resource_classes)
                for vc in part.class_vcs(m, r)
            ]
            blocks.append(rows)
    else:
        blocks = [list(range(n))]

    builder = (
        build_wavefront_matrix
        if wavefront_impl == "replicated"
        else build_wavefront_matrix_rotated
    )
    grant_flat = [[zero] * n for _ in range(n)]
    for rows in blocks:
        sub = [[fwd[i][j] for j in rows] for i in rows]
        sub_grants = builder(nl, sub)
        for a, i in enumerate(rows):
            for b, j in enumerate(rows):
                grant_flat[i][j] = sub_grants[a][b]

    # Grant reduction to a V-wide vector per input VC.
    grants: List[List[int]] = []
    for i in range(n):
        vec = []
        for u in range(V):
            nets = [
                grant_flat[i][q * V + u]
                for q in range(P)
                if grant_flat[i][q * V + u] != zero
            ]
            vec.append(or_reduce(nl, nets) if nets else zero)
        grants.append(vec)
    return grants


# ----------------------------------------------------------------------
def estimate_vc_allocator_gates(
    num_ports: int,
    partition: VCPartition,
    arch: str,
    arbiter: str = "rr",
    sparse: bool = True,
    wavefront_impl: str = "replicated",
) -> int:
    """Cheap gate-count estimate for the synthesis capacity model.

    Mirrors the builder structure without allocating a netlist, so the
    driver can reject infeasible design points instantly -- the model of
    Design Compiler running out of memory.
    """
    P = num_ports
    V = partition.num_vcs
    total = 0
    if arch == "wf":
        wf_est = (
            wavefront_gate_estimate
            if wavefront_impl == "replicated"
            else rotated_wavefront_gate_estimate
        )
        if sparse and partition.num_message_classes > 1:
            block = P * partition.num_resource_classes * partition.vcs_per_class
            total += partition.num_message_classes * wf_est(block)
        else:
            total += wf_est(P * V)
        # fwd AND stage + grant reduction
        total += P * V * V * P // (1 if not sparse else max(1, partition.num_resource_classes))
        return total

    if sparse:
        succ = partition.max_successors() * partition.vcs_per_class
        pred = partition.max_predecessors() * partition.vcs_per_class
    else:
        succ = pred = V
    in_width = succ
    out_width = P * pred
    groups = P if arbiter == "rr" and out_width > P else None
    total += P * V * arbiter_gate_estimate(arbiter, in_width)
    total += P * V * arbiter_gate_estimate(arbiter, out_width, tree_groups=groups)
    # fwd demux + grant reduction glue
    total += P * V * succ * P + 2 * P * V * V
    return total
