"""Synthesis driver: build, size, and characterize allocator netlists.

Stands in for the paper's Synopsys Design Compiler flow (Section 3.1):
for each design point we build the netlist, run the timing-recovery
sizing pass (minimum cycle time search), and report delay, cell area
and power at an input activity factor of 0.5.

A *capacity model* reproduces the synthesis failures the paper reports:
design points whose estimated or actual cell count exceeds
``max_cells`` raise :class:`SynthesisCapacityError`, mirroring Design
Compiler running out of memory on the un-optimized and large
wavefront/matrix configurations (Sections 4.3.1, 5.3.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..core.vc_partition import VCPartition
from .area import total_area
from .netlist import Netlist
from .power import analyze_power
from .sizing import recover_timing
from .sw_alloc_gates import (
    build_switch_allocator_netlist,
    estimate_switch_allocator_gates,
)
from .timing import analyze_timing
from .vc_alloc_gates import (
    build_vc_allocator_netlist,
    estimate_vc_allocator_gates,
)

__all__ = [
    "SynthesisCapacityError",
    "SynthesisReport",
    "DEFAULT_MAX_CELLS",
    "synthesize",
    "synthesize_vc_allocator",
    "synthesize_switch_allocator",
]

# Cell budget standing in for Design Compiler's memory limit.  Chosen so
# that the set of feasible design points matches the paper: the larger
# flattened-butterfly wavefront VC allocators and the matrix-arbiter
# variants of the largest configuration fail, round-robin separable
# variants succeed everywhere.
DEFAULT_MAX_CELLS = 500_000


class SynthesisCapacityError(RuntimeError):
    """Raised when a design point exceeds the synthesis capacity model."""

    def __init__(self, name: str, cells: int, budget: int) -> None:
        super().__init__(
            f"synthesis of {name} aborted: ~{cells} cells exceeds the "
            f"capacity budget of {budget} (models Design Compiler "
            "running out of memory)"
        )
        self.design = name
        self.cells = cells
        self.budget = budget


@dataclass
class SynthesisReport:
    """Post-synthesis characterization of one design point."""

    name: str
    delay_ns: float
    area_um2: float
    power_mw: float
    num_cells: int
    num_registers: int
    sizing_improvement: float = 0.0
    meta: Dict[str, object] = field(default_factory=dict)

    def as_row(self) -> str:
        return (
            f"{self.name:55s} {self.delay_ns:7.3f} ns {self.area_um2:12.1f} um2 "
            f"{self.power_mw:8.3f} mW {self.num_cells:8d} cells"
        )


def synthesize(
    nl: Netlist,
    size_iterations: int = 8,
    frequency_ghz: Optional[float] = None,
) -> SynthesisReport:
    """Characterize an already-built netlist (sizing + timing + power)."""
    sizing = recover_timing(nl, max_iterations=size_iterations)
    timing = analyze_timing(nl)
    power = analyze_power(nl, frequency_ghz=frequency_ghz)
    return SynthesisReport(
        name=nl.name,
        delay_ns=timing.delay_ns,
        area_um2=total_area(nl),
        power_mw=power.total_mw,
        num_cells=nl.num_gates,
        num_registers=nl.num_registers,
        sizing_improvement=sizing.improvement,
    )


def _check_budget(name: str, estimate: int, max_cells: int) -> None:
    if estimate > max_cells:
        raise SynthesisCapacityError(name, estimate, max_cells)


def synthesize_vc_allocator(
    num_ports: int,
    partition: VCPartition,
    arch: str = "sep_if",
    arbiter: str = "rr",
    sparse: bool = True,
    max_cells: int = DEFAULT_MAX_CELLS,
    size_iterations: int = 8,
    wavefront_impl: str = "replicated",
) -> SynthesisReport:
    """Build + characterize one VC allocator design point.

    Raises :class:`SynthesisCapacityError` when the design exceeds the
    capacity model (checked against a fast estimate before building and
    against the real cell count after).  ``wavefront_impl`` selects the
    replicated (paper) or rotated (Hurt et al.) loop-free wavefront.
    """
    name = (
        f"vc_{arch}/{arbiter} P={num_ports} {partition.describe()} "
        f"{'sparse' if sparse else 'dense'}"
    )
    if arch == "wf" and wavefront_impl != "replicated":
        name += f" ({wavefront_impl})"
    estimate = estimate_vc_allocator_gates(
        num_ports, partition, arch, arbiter, sparse, wavefront_impl
    )
    _check_budget(name, estimate, max_cells)
    nl = build_vc_allocator_netlist(
        num_ports, partition, arch, arbiter, sparse, wavefront_impl
    )
    _check_budget(name, nl.num_gates, max_cells)
    report = synthesize(nl, size_iterations)
    report.meta.update(
        arch=arch,
        arbiter=arbiter,
        sparse=sparse,
        num_ports=num_ports,
        partition=partition.describe(),
        wavefront_impl=wavefront_impl if arch == "wf" else None,
    )
    return report


def synthesize_switch_allocator(
    num_ports: int,
    num_vcs: int,
    arch: str = "sep_if",
    arbiter: str = "rr",
    speculation: str = "nonspec",
    max_cells: int = DEFAULT_MAX_CELLS,
    size_iterations: int = 8,
) -> SynthesisReport:
    """Build + characterize one switch allocator design point."""
    name = f"sw_{arch}/{arbiter} P={num_ports} V={num_vcs} {speculation}"
    estimate = estimate_switch_allocator_gates(
        num_ports, num_vcs, arch, arbiter, speculation
    )
    _check_budget(name, estimate, max_cells)
    nl = build_switch_allocator_netlist(num_ports, num_vcs, arch, arbiter, speculation)
    _check_budget(name, nl.num_gates, max_cells)
    report = synthesize(nl, size_iterations)
    report.meta.update(
        arch=arch,
        arbiter=arbiter,
        speculation=speculation,
        num_ports=num_ports,
        num_vcs=num_vcs,
    )
    return report
