"""Cell-area roll-up for netlists."""

from __future__ import annotations

from typing import Dict

from .cells import CELLS
from .netlist import Netlist

__all__ = ["total_area", "area_by_cell"]


def total_area(nl: Netlist) -> float:
    """Total cell area in um^2 (cell unit area scaled by drive size).

    Drive strength scales transistor widths roughly linearly, so area is
    modelled as ``unit_area * size`` -- the mechanism by which the sizing
    pass (timing recovery) trades area for delay, mirroring the paper's
    observation that synthesis "tries to compensate ... by using faster
    -- and therefore, larger -- gates".
    """
    area = 0.0
    areas = [c.area_um2 for c in CELLS]
    sizes = nl.sizes
    for nid, k in enumerate(nl.kinds):
        if k >= 0:
            area += areas[k] * sizes[nid]
    return area


def area_by_cell(nl: Netlist) -> Dict[str, float]:
    """Per-cell-type area breakdown in um^2."""
    out: Dict[str, float] = {}
    for nid, k in enumerate(nl.kinds):
        if k >= 0:
            name = CELLS[k].name
            out[name] = out.get(name, 0.0) + CELLS[k].area_um2 * nl.sizes[nid]
    return out
