"""Gate-level switch allocator netlists (Figures 8 and 9).

Builds complete switch allocators for a ``P``-port, ``V``-VC router.
Runtime inputs: per (input port, VC) a one-hot P-wide output-port
request vector.  Outputs: the P x P crossbar control matrix plus the
per-port winning-VC vector.

Speculation variants (Figure 9) wrap two identical allocator cores:

* ``conventional`` masks speculative grants with the non-speculative
  *grant* matrix: the row/column OR-reduction trees and the NOR stage
  sit after the non-speculative allocator on the critical path;
* ``pessimistic`` masks with the non-speculative *request* matrix: the
  reductions are computed directly from primary inputs, in parallel
  with allocation, leaving only the final AND (and the grant-combine OR)
  on the critical path -- the delay saving the paper proposes.
"""

from __future__ import annotations

from typing import Callable, List, NamedTuple, Optional, Tuple

from .alloc_gates import build_wavefront_matrix, wavefront_gate_estimate
from .arbiter_gates import arbiter_gate_estimate, build_arbiter, is_stateless
from .logic import fixed_priority_grants, or_reduce, rotating_mask_update
from .netlist import Netlist
from .trace import PreselectTrace, active_trace

__all__ = [
    "build_switch_allocator_netlist",
    "estimate_switch_allocator_gates",
]

NetMatrix = List[List[int]]
#: req[p][v][q] primary-input request nets.
ReqNets = List[List[List[int]]]

#: ``finalize(surv_row, surv_col)`` -- emit deferred priority updates.
Finalizer = Callable[[List[int], Optional[List[int]]], None]


class CoreNets(NamedTuple):
    """One allocator core's nets plus its deferred-update contract.

    ``needs_surv_col`` tells the speculative wrapper whether
    ``finalize`` consumes per-output-port survival nets; the wavefront
    core keeps state per input port only, and building the column
    OR trees for it would leave them dangling.
    """

    xbar: NetMatrix
    vc_out: List[List[int]]
    finalize: Optional[Finalizer]
    needs_surv_col: bool = True


def _build_requests(nl: Netlist, P: int, V: int, tag: str) -> List[List[List[int]]]:
    """Primary inputs: req[p][v][q]."""
    return [
        [nl.inputs(P, f"{tag}req_p{p}v{v}_q") for v in range(V)]
        for p in range(P)
    ]


def _core(
    nl: Netlist,
    P: int,
    V: int,
    arch: str,
    arbiter: str,
    req: List[List[List[int]]],
    defer_updates: bool = False,
) -> CoreNets:
    """One switch allocator core.

    Returns a :class:`CoreNets`.  With ``defer_updates=False`` all
    priority-state update logic is emitted immediately and ``finalize``
    is ``None``.  With ``defer_updates=True`` the update logic is
    withheld and ``finalize(surv_row, surv_col)`` must be called later
    with per-input-port / per-output-port *survival* nets (``surv_col``
    may be ``None`` when ``needs_surv_col`` is false); updates are then
    gated on survival.  The speculative wrapper uses this so that a
    masked speculative grant does not advance the speculative core's
    priority state (update-on-success, mirroring
    :class:`repro.core.speculative.SpeculativeSwitchAllocator`).
    """
    if arch == "sep_if":
        return _core_sep_if(nl, P, V, arbiter, req, defer_updates)
    if arch == "sep_of":
        return _core_sep_of(nl, P, V, arbiter, req, defer_updates)
    if arch == "wf":
        return _core_wf(nl, P, V, req, defer_updates)
    raise ValueError(f"unknown switch allocator arch {arch!r}")


def _core_sep_if(
    nl: Netlist,
    P: int,
    V: int,
    arbiter: str,
    req: ReqNets,
    defer_updates: bool = False,
) -> CoreNets:
    # Stage 1: per input port, a V-input arbiter over active VCs.
    vgrants: List[List[int]] = []
    vc_fins = []
    for p in range(P):
        active = [or_reduce(nl, req[p][v]) for v in range(V)]
        g, fin = build_arbiter(nl, arbiter, active)
        vgrants.append(g)
        vc_fins.append(fin)

    # Forward the winning VC's request to its output port.
    preq: NetMatrix = []
    for p in range(P):
        row = []
        for q in range(P):
            terms = [nl.gate("AND2", vgrants[p][v], req[p][v][q]) for v in range(V)]
            row.append(or_reduce(nl, terms))
        preq.append(row)

    # Stage 2: per output port, a P-input arbiter.  Its grants drive the
    # crossbar control signals directly (Figure 8a).
    xbar: NetMatrix = [[0] * P for _ in range(P)]
    out_fins = []
    for q in range(P):
        g, fin = build_arbiter(nl, arbiter, [preq[p][q] for p in range(P)])
        if defer_updates:
            out_fins.append(fin)
        else:
            fin(None)
        for p in range(P):
            xbar[p][q] = g[p]

    # Input-stage priorities advance only on downstream success.
    vc_out: List[List[int]] = []
    for p in range(P):
        success = or_reduce(nl, xbar[p])
        if not defer_updates:
            vc_fins[p](success)
        vc_out.append(
            [nl.gate("AND2", vgrants[p][v], success) for v in range(V)]
        )
    if not defer_updates:
        return CoreNets(xbar, vc_out, None)

    def finalize(
        surv_row: List[int], surv_col: Optional[List[int]]
    ) -> None:
        for p in range(P):
            vc_fins[p](surv_row[p])
        for q in range(P):
            out_fins[q](surv_col[q])

    return CoreNets(xbar, vc_out, finalize)


def _core_sep_of(
    nl: Netlist,
    P: int,
    V: int,
    arbiter: str,
    req: ReqNets,
    defer_updates: bool = False,
) -> CoreNets:
    # Port-level requests combine all VCs (Figure 8b).
    preq = [
        [or_reduce(nl, [req[p][v][q] for v in range(V)]) for q in range(P)]
        for p in range(P)
    ]

    # Stage 1: output-port arbiters offer themselves to one input port.
    offers: NetMatrix = [[0] * P for _ in range(P)]  # [p][q]
    out_fins = []
    for q in range(P):
        g, fin = build_arbiter(nl, arbiter, [preq[p][q] for p in range(P)])
        out_fins.append(fin)
        for p in range(P):
            offers[p][q] = g[p]

    # Stage 2: per input port, arbitrate among VCs able to use a granted
    # output.
    xbar: NetMatrix = [[0] * P for _ in range(P)]
    vc_out: List[List[int]] = []
    vc_fins = []
    for p in range(P):
        elig = []
        for v in range(V):
            terms = [nl.gate("AND2", req[p][v][q], offers[p][q]) for q in range(P)]
            elig.append(or_reduce(nl, terms))
        g, fin = build_arbiter(nl, arbiter, elig)
        if defer_updates:
            vc_fins.append(fin)
        else:
            fin(None)
        vc_out.append(g)
        # Crossbar controls are generated after allocation completes
        # (the output arbiters cannot drive them directly here).
        for q in range(P):
            acc = or_reduce(
                nl, [nl.gate("AND2", g[v], req[p][v][q]) for v in range(V)]
            )
            xbar[p][q] = nl.gate("AND2", offers[p][q], acc)
    if not defer_updates:
        for q in range(P):
            if is_stateless(out_fins[q]):
                continue
            success = or_reduce(nl, [xbar[p][q] for p in range(P)])
            out_fins[q](success)
        return CoreNets(xbar, vc_out, None)

    def finalize(
        surv_row: List[int], surv_col: Optional[List[int]]
    ) -> None:
        for p in range(P):
            vc_fins[p](surv_row[p])
        for q in range(P):
            out_fins[q](surv_col[q])

    return CoreNets(xbar, vc_out, finalize)


def _core_wf(
    nl: Netlist, P: int, V: int, req: ReqNets, defer_updates: bool = False
) -> CoreNets:
    # Port-level requests; the wavefront grants at most one output per
    # input, so its outputs drive the crossbar directly (Figure 8c).
    preq = [
        [or_reduce(nl, [req[p][v][q] for v in range(V)]) for q in range(P)]
        for p in range(P)
    ]
    xbar = build_wavefront_matrix(nl, preq)

    # VC pre-selection in parallel with the wavefront: per input port a
    # shared rotating-mask register, combinationally replicated per
    # output port over the VCs requesting that output.
    vc_out: List[List[int]] = []
    pending_masks: List[Tuple[int, List[int], List[int], object]] = []
    for p in range(P):
        if V == 1:
            # The lone VC wins whenever its port gets any output; the
            # pre-selection network degenerates to pure wiring (no
            # constant-1 selects for synthesis to fold away).
            vc_out.append([or_reduce(nl, xbar[p])])
            continue
        mask = [nl.reg() for _ in range(V)]
        sel_by_q = []
        for q in range(P):
            lines = [req[p][v][q] for v in range(V)]
            masked = [nl.gate("AND2", lines[v], mask[v]) for v in range(V)]
            gm = fixed_priority_grants(nl, masked)
            gu = fixed_priority_grants(nl, lines)
            anym = or_reduce(nl, masked)
            sel_by_q.append(
                [nl.gate("MUX2", gu[v], gm[v], anym) for v in range(V)]
            )
        # Combine: VC v wins if its pre-selection fires for the granted q.
        grants_v = []
        for v in range(V):
            terms = [nl.gate("AND2", sel_by_q[q][v], xbar[p][q]) for q in range(P)]
            grants_v.append(or_reduce(nl, terms))
        vc_out.append(grants_v)
        trace = active_trace()
        presel = None
        if trace is not None:
            presel = PreselectTrace(
                port=p,
                mask_regs=list(mask),
                line_nets=[[req[p][v][q] for v in range(V)] for q in range(P)],
                sel_nets=[list(row) for row in sel_by_q],
                xbar_row=list(xbar[p]),
                grants_v=list(grants_v),
            )
            trace.preselects.append(presel)
        if defer_updates:
            pending_masks.append((p, mask, grants_v, presel))
        else:
            # Rotate the shared mask past the winning VC on success.
            upd = or_reduce(nl, grants_v)
            rotating_mask_update(nl, mask, grants_v, upd)
            if presel is not None:
                presel.update_enable = upd
    if not defer_updates:
        return CoreNets(xbar, vc_out, None)

    def finalize(
        surv_row: List[int], surv_col: Optional[List[int]]
    ) -> None:
        # Rotate the shared mask only when the port's grant survived the
        # speculation masking (survival implies this core granted, so no
        # extra AND with the core's own any-grant is needed).  The
        # wavefront's priority diagonal itself still rotates per
        # *allocation* -- see build_wavefront_matrix -- matching the
        # behavioural model.
        del surv_col  # wavefront mask state is per input port only
        for p, mask, grants_v, presel in pending_masks:
            rotating_mask_update(nl, mask, grants_v, surv_row[p])
            if presel is not None:
                presel.update_enable = surv_row[p]

    return CoreNets(xbar, vc_out, finalize, needs_surv_col=False)


# ----------------------------------------------------------------------
def build_switch_allocator_netlist(
    num_ports: int,
    num_vcs: int,
    arch: str = "sep_if",
    arbiter: str = "rr",
    speculation: str = "nonspec",
) -> Netlist:
    """Construct a switch allocator netlist for one design point.

    ``speculation`` is ``"nonspec"``, ``"conventional"`` or
    ``"pessimistic"`` (Figure 9); speculative variants instantiate two
    allocator cores plus the masking logic.
    """
    P, V = num_ports, num_vcs
    nl = Netlist(f"sw_{arch}_{arbiter}_P{P}_V{V}_{speculation}")

    req_ns = _build_requests(nl, P, V, "ns_")
    if speculation == "nonspec":
        xbar, vc_out, _, _ = _core(nl, P, V, arch, arbiter, req_ns)
        for p in range(P):
            for q in range(P):
                nl.mark_output(xbar[p][q], f"xbar_{p}_{q}")
            for v in range(V):
                nl.mark_output(vc_out[p][v], f"vcgnt_{p}_{v}")
        nl.validate()
        return nl
    if speculation not in ("conventional", "pessimistic"):
        raise ValueError(f"unknown speculation scheme {speculation!r}")

    req_sp = _build_requests(nl, P, V, "sp_")

    if speculation == "pessimistic":
        # Row/column busy bits from non-speculative REQUESTS: computed
        # straight from inputs, in parallel with both allocators.
        row_busy = [
            or_reduce(nl, [req_ns[p][v][q] for v in range(V) for q in range(P)])
            for p in range(P)
        ]
        col_busy = [
            or_reduce(nl, [req_ns[p][v][q] for v in range(V) for p in range(P)])
            for q in range(P)
        ]

    core_ns = _core(nl, P, V, arch, arbiter, req_ns)
    xbar_ns, vc_ns = core_ns.xbar, core_ns.vc_out
    # The speculative core's priority updates are deferred until the
    # masked (surviving) grants exist: a killed speculative grant must
    # leave the core's arbiter state untouched.
    core_sp = _core(nl, P, V, arch, arbiter, req_sp, defer_updates=True)
    xbar_sp, vc_sp = core_sp.xbar, core_sp.vc_out

    if speculation == "conventional":
        # Row/column busy bits from non-speculative GRANTS: the
        # reduction trees extend the critical path (Figure 9a).
        row_busy = [or_reduce(nl, xbar_ns[p]) for p in range(P)]
        col_busy = [
            or_reduce(nl, [xbar_ns[p][q] for p in range(P)]) for q in range(P)
        ]

    # NOR the summaries, mask speculative grants, combine.
    ok = [
        [nl.gate("INV", nl.gate("OR2", row_busy[p], col_busy[q])) for q in range(P)]
        for p in range(P)
    ]
    masked_all: NetMatrix = []
    surv_row: List[int] = []
    for p in range(P):
        masked_row = []
        for q in range(P):
            masked = nl.gate("AND2", xbar_sp[p][q], ok[p][q])
            masked_row.append(masked)
            nl.mark_output(
                nl.gate("OR2", xbar_ns[p][q], masked), f"xbar_{p}_{q}"
            )
        masked_all.append(masked_row)
        # A speculative VC grant is only valid if the port's speculative
        # crossbar grant survived the masking.
        surv = or_reduce(nl, masked_row)
        surv_row.append(surv)
        for v in range(V):
            nl.mark_output(vc_ns[p][v], f"vcgnt_ns_{p}_{v}")
            nl.mark_output(
                nl.gate("AND2", vc_sp[p][v], surv), f"vcgnt_sp_{p}_{v}"
            )
    surv_col = (
        [or_reduce(nl, [masked_all[p][q] for p in range(P)]) for q in range(P)]
        if core_sp.needs_surv_col
        else None
    )
    assert core_sp.finalize is not None
    core_sp.finalize(surv_row, surv_col)
    nl.validate()
    return nl


def estimate_switch_allocator_gates(
    num_ports: int,
    num_vcs: int,
    arch: str,
    arbiter: str = "rr",
    speculation: str = "nonspec",
) -> int:
    """Cheap gate-count estimate for the synthesis capacity model."""
    P, V = num_ports, num_vcs
    if arch == "wf":
        core = wavefront_gate_estimate(P) + P * P * (3 * V + 4)
    else:
        core = (
            P * arbiter_gate_estimate(arbiter, V)
            + P * arbiter_gate_estimate(arbiter, P)
            + 3 * P * P * V
        )
    if speculation == "nonspec":
        return core
    return 2 * core + 6 * P * P
