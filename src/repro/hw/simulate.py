"""Functional (cycle-level) simulation of netlists.

Used to cross-validate the gate-level builders against the behavioural
models in :mod:`repro.core` -- the structural netlists must compute the
same grants as the Python allocators for identical stimulus.  Also used
by the open-loop RTL quality experiments (Section 3.1), which drive the
netlists with pseudo-random request matrices.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from .cells import CELL_INDEX
from .netlist import KIND_CONST0, KIND_CONST1, KIND_INPUT, Netlist

__all__ = ["NetlistSimulator"]

_DFF = CELL_INDEX["DFF"]
_INV = CELL_INDEX["INV"]
_BUF = CELL_INDEX["BUF"]
_NAND2 = CELL_INDEX["NAND2"]
_NOR2 = CELL_INDEX["NOR2"]
_AND2 = CELL_INDEX["AND2"]
_AND3 = CELL_INDEX["AND3"]
_AND4 = CELL_INDEX["AND4"]
_OR2 = CELL_INDEX["OR2"]
_OR3 = CELL_INDEX["OR3"]
_OR4 = CELL_INDEX["OR4"]
_XOR2 = CELL_INDEX["XOR2"]
_MUX2 = CELL_INDEX["MUX2"]


class NetlistSimulator:
    """Two-valued functional simulator for a :class:`Netlist`.

    Registers power up to a caller-supplied initial state (default 0;
    round-robin masks conventionally reset to all-ones so index 0 has
    priority, matching the behavioural arbiters' reset state).
    """

    def __init__(self, nl: Netlist, reg_init: int = 0) -> None:
        nl.validate()
        self.nl = nl
        self.state: Dict[int, int] = {
            q: reg_init for q in range(nl.num_nets) if nl.kinds[q] == _DFF
        }
        self._input_ids = [
            nid for nid, k in enumerate(nl.kinds) if k == KIND_INPUT
        ]

    @property
    def num_inputs(self) -> int:
        return len(self._input_ids)

    def set_register(self, q_net: int, value: int) -> None:
        """Force a register's current state (e.g. arbiter priority init)."""
        if q_net not in self.state:
            raise ValueError(f"net {q_net} is not a register")
        self.state[q_net] = 1 if value else 0

    def evaluate(self, inputs: Sequence[int]) -> List[int]:
        """Combinational evaluation; returns the value of every net."""
        nl = self.nl
        if len(inputs) != len(self._input_ids):
            raise ValueError(
                f"expected {len(self._input_ids)} inputs, got {len(inputs)}"
            )
        vals = [0] * nl.num_nets
        for nid, v in zip(self._input_ids, inputs):
            vals[nid] = 1 if v else 0
        kinds = nl.kinds
        fanins = nl.fanins
        state = self.state
        for nid in range(nl.num_nets):
            k = kinds[nid]
            if k == KIND_INPUT:
                continue
            if k == KIND_CONST0:
                vals[nid] = 0
            elif k == KIND_CONST1:
                vals[nid] = 1
            elif k == _DFF:
                vals[nid] = state[nid]
            else:
                f = fanins[nid]
                if k == _INV:
                    vals[nid] = 1 - vals[f[0]]
                elif k == _BUF:
                    vals[nid] = vals[f[0]]
                elif k == _AND2:
                    vals[nid] = vals[f[0]] & vals[f[1]]
                elif k == _AND3:
                    vals[nid] = vals[f[0]] & vals[f[1]] & vals[f[2]]
                elif k == _AND4:
                    vals[nid] = vals[f[0]] & vals[f[1]] & vals[f[2]] & vals[f[3]]
                elif k == _OR2:
                    vals[nid] = vals[f[0]] | vals[f[1]]
                elif k == _OR3:
                    vals[nid] = vals[f[0]] | vals[f[1]] | vals[f[2]]
                elif k == _OR4:
                    vals[nid] = vals[f[0]] | vals[f[1]] | vals[f[2]] | vals[f[3]]
                elif k == _NAND2:
                    vals[nid] = 1 - (vals[f[0]] & vals[f[1]])
                elif k == _NOR2:
                    vals[nid] = 1 - (vals[f[0]] | vals[f[1]])
                elif k == _XOR2:
                    vals[nid] = vals[f[0]] ^ vals[f[1]]
                elif k == _MUX2:
                    vals[nid] = vals[f[1]] if vals[f[2]] else vals[f[0]]
                else:  # pragma: no cover
                    raise NotImplementedError(f"cell kind {k}")
        return vals

    def step(self, inputs: Sequence[int]) -> Dict[str, int]:
        """One clock cycle: evaluate, capture outputs, clock registers."""
        vals = self.evaluate(inputs)
        outputs = {}
        for net, name in zip(self.nl.outputs, self.nl.output_names):
            outputs[name or f"out{net}"] = vals[net]
        for q, d in self.nl.reg_d.items():
            self.state[q] = vals[d]
        return outputs

    def output_values(self, inputs: Sequence[int]) -> List[int]:
        """Evaluate and return just the primary-output values, in order."""
        vals = self.evaluate(inputs)
        return [vals[net] for net in self.nl.outputs]
