"""Static timing analysis with the logical-effort delay model.

Per-gate delay is ``d = TAU_PS * (p + g * h)`` where ``h`` is the
electrical effort ``C_load / C_in`` of the driving gate; register Q pins
launch at the DFF clk-to-q parasitic and register D pins (plus primary
outputs) are capture endpoints with a setup allowance.  Because netlist
creation order is a topological order (see :mod:`repro.hw.netlist`),
arrival times are computed in one linear sweep.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from .cells import CELLS, TAU_PS, WIRE_CAP_FF
from .netlist import KIND_INPUT, Netlist

__all__ = [
    "TimingReport",
    "compute_loads",
    "compute_arrivals",
    "analyze_timing",
    "format_critical_path",
]

# Register setup allowance, ps.
SETUP_PS = 1.5 * TAU_PS

_DFF_NAME = "DFF"


def compute_loads(nl: Netlist) -> List[float]:
    """Output load (fF) per net: fanin pin caps plus wire cap per sink."""
    loads = [0.0] * nl.num_nets
    kinds = nl.kinds
    sizes = nl.sizes
    cin = [c.input_cap_ff for c in CELLS]
    for nid, fanin in enumerate(nl.fanins):
        k = kinds[nid]
        if k < 0:
            continue
        pin = cin[k] * sizes[nid]
        for f in fanin:
            loads[f] += pin + WIRE_CAP_FF
    dff_cin = CELLS[_dff_ix()].input_cap_ff
    for q, d in nl.reg_d.items():
        loads[d] += dff_cin * sizes[q] + WIRE_CAP_FF
    # Primary outputs drive a nominal downstream load (4x INV).
    inv_cin = CELLS[0].input_cap_ff
    for out in nl.outputs:
        loads[out] += 4.0 * inv_cin
    return loads


def _dff_ix() -> int:
    from .cells import CELL_INDEX

    return CELL_INDEX[_DFF_NAME]


def compute_arrivals(nl: Netlist, loads: List[float] = None) -> List[float]:
    """Arrival time (ps) at every net, single topological sweep."""
    if loads is None:
        loads = compute_loads(nl)
    n = nl.num_nets
    arrivals = [0.0] * n
    kinds = nl.kinds
    fanins = nl.fanins
    sizes = nl.sizes
    tau = TAU_PS
    dff = _dff_ix()
    # Pre-extract cell params to avoid attribute lookups in the loop.
    g_of = [c.logical_effort for c in CELLS]
    p_of = [c.parasitic for c in CELLS]
    cin_of = [c.input_cap_ff for c in CELLS]

    for nid in range(n):
        k = kinds[nid]
        if k < 0:
            continue  # inputs/constants arrive at 0
        if k == dff:
            # Q launches clk-to-q after the edge.
            arrivals[nid] = tau * p_of[dff]
            continue
        worst = 0.0
        for f in fanins[nid]:
            a = arrivals[f]
            if a > worst:
                worst = a
        h = loads[nid] / (cin_of[k] * sizes[nid])
        arrivals[nid] = worst + tau * (p_of[k] + g_of[k] * h)
    return arrivals


@dataclass
class TimingReport:
    """Result of :func:`analyze_timing`."""

    delay_ps: float  # critical path delay incl. setup
    critical_endpoint: int  # net id of the worst endpoint
    critical_path: Tuple[int, ...]  # nets from a source to the endpoint
    arrivals: List[float]
    loads: List[float]

    @property
    def delay_ns(self) -> float:
        return self.delay_ps / 1000.0

    @property
    def min_cycle_ghz(self) -> float:
        return 1000.0 / self.delay_ps if self.delay_ps > 0 else float("inf")


def analyze_timing(nl: Netlist) -> TimingReport:
    """Critical-path delay over all endpoints (outputs and register Ds)."""
    loads = compute_loads(nl)
    arrivals = compute_arrivals(nl, loads)

    worst = -1.0
    worst_net = -1
    for out in nl.outputs:
        a = arrivals[out] + SETUP_PS
        if a > worst:
            worst, worst_net = a, out
    for _, d in nl.reg_d.items():
        a = arrivals[d] + SETUP_PS
        if a > worst:
            worst, worst_net = a, d
    if worst_net < 0:
        raise ValueError("netlist has no timing endpoints")

    # Backtrack the critical path: repeatedly follow the latest fanin.
    path = [worst_net]
    node = worst_net
    kinds = nl.kinds
    fanins = nl.fanins
    dff = _dff_ix()
    while kinds[node] >= 0 and kinds[node] != dff and fanins[node]:
        node = max(fanins[node], key=arrivals.__getitem__)
        path.append(node)
    path.reverse()
    return TimingReport(worst, worst_net, tuple(path), arrivals, loads)


def format_critical_path(nl: Netlist, report: TimingReport = None) -> str:
    """Human-readable timing report for the critical path.

    One line per path node: net id, cell type (or INPUT/DFF), drive
    size, stage increment and cumulative arrival -- the stage-by-stage
    view a synthesis timing report would give.
    """
    if report is None:
        report = analyze_timing(nl)
    from .cells import CELLS

    lines = [
        f"critical path of {nl.name or 'netlist'}: "
        f"{report.delay_ps / 1000:.3f} ns over {len(report.critical_path)} nodes"
    ]
    prev_arrival = 0.0
    for net in report.critical_path:
        k = nl.kinds[net]
        if k == KIND_INPUT:
            cell = "INPUT"
            size = ""
        elif k < 0:
            cell = "CONST"
            size = ""
        else:
            cell = CELLS[k].name
            size = f" x{nl.sizes[net]:.1f}"
        arrival = report.arrivals[net]
        incr = arrival - prev_arrival
        prev_arrival = arrival
        name = nl.input_names.get(net, "")
        lines.append(
            f"  net {net:>7d}  {cell:<6s}{size:<6s} +{incr:7.1f} ps "
            f"-> {arrival:8.1f} ps  {name}"
        )
    lines.append(f"  (+{SETUP_PS:.1f} ps setup at the endpoint)")
    return "\n".join(lines)
