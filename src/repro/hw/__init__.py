"""Gate-level hardware cost model (the paper's Design Compiler stand-in).

Builds structural netlists for every allocator the paper synthesizes,
then measures critical-path delay (logical-effort static timing), cell
area, and power (probabilistic switching activity), including a
timing-recovery sizing pass and a synthesis capacity model that
reproduces the paper's out-of-memory failures.  See DESIGN.md for the
substitution rationale.
"""

from .area import area_by_cell, total_area
from .cells import CELLS, Cell, cell_by_name
from .netlist import Netlist
from .power import PowerReport, analyze_power, signal_probabilities
from .sizing import SizingResult, recover_timing
from .synthesis import (
    DEFAULT_MAX_CELLS,
    SynthesisCapacityError,
    SynthesisReport,
    synthesize,
    synthesize_switch_allocator,
    synthesize_vc_allocator,
)
from .verilog import to_verilog
from .timing import (
    TimingReport,
    analyze_timing,
    compute_arrivals,
    compute_loads,
    format_critical_path,
)

__all__ = [
    "CELLS",
    "Cell",
    "DEFAULT_MAX_CELLS",
    "Netlist",
    "PowerReport",
    "SizingResult",
    "SynthesisCapacityError",
    "SynthesisReport",
    "TimingReport",
    "analyze_power",
    "analyze_timing",
    "area_by_cell",
    "cell_by_name",
    "compute_arrivals",
    "compute_loads",
    "format_critical_path",
    "recover_timing",
    "signal_probabilities",
    "synthesize",
    "synthesize_switch_allocator",
    "synthesize_vc_allocator",
    "to_verilog",
    "total_area",
]
