"""Gate-level netlist representation.

A :class:`Netlist` is a flat, columnar graph of standard-cell instances.
Every node produces exactly one net, and the node id *is* the net id.
Nodes are one of:

* primary input  (``kind == KIND_INPUT``),
* constant 0 / 1 (``kind == KIND_CONST0`` / ``KIND_CONST1``),
* a cell instance (``kind >= 0``, an index into :data:`repro.hw.cells.CELLS`);
  sequential cells (DFF) have their D input connected *after* creation
  via :meth:`Netlist.connect_reg`, so sequential feedback loops are
  expressible while combinational logic is loop-free **by construction**
  (a gate can only reference already-created nets).

Because gates reference only earlier nets, creation order is a valid
topological order of the combinational graph -- the timing and power
passes exploit this to run in a single linear sweep (the hot loops are
plain-Python over pre-extracted lists per the HPC guide: no attribute
lookups, no allocation in the loop body).
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, List, Optional, Tuple

from .cells import CELL_INDEX, CELLS, cell_by_name

__all__ = ["Netlist", "KIND_INPUT", "KIND_CONST0", "KIND_CONST1"]

KIND_INPUT = -1
KIND_CONST0 = -2
KIND_CONST1 = -3

_DFF_IX = CELL_INDEX["DFF"]


class Netlist:
    """A flat standard-cell netlist.

    Typical construction::

        nl = Netlist("rr_arbiter")
        a = nl.input("req0")
        b = nl.input("req1")
        g = nl.gate("AND2", a, b)
        nl.mark_output(g, "gnt")
    """

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.kinds: List[int] = []
        self.fanins: List[Tuple[int, ...]] = []
        self.sizes: List[float] = []
        self.outputs: List[int] = []
        self.output_names: List[str] = []
        self.input_names: Dict[int, str] = {}
        self.reg_d: Dict[int, int] = {}  # DFF q-net -> d-net
        self._const: Dict[int, int] = {}  # value -> net

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _new_node(self, kind: int, fanin: Tuple[int, ...]) -> int:
        nid = len(self.kinds)
        self.kinds.append(kind)
        self.fanins.append(fanin)
        self.sizes.append(1.0)
        return nid

    def input(self, name: str = "") -> int:
        """Create a primary input; returns its net id."""
        nid = self._new_node(KIND_INPUT, ())
        if name:
            self.input_names[nid] = name
        return nid

    def inputs(self, count: int, prefix: str = "") -> List[int]:
        """Create ``count`` primary inputs."""
        return [
            self.input(f"{prefix}{i}" if prefix else "") for i in range(count)
        ]

    def const(self, value: int) -> int:
        """Constant 0/1 net (deduplicated)."""
        value = 1 if value else 0
        if value not in self._const:
            kind = KIND_CONST1 if value else KIND_CONST0
            self._const[value] = self._new_node(kind, ())
        return self._const[value]

    def gate(self, cell_name: str, *inputs: int) -> int:
        """Instantiate a combinational cell; returns the output net id."""
        return self.gate_ix(CELL_INDEX[cell_name], inputs)

    def gate_ix(self, cell_ix: int, inputs: Iterable[int]) -> int:
        """Fast-path :meth:`gate` taking a pre-resolved cell index."""
        fanin = tuple(inputs)
        cell = CELLS[cell_ix]
        if cell.sequential:
            raise ValueError("use reg()/connect_reg() for sequential cells")
        if len(fanin) != cell.num_inputs:
            raise ValueError(
                f"{cell.name} needs {cell.num_inputs} inputs, got {len(fanin)}"
            )
        nid = len(self.kinds)
        for f in fanin:
            if not 0 <= f < nid:
                raise ValueError(f"fanin net {f} does not exist yet")
        return self._new_node(cell_ix, fanin)

    def reg(self) -> int:
        """Create a DFF; returns its Q net. Connect D later via connect_reg."""
        return self._new_node(_DFF_IX, ())

    def connect_reg(self, q_net: int, d_net: int) -> None:
        """Attach the D input of the register whose Q net is ``q_net``."""
        if not (0 <= q_net < len(self.kinds)) or self.kinds[q_net] != _DFF_IX:
            raise ValueError(f"net {q_net} is not a register output")
        if q_net in self.reg_d:
            raise ValueError(f"register {q_net} already connected")
        if not 0 <= d_net < len(self.kinds):
            raise ValueError(f"D net {d_net} does not exist")
        self.reg_d[q_net] = d_net

    def mark_output(self, net: int, name: str = "") -> None:
        """Declare ``net`` a primary output (a timing endpoint)."""
        if not 0 <= net < len(self.kinds):
            raise ValueError(f"net {net} does not exist")
        self.outputs.append(net)
        self.output_names.append(name)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def num_nets(self) -> int:
        return len(self.kinds)

    @property
    def num_gates(self) -> int:
        """Number of cell instances (combinational + sequential)."""
        return sum(1 for k in self.kinds if k >= 0)

    @property
    def num_registers(self) -> int:
        return sum(1 for k in self.kinds if k == _DFF_IX)

    @property
    def num_inputs(self) -> int:
        return sum(1 for k in self.kinds if k == KIND_INPUT)

    def cell_histogram(self) -> Counter:
        """Instance count per cell type."""
        hist: Counter = Counter()
        for k in self.kinds:
            if k >= 0:
                hist[CELLS[k].name] += 1
        return hist

    def consumers(self) -> List[List[int]]:
        """For each net, the nodes reading it (gate fanins + register Ds)."""
        cons: List[List[int]] = [[] for _ in range(len(self.kinds))]
        for nid, fanin in enumerate(self.fanins):
            for f in fanin:
                cons[f].append(nid)
        for q, d in self.reg_d.items():
            cons[d].append(q)
        return cons

    def support(
        self, targets: Iterable[int], cut: Iterable[int] = ()
    ) -> Tuple[List[int], List[int]]:
        """Combinational cone of ``targets``, stopped at ``cut``.

        Returns ``(cone, leaves)``: ``cone`` is the id-ordered (hence
        topologically ordered) list of combinational cell nodes whose
        output feeds a target through combinational logic, and
        ``leaves`` is the id-ordered list of boundary nets the cone
        reads -- cut nets, primary inputs and register Q outputs.
        Constant nets are part of neither list; evaluators resolve them
        directly from their kind.  A target that is itself a leaf (or a
        constant) contributes no cone nodes.
        """
        cut_set = frozenset(cut)
        cone: set = set()
        leaves: set = set()
        stack = [t for t in set(targets) if 0 <= t < len(self.kinds)]
        seen: set = set()
        while stack:
            net = stack.pop()
            if net in seen:
                continue
            seen.add(net)
            kind = self.kinds[net]
            if kind in (KIND_CONST0, KIND_CONST1):
                continue
            if net in cut_set or kind == KIND_INPUT or kind == _DFF_IX:
                leaves.add(net)
                continue
            cone.add(net)
            stack.extend(self.fanins[net])
        return sorted(cone), sorted(leaves)

    def validate(self) -> None:
        """Structural checks: connected registers, outputs in range.

        Raises ``ValueError`` on the first violation.  Builders call this
        once at the end of construction.
        """
        for nid, kind in enumerate(self.kinds):
            if kind == _DFF_IX and nid not in self.reg_d:
                raise ValueError(f"register {nid} has an unconnected D input")
        if not self.outputs and not self.reg_d:
            raise ValueError("netlist has no timing endpoints")

    def __repr__(self) -> str:
        return (
            f"Netlist({self.name!r}, nets={self.num_nets}, "
            f"gates={self.num_gates}, regs={self.num_registers}, "
            f"outputs={len(self.outputs)})"
        )
