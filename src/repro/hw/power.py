"""Power estimation via probabilistic switching-activity propagation.

Signal probabilities are propagated through the combinational logic
under the usual spatial-independence assumption; register outputs are
solved by fixed-point iteration (state feedback converges quickly for
the arbiter-style state machines in this repo).  The toggle activity of
a net with one-probability ``P`` is ``alpha = 2 * P * (1 - P)`` under
temporal independence, which reproduces the paper's "default activity
factor of 0.5" for primary inputs (``P = 0.5``).

Dynamic power per net is ``0.5 * alpha * C * Vdd^2 * f`` evaluated at
the design's own minimum cycle time unless a frequency is given;
leakage is summed per cell instance, scaled by drive size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from .cells import CELL_INDEX, CELLS, VDD
from .netlist import KIND_CONST0, KIND_CONST1, KIND_INPUT, Netlist
from .timing import analyze_timing, compute_loads

__all__ = ["PowerReport", "signal_probabilities", "analyze_power"]

_DFF = CELL_INDEX["DFF"]
_INV = CELL_INDEX["INV"]
_BUF = CELL_INDEX["BUF"]
_NAND2 = CELL_INDEX["NAND2"]
_NOR2 = CELL_INDEX["NOR2"]
_AND = {CELL_INDEX["AND2"], CELL_INDEX["AND3"], CELL_INDEX["AND4"]}
_OR = {CELL_INDEX["OR2"], CELL_INDEX["OR3"], CELL_INDEX["OR4"]}
_XOR2 = CELL_INDEX["XOR2"]
_MUX2 = CELL_INDEX["MUX2"]


def signal_probabilities(
    nl: Netlist,
    input_probability: float = 0.5,
    max_iterations: int = 8,
    tolerance: float = 1e-4,
) -> List[float]:
    """One-probability of each net under independence assumptions."""
    n = nl.num_nets
    probs = [0.0] * n
    kinds = nl.kinds
    fanins = nl.fanins

    # Register outputs start at 0.5 and are iterated to a fixed point.
    for nid, k in enumerate(kinds):
        if k == KIND_INPUT:
            probs[nid] = input_probability
        elif k == KIND_CONST1:
            probs[nid] = 1.0
        elif k == _DFF:
            probs[nid] = 0.5

    for _ in range(max_iterations):
        worst_change = 0.0
        for nid in range(n):
            k = kinds[nid]
            if k < 0 or k == _DFF:
                continue
            f = fanins[nid]
            if k == _INV:
                p = 1.0 - probs[f[0]]
            elif k == _BUF:
                p = probs[f[0]]
            elif k in _AND:
                p = 1.0
                for x in f:
                    p *= probs[x]
            elif k in _OR:
                q = 1.0
                for x in f:
                    q *= 1.0 - probs[x]
                p = 1.0 - q
            elif k == _NAND2:
                p = 1.0 - probs[f[0]] * probs[f[1]]
            elif k == _NOR2:
                p = (1.0 - probs[f[0]]) * (1.0 - probs[f[1]])
            elif k == _XOR2:
                a, b = probs[f[0]], probs[f[1]]
                p = a * (1.0 - b) + b * (1.0 - a)
            elif k == _MUX2:
                d0, d1, s = probs[f[0]], probs[f[1]], probs[f[2]]
                p = d0 * (1.0 - s) + d1 * s
            else:  # pragma: no cover - new cells must be added here
                raise NotImplementedError(f"probability model for {CELLS[k].name}")
            probs[nid] = p

        # Update register outputs from their D nets.
        for q, d in nl.reg_d.items():
            change = abs(probs[q] - probs[d])
            if change > worst_change:
                worst_change = change
            probs[q] = probs[d]
        if worst_change < tolerance:
            break
    return probs


@dataclass
class PowerReport:
    """Result of :func:`analyze_power` (all powers in mW)."""

    dynamic_mw: float
    leakage_mw: float
    frequency_ghz: float

    @property
    def total_mw(self) -> float:
        return self.dynamic_mw + self.leakage_mw


def analyze_power(
    nl: Netlist,
    frequency_ghz: Optional[float] = None,
    input_probability: float = 0.5,
) -> PowerReport:
    """Dynamic + leakage power.

    If ``frequency_ghz`` is omitted the design is assumed to run at its
    own minimum cycle time (as a synthesis report would).
    """
    if frequency_ghz is None:
        frequency_ghz = analyze_timing(nl).min_cycle_ghz
    probs = signal_probabilities(nl, input_probability)
    loads = compute_loads(nl)

    # Dynamic: 0.5 * alpha * C * V^2 * f per net.
    # fF * V^2 * GHz = 1e-15 F * 1e9 Hz * V^2 = 1e-6 W = 1e-3 mW.
    dyn = 0.0
    kinds = nl.kinds
    for nid in range(nl.num_nets):
        if kinds[nid] == KIND_CONST0 or kinds[nid] == KIND_CONST1:
            continue
        p = probs[nid]
        alpha = 2.0 * p * (1.0 - p)
        dyn += alpha * loads[nid]
    dynamic_mw = 0.5 * dyn * VDD * VDD * frequency_ghz * 1e-3

    # Clock tree power for registers: each DFF clock pin toggles every
    # cycle (alpha = 1) with a pin cap comparable to its D pin.
    clk_cap = sum(
        CELLS[_DFF].input_cap_ff * nl.sizes[nid]
        for nid, k in enumerate(kinds)
        if k == _DFF
    )
    dynamic_mw += 0.5 * 2.0 * clk_cap * VDD * VDD * frequency_ghz * 1e-3

    leak_nw = 0.0
    leaks = [c.leakage_nw for c in CELLS]
    for nid, k in enumerate(kinds):
        if k >= 0:
            leak_nw += leaks[k] * nl.sizes[nid]
    return PowerReport(dynamic_mw, leak_nw * 1e-6, frequency_ghz)
