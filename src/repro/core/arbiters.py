"""Arbiter primitives used by separable allocators.

An arbiter selects a single winner among a set of simultaneous requests.
The paper (Section 2.1) builds separable allocators from two stages of
arbiters and requires that an arbiter's priority state only be updated
when the grant it produces is also successful in the *other* arbitration
stage (the iSLIP-style "update on success" rule [McKeown 1999]).  To
support that, every arbiter exposes a pure :meth:`Arbiter.select` (no
state change) and an explicit :meth:`Arbiter.advance` that commits the
priority update for a given winner.

Three arbiter families from the paper are provided:

* :class:`FixedPriorityArbiter` -- lowest index wins; the building block
  for the others and the behavioural model of a priority/prefix network.
* :class:`RoundRobinArbiter` -- rotating priority pointer (``rr`` in the
  paper's figures); cheap, weakly fair.
* :class:`MatrixArbiter` -- least-recently-served via an NxN priority
  matrix (``m`` in the paper's figures); strongly fair, O(n^2) state.
* :class:`TreeArbiter` -- a two-level arbiter (a stage of group arbiters
  in parallel with a top-level arbiter across groups) used for the wide
  P*V-input arbitration in VC allocators (Section 4.1).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, List, Optional, Sequence

__all__ = [
    "Arbiter",
    "FixedPriorityArbiter",
    "RoundRobinArbiter",
    "MatrixArbiter",
    "TreeArbiter",
    "make_arbiter",
]


class Arbiter(ABC):
    """Abstract n-input single-winner arbiter.

    Parameters
    ----------
    num_inputs:
        Number of request inputs (``n >= 1``).
    """

    def __init__(self, num_inputs: int) -> None:
        if num_inputs < 1:
            raise ValueError(f"arbiter needs >= 1 input, got {num_inputs}")
        self.num_inputs = num_inputs

    @abstractmethod
    def select(self, requests: Sequence[bool]) -> Optional[int]:
        """Return the winning input index for ``requests``, or ``None``.

        Pure function of the current priority state; does not modify it.
        """

    @abstractmethod
    def advance(self, winner: int) -> None:
        """Commit the priority update for a successful grant to ``winner``."""

    @abstractmethod
    def reset(self) -> None:
        """Restore the initial priority state."""

    def select_sparse(self, indices: Sequence[int]) -> Optional[int]:
        """Sparse-form :meth:`select`: ``indices`` lists the requesting
        inputs in ascending order.

        Returns exactly what ``select(dense)`` would for the equivalent
        dense request vector (``None`` only when ``indices`` is empty).
        This is the simulator's hot-path entry point -- no validation is
        performed, and the ascending-order precondition is relied upon.
        The base implementation densifies; concrete arbiters override
        it with O(len(indices)) scans.
        """
        if not indices:
            return None
        dense = [False] * self.num_inputs
        for i in indices:
            dense[i] = True
        return self.select(dense)

    def arbitrate(self, requests: Sequence[bool], update: bool = True) -> Optional[int]:
        """Select a winner and (by default) immediately commit the update."""
        winner = self.select(requests)
        if update and winner is not None:
            self.advance(winner)
        return winner

    def _check_requests(self, requests: Sequence[bool]) -> None:
        if len(requests) != self.num_inputs:
            raise ValueError(
                f"expected {self.num_inputs} requests, got {len(requests)}"
            )

    def _check_winner(self, winner: int) -> None:
        if not 0 <= winner < self.num_inputs:
            raise ValueError(f"winner {winner} out of range [0, {self.num_inputs})")


class FixedPriorityArbiter(Arbiter):
    """Static-priority arbiter; the lowest-indexed requester always wins.

    Models a priority (thermometer-mask) network.  Not fair: persistent
    low-index requests starve everything behind them.  Used standalone
    only where fairness is irrelevant and as a primitive inside
    :class:`RoundRobinArbiter`.
    """

    def select(self, requests: Sequence[bool]) -> Optional[int]:
        self._check_requests(requests)
        for i, req in enumerate(requests):
            if req:
                return i
        return None

    def advance(self, winner: int) -> None:
        self._check_winner(winner)

    def reset(self) -> None:  # stateless
        return None

    def select_sparse(self, indices: Sequence[int]) -> Optional[int]:
        return indices[0] if indices else None


class RoundRobinArbiter(Arbiter):
    """Rotating-priority arbiter (``rr``).

    The highest priority is held by the input at the pointer; priority
    decreases cyclically from there.  After a successful grant the
    pointer moves one past the winner, making the winner the lowest
    priority input -- this guarantees any persistent requester is served
    at least once every ``n`` successful grants (weak fairness).
    """

    def __init__(self, num_inputs: int) -> None:
        super().__init__(num_inputs)
        self._pointer = 0

    @property
    def pointer(self) -> int:
        """Index that currently holds the highest priority."""
        return self._pointer

    def select(self, requests: Sequence[bool]) -> Optional[int]:
        n = self.num_inputs
        if len(requests) != n:
            raise ValueError(f"expected {n} requests, got {len(requests)}")
        p = self._pointer
        for i in range(p, n):
            if requests[i]:
                return i
        for i in range(p):
            if requests[i]:
                return i
        return None

    def advance(self, winner: int) -> None:
        # Validation is inlined: advance() runs ~1e6 times per simulated
        # second on the simulator hot path and the extra call is costly.
        n = self.num_inputs
        if not 0 <= winner < n:
            raise ValueError(f"winner {winner} out of range [0, {n})")
        w = winner + 1
        self._pointer = w if w < n else 0

    def reset(self) -> None:
        self._pointer = 0

    def set_pointer(self, pointer: int) -> None:
        """Force the priority pointer (verification oracle entry point).

        Lets :mod:`repro.verify` enumerate every reachable priority
        state and query :meth:`select` as a pure function of
        ``(state, requests)``; never used on simulation paths.
        """
        if not 0 <= pointer < self.num_inputs:
            raise ValueError(
                f"pointer {pointer} out of range [0, {self.num_inputs})"
            )
        self._pointer = pointer

    def select_sparse(self, indices: Sequence[int]) -> Optional[int]:
        # First requester at or after the pointer, else the first
        # requester overall (cyclic priority; indices are ascending).
        p = self._pointer
        for i in indices:
            if i >= p:
                return i
        return indices[0] if indices else None


class MatrixArbiter(Arbiter):
    """Least-recently-served arbiter (``m``).

    Keeps an n x n priority matrix ``w`` where ``w[i][j]`` means input
    ``i`` currently beats input ``j``.  A requester wins iff no other
    requester beats it.  On a successful grant the winner's priority is
    cleared against everyone (it becomes least recently served), which
    yields strong fairness at O(n^2) state cost -- the area/power premium
    the paper measures for ``m`` variants.
    """

    def __init__(self, num_inputs: int) -> None:
        super().__init__(num_inputs)
        self._beats: List[List[bool]] = []
        self.reset()

    def reset(self) -> None:
        n = self.num_inputs
        # Upper-triangular initial state: lower indices start with priority.
        self._beats = [[i < j for j in range(n)] for i in range(n)]

    def beats(self, i: int, j: int) -> bool:
        """True if input ``i`` currently has priority over input ``j``."""
        return self._beats[i][j]

    def set_beats(self, beats: Sequence[Sequence[bool]]) -> None:
        """Force the priority matrix (verification oracle entry point).

        ``beats`` must be antisymmetric off the diagonal
        (``beats[i][j] != beats[j][i]`` for ``i != j``) -- the invariant
        the hardware's triangle storage enforces by construction and
        that :mod:`repro.verify` proves inductive.
        """
        n = self.num_inputs
        if len(beats) != n or any(len(row) != n for row in beats):
            raise ValueError(f"expected an {n}x{n} matrix")
        for i in range(n):
            for j in range(i + 1, n):
                if bool(beats[i][j]) == bool(beats[j][i]):
                    raise ValueError(
                        f"beats[{i}][{j}] must differ from beats[{j}][{i}]"
                    )
        self._beats = [[bool(v) for v in row] for row in beats]

    def select(self, requests: Sequence[bool]) -> Optional[int]:
        self._check_requests(requests)
        n = self.num_inputs
        for i in range(n):
            if not requests[i]:
                continue
            beaten = False
            row_j = self._beats
            for j in range(n):
                if j != i and requests[j] and row_j[j][i]:
                    beaten = True
                    break
            if not beaten:
                return i
        return None

    def advance(self, winner: int) -> None:
        n = self.num_inputs
        if not 0 <= winner < n:
            raise ValueError(f"winner {winner} out of range [0, {n})")
        beats = self._beats
        row_w = beats[winner]
        for j in range(n):
            if j != winner:
                row_w[j] = False
                beats[j][winner] = True

    def select_sparse(self, indices: Sequence[int]) -> Optional[int]:
        # The matrix relation restricted to the requesters is still a
        # total order, so exactly one requester is unbeaten; the dense
        # scan returns the lowest-indexed such input, which this
        # reproduces because ``indices`` is ascending.
        beats = self._beats
        for i in indices:
            row_i = None
            for j in indices:
                if j != i and beats[j][i]:
                    row_i = j
                    break
            if row_i is None:
                return i
        return None


class TreeArbiter(Arbiter):
    """Two-level arbiter: per-group arbiters plus a top-level group arbiter.

    Implements the P*V-input tree arbiter from Section 4.1: "a stage of
    P V-input arbiters in parallel with a single P-input arbiter that
    selects among them".  Inputs are split into ``num_groups`` contiguous
    groups of ``group_size`` inputs each.
    """

    def __init__(
        self,
        num_groups: int,
        group_size: int,
        arbiter_factory: Callable[[int], Arbiter] = RoundRobinArbiter,
    ) -> None:
        if num_groups < 1 or group_size < 1:
            raise ValueError("num_groups and group_size must be >= 1")
        super().__init__(num_groups * group_size)
        self.num_groups = num_groups
        self.group_size = group_size
        self._group_arbs = [arbiter_factory(group_size) for _ in range(num_groups)]
        self._top_arb = arbiter_factory(num_groups)

    def select(self, requests: Sequence[bool]) -> Optional[int]:
        self._check_requests(requests)
        gs = self.group_size
        group_winner: List[Optional[int]] = []
        group_any: List[bool] = []
        for g in range(self.num_groups):
            sub = requests[g * gs : (g + 1) * gs]
            w = self._group_arbs[g].select(sub)
            group_winner.append(w)
            group_any.append(w is not None)
        top = self._top_arb.select(group_any)
        if top is None:
            return None
        local = group_winner[top]
        assert local is not None
        return top * gs + local

    def advance(self, winner: int) -> None:
        # Range check inlined (this runs once per grant per cycle on
        # the simulator hot path); the sub-arbiters re-validate the
        # decomposed indices anyway.
        if not 0 <= winner < self.num_inputs:
            self._check_winner(winner)
        g, local = divmod(winner, self.group_size)
        self._group_arbs[g].advance(local)
        self._top_arb.advance(g)

    def reset(self) -> None:
        for arb in self._group_arbs:
            arb.reset()
        self._top_arb.reset()

    def select_sparse(self, indices: Sequence[int]) -> Optional[int]:
        # Group the (ascending) requesters; per-group locals stay
        # ascending and so does the group-id list.  Equivalent to the
        # dense path: a group's "any" bit is set exactly when it has a
        # requester (group arbiters always pick a winner from a
        # non-empty request set).
        if not indices:
            return None
        gs = self.group_size
        by_group: dict = {}
        for idx in indices:
            g, local = divmod(idx, gs)
            lst = by_group.get(g)
            if lst is None:
                by_group[g] = [local]
            else:
                lst.append(local)
        top = self._top_arb.select_sparse(list(by_group))
        if top is None:
            return None
        local = self._group_arbs[top].select_sparse(by_group[top])
        assert local is not None
        return top * gs + local


_ARBITER_KINDS = {
    "rr": RoundRobinArbiter,
    "m": MatrixArbiter,
    "fixed": FixedPriorityArbiter,
}


def make_arbiter(kind: str, num_inputs: int) -> Arbiter:
    """Construct an arbiter from the paper's shorthand.

    ``kind`` is one of ``"rr"`` (round-robin), ``"m"`` (matrix) or
    ``"fixed"`` (static priority).
    """
    try:
        cls = _ARBITER_KINDS[kind]
    except KeyError:
        raise ValueError(
            f"unknown arbiter kind {kind!r}; expected one of {sorted(_ARBITER_KINDS)}"
        ) from None
    return cls(num_inputs)
