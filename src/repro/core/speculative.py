"""Speculative switch allocation (Section 5.2, Figure 9).

Speculation lets head flits bid for crossbar access in the same cycle
they request an output VC, hiding the VC allocation stage at low load.
Two separate switch allocators handle non-speculative requests (flits
already holding an output VC) and speculative requests (head flits
still waiting for one); non-speculative traffic must win any conflict.

Two masking schemes are modelled:

* ``conventional`` (the paper's ``spec_gnt``, Figure 9a, after Peh &
  Dally): a speculative grant is discarded if any non-speculative
  *grant* uses the same input or output port.  Exact, but the grant
  reduction ORs + NOR + AND extend the allocator's critical path.
* ``pessimistic`` (the paper's ``spec_req``, Figure 9b, this paper's
  proposal): a speculative grant is discarded if any non-speculative
  *request* uses the same input or output port.  Requests are available
  before allocation starts, so the reduction happens in parallel with
  allocation and only a final AND remains on the critical path -- at the
  price of discarding some viable speculative grants near saturation
  (a non-speculative request that ultimately *lost* still masks).

``scheme="nonspec"`` disables speculation altogether (the baseline of
Figure 14).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from .switch_allocator import SwitchAllocator, SwitchGrants, SwitchRequests

__all__ = ["SpeculativeSwitchAllocator", "SpeculativeGrants", "SPECULATION_SCHEMES"]

SPECULATION_SCHEMES = ("nonspec", "conventional", "pessimistic")


@dataclass
class SpeculativeGrants:
    """Outcome of one speculative switch allocation cycle.

    ``nonspec`` and ``spec`` each hold, per input port, the winning
    ``(vc, output_port)`` or ``None``.  The two never conflict on an
    input or output port.  ``spec_discarded`` counts speculative grants
    that were produced by the speculative allocator but masked -- the
    misspeculation statistic used by the ablation benchmarks.
    """

    nonspec: SwitchGrants
    spec: SwitchGrants
    spec_discarded: int = 0

    def combined(self) -> SwitchGrants:
        """Merged grant vector (non-speculative wins are already disjoint)."""
        return [ns if ns is not None else sp for ns, sp in zip(self.nonspec, self.spec)]

    def grant_counts(self) -> Tuple[int, int]:
        """(non-speculative, surviving speculative) grant counts -- the
        per-cycle numerators for switch-matching-efficiency metrics."""
        return (
            sum(1 for g in self.nonspec if g is not None),
            sum(1 for g in self.spec if g is not None),
        )


class SpeculativeSwitchAllocator:
    """Two-allocator speculative switch allocation.

    Parameters
    ----------
    num_ports, num_vcs:
        Router dimensions.
    arch, arbiter:
        Architecture/arbiter of both underlying allocators (they are
        assumed identical, as in the paper's implementation).
    scheme:
        ``"nonspec"``, ``"conventional"`` or ``"pessimistic"``.
    """

    def __init__(
        self,
        num_ports: int,
        num_vcs: int,
        arch: str = "sep_if",
        arbiter: str = "rr",
        scheme: str = "pessimistic",
    ) -> None:
        if scheme not in SPECULATION_SCHEMES:
            raise ValueError(f"unknown speculation scheme {scheme!r}")
        self.num_ports = num_ports
        self.num_vcs = num_vcs
        self.scheme = scheme
        self.arch = arch
        self._nonspec_alloc = SwitchAllocator(num_ports, num_vcs, arch, arbiter)
        if scheme == "nonspec":
            self._spec_alloc: Optional[SwitchAllocator] = None
        else:
            self._spec_alloc = SwitchAllocator(num_ports, num_vcs, arch, arbiter)
        self._empty_grants: SwitchGrants = [None] * num_ports
        # Shadow the forwarding method with the bound target: the
        # uncontested fast path calls this once per conflict-free
        # router cycle, and the extra frame is pure overhead.
        self.grant_uncontested = self._nonspec_alloc.grant_uncontested

    @property
    def check_requests(self) -> bool:
        """Request validation flag, forwarded to both allocator cores."""
        return self._nonspec_alloc.check_requests

    @check_requests.setter
    def check_requests(self, value: bool) -> None:
        self._nonspec_alloc.check_requests = value
        if self._spec_alloc is not None:
            self._spec_alloc.check_requests = value

    @property
    def fault_mask(self) -> Optional[set]:
        """Blocked-output-port mask, forwarded to both allocator cores
        (see :attr:`SwitchAllocator.fault_mask`)."""
        return self._nonspec_alloc.fault_mask

    @fault_mask.setter
    def fault_mask(self, value: Optional[set]) -> None:
        self._nonspec_alloc.fault_mask = value
        if self._spec_alloc is not None:
            self._spec_alloc.fault_mask = value

    def reset(self) -> None:
        self._nonspec_alloc.reset()
        if self._spec_alloc is not None:
            self._spec_alloc.reset()

    # ------------------------------------------------------------------
    def allocate(
        self,
        nonspec_requests: SwitchRequests,
        spec_requests: SwitchRequests,
        any_nonspec: Optional[bool] = None,
        any_spec: Optional[bool] = None,
    ) -> SpeculativeGrants:
        """Run both allocators and apply the masking scheme.

        ``nonspec_requests`` come from VCs that hold an output VC;
        ``spec_requests`` from head flits concurrently bidding in VC
        allocation.  A given (port, vc) slot should appear in at most
        one of the two (the router guarantees this by construction).

        ``any_nonspec`` / ``any_spec`` are optional caller-provided
        hints ("this side has at least one request"); an empty side
        skips its allocator core entirely, which matters on the network
        simulator's per-router per-cycle hot path.
        """
        if any_nonspec is None:
            any_nonspec = any(
                q is not None for row in nonspec_requests for q in row
            )
        if any_spec is None:
            any_spec = any(q is not None for row in spec_requests for q in row)

        if any_nonspec:
            ns_grants = self._nonspec_alloc.allocate(nonspec_requests)
        else:
            ns_grants = list(self._empty_grants)
        if self._spec_alloc is None or not any_spec:
            return SpeculativeGrants(ns_grants, list(self._empty_grants))

        # Stage the speculative core's arbiter updates: a speculative
        # grant that the masking stage discards never took effect, so
        # under the update-on-success rule it must not advance the
        # round-robin pointers / matrix state of the speculative
        # allocator.  (The wavefront core's priority diagonal still
        # rotates per *allocation*, not per surviving grant, matching
        # the paper's weak-fairness rule.)
        sp_grants = self._spec_alloc.allocate(spec_requests, commit=False)

        if self.scheme == "conventional":
            in_busy, out_busy = self._grant_summary(ns_grants)
        else:  # pessimistic
            in_busy, out_busy = self._request_summary(nonspec_requests)

        masked: SwitchGrants = [None] * self.num_ports
        discarded = 0
        survivors: List[int] = []
        for p, g in enumerate(sp_grants):
            if g is None:
                continue
            _, q = g
            if in_busy[p] or out_busy[q]:
                discarded += 1
            else:
                masked[p] = g
                survivors.append(p)
        self._spec_alloc.commit(survivors)
        return SpeculativeGrants(ns_grants, masked, discarded)

    # ------------------------------------------------------------------
    def grant_uncontested(self, items: Sequence[Tuple[int, int, int]]) -> None:
        """Uncontested-cycle commit, forwarded to the non-speculative
        core (see :meth:`SwitchAllocator.grant_uncontested`).

        Cycles eligible for this path have no speculative requests by
        definition, so the speculative core's state is untouched --
        exactly what :meth:`allocate_sparse` does with empty
        ``sp_items``.
        """
        self._nonspec_alloc.grant_uncontested(items)

    # ------------------------------------------------------------------
    def allocate_sparse(
        self,
        ns_items: Sequence[Tuple[int, int, int]],
        sp_items: Sequence[Tuple[int, int, int]],
    ) -> SpeculativeGrants:
        """Hot-path :meth:`allocate` over sparse requests.

        ``ns_items`` / ``sp_items`` list the active requests as
        ``(input_port, vc, output_port)`` triples, ascending by
        ``(input_port, vc)`` (see
        :meth:`repro.core.switch_allocator.SwitchAllocator.allocate_sparse`).
        Grants, misspeculation accounting and arbiter updates are
        identical to the dense path.
        """
        if ns_items:
            ns_grants = self._nonspec_alloc.allocate_sparse(ns_items)
        else:
            ns_grants = list(self._empty_grants)
        if self._spec_alloc is None or not sp_items:
            return SpeculativeGrants(ns_grants, list(self._empty_grants))

        if not ns_items:
            # No non-speculative requests: neither masking scheme can
            # discard anything (pessimistic masks on requests,
            # conventional on grants -- both empty here), so every
            # speculative grant survives and the arbiter updates commit
            # inline instead of staging + commit-all.
            sp_grants = self._spec_alloc.allocate_sparse(sp_items)
            return SpeculativeGrants(ns_grants, sp_grants, 0)

        sp_grants = self._spec_alloc.allocate_sparse(sp_items, commit=False)

        if self.scheme == "conventional":
            in_busy, out_busy = self._grant_summary(ns_grants)
        else:  # pessimistic: busy bits straight from the request triples
            in_busy = [False] * self.num_ports
            out_busy = [False] * self.num_ports
            for p, _v, q in ns_items:
                in_busy[p] = True
                out_busy[q] = True

        masked: SwitchGrants = [None] * self.num_ports
        discarded = 0
        survivors: List[int] = []
        for p, g in enumerate(sp_grants):
            if g is None:
                continue
            _, q = g
            if in_busy[p] or out_busy[q]:
                discarded += 1
            else:
                masked[p] = g
                survivors.append(p)
        self._spec_alloc.commit(survivors)
        return SpeculativeGrants(ns_grants, masked, discarded)

    # ------------------------------------------------------------------
    def _grant_summary(self, grants: SwitchGrants) -> Tuple[List[bool], List[bool]]:
        """Row/column busy bits from non-speculative *grants* (Fig 9a)."""
        in_busy = [False] * self.num_ports
        out_busy = [False] * self.num_ports
        for p, g in enumerate(grants):
            if g is not None:
                in_busy[p] = True
                out_busy[g[1]] = True
        return in_busy, out_busy

    def _request_summary(
        self, requests: SwitchRequests
    ) -> Tuple[List[bool], List[bool]]:
        """Row/column busy bits from non-speculative *requests* (Fig 9b)."""
        in_busy = [False] * self.num_ports
        out_busy = [False] * self.num_ports
        for p, vc_reqs in enumerate(requests):
            for q in vc_reqs:
                if q is not None:
                    in_busy[p] = True
                    out_busy[q] = True
        return in_busy, out_busy
