"""VC partitioning for sparse VC allocation (Section 4.2, Figure 4).

The paper decomposes the total VC count as ``V = M * R * C``:

* ``M`` message classes (e.g. request/reply) -- a packet's message class
  never changes, so the VC allocator can be split into ``M`` fully
  independent sub-allocators;
* ``R`` resource classes (e.g. dateline phases, UGAL minimal/non-minimal
  phases) -- transitions between resource classes follow a fixed partial
  order, further shrinking each input VC's candidate set;
* ``C`` VCs per class -- functionally equivalent, so requests select a
  whole (message, resource) class rather than individual VCs.

:class:`VCPartition` captures this structure, exposes the VC index
algebra, and generates the legal VC-to-VC transition matrix of Figure 4.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["VCPartition"]


def _identity_transitions(num_resource_classes: int) -> np.ndarray:
    return np.eye(num_resource_classes, dtype=bool)


@dataclass(frozen=True)
class VCPartition:
    """Static structure of a router's VC space.

    Parameters
    ----------
    num_message_classes:
        ``M`` -- disjoint packet-type classes (requests vs replies).
    num_resource_classes:
        ``R`` -- deadlock-avoidance phases within a message class.
    vcs_per_class:
        ``C`` -- interchangeable VCs per (message, resource) class.
    resource_transitions:
        ``R x R`` boolean matrix; entry ``[r_in, r_out]`` is True when a
        packet in resource class ``r_in`` may acquire a VC of resource
        class ``r_out`` at the next router.  Defaults to the identity
        (packets stay in their class), the mesh/DOR case.

    VC index layout: ``vc = (m * R + r) * C + c`` -- message class is the
    outermost field, matching the quadrant layout of Figure 4.
    """

    num_message_classes: int
    num_resource_classes: int = 1
    vcs_per_class: int = 1
    resource_transitions: np.ndarray = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.num_message_classes < 1:
            raise ValueError("need >= 1 message class")
        if self.num_resource_classes < 1:
            raise ValueError("need >= 1 resource class")
        if self.vcs_per_class < 1:
            raise ValueError("need >= 1 VC per class")
        trans = self.resource_transitions
        if trans is None:
            trans = _identity_transitions(self.num_resource_classes)
        trans = np.asarray(trans, dtype=bool)
        expected = (self.num_resource_classes, self.num_resource_classes)
        if trans.shape != expected:
            raise ValueError(
                f"resource_transitions must have shape {expected}, got {trans.shape}"
            )
        if not trans.any(axis=1).all():
            raise ValueError("every resource class needs >= 1 successor class")
        trans.setflags(write=False)
        object.__setattr__(self, "resource_transitions", trans)

    # ------------------------------------------------------------------
    # index algebra
    # ------------------------------------------------------------------
    @property
    def num_vcs(self) -> int:
        """Total VC count ``V = M * R * C``."""
        return self.num_message_classes * self.num_resource_classes * self.vcs_per_class

    def vc_index(self, message_class: int, resource_class: int, vc: int) -> int:
        """Flat VC index for (message class, resource class, class-local VC)."""
        self._check_class(message_class, resource_class)
        if not 0 <= vc < self.vcs_per_class:
            raise ValueError(f"vc {vc} out of range")
        return (
            message_class * self.num_resource_classes + resource_class
        ) * self.vcs_per_class + vc

    def vc_fields(self, vc_index: int) -> Tuple[int, int, int]:
        """Inverse of :meth:`vc_index`."""
        if not 0 <= vc_index < self.num_vcs:
            raise ValueError(f"vc index {vc_index} out of range")
        cls, c = divmod(vc_index, self.vcs_per_class)
        m, r = divmod(cls, self.num_resource_classes)
        return m, r, c

    def message_class_of(self, vc_index: int) -> int:
        return self.vc_fields(vc_index)[0]

    def resource_class_of(self, vc_index: int) -> int:
        return self.vc_fields(vc_index)[1]

    def class_vcs(self, message_class: int, resource_class: int) -> List[int]:
        """All flat VC indices of one (message, resource) class."""
        base = self.vc_index(message_class, resource_class, 0)
        return list(range(base, base + self.vcs_per_class))

    def class_vcs_tuple(self, message_class: int, resource_class: int) -> Tuple[int, ...]:
        """Cached tuple form of :meth:`class_vcs` (ascending indices).

        The router's per-cycle request generation calls this once per
        waiting head flit, so the table is precomputed on first use
        (the partition is frozen, so it can never go stale).
        """
        try:
            table = self._class_vcs_table
        except AttributeError:
            table = {}
            for m in range(self.num_message_classes):
                for r in range(self.num_resource_classes):
                    base = (m * self.num_resource_classes + r) * self.vcs_per_class
                    table[m, r] = tuple(range(base, base + self.vcs_per_class))
            object.__setattr__(self, "_class_vcs_table", table)
        return table[message_class, resource_class]

    def _check_class(self, message_class: int, resource_class: int) -> None:
        if not 0 <= message_class < self.num_message_classes:
            raise ValueError(f"message class {message_class} out of range")
        if not 0 <= resource_class < self.num_resource_classes:
            raise ValueError(f"resource class {resource_class} out of range")

    # ------------------------------------------------------------------
    # transition structure
    # ------------------------------------------------------------------
    def successor_classes(self, resource_class: int) -> List[int]:
        """Resource classes reachable in one transition from ``resource_class``."""
        self._check_class(0, resource_class)
        return np.flatnonzero(self.resource_transitions[resource_class]).tolist()

    def predecessor_classes(self, resource_class: int) -> List[int]:
        """Resource classes that may transition into ``resource_class``."""
        self._check_class(0, resource_class)
        return np.flatnonzero(self.resource_transitions[:, resource_class]).tolist()

    def max_successors(self) -> int:
        """Largest successor-class count over all resource classes."""
        return int(self.resource_transitions.sum(axis=1).max())

    def max_predecessors(self) -> int:
        """Largest predecessor-class count over all resource classes."""
        return int(self.resource_transitions.sum(axis=0).max())

    def legal_transition(self, vc_in: int, vc_out: int) -> bool:
        """True if a packet holding ``vc_in`` may acquire ``vc_out`` next."""
        m_in, r_in, _ = self.vc_fields(vc_in)
        m_out, r_out, _ = self.vc_fields(vc_out)
        return m_in == m_out and bool(self.resource_transitions[r_in, r_out])

    def transition_matrix(self) -> np.ndarray:
        """The full ``V x V`` legal-transition matrix (Figure 4)."""
        v = self.num_vcs
        mat = np.zeros((v, v), dtype=bool)
        for vc_in in range(v):
            m_in, r_in, _ = self.vc_fields(vc_in)
            for r_out in self.successor_classes(r_in):
                for vc_out in self.class_vcs(m_in, r_out):
                    mat[vc_in, vc_out] = True
        return mat

    def num_legal_transitions(self) -> int:
        """Count of legal VC-to-VC transitions (96 for fbfly 2x2x4)."""
        return int(self.transition_matrix().sum())

    def candidate_vcs(self, vc_in: int, resource_class: Optional[int] = None) -> List[int]:
        """Output VCs an input VC may legally request.

        If ``resource_class`` is given, candidates are limited to that
        class (the routing function selects a single class at runtime);
        it must be a legal successor of ``vc_in``'s class.
        """
        m_in, r_in, _ = self.vc_fields(vc_in)
        if resource_class is not None:
            if not self.resource_transitions[r_in, resource_class]:
                raise ValueError(
                    f"resource class {resource_class} is not a legal successor "
                    f"of class {r_in}"
                )
            classes: Sequence[int] = [resource_class]
        else:
            classes = self.successor_classes(r_in)
        out: List[int] = []
        for r_out in classes:
            out.extend(self.class_vcs(m_in, r_out))
        return out

    # ------------------------------------------------------------------
    # paper configurations
    # ------------------------------------------------------------------
    @staticmethod
    def uniform(num_vcs: int) -> "VCPartition":
        """Degenerate partition: a single class holding all VCs."""
        return VCPartition(1, 1, num_vcs)

    @staticmethod
    def mesh(vcs_per_class: int) -> "VCPartition":
        """Paper's mesh points: M=2 (request/reply), R=1, C in {1,2,4}."""
        return VCPartition(2, 1, vcs_per_class)

    @staticmethod
    def fbfly(vcs_per_class: int) -> "VCPartition":
        """Paper's flattened-butterfly points: M=2, R=2 (UGAL phases).

        Resource class 0 is the non-minimal (first, Valiant) phase and
        class 1 the minimal phase.  A packet may move from the
        non-minimal phase to the minimal one but never back, and minimal
        packets stay minimal -- giving each VC at most
        ``2 * C`` successors, confined to its message-class quadrant,
        exactly the Figure 4 structure (96 of 256 transitions legal for
        C=4).
        """
        transitions = np.array([[True, True], [False, True]])
        return VCPartition(2, 2, vcs_per_class, transitions)

    def describe(self) -> str:
        """Human-readable summary, e.g. ``2x2x4 VCs (V=16)``."""
        return (
            f"{self.num_message_classes}x{self.num_resource_classes}"
            f"x{self.vcs_per_class} VCs (V={self.num_vcs})"
        )
