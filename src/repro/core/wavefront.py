"""Wavefront allocator (Section 2.2, Figure 2).

The wavefront allocator views the request matrix as a grid and sweeps
priority diagonals: all requests on the active diagonal are granted
(cells on one diagonal never share a row or a column), granted rows and
columns are knocked out, and the wave proceeds to the next diagonal,
wrapping around, until all diagonals have been serviced.  Because every
cell is considered exactly once against the current row/column
availability, the result is always a *maximal* matching -- though not
necessarily a *maximum* one.

Weak fairness is obtained by rotating the starting diagonal after every
allocation; the paper notes no stronger guarantee exists.
"""

from __future__ import annotations

import numpy as np

from .base import Allocator

__all__ = ["WavefrontAllocator"]


class WavefrontAllocator(Allocator):
    """Maximal-matching allocator with rotating priority diagonal.

    Rectangular matrices are handled by conceptually padding to an
    ``s x s`` square with ``s = max(m, n)``; padded cells never hold
    requests so they simply burn diagonal slots, matching how a
    hardware implementation would tie off unused tile inputs.

    Parameters
    ----------
    num_requesters, num_resources:
        Matrix dimensions.
    rotate_priority:
        If ``False`` the starting diagonal is fixed at 0 (used by the
        fairness ablation); the paper's implementation rotates.
    """

    def __init__(
        self,
        num_requesters: int,
        num_resources: int,
        rotate_priority: bool = True,
    ) -> None:
        super().__init__(num_requesters, num_resources)
        self._size = max(num_requesters, num_resources)
        self._diagonal = 0
        self.rotate_priority = rotate_priority

    @property
    def priority_diagonal(self) -> int:
        """Diagonal that receives priority on the next allocation."""
        return self._diagonal

    def reset(self) -> None:
        self._diagonal = 0

    def allocate(self, requests: np.ndarray) -> np.ndarray:
        req = self._validated(requests)
        m, n = self.shape
        s = self._size
        grants = np.zeros((m, n), dtype=bool)

        # Equivalent to sweeping diagonals (start, start+1, ...) of the
        # padded s x s grid and granting conflict-free requests: sort
        # requests by their wave index (diagonal distance from the
        # priority diagonal) and grant greedily.  Cells sharing a wave
        # index never share a row or column, so intra-diagonal order is
        # irrelevant; sorting costs O(R log R) in the number of requests
        # rather than O(s^2), which matters in the network simulator
        # where request matrices are large but sparse.
        start = self._diagonal
        ri, rj = np.nonzero(req)
        if ri.size:
            wave = (ri + rj - start) % s
            order = np.argsort(wave, kind="stable")
            row_free = [True] * m
            col_free = [True] * n
            for idx in order:
                i = int(ri[idx])
                j = int(rj[idx])
                if row_free[i] and col_free[j]:
                    grants[i, j] = True
                    row_free[i] = False
                    col_free[j] = False
        if self.rotate_priority:
            self._diagonal = (self._diagonal + 1) % s
        return grants
