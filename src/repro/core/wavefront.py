"""Wavefront allocator (Section 2.2, Figure 2).

The wavefront allocator views the request matrix as a grid and sweeps
priority diagonals: all requests on the active diagonal are granted
(cells on one diagonal never share a row or a column), granted rows and
columns are knocked out, and the wave proceeds to the next diagonal,
wrapping around, until all diagonals have been serviced.  Because every
cell is considered exactly once against the current row/column
availability, the result is always a *maximal* matching -- though not
necessarily a *maximum* one.

Weak fairness is obtained by rotating the starting diagonal after every
allocation; the paper notes no stronger guarantee exists.  "After every
allocation" is literal: a cycle in which the request matrix is empty
performs no allocation, so the priority diagonal holds (both here and
in the gate-level model, whose pointer ring is enable-gated on the
request OR).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from .base import Allocator

__all__ = ["WavefrontAllocator"]


class WavefrontAllocator(Allocator):
    """Maximal-matching allocator with rotating priority diagonal.

    Rectangular matrices are handled by conceptually padding to an
    ``s x s`` square with ``s = max(m, n)``; padded cells never hold
    requests so they simply burn diagonal slots, matching how a
    hardware implementation would tie off unused tile inputs.

    Parameters
    ----------
    num_requesters, num_resources:
        Matrix dimensions.
    rotate_priority:
        If ``False`` the starting diagonal is fixed at 0 (used by the
        fairness ablation); the paper's implementation rotates.
    """

    def __init__(
        self,
        num_requesters: int,
        num_resources: int,
        rotate_priority: bool = True,
    ) -> None:
        super().__init__(num_requesters, num_resources)
        self._size = max(num_requesters, num_resources)
        self._diagonal = 0
        self.rotate_priority = rotate_priority

    @property
    def priority_diagonal(self) -> int:
        """Diagonal that receives priority on the next allocation."""
        return self._diagonal

    def reset(self) -> None:
        self._diagonal = 0

    def set_diagonal(self, diagonal: int) -> None:
        """Force the priority diagonal (verification oracle entry point).

        Lets :mod:`repro.verify` enumerate every reachable priority
        state and treat :meth:`allocate` as a pure function of
        ``(state, requests)``; never used on simulation paths.
        """
        if not 0 <= diagonal < self._size:
            raise ValueError(
                f"diagonal {diagonal} out of range [0, {self._size})"
            )
        self._diagonal = diagonal

    def advance_priority(self) -> None:
        """Rotate the priority diagonal exactly as one non-empty
        :meth:`allocate` call would.

        The switch allocator's uncontested fast path grants a
        conflict-free request set without running the sweep; it calls
        this so the diagonal sequence stays identical to the swept
        path (no-op under the ``rotate_priority=False`` ablation).
        """
        if self.rotate_priority:
            self._diagonal = (self._diagonal + 1) % self._size

    def allocate_pairs(
        self, pairs: Sequence[Tuple[int, int]]
    ) -> List[Tuple[int, int]]:
        """Sparse :meth:`allocate`: sweep only the requested cells.

        ``pairs`` lists the requested ``(row, col)`` cells in row-major
        order (the order ``np.nonzero`` would yield on the dense
        matrix); returns the granted cells.  Bit-identical to the dense
        path because Python's ``sorted`` is stable exactly like the
        dense path's ``np.argsort(kind="stable")`` over the same
        row-major enumeration, and the greedy row/column knockout is
        the same.  Costs O(R log R) in the number of requests with no
        matrix materialisation -- this is what keeps the ``wf``
        architectures viable on large-radix routers (flattened
        butterfly) where ``s x s`` is thousands of cells.
        """
        granted: List[Tuple[int, int]] = []
        if not pairs:
            return granted
        s = self._size
        start = self._diagonal
        row_used: set = set()
        col_used: set = set()
        for i, j in sorted(pairs, key=lambda ij: (ij[0] + ij[1] - start) % s):
            if i not in row_used and j not in col_used:
                granted.append((i, j))
                row_used.add(i)
                col_used.add(j)
        if self.rotate_priority:
            self._diagonal = (self._diagonal + 1) % s
        return granted

    def allocate(self, requests: np.ndarray) -> np.ndarray:
        req = self._validated(requests)
        m, n = self.shape
        s = self._size
        grants = np.zeros((m, n), dtype=bool)

        # Equivalent to sweeping diagonals (start, start+1, ...) of the
        # padded s x s grid and granting conflict-free requests: sort
        # requests by their wave index (diagonal distance from the
        # priority diagonal) and grant greedily.  Cells sharing a wave
        # index never share a row or column, so intra-diagonal order is
        # irrelevant; sorting costs O(R log R) in the number of requests
        # rather than O(s^2), which matters in the network simulator
        # where request matrices are large but sparse.
        start = self._diagonal
        ri, rj = np.nonzero(req)
        if ri.size:
            wave = (ri + rj - start) % s
            order = np.argsort(wave, kind="stable")
            row_free = [True] * m
            col_free = [True] * n
            for idx in order:
                i = int(ri[idx])
                j = int(rj[idx])
                if row_free[i] and col_free[j]:
                    grants[i, j] = True
                    row_free[i] = False
                    col_free[j] = False
            # Rotate only when an allocation actually occurred (a
            # non-empty request matrix always yields >= 1 grant): the
            # paper's weak-fairness rule is "rotate after every
            # *allocation*", so idle cycles must not advance the
            # priority diagonal -- neither here nor in the
            # ``rotate_priority=False`` ablation's fixed-diagonal
            # baseline, which would otherwise differ from this
            # implementation even on all-idle traffic.
            if self.rotate_priority:
                self._diagonal = (self._diagonal + 1) % s
        return grants
