"""Allocator base class and matching predicates.

An allocator computes a *matching* between ``num_requesters`` rows and
``num_resources`` columns of a boolean request matrix (Section 2 of the
paper): grants are a subset of requests with at most one grant per row
and at most one grant per column.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional, Tuple

import numpy as np
from numpy.typing import ArrayLike

__all__ = [
    "Allocator",
    "as_request_matrix",
    "is_matching",
    "is_maximal_matching",
    "matching_size",
]


def as_request_matrix(
    requests: ArrayLike, shape: Optional[Tuple[int, int]] = None
) -> np.ndarray:
    """Coerce ``requests`` into a 2-D boolean ndarray, validating shape."""
    mat = np.asarray(requests, dtype=bool)
    if mat.ndim != 2:
        raise ValueError(f"request matrix must be 2-D, got shape {mat.shape}")
    if shape is not None and mat.shape != tuple(shape):
        raise ValueError(f"expected request matrix of shape {shape}, got {mat.shape}")
    return mat


def is_matching(requests: np.ndarray, grants: np.ndarray) -> bool:
    """Check the three matching constraints from Section 2.

    Grants must be a subset of requests, with at most one grant per
    requester (row) and per resource (column).
    """
    req = as_request_matrix(requests)
    gnt = as_request_matrix(grants, shape=req.shape)
    if np.any(gnt & ~req):
        return False
    if np.any(gnt.sum(axis=1) > 1):
        return False
    if np.any(gnt.sum(axis=0) > 1):
        return False
    return True


def is_maximal_matching(requests: np.ndarray, grants: np.ndarray) -> bool:
    """True if no further grant can be added without removing one.

    A matching is maximal iff every request lies in a granted row or a
    granted column (otherwise it could simply be added).
    """
    req = as_request_matrix(requests)
    gnt = as_request_matrix(grants, shape=req.shape)
    if not is_matching(req, gnt):
        return False
    row_used = gnt.any(axis=1)
    col_used = gnt.any(axis=0)
    blocked = row_used[:, None] | col_used[None, :]
    return not np.any(req & ~blocked)


def matching_size(grants: np.ndarray) -> int:
    """Number of grants in a grant matrix."""
    return int(np.count_nonzero(np.asarray(grants, dtype=bool)))


class Allocator(ABC):
    """Abstract allocator over an ``num_requesters x num_resources`` matrix.

    Subclasses implement :meth:`allocate`, which must return a valid
    matching (checked by the test suite, not at runtime, to keep the
    hot path cheap).  Allocators are stateful: successive calls update
    internal priority state to provide fairness, mirroring the RTL.
    """

    def __init__(self, num_requesters: int, num_resources: int) -> None:
        if num_requesters < 1 or num_resources < 1:
            raise ValueError("allocator dimensions must be >= 1")
        self.num_requesters = num_requesters
        self.num_resources = num_resources

    @property
    def shape(self) -> Tuple[int, int]:
        return (self.num_requesters, self.num_resources)

    @abstractmethod
    def allocate(self, requests: np.ndarray) -> np.ndarray:
        """Compute a grant matrix for ``requests`` and update priorities."""

    @abstractmethod
    def reset(self) -> None:
        """Restore initial priority state."""

    def _validated(self, requests: ArrayLike) -> np.ndarray:
        return as_request_matrix(requests, shape=self.shape)
