"""VC allocator front-ends (Section 4.1, Figure 3).

The VC allocator matches ``P*V`` input VCs (requesters) to ``P*V``
output VCs (resources), subject to the constraint that all output VCs
requested by one input VC sit at the single output port chosen by the
routing function.

Three architectures are provided, mirroring Figure 3:

* ``sep_if`` -- each input VC first picks one candidate output VC
  (V-input arbiter), then each output VC arbitrates among incoming
  bids with a ``P*V``-input tree arbiter;
* ``sep_of`` -- each input VC bids on all candidates, each output VC
  arbitrates (``P*V``-input), then each input VC picks among the output
  VCs that granted it (V-input arbiter);
* ``wf`` -- a ``P*V x P*V`` wavefront allocator over the full request
  matrix.

With ``sparse=True`` the allocator enforces (and, in the hardware model,
exploits) the static VC-transition restrictions of Section 4.2; under
sparse operation the wavefront implementation is split into ``M``
independent per-message-class blocks.
"""

from __future__ import annotations

from typing import Iterable, List, NamedTuple, Optional, Sequence, Tuple

import numpy as np

from .arbiters import Arbiter, TreeArbiter, make_arbiter
from .vc_partition import VCPartition
from .wavefront import WavefrontAllocator

__all__ = ["VCRequest", "VCAllocator", "VC_ALLOCATOR_ARCHS"]

VC_ALLOCATOR_ARCHS = ("sep_if", "sep_of", "wf")


class VCRequest(NamedTuple):
    """A head flit's VC allocation request.

    Attributes
    ----------
    output_port:
        Output port selected by the routing function.
    candidate_vcs:
        VC indices (``0..V-1``) at ``output_port`` the flit may use; all
        candidates belong to the packet's message class and to legal
        successor resource classes.
    """

    output_port: int
    candidate_vcs: Tuple[int, ...]


class VCAllocator:
    """Matches input VCs to output VCs once per packet.

    Parameters
    ----------
    num_ports:
        Router radix ``P``.
    partition:
        :class:`VCPartition` describing the VC space (``V`` is derived).
    arch:
        ``"sep_if"``, ``"sep_of"`` or ``"wf"``.
    arbiter:
        ``"rr"`` or ``"m"`` for the separable variants; the wavefront
        variant only uses (round-robin) arbiters for pre-selection and
        ignores this argument's ``"m"`` setting per Section 4.3.1.
    sparse:
        Enforce the static transition restrictions of Section 4.2.  The
        behavioural matching is identical for legal request streams; the
        flag gates request legality checks and selects the partitioned
        wavefront implementation.
    """

    def __init__(
        self,
        num_ports: int,
        partition: VCPartition,
        arch: str = "sep_if",
        arbiter: str = "rr",
        sparse: bool = True,
    ) -> None:
        if num_ports < 1:
            raise ValueError("num_ports must be >= 1")
        if arch not in VC_ALLOCATOR_ARCHS:
            raise ValueError(f"unknown VC allocator arch {arch!r}")
        self.num_ports = num_ports
        self.partition = partition
        self.num_vcs = partition.num_vcs
        self.arch = arch
        self.arbiter_kind = arbiter
        self.sparse = sparse
        #: Validate requests on every allocate() call.  The network
        #: simulator disables this on its per-cycle hot path; the
        #: request streams it produces are validated by construction.
        self.check_requests = True
        #: Optional fault mask: flat output-VC indices (``port * V +
        #: vc``) that must never be granted (stuck-at VCs, see
        #: :mod:`repro.faults`).  ``None`` -- the default and the only
        #: value in fault-free operation -- adds a single identity check
        #: per allocate() call.
        self.fault_mask: Optional[frozenset] = None
        n = num_ports * self.num_vcs
        self._n = n

        if arch in ("sep_if", "sep_of"):
            # One V-input arbiter per input VC (stage 1 for sep_if,
            # stage 2 for sep_of) ...
            self._input_arbs: List[Arbiter] = [
                make_arbiter(arbiter, self.num_vcs) for _ in range(n)
            ]
            # ... and one P*V-input tree arbiter per output VC.
            self._output_arbs: List[Arbiter] = [
                TreeArbiter(num_ports, self.num_vcs, lambda k: make_arbiter(arbiter, k))
                for _ in range(n)
            ]
            self._wavefronts: List[WavefrontAllocator] = []
        else:
            self._input_arbs = []
            self._output_arbs = []
            if sparse and partition.num_message_classes > 1:
                block = (
                    num_ports
                    * partition.num_resource_classes
                    * partition.vcs_per_class
                )
                self._wavefronts = [
                    WavefrontAllocator(block, block)
                    for _ in range(partition.num_message_classes)
                ]
                self._wf_block_rows = [
                    self._message_class_rows(m)
                    for m in range(partition.num_message_classes)
                ]
            else:
                self._wavefronts = [WavefrontAllocator(n, n)]
                self._wf_block_rows = [list(range(n))]
            # flat VC index -> (block index, block-local index): lets the
            # sparse path feed each wavefront block (row, col) pairs
            # directly instead of materialising the n x n request matrix.
            self._wf_local: List[Optional[Tuple[int, int]]] = [None] * n
            for b, rows in enumerate(self._wf_block_rows):
                for a, flat in enumerate(rows):
                    self._wf_local[flat] = (b, a)

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Restore all arbiters/wavefront diagonals to their initial state."""
        for arb in self._input_arbs:
            arb.reset()
        for arb in self._output_arbs:
            arb.reset()
        for wf in self._wavefronts:
            wf.reset()

    # ------------------------------------------------------------------
    def _flat(self, port: int, vc: int) -> int:
        return port * self.num_vcs + vc

    def _validate(self, requests: Sequence[Optional[VCRequest]]) -> None:
        if len(requests) != self._n:
            raise ValueError(
                f"expected {self._n} request slots (P*V), got {len(requests)}"
            )
        for idx, req in enumerate(requests):
            if req is None:
                continue
            if not 0 <= req.output_port < self.num_ports:
                raise ValueError(f"request {idx}: output port out of range")
            if not req.candidate_vcs:
                raise ValueError(f"request {idx}: empty candidate set")
            vc_in = idx % self.num_vcs
            for cand in req.candidate_vcs:
                if not 0 <= cand < self.num_vcs:
                    raise ValueError(f"request {idx}: candidate VC out of range")
                if self.sparse and not self.partition.legal_transition(vc_in, cand):
                    raise ValueError(
                        f"request {idx}: transition VC {vc_in} -> VC {cand} is "
                        "illegal under the sparse VC partition"
                    )

    # ------------------------------------------------------------------
    def allocate(
        self, requests: Sequence[Optional[VCRequest]]
    ) -> List[Optional[Tuple[int, int]]]:
        """Allocate output VCs for one cycle of requests.

        Parameters
        ----------
        requests:
            One entry per input VC in flat order (``port * V + vc``);
            ``None`` where no head flit is waiting.

        Returns
        -------
        list of (output_port, output_vc) or None per input VC.
        """
        if self.check_requests:
            self._validate(requests)
        elif len(requests) != self._n:
            raise ValueError(
                f"expected {self._n} request slots (P*V), got {len(requests)}"
            )
        if self.fault_mask is not None:
            requests = self._mask_requests(requests)
        if self.arch == "sep_if":
            return self._allocate_sep_if(requests)
        if self.arch == "sep_of":
            return self._allocate_sep_of(requests)
        return self._allocate_wavefront(requests)

    # -- sparse fast path ------------------------------------------------
    def allocate_sparse(
        self, items: Sequence[Tuple[int, int, Sequence[int]]]
    ) -> List[Optional[Tuple[int, int]]]:
        """Hot-path :meth:`allocate` over sparse requests.

        ``items`` lists the active requests as ``(flat_input_index,
        output_port, candidate_vcs)`` triples, ascending by index, with
        ascending candidates -- exactly the non-``None`` slots of the
        dense request vector, unpacked (no :class:`VCRequest` objects
        are built on the hot path).  Returns grants *aligned with*
        ``items`` (not with the flat P*V vector).  No validation is
        performed; ``fault_mask`` is honoured exactly as in the dense
        path.  Grants and priority updates are identical to the dense
        path; the differential harness in ``tests/perf`` pins this
        equivalence.
        """
        if self.fault_mask is not None:
            items = self._mask_items(items)
        if self.arch == "sep_if":
            return self._allocate_sep_if_sparse(items)
        if self.arch == "sep_of":
            return self._allocate_sep_of_sparse(items)
        return self._allocate_wavefront_sparse(items)

    def _mask_items(
        self, items: Sequence[Tuple[int, int, Sequence[int]]]
    ) -> List[Tuple[int, int, Sequence[int]]]:
        """Sparse-form :meth:`_mask_requests`; fully-masked requests stay
        in the list with an empty candidate set so the returned grants
        remain aligned with the caller's ``items``."""
        mask = self.fault_mask
        V = self.num_vcs
        out: List[Tuple[int, int, Sequence[int]]] = list(items)
        for pos, (i, q, cands) in enumerate(items):
            if not cands:
                continue
            base = q * V
            survivors = [u for u in cands if base + u not in mask]
            if len(survivors) != len(cands):
                out[pos] = (i, q, survivors)
        return out

    def _allocate_sep_if_sparse(
        self, items: Sequence[Tuple[int, int, Sequence[int]]]
    ) -> List[Optional[Tuple[int, int]]]:
        V = self.num_vcs
        grants: List[Optional[Tuple[int, int]]] = [None] * len(items)
        input_arbs = self._input_arbs

        # Single request: its stage-1 pick meets no stage-2 competition.
        if len(items) == 1:
            i, q, cands = items[0]
            if not cands:
                return grants
            choice = (
                cands[0] if len(cands) == 1 else input_arbs[i].select_sparse(cands)
            )
            grants[0] = (q, choice)
            input_arbs[i].advance(choice)
            self._output_arbs[q * V + choice].advance(i)
            return grants

        # Stage 1: each input VC picks one candidate output VC to bid on.
        bidders: dict = {}
        pos_of: dict = {}
        for pos, (i, q, cands) in enumerate(items):
            if not cands:
                continue
            choice = cands[0] if len(cands) == 1 else input_arbs[i].select_sparse(cands)
            b = q * V + choice
            lst = bidders.get(b)
            if lst is None:
                bidders[b] = [i]
            else:
                lst.append(i)
            pos_of[i] = pos

        # Stage 2: each output VC with bids arbitrates among them.
        for out, who in bidders.items():
            if len(who) == 1:
                winner = who[0]
            else:
                winner = self._output_arbs[out].select_sparse(who)
            grants[pos_of[winner]] = divmod(out, V)
            input_arbs[winner].advance(out % V)
            self._output_arbs[out].advance(winner)
        return grants

    def _allocate_sep_of_sparse(
        self, items: Sequence[Tuple[int, int, Sequence[int]]]
    ) -> List[Optional[Tuple[int, int]]]:
        V = self.num_vcs
        grants: List[Optional[Tuple[int, int]]] = [None] * len(items)

        # Expand: which input VCs request each output VC?
        requested_by: dict = {}
        for i, q, cands in items:
            base = q * V
            for cand in cands:
                out = base + cand
                lst = requested_by.get(out)
                if lst is None:
                    requested_by[out] = [i]
                else:
                    lst.append(i)

        # Stage 1: each requested output VC offers itself to one input VC.
        offers: dict = {}
        for out, who in requested_by.items():
            offers[out] = who[0] if len(who) == 1 else self._output_arbs[
                out
            ].select_sparse(who)

        # Stage 2: each input VC picks among the output VCs offered to it.
        for pos, (i, q, cands) in enumerate(items):
            if not cands:
                continue
            base = q * V
            offered = [cand for cand in cands if offers.get(base + cand) == i]
            if not offered:
                continue
            if len(offered) == 1:
                choice = offered[0]
            else:
                choice = self._input_arbs[i].select_sparse(offered)
            grants[pos] = (q, choice)
            self._input_arbs[i].advance(choice)
            self._output_arbs[base + choice].advance(i)
        return grants

    def _allocate_wavefront_sparse(
        self, items: Sequence[Tuple[int, int, Sequence[int]]]
    ) -> List[Optional[Tuple[int, int]]]:
        """Pair-based wavefront sweep: no request matrix is built.

        Requests are bucketed into per-message-class blocks as
        block-local (row, col) pairs and each non-empty block sweeps
        via :meth:`WavefrontAllocator.allocate_pairs`.  Sorting each
        bucket restores the row-major enumeration the dense path's
        ``np.nonzero`` produces, so grants and diagonal rotations are
        identical.  (Legal sparse request streams never cross message
        classes; the dense path likewise ignores cross-block cells.)
        """
        V = self.num_vcs
        wf_local = self._wf_local
        block_pairs: List[List[Tuple[int, int]]] = [
            [] for _ in self._wavefronts
        ]
        for i, q, cands in items:
            if not cands:
                continue
            b, a = wf_local[i]
            base = q * V
            pairs = block_pairs[b]
            for cand in cands:
                pairs.append((a, wf_local[base + cand][1]))

        grants_by_row: dict = {}
        for bidx, pairs in enumerate(block_pairs):
            if not pairs:
                continue
            pairs.sort()
            rows = self._wf_block_rows[bidx]
            for a, c in self._wavefronts[bidx].allocate_pairs(pairs):
                grants_by_row[rows[a]] = rows[c]

        return [
            divmod(grants_by_row[i], V)
            if cands and i in grants_by_row
            else None
            for i, q, cands in items
        ]

    def _mask_requests(
        self, requests: Sequence[Optional[VCRequest]]
    ) -> List[Optional[VCRequest]]:
        """Strip fault-masked output VCs from every candidate set.

        A request whose candidates are all masked becomes ``None`` --
        the head flit simply keeps waiting, exactly as if the VCs were
        held by other packets.
        """
        mask = self.fault_mask
        V = self.num_vcs
        out: List[Optional[VCRequest]] = list(requests)
        for i, req in enumerate(requests):
            if req is None:
                continue
            base = req.output_port * V
            survivors = tuple(
                u for u in req.candidate_vcs if base + u not in mask
            )
            if len(survivors) != len(req.candidate_vcs):
                out[i] = (
                    VCRequest(req.output_port, survivors) if survivors else None
                )
        return out

    # -- separable input-first -----------------------------------------
    def _allocate_sep_if(
        self, requests: Sequence[Optional[VCRequest]]
    ) -> List[Optional[Tuple[int, int]]]:
        n = self._n
        V = self.num_vcs
        grants: List[Optional[Tuple[int, int]]] = [None] * n

        # Stage 1: each input VC picks one candidate output VC to bid on.
        bids: List[Optional[int]] = [None] * n  # flat output VC index
        for i, req in enumerate(requests):
            if req is None:
                continue
            mask = [False] * V
            for cand in req.candidate_vcs:
                mask[cand] = True
            choice = self._input_arbs[i].select(mask)
            if choice is not None:
                bids[i] = self._flat(req.output_port, choice)

        # Stage 2: each output VC with bids arbitrates among them.
        bidders: dict = {}
        for i, b in enumerate(bids):
            if b is not None:
                bidders.setdefault(b, []).append(i)
        for out, who in bidders.items():
            incoming = [False] * n
            for i in who:
                incoming[i] = True
            winner = self._output_arbs[out].select(incoming)
            if winner is None:
                continue
            port, vc = divmod(out, V)
            grants[winner] = (port, vc)
            self._input_arbs[winner].advance(vc)
            self._output_arbs[out].advance(winner)
        return grants

    # -- separable output-first ------------------------------------------
    def _allocate_sep_of(
        self, requests: Sequence[Optional[VCRequest]]
    ) -> List[Optional[Tuple[int, int]]]:
        n = self._n
        V = self.num_vcs
        grants: List[Optional[Tuple[int, int]]] = [None] * n

        # Expand: which input VCs request each output VC?
        requested_by: dict = {}
        for i, req in enumerate(requests):
            if req is None:
                continue
            base = req.output_port * V
            for cand in req.candidate_vcs:
                requested_by.setdefault(base + cand, []).append(i)

        # Stage 1: each requested output VC offers itself to one input VC.
        offers: List[Optional[int]] = [None] * n
        for out, who in requested_by.items():
            col = [False] * n
            for i in who:
                col[i] = True
            offers[out] = self._output_arbs[out].select(col)

        # Stage 2: each input VC picks among the output VCs offered to it.
        for i, req in enumerate(requests):
            if req is None:
                continue
            offered_mask = [False] * V
            offered_any = False
            base = req.output_port * V
            for cand in req.candidate_vcs:
                if offers[base + cand] == i:
                    offered_mask[cand] = True
                    offered_any = True
            if not offered_any:
                continue
            choice = self._input_arbs[i].select(offered_mask)
            if choice is None:
                continue
            grants[i] = (req.output_port, choice)
            self._input_arbs[i].advance(choice)
            self._output_arbs[base + choice].advance(i)
        return grants

    # -- wavefront -------------------------------------------------------
    def _message_class_rows(self, message_class: int) -> List[int]:
        """Flat input/output VC indices belonging to one message class."""
        part = self.partition
        rows: List[int] = []
        for port in range(self.num_ports):
            for r in range(part.num_resource_classes):
                for vc in part.class_vcs(message_class, r):
                    rows.append(self._flat(port, vc))
        return rows

    def _allocate_wavefront(
        self, requests: Sequence[Optional[VCRequest]]
    ) -> List[Optional[Tuple[int, int]]]:
        n = self._n
        V = self.num_vcs

        req_matrix = np.zeros((n, n), dtype=bool)
        for i, req in enumerate(requests):
            if req is None:
                continue
            base = req.output_port * V
            for cand in req.candidate_vcs:
                req_matrix[i, base + cand] = True
        return self._wavefront_blocks(req_matrix)

    def _wavefront_blocks(
        self, req_matrix: np.ndarray
    ) -> List[Optional[Tuple[int, int]]]:
        """Run the (per-message-class) wavefront blocks over a full
        ``n x n`` request matrix; returns flat per-input-VC grants."""
        n = self._n
        V = self.num_vcs
        grants: List[Optional[Tuple[int, int]]] = [None] * n

        if len(self._wavefronts) == 1:
            blocks: Iterable[Tuple[WavefrontAllocator, List[int]]] = [
                (self._wavefronts[0], list(range(n)))
            ]
        else:
            blocks = [
                (wf, self._message_class_rows(m))
                for m, wf in enumerate(self._wavefronts)
            ]

        for wf, rows in blocks:
            sub = req_matrix[np.ix_(rows, rows)]
            if not sub.any():
                continue
            sub_grants = wf.allocate(sub)
            gi, gj = np.nonzero(sub_grants)
            for a, b in zip(gi.tolist(), gj.tolist()):
                i = rows[a]
                out = rows[b]
                grants[i] = divmod(out, V)
        return grants
