"""Separable allocators (Section 2.1, Figure 1).

A separable allocator decomposes allocation into independent arbitration
across requesters and across resources:

* *input-first* (``sep_if``): each requester first picks one resource to
  bid on, then each resource arbitrates among the incoming bids.
* *output-first* (``sep_of``): each resource first picks a winner among
  all requests in its column, then each requester arbitrates among the
  resources that picked it.

Neither variant is guaranteed to produce a maximal matching.  Priority
state in the *first* arbitration stage is only advanced when the grant
also survives the second stage, and vice versa -- concretely, an
arbiter's priority is advanced exactly when its selected winner is part
of the final matching (the iSLIP update rule the paper adopts to avoid
traffic-pattern-dependent starvation).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Tuple

import numpy as np

from .arbiters import Arbiter, RoundRobinArbiter
from .base import Allocator

__all__ = [
    "SeparableAllocator",
    "SeparableInputFirstAllocator",
    "SeparableOutputFirstAllocator",
]

ArbiterFactory = Callable[[int], Arbiter]


class SeparableAllocator(Allocator):
    """Common state for the two separable variants.

    Parameters
    ----------
    num_requesters, num_resources:
        Matrix dimensions.
    arbiter_factory:
        Callable ``n -> Arbiter`` used for both stages (default:
        round-robin, the paper's ``rr`` variants).
    """

    def __init__(
        self,
        num_requesters: int,
        num_resources: int,
        arbiter_factory: ArbiterFactory = RoundRobinArbiter,
    ) -> None:
        super().__init__(num_requesters, num_resources)
        self._row_arbs: List[Arbiter] = [
            arbiter_factory(num_resources) for _ in range(num_requesters)
        ]
        self._col_arbs: List[Arbiter] = [
            arbiter_factory(num_requesters) for _ in range(num_resources)
        ]
        # Arbiter advances staged by the most recent
        # ``allocate(..., commit=False)`` call, keyed by requester row.
        self._pending: Dict[int, Tuple[Tuple[Arbiter, int], ...]] = {}

    def reset(self) -> None:
        for arb in self._row_arbs:
            arb.reset()
        for arb in self._col_arbs:
            arb.reset()
        self._pending.clear()

    def _commit_all(self) -> None:
        for advances in self._pending.values():
            for arb, winner in advances:
                arb.advance(winner)
        self._pending.clear()

    def commit(self, rows: Iterable[int]) -> None:
        """Apply staged priority updates for the surviving grants only.

        Mirrors :meth:`repro.core.switch_allocator.SwitchAllocator.commit`:
        after an ``allocate(..., commit=False)`` call, ``rows`` names the
        requester rows whose grants were actually used; every other
        staged update is discarded, leaving those arbiters' priority
        state untouched (update-on-success).
        """
        pending = self._pending
        for i in rows:
            for arb, winner in pending.pop(i, ()):
                arb.advance(winner)
        pending.clear()


class SeparableInputFirstAllocator(SeparableAllocator):
    """``sep_if``: requester-side arbitration, then resource-side."""

    def allocate(self, requests: np.ndarray, commit: bool = True) -> np.ndarray:
        req = self._validated(requests)
        m, n = self.shape
        grants = np.zeros((m, n), dtype=bool)
        self._pending = {}

        # Stage 1: each requester selects a single resource to bid on.
        bids: List[Optional[int]] = [None] * m
        for i in range(m):
            row = req[i]
            if row.any():
                bids[i] = self._row_arbs[i].select(row)

        # Stage 2: each resource arbitrates among incoming bids.
        for j in range(n):
            incoming = [bids[i] == j for i in range(m)]
            if not any(incoming):
                continue
            winner = self._col_arbs[j].select(incoming)
            if winner is None:
                continue
            grants[winner, j] = True
            # Both stages succeeded for this (winner, j) pair.
            self._pending[winner] = (
                (self._row_arbs[winner], j),
                (self._col_arbs[j], winner),
            )
        if commit:
            self._commit_all()
        return grants


class SeparableOutputFirstAllocator(SeparableAllocator):
    """``sep_of``: resource-side arbitration, then requester-side."""

    def allocate(self, requests: np.ndarray, commit: bool = True) -> np.ndarray:
        req = self._validated(requests)
        m, n = self.shape
        grants = np.zeros((m, n), dtype=bool)
        self._pending = {}

        # Stage 1: each resource picks a winner among its column.
        offers: List[Optional[int]] = [None] * n
        for j in range(n):
            col = req[:, j]
            if col.any():
                offers[j] = self._col_arbs[j].select(col)

        # Stage 2: each requester picks among the resources offered to it.
        for i in range(m):
            offered = [offers[j] == i for j in range(n)]
            if not any(offered):
                continue
            choice = self._row_arbs[i].select(offered)
            if choice is None:
                continue
            grants[i, choice] = True
            self._pending[i] = (
                (self._row_arbs[i], choice),
                (self._col_arbs[choice], i),
            )
        if commit:
            self._commit_all()
        return grants
