"""Switch allocator front-ends (Section 5.1, Figure 8).

The switch allocator matches requests from the ``V`` input VCs at each
of the ``P`` input ports to crossbar output ports, subject to the extra
constraint that at most one VC per *input port* wins (the crossbar has
one input per port, not per VC).

Architectures, mirroring Figure 8:

* ``sep_if`` -- a V-input arbiter per input port first selects a winning
  VC; the winner's request is forwarded to its output port, where a
  P-input arbiter selects among ports.  Output arbiters can drive the
  crossbar directly.
* ``sep_of`` -- all VC requests are OR-combined per (input port, output
  port); each output port arbitrates among requesting input ports; an
  input port granted one or more outputs then runs V-input arbitration
  among the VCs able to use a granted port.
* ``wf`` -- a ``P x P`` wavefront allocator over the port-request
  matrix; since it grants at most one output per input, crossbar control
  comes straight from the wavefront outputs, and a winning VC per
  (input port, output port) is pre-selected in parallel by a stage of
  V-input arbiters.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from .arbiters import Arbiter, make_arbiter
from .wavefront import WavefrontAllocator

__all__ = ["SwitchAllocator", "SWITCH_ALLOCATOR_ARCHS", "port_request_matrix"]

SWITCH_ALLOCATOR_ARCHS = ("sep_if", "sep_of", "wf")

# requests[p][v] is the output port requested by VC v at input port p,
# or None when the VC has no flit ready.
SwitchRequests = Sequence[Sequence[Optional[int]]]
# grants[p] is (winning vc, output port) or None.
SwitchGrants = List[Optional[Tuple[int, int]]]


def port_request_matrix(requests: SwitchRequests, num_ports: int) -> np.ndarray:
    """Collapse per-VC requests into the P x P port-level request matrix."""
    mat = np.zeros((num_ports, num_ports), dtype=bool)
    for p, vc_reqs in enumerate(requests):
        for q in vc_reqs:
            if q is not None:
                mat[p, q] = True
    return mat


class SwitchAllocator:
    """Per-cycle crossbar scheduler.

    Parameters
    ----------
    num_ports:
        Router radix ``P`` (crossbar is ``P x P``).
    num_vcs:
        VCs per input port ``V``.
    arch:
        ``"sep_if"``, ``"sep_of"`` or ``"wf"``.
    arbiter:
        ``"rr"`` or ``"m"`` for the separable stages; the wavefront
        variant uses round-robin pre-selection arbiters only.
    """

    def __init__(
        self,
        num_ports: int,
        num_vcs: int,
        arch: str = "sep_if",
        arbiter: str = "rr",
    ) -> None:
        if num_ports < 1 or num_vcs < 1:
            raise ValueError("num_ports and num_vcs must be >= 1")
        if arch not in SWITCH_ALLOCATOR_ARCHS:
            raise ValueError(f"unknown switch allocator arch {arch!r}")
        self.num_ports = num_ports
        self.num_vcs = num_vcs
        self.arch = arch
        self.arbiter_kind = arbiter
        # True when the stage arbiters are plain round-robin: lets the
        # uncontested fast path poke their pointers directly instead of
        # paying two method calls per grant.
        self._all_rr = arbiter == "rr"
        #: Validate requests on every allocate() call; the network
        #: simulator disables this on its per-cycle hot path.
        self.check_requests = True
        #: Optional fault mask: output ports that must not be granted
        #: this cycle (downed links, see :mod:`repro.faults`).  ``None``
        #: in fault-free operation; the router updates it per cycle when
        #: transient link faults are scheduled.
        self.fault_mask: Optional[set] = None
        # Arbiter advances staged by the most recent
        # ``allocate(..., commit=False)`` call, keyed by input port.
        self._pending: Dict[int, Tuple[Tuple[Arbiter, int], ...]] = {}

        # V-input per-port VC arbiters (stage 1 for sep_if, stage 2 for
        # sep_of, pre-selection for wf).
        self._vc_arbs: List[Arbiter] = [
            make_arbiter(arbiter, num_vcs) for _ in range(num_ports)
        ]
        if arch == "wf":
            self._port_arbs: List[Arbiter] = []
            self._wavefront: Optional[WavefrontAllocator] = WavefrontAllocator(
                num_ports, num_ports
            )
        else:
            # P-input output-port arbiters.
            self._port_arbs = [make_arbiter(arbiter, num_ports) for _ in range(num_ports)]
            self._wavefront = None

    def reset(self) -> None:
        for arb in self._vc_arbs:
            arb.reset()
        for arb in self._port_arbs:
            arb.reset()
        if self._wavefront is not None:
            self._wavefront.reset()

    # ------------------------------------------------------------------
    def _validate(self, requests: SwitchRequests) -> None:
        if len(requests) != self.num_ports:
            raise ValueError(f"expected {self.num_ports} input ports")
        for p, vc_reqs in enumerate(requests):
            if len(vc_reqs) != self.num_vcs:
                raise ValueError(f"input port {p}: expected {self.num_vcs} VC slots")
            for q in vc_reqs:
                if q is not None and not 0 <= q < self.num_ports:
                    raise ValueError(f"input port {p}: output port {q} out of range")

    def allocate(self, requests: SwitchRequests, commit: bool = True) -> SwitchGrants:
        """Schedule one crossbar cycle.

        Returns, per input port, the ``(vc, output_port)`` pair that won
        switch access, or ``None``.  At most one grant per input port and
        per output port (a valid matching on the port-level matrix).

        With ``commit=False`` the arbiter priority updates for this
        cycle's grants are *staged* instead of applied; the caller must
        follow up with :meth:`commit`, naming the input ports whose
        grants actually took effect.  The speculative switch allocator
        uses this to honour the update-on-success rule end to end: a
        speculative grant masked off by the (pessimistic or
        conventional) filter never happened, so it must not advance
        arbiter state.  Grant *values* are identical either way --
        advances are applied only after every selection in the cycle is
        made, which matches the hardware's parallel evaluation.
        """
        if self.check_requests:
            self._validate(requests)
        if self.fault_mask is not None:
            requests = [
                [None if q in self.fault_mask else q for q in vc_reqs]
                for vc_reqs in requests
            ]
        self._pending = {}
        if self.arch == "sep_if":
            grants = self._allocate_sep_if(requests)
        elif self.arch == "sep_of":
            grants = self._allocate_sep_of(requests)
        else:
            grants = self._allocate_wavefront(requests)
        if commit:
            for advances in self._pending.values():
                for arb, winner in advances:
                    arb.advance(winner)
            self._pending.clear()
        return grants

    def commit(self, input_ports: Iterable[int]) -> None:
        """Apply the staged priority updates for the surviving grants.

        ``input_ports`` names the input ports (rows) of the grants from
        the preceding ``allocate(..., commit=False)`` call that were
        actually used; staged updates for every other grant are
        discarded (their arbiters keep their pre-cycle state).
        """
        pending = self._pending
        for p in input_ports:
            for arb, winner in pending.pop(p, ()):
                arb.advance(winner)
        pending.clear()

    # -- sparse fast path ------------------------------------------------
    def allocate_sparse(
        self, items: Sequence[Tuple[int, int, int]], commit: bool = True
    ) -> SwitchGrants:
        """Hot-path :meth:`allocate` over sparse requests.

        ``items`` lists the active requests as ``(input_port, vc,
        output_port)`` triples, sorted ascending by ``(input_port, vc)``
        -- exactly the non-``None`` cells of the dense request structure.
        No validation is performed, and ``fault_mask`` filtering is the
        caller's responsibility (the router masks blocked ports while
        building ``items``).  Grants and staged/committed priority
        updates are identical to the dense path; the differential
        harness in ``tests/perf`` pins this equivalence.

        With ``commit=True`` the priority updates are applied inline as
        each grant is issued rather than staged and replayed: by then
        every selection of the cycle has already been made (stage-1
        selects precede stage 2, and each arbiter instance is advanced
        at most once per cycle), so the inline order cannot change any
        outcome.
        """
        self._pending = {}
        if self.arch == "sep_if":
            return self._allocate_sep_if_sparse(items, commit)
        if self.arch == "sep_of":
            return self._allocate_sep_of_sparse(items, commit)
        return self._allocate_wavefront_sparse(items, commit)

    def grant_uncontested(self, items: Sequence[Tuple[int, int, int]]) -> None:
        """Commit a cycle whose sparse request set is conflict-free.

        Precondition: every input port and every output port appears at
        most once across ``items`` (the triples form a partial
        permutation of the port-request matrix).  All three
        architectures grant such a request set in full -- stage-1
        arbiters see a single requesting VC, stage-2/output arbiters a
        single bidder, and the wavefront sweep never meets an occupied
        row or column -- so the grants are exactly ``items`` and only
        the priority updates remain: the winning VC arbiter and (for
        the separable archs) the output-port arbiter advance per grant,
        while the wavefront diagonal rotates once per non-empty
        allocation.  The router's fast kernel uses this to skip the
        matching machinery on contention-free cycles; the differential
        harness pins equivalence with :meth:`allocate_sparse`.
        """
        vc_arbs = self._vc_arbs
        wavefront = self._wavefront
        if wavefront is None:
            port_arbs = self._port_arbs
            if self._all_rr:
                # Inlined RoundRobinArbiter.advance (winner validity is
                # guaranteed by the request-building loop).
                for p, v, q in items:
                    a = vc_arbs[p]
                    w = v + 1
                    a._pointer = w if w < a.num_inputs else 0
                    a = port_arbs[q]
                    w = p + 1
                    a._pointer = w if w < a.num_inputs else 0
                return
            for p, v, q in items:
                vc_arbs[p].advance(v)
                port_arbs[q].advance(p)
        else:
            for p, v, _q in items:
                vc_arbs[p].advance(v)
            if items:
                wavefront.advance_priority()

    def _allocate_sep_if_sparse(
        self, items: Sequence[Tuple[int, int, int]], commit: bool
    ) -> SwitchGrants:
        grants: SwitchGrants = [None] * self.num_ports
        vc_arbs = self._vc_arbs
        port_arbs = self._port_arbs
        n = len(items)

        # Single request: both stages see one bidder, which wins.
        if n == 1:
            p, v, q = items[0]
            grants[p] = (v, q)
            if commit:
                vc_arbs[p].advance(v)
                port_arbs[q].advance(p)
            else:
                self._pending[p] = ((vc_arbs[p], v), (port_arbs[q], p))
            return grants

        # Stage 1: pick a winning VC at each active input port.  Items
        # of one port are consecutive (ascending order); the common
        # single-VC case needs no arbitration.
        by_out: Dict[int, List[int]] = {}
        bid_vc: Dict[int, int] = {}
        i = 0
        while i < n:
            p, v, q = items[i]
            j = i + 1
            if j < n and items[j][0] == p:
                vs = [v]
                qs = [q]
                while j < n and items[j][0] == p:
                    item = items[j]
                    vs.append(item[1])
                    qs.append(item[2])
                    j += 1
                v = vc_arbs[p].select_sparse(vs)
                q = qs[vs.index(v)]
            bid_vc[p] = v
            lst = by_out.get(q)
            if lst is None:
                by_out[q] = [p]
            else:
                lst.append(p)
            i = j

        # Stage 2: arbitrate among forwarded requests at each output
        # port (a non-empty bidder list always yields a winner).
        pending = self._pending
        for q, ports in by_out.items():
            arb = port_arbs[q]
            winner = ports[0] if len(ports) == 1 else arb.select_sparse(ports)
            vc = bid_vc[winner]
            grants[winner] = (vc, q)
            if commit:
                vc_arbs[winner].advance(vc)
                arb.advance(winner)
            else:
                pending[winner] = ((vc_arbs[winner], vc), (arb, winner))
        return grants

    def _allocate_sep_of_sparse(
        self, items: Sequence[Tuple[int, int, int]], commit: bool
    ) -> SwitchGrants:
        grants: SwitchGrants = [None] * self.num_ports

        # Port-level request columns (ports ascending per column, since
        # items are sorted by input port).
        cols: Dict[int, List[int]] = {}
        # Requests grouped per input port, preserving (v, q) order.
        rows: Dict[int, List[Tuple[int, int]]] = {}
        for p, v, q in items:
            row = rows.get(p)
            if row is None:
                rows[p] = [(v, q)]
            else:
                row.append((v, q))
            col = cols.get(q)
            if col is None:
                cols[q] = [p]
            elif col[-1] != p:  # collapse multiple VCs of one port
                col.append(p)

        # Stage 1: each requested output port offers itself to one input.
        offers: Dict[int, int] = {}
        for q, ports in cols.items():
            offers[q] = self._port_arbs[q].select_sparse(ports)

        # Stage 2: each input port arbitrates among VCs able to use a
        # granted output.
        for p, row in rows.items():
            vs = [v for v, q in row if offers.get(q) == p]
            if not vs:
                continue
            if len(vs) == 1:
                vc = vs[0]
            else:
                vc = self._vc_arbs[p].select_sparse(vs)
            out = next(q for v, q in row if v == vc)
            grants[p] = (vc, out)
            if commit:
                self._vc_arbs[p].advance(vc)
                self._port_arbs[out].advance(p)
            else:
                self._pending[p] = (
                    (self._vc_arbs[p], vc),
                    (self._port_arbs[out], p),
                )
        return grants

    def _allocate_wavefront_sparse(
        self, items: Sequence[Tuple[int, int, int]], commit: bool
    ) -> SwitchGrants:
        # Pair-based sweep: the port-request matrix is never built.
        # Deduplicated (p, q) pairs in row-major order reproduce the
        # dense path's ``np.nonzero`` enumeration; grant iteration
        # order is immaterial (each granted row is independent).
        P = self.num_ports
        grants: SwitchGrants = [None] * P
        rows: Dict[int, List[Tuple[int, int]]] = {}
        pair_set: set = set()
        for p, v, q in items:
            row = rows.get(p)
            if row is None:
                rows[p] = [(v, q)]
            else:
                row.append((v, q))
            pair_set.add((p, q))
        assert self._wavefront is not None
        vc_arbs = self._vc_arbs
        for p, q in self._wavefront.allocate_pairs(sorted(pair_set)):
            vs = [v for v, qq in rows[p] if qq == q]
            if len(vs) == 1:
                vc = vs[0]
            else:
                vc = vc_arbs[p].select_sparse(vs)
            grants[p] = (vc, q)
            if commit:
                vc_arbs[p].advance(vc)
            else:
                self._pending[p] = ((vc_arbs[p], vc),)
        return grants

    @staticmethod
    def crossbar_config(grants: SwitchGrants, num_ports: int) -> np.ndarray:
        """P x P boolean crossbar control matrix from a grant vector."""
        xbar = np.zeros((num_ports, num_ports), dtype=bool)
        for p, g in enumerate(grants):
            if g is not None:
                xbar[p, g[1]] = True
        return xbar

    # -- separable input-first -----------------------------------------
    def _allocate_sep_if(self, requests: SwitchRequests) -> SwitchGrants:
        P = self.num_ports
        grants: SwitchGrants = [None] * P

        # Stage 1: pick a winning VC at each input port.
        port_bid: List[Optional[Tuple[int, int]]] = [None] * P  # (vc, out port)
        for p in range(P):
            active = [q is not None for q in requests[p]]
            if not any(active):
                continue
            vc = self._vc_arbs[p].select(active)
            if vc is not None:
                out = requests[p][vc]
                assert out is not None
                port_bid[p] = (vc, out)

        # Stage 2: arbitrate among forwarded requests at each output port.
        for q in range(P):
            incoming = [port_bid[p] is not None and port_bid[p][1] == q for p in range(P)]
            if not any(incoming):
                continue
            winner = self._port_arbs[q].select(incoming)
            if winner is None:
                continue
            vc, _ = port_bid[winner]  # type: ignore[misc]
            grants[winner] = (vc, q)
            self._pending[winner] = (
                (self._vc_arbs[winner], vc),
                (self._port_arbs[q], winner),
            )
        return grants

    # -- separable output-first ------------------------------------------
    def _allocate_sep_of(self, requests: SwitchRequests) -> SwitchGrants:
        P = self.num_ports
        V = self.num_vcs
        grants: SwitchGrants = [None] * P
        port_req = port_request_matrix(requests, P)

        # Stage 1: each output port offers itself to one input port.
        offers: List[Optional[int]] = [None] * P
        for q in range(P):
            col = port_req[:, q]
            if col.any():
                offers[q] = self._port_arbs[q].select(col)

        # Stage 2: each input port arbitrates among VCs that can use a
        # granted output port.
        for p in range(P):
            granted_ports = {q for q in range(P) if offers[q] == p}
            if not granted_ports:
                continue
            eligible = [requests[p][v] in granted_ports for v in range(V)]
            if not any(eligible):
                continue
            vc = self._vc_arbs[p].select(eligible)
            if vc is None:
                continue
            out = requests[p][vc]
            assert out is not None
            grants[p] = (vc, out)
            self._pending[p] = (
                (self._vc_arbs[p], vc),
                (self._port_arbs[out], p),
            )
        return grants

    # -- wavefront -------------------------------------------------------
    def _allocate_wavefront(self, requests: SwitchRequests) -> SwitchGrants:
        P = self.num_ports
        V = self.num_vcs
        grants: SwitchGrants = [None] * P
        port_req = port_request_matrix(requests, P)
        assert self._wavefront is not None
        port_grants = self._wavefront.allocate(port_req)

        for p, q in zip(*np.nonzero(port_grants)):
            # Pre-selection: among VCs at p requesting q, pick one using
            # the per-port arbiter state (performed in parallel with the
            # wavefront in hardware).
            eligible = [requests[p][v] == q for v in range(V)]
            vc = self._vc_arbs[p].select(eligible)
            assert vc is not None  # port_req[p, q] implies an eligible VC
            grants[p] = (vc, int(q))
            self._pending[p] = ((self._vc_arbs[p], vc),)
        return grants
