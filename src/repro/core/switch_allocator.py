"""Switch allocator front-ends (Section 5.1, Figure 8).

The switch allocator matches requests from the ``V`` input VCs at each
of the ``P`` input ports to crossbar output ports, subject to the extra
constraint that at most one VC per *input port* wins (the crossbar has
one input per port, not per VC).

Architectures, mirroring Figure 8:

* ``sep_if`` -- a V-input arbiter per input port first selects a winning
  VC; the winner's request is forwarded to its output port, where a
  P-input arbiter selects among ports.  Output arbiters can drive the
  crossbar directly.
* ``sep_of`` -- all VC requests are OR-combined per (input port, output
  port); each output port arbitrates among requesting input ports; an
  input port granted one or more outputs then runs V-input arbitration
  among the VCs able to use a granted port.
* ``wf`` -- a ``P x P`` wavefront allocator over the port-request
  matrix; since it grants at most one output per input, crossbar control
  comes straight from the wavefront outputs, and a winning VC per
  (input port, output port) is pre-selected in parallel by a stage of
  V-input arbiters.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from .arbiters import Arbiter, make_arbiter
from .wavefront import WavefrontAllocator

__all__ = ["SwitchAllocator", "SWITCH_ALLOCATOR_ARCHS", "port_request_matrix"]

SWITCH_ALLOCATOR_ARCHS = ("sep_if", "sep_of", "wf")

# requests[p][v] is the output port requested by VC v at input port p,
# or None when the VC has no flit ready.
SwitchRequests = Sequence[Sequence[Optional[int]]]
# grants[p] is (winning vc, output port) or None.
SwitchGrants = List[Optional[Tuple[int, int]]]


def port_request_matrix(requests: SwitchRequests, num_ports: int) -> np.ndarray:
    """Collapse per-VC requests into the P x P port-level request matrix."""
    mat = np.zeros((num_ports, num_ports), dtype=bool)
    for p, vc_reqs in enumerate(requests):
        for q in vc_reqs:
            if q is not None:
                mat[p, q] = True
    return mat


class SwitchAllocator:
    """Per-cycle crossbar scheduler.

    Parameters
    ----------
    num_ports:
        Router radix ``P`` (crossbar is ``P x P``).
    num_vcs:
        VCs per input port ``V``.
    arch:
        ``"sep_if"``, ``"sep_of"`` or ``"wf"``.
    arbiter:
        ``"rr"`` or ``"m"`` for the separable stages; the wavefront
        variant uses round-robin pre-selection arbiters only.
    """

    def __init__(
        self,
        num_ports: int,
        num_vcs: int,
        arch: str = "sep_if",
        arbiter: str = "rr",
    ) -> None:
        if num_ports < 1 or num_vcs < 1:
            raise ValueError("num_ports and num_vcs must be >= 1")
        if arch not in SWITCH_ALLOCATOR_ARCHS:
            raise ValueError(f"unknown switch allocator arch {arch!r}")
        self.num_ports = num_ports
        self.num_vcs = num_vcs
        self.arch = arch
        self.arbiter_kind = arbiter
        #: Validate requests on every allocate() call; the network
        #: simulator disables this on its per-cycle hot path.
        self.check_requests = True
        #: Optional fault mask: output ports that must not be granted
        #: this cycle (downed links, see :mod:`repro.faults`).  ``None``
        #: in fault-free operation; the router updates it per cycle when
        #: transient link faults are scheduled.
        self.fault_mask: Optional[set] = None

        # V-input per-port VC arbiters (stage 1 for sep_if, stage 2 for
        # sep_of, pre-selection for wf).
        self._vc_arbs: List[Arbiter] = [
            make_arbiter(arbiter, num_vcs) for _ in range(num_ports)
        ]
        if arch == "wf":
            self._port_arbs: List[Arbiter] = []
            self._wavefront: Optional[WavefrontAllocator] = WavefrontAllocator(
                num_ports, num_ports
            )
        else:
            # P-input output-port arbiters.
            self._port_arbs = [make_arbiter(arbiter, num_ports) for _ in range(num_ports)]
            self._wavefront = None

    def reset(self) -> None:
        for arb in self._vc_arbs:
            arb.reset()
        for arb in self._port_arbs:
            arb.reset()
        if self._wavefront is not None:
            self._wavefront.reset()

    # ------------------------------------------------------------------
    def _validate(self, requests: SwitchRequests) -> None:
        if len(requests) != self.num_ports:
            raise ValueError(f"expected {self.num_ports} input ports")
        for p, vc_reqs in enumerate(requests):
            if len(vc_reqs) != self.num_vcs:
                raise ValueError(f"input port {p}: expected {self.num_vcs} VC slots")
            for q in vc_reqs:
                if q is not None and not 0 <= q < self.num_ports:
                    raise ValueError(f"input port {p}: output port {q} out of range")

    def allocate(self, requests: SwitchRequests) -> SwitchGrants:
        """Schedule one crossbar cycle.

        Returns, per input port, the ``(vc, output_port)`` pair that won
        switch access, or ``None``.  At most one grant per input port and
        per output port (a valid matching on the port-level matrix).
        """
        if self.check_requests:
            self._validate(requests)
        if self.fault_mask is not None:
            requests = [
                [None if q in self.fault_mask else q for q in vc_reqs]
                for vc_reqs in requests
            ]
        if self.arch == "sep_if":
            return self._allocate_sep_if(requests)
        if self.arch == "sep_of":
            return self._allocate_sep_of(requests)
        return self._allocate_wavefront(requests)

    @staticmethod
    def crossbar_config(grants: SwitchGrants, num_ports: int) -> np.ndarray:
        """P x P boolean crossbar control matrix from a grant vector."""
        xbar = np.zeros((num_ports, num_ports), dtype=bool)
        for p, g in enumerate(grants):
            if g is not None:
                xbar[p, g[1]] = True
        return xbar

    # -- separable input-first -----------------------------------------
    def _allocate_sep_if(self, requests: SwitchRequests) -> SwitchGrants:
        P = self.num_ports
        grants: SwitchGrants = [None] * P

        # Stage 1: pick a winning VC at each input port.
        port_bid: List[Optional[Tuple[int, int]]] = [None] * P  # (vc, out port)
        for p in range(P):
            active = [q is not None for q in requests[p]]
            if not any(active):
                continue
            vc = self._vc_arbs[p].select(active)
            if vc is not None:
                out = requests[p][vc]
                assert out is not None
                port_bid[p] = (vc, out)

        # Stage 2: arbitrate among forwarded requests at each output port.
        for q in range(P):
            incoming = [port_bid[p] is not None and port_bid[p][1] == q for p in range(P)]
            if not any(incoming):
                continue
            winner = self._port_arbs[q].select(incoming)
            if winner is None:
                continue
            vc, _ = port_bid[winner]  # type: ignore[misc]
            grants[winner] = (vc, q)
            self._vc_arbs[winner].advance(vc)
            self._port_arbs[q].advance(winner)
        return grants

    # -- separable output-first ------------------------------------------
    def _allocate_sep_of(self, requests: SwitchRequests) -> SwitchGrants:
        P = self.num_ports
        V = self.num_vcs
        grants: SwitchGrants = [None] * P
        port_req = port_request_matrix(requests, P)

        # Stage 1: each output port offers itself to one input port.
        offers: List[Optional[int]] = [None] * P
        for q in range(P):
            col = port_req[:, q]
            if col.any():
                offers[q] = self._port_arbs[q].select(col)

        # Stage 2: each input port arbitrates among VCs that can use a
        # granted output port.
        for p in range(P):
            granted_ports = {q for q in range(P) if offers[q] == p}
            if not granted_ports:
                continue
            eligible = [requests[p][v] in granted_ports for v in range(V)]
            if not any(eligible):
                continue
            vc = self._vc_arbs[p].select(eligible)
            if vc is None:
                continue
            out = requests[p][vc]
            assert out is not None
            grants[p] = (vc, out)
            self._vc_arbs[p].advance(vc)
            self._port_arbs[out].advance(p)
        return grants

    # -- wavefront -------------------------------------------------------
    def _allocate_wavefront(self, requests: SwitchRequests) -> SwitchGrants:
        P = self.num_ports
        V = self.num_vcs
        grants: SwitchGrants = [None] * P
        port_req = port_request_matrix(requests, P)
        assert self._wavefront is not None
        port_grants = self._wavefront.allocate(port_req)

        for p, q in zip(*np.nonzero(port_grants)):
            # Pre-selection: among VCs at p requesting q, pick one using
            # the per-port arbiter state (performed in parallel with the
            # wavefront in hardware).
            eligible = [requests[p][v] == q for v in range(V)]
            vc = self._vc_arbs[p].select(eligible)
            assert vc is not None  # port_req[p, q] implies an eligible VC
            grants[p] = (vc, int(q))
            self._vc_arbs[p].advance(vc)
        return grants
