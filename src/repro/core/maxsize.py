"""Maximum-size allocator (Section 2.3).

Computes a *maximum* bipartite matching via the Hopcroft-Karp algorithm
(repeated phases of BFS layering plus DFS augmentation along shortest
augmenting paths).  The paper uses a maximum-size allocator purely as a
quality yardstick: it provides no fairness and is too complex/iterative
for single-cycle NoC allocation, but upper-bounds the grant count any
allocator can achieve, defining the denominator of the *matching
quality* metric (Section 3.1).
"""

from __future__ import annotations

from collections import deque
from typing import List

import numpy as np

from .base import Allocator

__all__ = ["MaximumSizeAllocator", "maximum_matching_size", "hopcroft_karp"]

_INF = float("inf")


def hopcroft_karp(adjacency: List[List[int]], num_right: int) -> List[int]:
    """Maximum bipartite matching.

    Parameters
    ----------
    adjacency:
        ``adjacency[u]`` lists the right-side vertices adjacent to left
        vertex ``u``.
    num_right:
        Number of right-side vertices.

    Returns
    -------
    list[int]
        ``match_left`` where ``match_left[u]`` is the matched right
        vertex for ``u`` or ``-1``.
    """
    num_left = len(adjacency)
    match_left = [-1] * num_left
    match_right = [-1] * num_right
    dist = [0.0] * num_left

    def bfs() -> bool:
        queue = deque()
        for u in range(num_left):
            if match_left[u] == -1:
                dist[u] = 0.0
                queue.append(u)
            else:
                dist[u] = _INF
        found = False
        while queue:
            u = queue.popleft()
            for v in adjacency[u]:
                w = match_right[v]
                if w == -1:
                    found = True
                elif dist[w] == _INF:
                    dist[w] = dist[u] + 1
                    queue.append(w)
        return found

    def dfs(u: int) -> bool:
        for v in adjacency[u]:
            w = match_right[v]
            if w == -1 or (dist[w] == dist[u] + 1 and dfs(w)):
                match_left[u] = v
                match_right[v] = u
                return True
        dist[u] = _INF
        return False

    while bfs():
        for u in range(num_left):
            if match_left[u] == -1:
                dfs(u)
    return match_left


def maximum_matching_size(requests: np.ndarray) -> int:
    """Size of a maximum matching of a boolean request matrix."""
    req = np.asarray(requests, dtype=bool)
    adjacency = [np.flatnonzero(req[i]).tolist() for i in range(req.shape[0])]
    match_left = hopcroft_karp(adjacency, req.shape[1])
    return sum(1 for v in match_left if v != -1)


class MaximumSizeAllocator(Allocator):
    """Stateless allocator returning a maximum matching.

    Deterministic for a given request matrix; inherently unfair (it will
    starve individual requesters to maximize total throughput), exactly
    as Section 2.3 cautions.
    """

    def allocate(self, requests: np.ndarray) -> np.ndarray:
        req = self._validated(requests)
        m, n = self.shape
        adjacency = [np.flatnonzero(req[i]).tolist() for i in range(m)]
        match_left = hopcroft_karp(adjacency, n)
        grants = np.zeros((m, n), dtype=bool)
        for u, v in enumerate(match_left):
            if v != -1:
                grants[u, v] = True
        return grants

    def reset(self) -> None:  # stateless
        return None
