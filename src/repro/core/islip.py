"""Iterative SLIP allocator (extension beyond the paper).

Section 2.1 notes that "multiple iterations can be performed to improve
matching quality" of separable allocators but that tight delay budgets
usually rule this out in NoCs.  This module implements iSLIP
[McKeown 1999], the canonical iterative separable allocator, so the
repository can *quantify* that remark: the ablation benchmarks measure
how many iterations it takes to close the matching-quality gap between
a one-pass separable allocator and the wavefront allocator.

Each iteration runs grant (resource-side) then accept (requester-side)
arbitration over the still-unmatched rows/columns; pointers advance only
for grants accepted in the first iteration, which is what gives iSLIP
its desynchronization and starvation-freedom properties.
"""

from __future__ import annotations

from typing import Callable, List

import numpy as np

from .arbiters import Arbiter, RoundRobinArbiter
from .base import Allocator

__all__ = ["IterativeSLIPAllocator"]


class IterativeSLIPAllocator(Allocator):
    """iSLIP with a configurable iteration count.

    Parameters
    ----------
    num_requesters, num_resources:
        Matrix dimensions.
    iterations:
        Number of grant/accept rounds (>= 1).  With enough iterations the
        matching becomes maximal.
    arbiter_factory:
        Pointer-arbiter constructor (round-robin per the original paper).
    """

    def __init__(
        self,
        num_requesters: int,
        num_resources: int,
        iterations: int = 1,
        arbiter_factory: Callable[[int], Arbiter] = RoundRobinArbiter,
    ) -> None:
        super().__init__(num_requesters, num_resources)
        if iterations < 1:
            raise ValueError("iterations must be >= 1")
        self.iterations = iterations
        self._grant_arbs: List[Arbiter] = [
            arbiter_factory(num_requesters) for _ in range(num_resources)
        ]
        self._accept_arbs: List[Arbiter] = [
            arbiter_factory(num_resources) for _ in range(num_requesters)
        ]

    def reset(self) -> None:
        for arb in self._grant_arbs:
            arb.reset()
        for arb in self._accept_arbs:
            arb.reset()

    def allocate(self, requests: np.ndarray) -> np.ndarray:
        req = self._validated(requests)
        m, n = self.shape
        grants = np.zeros((m, n), dtype=bool)
        row_free = [True] * m
        col_free = [True] * n

        for iteration in range(self.iterations):
            # Grant phase: every unmatched resource offers to one
            # unmatched requester from its column.
            offers = [-1] * n
            for j in range(n):
                if not col_free[j]:
                    continue
                col = [req[i, j] and row_free[i] for i in range(m)]
                if not any(col):
                    continue
                winner = self._grant_arbs[j].select(col)
                if winner is not None:
                    offers[j] = winner

            # Accept phase: every requester with offers accepts one.
            progressed = False
            for i in range(m):
                if not row_free[i]:
                    continue
                offered = [offers[j] == i for j in range(n)]
                if not any(offered):
                    continue
                choice = self._accept_arbs[i].select(offered)
                if choice is None:
                    continue
                grants[i, choice] = True
                row_free[i] = False
                col_free[choice] = False
                progressed = True
                # Pointers advance only on first-iteration accepts.
                if iteration == 0:
                    self._grant_arbs[choice].advance(i)
                    self._accept_arbs[i].advance(choice)
            if not progressed:
                break
        return grants
