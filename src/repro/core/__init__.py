"""Allocator core: the paper's subject matter.

Behavioural models of the arbiters and allocators evaluated in
Becker & Dally, "Allocator Implementations for Network-on-Chip Routers"
(SC 2009): separable input-/output-first and wavefront allocators,
maximum-size matching as a quality yardstick, VC and switch allocator
front-ends, sparse VC allocation, and speculative switch allocation.
"""

from .arbiters import (
    Arbiter,
    FixedPriorityArbiter,
    MatrixArbiter,
    RoundRobinArbiter,
    TreeArbiter,
    make_arbiter,
)
from .base import (
    Allocator,
    as_request_matrix,
    is_matching,
    is_maximal_matching,
    matching_size,
)
from .islip import IterativeSLIPAllocator
from .maxsize import MaximumSizeAllocator, hopcroft_karp, maximum_matching_size
from .separable import (
    SeparableAllocator,
    SeparableInputFirstAllocator,
    SeparableOutputFirstAllocator,
)
from .speculative import (
    SPECULATION_SCHEMES,
    SpeculativeGrants,
    SpeculativeSwitchAllocator,
)
from .switch_allocator import (
    SWITCH_ALLOCATOR_ARCHS,
    SwitchAllocator,
    port_request_matrix,
)
from .vc_allocator import VC_ALLOCATOR_ARCHS, VCAllocator, VCRequest
from .vc_partition import VCPartition
from .wavefront import WavefrontAllocator

__all__ = [
    "Allocator",
    "Arbiter",
    "FixedPriorityArbiter",
    "IterativeSLIPAllocator",
    "MatrixArbiter",
    "MaximumSizeAllocator",
    "RoundRobinArbiter",
    "SeparableAllocator",
    "SeparableInputFirstAllocator",
    "SeparableOutputFirstAllocator",
    "SpeculativeGrants",
    "SpeculativeSwitchAllocator",
    "SwitchAllocator",
    "TreeArbiter",
    "VCAllocator",
    "VCPartition",
    "VCRequest",
    "WavefrontAllocator",
    "SPECULATION_SCHEMES",
    "SWITCH_ALLOCATOR_ARCHS",
    "VC_ALLOCATOR_ARCHS",
    "as_request_matrix",
    "hopcroft_karp",
    "is_matching",
    "is_maximal_matching",
    "make_arbiter",
    "matching_size",
    "maximum_matching_size",
    "port_request_matrix",
]
