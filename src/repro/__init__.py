"""repro -- reproduction of Becker & Dally, SC 2009.

"Allocator Implementations for Network-on-Chip Routers": VC and switch
allocator architectures, sparse VC allocation, pessimistic speculative
switch allocation, a 45nm-class gate-level cost model standing in for
the paper's Synopsys Design Compiler flow, and a cycle-accurate NoC
simulator for the network-level experiments.

Subpackages
-----------
``repro.core``
    Behavioural allocators and arbiters (the paper's contribution).
``repro.hw``
    Gate-level netlists, static timing, area and power estimation.
``repro.netsim``
    Cycle-accurate VC-router network simulator (mesh, flattened
    butterfly, DOR/UGAL routing, request-reply traffic).
``repro.eval``
    Experiment harness regenerating every figure of the paper.
"""

from . import core, eval, hw, netsim
from .core import (
    MatrixArbiter,
    MaximumSizeAllocator,
    RoundRobinArbiter,
    SeparableInputFirstAllocator,
    SeparableOutputFirstAllocator,
    SpeculativeSwitchAllocator,
    SwitchAllocator,
    VCAllocator,
    VCPartition,
    VCRequest,
    WavefrontAllocator,
)

__version__ = "1.0.0"

__all__ = [
    "core",
    "eval",
    "hw",
    "netsim",
    "MatrixArbiter",
    "MaximumSizeAllocator",
    "RoundRobinArbiter",
    "SeparableInputFirstAllocator",
    "SeparableOutputFirstAllocator",
    "SpeculativeSwitchAllocator",
    "SwitchAllocator",
    "VCAllocator",
    "VCPartition",
    "VCRequest",
    "WavefrontAllocator",
    "__version__",
]
