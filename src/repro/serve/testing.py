"""Deterministic analytic stand-ins for serve integration tests.

Real simulations take seconds per point; protocol and scheduling tests
need none of that fidelity.  :func:`analytic_result` maps a config to a
fully deterministic :class:`~repro.netsim.simulator.SimulationResult`
(an M/M/1-ish latency curve in the injection rate, perturbed by the
seed), so any two workers -- local, remote, or on different test runs
-- produce byte-identical payloads for the same config, which is
exactly the bit-identity contract the real simulator honors.

``analytic_worker`` is the process-pool/worker-loop flavor (dict in,
dict out) for ``repro work --worker-fn repro.serve.testing:analytic_worker``.
``failing_worker`` always raises, for retry/failure-path tests.
"""

from __future__ import annotations

from typing import Dict

from ..netsim.simulator import SimulationConfig, SimulationResult

__all__ = ["analytic_result", "analytic_sim", "analytic_worker", "failing_worker"]


def analytic_result(cfg: SimulationConfig) -> SimulationResult:
    """Deterministic pseudo-result: latency grows 1/(1-rate)-style."""
    rate = min(max(cfg.injection_rate, 0.0), 0.95)
    zero_load = 20.0 + (cfg.seed % 7)
    latency = zero_load / max(1.0 - rate / 0.6, 0.05)
    saturated = rate >= 0.55
    return SimulationResult(
        config=cfg,
        avg_latency=round(latency, 3),
        measured_packets=1000,
        delivered_packets=1000,
        injected_flit_rate=rate,
        accepted_flit_rate=rate if not saturated else 0.55,
        saturated=saturated,
        # The default stderr is NaN, which is never equal to itself --
        # keep every payload field finite so tests can assert whole-dict
        # equality across the wire.
        latency_stderr=round(latency / 100.0, 4),
    )


def analytic_sim(cfg: SimulationConfig) -> SimulationResult:
    return analytic_result(cfg)


def analytic_worker(cfg_dict: Dict) -> Dict:
    """Worker-loop / process-pool entry: dict in, payload dict out."""
    return analytic_result(SimulationConfig.from_dict(cfg_dict)).to_payload()


def failing_worker(cfg_dict: Dict) -> Dict:
    """Always raises -- exercises retry exhaustion and failure fan-out."""
    raise ValueError(
        f"injected test failure at rate {cfg_dict.get('injection_rate')}"
    )
