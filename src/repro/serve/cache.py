"""Sharded on-disk result cache for the sweep server.

The server memoizes every completed point so concurrent clients share
warm results.  A single :class:`~repro.eval.runner.ResultCache` file
would grow with the union of every client's sweeps and each batched
flush would rewrite all of it; sharding by cache key spreads that cost
across ``shards`` independent files (``shard-00.json`` ...), each a
perfectly ordinary ``ResultCache`` -- same schema, same salt handling,
same quarantine-on-corruption story, and inspectable with nothing but
``python -m json.tool``.

Keys are the existing content checksums from
:func:`~repro.eval.runner.config_key` (salted SHA-256 hex), so the
leading hex digits are uniformly distributed and a simple prefix mod
balances the shards.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict, Optional

from ..eval.runner import ResultCache

__all__ = ["ShardedResultCache"]


class ShardedResultCache:
    """``ResultCache`` semantics spread across N shard files."""

    def __init__(
        self,
        root: os.PathLike,
        shards: int = 8,
        flush_every: int = 32,
        flush_interval: float = 5.0,
    ) -> None:
        self.root = Path(root)
        self.num_shards = max(int(shards), 1)
        self.root.mkdir(parents=True, exist_ok=True)
        self._shards = [
            ResultCache(
                self.root / f"shard-{i:02d}.json",
                flush_every=flush_every,
                flush_interval=flush_interval,
            )
            for i in range(self.num_shards)
        ]
        self.salt = self._shards[0].salt

    def _shard(self, key: str) -> ResultCache:
        try:
            bucket = int(key[:8], 16) % self.num_shards
        except ValueError:
            bucket = hash(key) % self.num_shards
        return self._shards[bucket]

    def __len__(self) -> int:
        return sum(len(s) for s in self._shards)

    def get_payload(self, key: str) -> Optional[Dict]:
        return self._shard(key).get_payload(key)

    def put_payload(self, key: str, payload: Dict) -> None:
        self._shard(key).put_payload(key, payload)

    def flush(self) -> None:
        for shard in self._shards:
            shard.flush()

    @property
    def flushes(self) -> int:
        return sum(s.flushes for s in self._shards)
