"""Distributed sweep service: job-queue server, workers, client.

The paper's evaluation is a bag of independent simulation points, and
:mod:`repro.eval.runner` already fans them out across local processes.
This package adds the missing transport so one sweep can span machines:

* :mod:`repro.serve.server` -- ``repro serve``: an asyncio job-queue
  scheduler that accepts sweeps from clients, shards their points
  across connected workers, dedupes identical points across clients
  through a sharded on-disk :class:`~repro.eval.runner.ResultCache`,
  and journals completed points so a crashed server resumes.

* :mod:`repro.serve.worker` -- ``repro work --connect HOST:PORT``: a
  synchronous lease/compute/report loop around the same
  ``run_simulation_worker`` the local process pool uses.

* :mod:`repro.serve.client` -- :class:`RemoteScheduler`, the
  :class:`~repro.eval.runner.PointScheduler` implementation behind
  ``repro sweep --connect``: submits the pending points and streams
  results back into the ordinary sweep bookkeeping.

* :mod:`repro.serve.protocol` -- the line-delimited JSON wire format
  shared by all three (see ``docs/DISTRIBUTED.md``).

Because every simulation seeds its RNG streams purely from
``(config.seed, terminal_id)``, results are bit-identical no matter
which worker -- or which machine -- computed them.
"""

from .client import RemoteScheduler
from .protocol import PROTOCOL_VERSION, ProtocolError, parse_address

__all__ = [
    "PROTOCOL_VERSION",
    "ProtocolError",
    "RemoteScheduler",
    "parse_address",
]
