"""Client side of the sweep service: the :class:`RemoteScheduler`.

``repro sweep --connect HOST:PORT`` plugs this scheduler into the
ordinary :func:`~repro.eval.runner.run_sweep` loop -- cache lookups,
checkpoints, reporters and failure policy all stay client-side and
unchanged; only the *computation* of pending points moves to the
server.  Warm results the server serves from its shared cache arrive
flagged ``cached`` and are recorded as cache hits, so two clients
sweeping overlapping design spaces pay for each point once between
them.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from ..eval.runner import PointScheduler, SweepStats
from ..netsim.simulator import SimulationConfig, SimulationResult
from .protocol import (
    MessageSocket,
    ProtocolError,
    check_welcome,
    hello_message,
    parse_address,
)

__all__ = ["RemoteScheduler"]


class RemoteScheduler(PointScheduler):
    """Ship pending points to a ``repro serve`` instance.

    Retry, backoff, lease-requeue and multi-client dedup all happen
    server-side; this class only submits and streams.  A failure the
    server could not retry away surfaces through ``fail`` exactly like
    a local pool failure, so ``on_failure="raise"``/``"record"``
    behave identically for remote sweeps.
    """

    def __init__(
        self, address: str, connect_timeout: float = 30.0
    ) -> None:
        self.address = address
        self.connect_timeout = connect_timeout

    def run(
        self,
        configs: Sequence[SimulationConfig],
        pending: List[int],
        record: Callable[..., None],
        fail: Callable[..., None],
        stats: SweepStats,
    ) -> None:
        host, port = parse_address(self.address)
        sock = MessageSocket.connect(host, port, timeout=self.connect_timeout)
        try:
            sock.send(hello_message("client"))
            check_welcome(sock.recv())
            sock.send({
                "type": "submit",
                "points": [
                    {"index": i, "config": configs[i].to_dict()}
                    for i in pending
                ],
            })
            outstanding = set(pending)
            while outstanding:
                msg = sock.recv()
                if msg is None:
                    raise ProtocolError(
                        f"server {self.address} closed the connection with "
                        f"{len(outstanding)} point(s) outstanding"
                    )
                mtype = msg.get("type")
                if mtype == "point":
                    index = msg["index"]
                    outstanding.discard(index)
                    record(
                        index,
                        SimulationResult.from_payload(msg["payload"]),
                        cached=bool(msg.get("cached")),
                    )
                elif mtype == "failed":
                    index = msg["index"]
                    outstanding.discard(index)
                    # May raise SweepPointError (on_failure="raise");
                    # the finally below still closes the socket.
                    fail(
                        index,
                        msg.get("kind", "exception"),
                        msg.get("error", "RemoteFailure"),
                        msg.get("message", ""),
                        msg.get("detail"),
                        int(msg.get("attempts", 1)),
                    )
                elif mtype == "error":
                    raise ProtocolError(
                        f"server {self.address} rejected the sweep: "
                        f"{msg.get('message')}"
                    )
                elif mtype == "sweep_done":
                    break
        finally:
            sock.close()
