"""``repro serve``: the asyncio job-queue scheduler.

One server process owns three pieces of shared state:

* a **task registry** -- every distinct pending point, keyed by its
  salted config key, with the list of (sweep, index) waiters that want
  its result.  Two clients submitting the same point share one
  computation.
* a **ready queue** of task keys.  Workers lease from it; reported
  failures re-enter it after exponential backoff (the same
  ``retries``/``backoff`` semantics as the local pool), and a lease
  lost to worker death or timeout re-enters it immediately, up to
  ``max_requeues`` times before the point is failed as a crash.
* the **sharded result cache** plus per-sweep checkpoint journals and
  telemetry under ``state_dir`` -- so a killed server restarts warm,
  and a client resubmitting the same sweep resumes from the journal
  instead of recomputing (see ``docs/DISTRIBUTED.md``).

The server never simulates anything itself; it only schedules.  All
state mutation happens on the event-loop thread, so there are no locks
-- the invariant to preserve when editing is that no method below
``await``s while holding half-updated task/sweep bookkeeping.
"""

from __future__ import annotations

import asyncio
import json
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from ..eval.checkpoint import SweepCheckpoint, sweep_signature
from ..eval.runner import PointFailure, SweepStats, config_key
from ..netsim.simulator import SimulationConfig, SimulationResult
from ..obs.metrics import emit_warning
from ..obs.telemetry import JsonlReporter
from .cache import ShardedResultCache
from .protocol import (
    MAX_MESSAGE_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    decode_message,
    encode_message,
)

__all__ = ["SweepServer"]


class _Task:
    """One distinct pending point and everyone waiting on it."""

    __slots__ = (
        "key", "config", "state", "lease_attempts", "fail_attempts",
        "lease_id", "waiters",
    )

    def __init__(self, key: str, config: Dict[str, Any]) -> None:
        self.key = key
        self.config = config
        self.state = "queued"  # "queued" | "leased"
        self.lease_attempts = 0  # leases lost to worker death/timeout
        self.fail_attempts = 0  # failures reported by live workers
        self.lease_id = 0
        self.waiters: List[Tuple["_Sweep", int]] = []

    @property
    def attempts(self) -> int:
        return max(self.fail_attempts + self.lease_attempts, 1)


class _Sweep:
    """One client submission: progress counters, journal, telemetry."""

    def __init__(
        self,
        signature: str,
        total: int,
        checkpoint: SweepCheckpoint,
        reporter: JsonlReporter,
        outq: "asyncio.Queue[Dict[str, Any]]",
    ) -> None:
        self.signature = signature
        self.stats = SweepStats(total=total)
        self.checkpoint = checkpoint
        self.reporter = reporter
        self.outq = outq
        self.remaining = total
        self.active = True  # client still connected, sweep not finished

    def send(self, msg: Dict[str, Any]) -> None:
        self.outq.put_nowait(msg)


class SweepServer:
    """Job-queue scheduler sharding sweep points across workers."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        state_dir: "Path | str" = ".repro-serve",
        retries: int = 1,
        backoff: float = 0.5,
        lease_timeout: Optional[float] = 60.0,
        max_requeues: int = 3,
        cache_shards: int = 8,
    ) -> None:
        self.host = host
        self.port = port
        self.state_dir = Path(state_dir)
        self.retries = retries
        self.backoff = backoff
        self.lease_timeout = lease_timeout
        self.max_requeues = max_requeues
        self.cache = ShardedResultCache(
            self.state_dir / "cache", shards=cache_shards
        )
        self._tasks: Dict[str, _Task] = {}
        # Created in start(): pre-3.12 asyncio.Queue binds the event
        # loop at construction time.
        self._ready: "asyncio.Queue[str]" = None  # type: ignore[assignment]
        self._server: Optional[asyncio.AbstractServer] = None
        self._conn_seq = 0
        self.workers_connected = 0
        self._events_path = self.state_dir / "telemetry" / "server.jsonl"
        self._events_fh = None

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------
    def _event(self, event: str, **fields: Any) -> None:
        """Append one ``serve_event`` row to the server's JSONL log."""
        row = {"kind": "serve_event", "event": event, "ts": time.time()}
        row.update(fields)
        try:
            if self._events_fh is None:
                self._events_path.parent.mkdir(parents=True, exist_ok=True)
                self._events_fh = self._events_path.open("a")
            self._events_fh.write(json.dumps(row) + "\n")
            self._events_fh.flush()
        except OSError as exc:
            emit_warning(
                "serve_telemetry_failed",
                f"cannot append to {self._events_path}: {exc}",
                path=str(self._events_path),
            )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        self._ready = asyncio.Queue()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port,
            limit=MAX_MESSAGE_BYTES,
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._event(
            "server_started", host=self.host, port=self.port,
            cached_entries=len(self.cache),
        )

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.serve_forever()

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self.cache.flush()
        self._event("server_stopped")
        if self._events_fh is not None:
            self._events_fh.close()
            self._events_fh = None

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        self._conn_seq += 1
        conn_id = self._conn_seq
        try:
            line = await reader.readline()
            if not line:
                return
            hello = decode_message(line)
            role = hello.get("role")
            problem = None
            if hello.get("type") != "hello" or role not in ("client", "worker"):
                problem = "handshake must open with a client/worker hello"
            elif hello.get("version") != PROTOCOL_VERSION:
                problem = (
                    f"protocol version mismatch: you speak "
                    f"{hello.get('version')!r}, server speaks {PROTOCOL_VERSION}"
                )
            elif hello.get("salt") != self.cache.salt:
                problem = (
                    f"simulator revision mismatch: you are salted "
                    f"{hello.get('salt')!r}, server cache is {self.cache.salt!r}"
                    " -- mixing revisions would corrupt shared results"
                )
            if problem is not None:
                writer.write(encode_message({"type": "error", "message": problem}))
                await writer.drain()
                self._event("handshake_refused", conn=conn_id, reason=problem)
                return
            writer.write(encode_message({
                "type": "welcome",
                "version": PROTOCOL_VERSION,
                "salt": self.cache.salt,
            }))
            await writer.drain()
            if role == "worker":
                await self._worker_loop(reader, writer, conn_id)
            else:
                await self._client_loop(reader, writer, conn_id)
        except asyncio.CancelledError:
            pass  # server shutdown cancels connection tasks; exit quietly
        except (ProtocolError, ConnectionError, asyncio.IncompleteReadError):
            pass  # a broken peer must never take the server down
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    # ------------------------------------------------------------------
    # Worker side
    # ------------------------------------------------------------------
    async def _next_task(self) -> _Task:
        """Next leasable task; parks until one is ready.

        Keys can sit stale in the ready queue (a point completed by a
        stale lease while its requeue was pending), so pop until a key
        still maps to a queued task.
        """
        while True:
            key = await self._ready.get()
            task = self._tasks.get(key)
            if task is not None and task.state == "queued":
                return task

    async def _worker_loop(self, reader, writer, wid: int) -> None:
        self.workers_connected += 1
        self._event("worker_connected", worker=wid)
        leased: Dict[str, int] = {}  # key -> lease_id held by this worker
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                msg = decode_message(line)
                mtype = msg.get("type")
                if mtype == "lease":
                    task = await self._next_task()
                    task.state = "leased"
                    task.lease_id += 1
                    lease_id = task.lease_id
                    self._event("lease", key=task.key, worker=wid)
                    try:
                        writer.write(encode_message({
                            "type": "work",
                            "key": task.key,
                            "config": task.config,
                        }))
                        await writer.drain()
                    except (ConnectionError, OSError):
                        # Worker died between parking and assignment:
                        # hand the task straight back.
                        self._lost_lease(task, "worker_disconnected", wid)
                        raise
                    leased[task.key] = lease_id
                    self._arm_lease_timer(task, lease_id, wid)
                elif mtype == "result":
                    key = msg.get("key")
                    leased.pop(key, None)
                    payload = msg.get("payload")
                    if isinstance(key, str) and isinstance(payload, dict):
                        self._complete_task(key, payload, wid)
                elif mtype == "fail":
                    key = msg.get("key")
                    leased.pop(key, None)
                    if isinstance(key, str):
                        self._reported_failure(key, msg, wid)
                # Unknown worker message types are ignored (forward
                # compatibility with newer workers).
        finally:
            self.workers_connected -= 1
            self._event("worker_disconnected", worker=wid)
            for key, lease_id in leased.items():
                task = self._tasks.get(key)
                if (
                    task is not None
                    and task.state == "leased"
                    and task.lease_id == lease_id
                ):
                    self._lost_lease(task, "worker_disconnected", wid)

    def _arm_lease_timer(self, task: _Task, lease_id: int, wid: int) -> None:
        if self.lease_timeout is None:
            return

        def expire() -> None:
            current = self._tasks.get(task.key)
            if (
                current is task
                and task.state == "leased"
                and task.lease_id == lease_id
            ):
                self._lost_lease(task, "lease_timeout", wid)

        asyncio.get_running_loop().call_later(self.lease_timeout, expire)

    def _lost_lease(self, task: _Task, reason: str, wid: int) -> None:
        """A granted lease evaporated (worker death or timeout)."""
        task.lease_attempts += 1
        self._event(
            "requeue", key=task.key, reason=reason, worker=wid,
            lease_attempts=task.lease_attempts,
        )
        if task.lease_attempts > self.max_requeues:
            # The point itself is probably the killer (it took down
            # max_requeues workers); stop poisoning the fleet.
            self._fail_task(
                task, kind="crash", error="WorkerLost",
                message=(
                    f"lease lost {task.lease_attempts} time(s), "
                    f"last: {reason}"
                ),
                detail=None,
            )
        else:
            task.state = "queued"
            self._ready.put_nowait(task.key)

    def _reported_failure(self, key: str, msg: Dict[str, Any], wid: int) -> None:
        """A live worker reported an exception for its leased point."""
        task = self._tasks.get(key)
        if task is None:
            return  # already completed via another lease
        task.fail_attempts += 1
        if task.fail_attempts <= self.retries:
            delay = self.backoff * (2 ** (task.fail_attempts - 1))
            self._event(
                "retry", key=key, worker=wid, attempt=task.fail_attempts,
                delay_s=delay,
            )
            for sweep, _ in task.waiters:
                if sweep.active:
                    sweep.stats.retries += 1
            task.state = "queued"
            asyncio.get_running_loop().call_later(
                delay, self._ready.put_nowait, key
            )
        else:
            detail = msg.get("detail")
            self._fail_task(
                task, kind="exception",
                error=str(msg.get("error", "Exception")),
                message=str(msg.get("message", "")),
                detail=detail if isinstance(detail, dict) else None,
            )

    # ------------------------------------------------------------------
    # Task completion / failure fan-out
    # ------------------------------------------------------------------
    def _complete_task(self, key: str, payload: Dict[str, Any], wid: int) -> None:
        task = self._tasks.pop(key, None)
        if task is None:
            return  # late result from a stale lease; first result won
        self.cache.put_payload(key, payload)
        self._event("point_done", key=key, worker=wid)
        for sweep, index in task.waiters:
            self._deliver_point(sweep, index, key, payload, cached=False)

    def _fail_task(
        self, task: _Task, kind: str, error: str, message: str,
        detail: Optional[Dict[str, Any]],
    ) -> None:
        self._tasks.pop(task.key, None)
        self._event(
            "point_failed", key=task.key, fail_kind=kind, error=error,
            attempts=task.attempts,
        )
        for sweep, index in task.waiters:
            if not sweep.active:
                continue
            failure = PointFailure(
                index=index,
                key=task.key,
                kind=kind,
                error=error,
                message=message,
                attempts=task.attempts,
                injection_rate=float(
                    task.config.get("injection_rate", float("nan"))
                ),
                detail=detail,
            )
            sweep.stats.failures.append(failure)
            sweep.stats.completed += 1
            try:
                cfg = SimulationConfig.from_dict(task.config)
                sweep.reporter.point_failed(cfg, failure, sweep.stats)
            except Exception:  # telemetry must never block scheduling
                pass
            sweep.send({
                "type": "failed",
                "index": index,
                "key": task.key,
                "kind": kind,
                "error": error,
                "message": message,
                "detail": detail,
                "attempts": task.attempts,
            })
            sweep.remaining -= 1
            if sweep.remaining == 0:
                self._finish_sweep(sweep)

    def _deliver_point(
        self, sweep: _Sweep, index: int, key: str,
        payload: Dict[str, Any], cached: bool,
    ) -> None:
        if not sweep.active:
            return
        sweep.stats.completed += 1
        if cached:
            sweep.stats.cache_hits += 1
        else:
            # Journal computed points so a crashed server (or client)
            # resumes this sweep instead of recomputing it.
            sweep.checkpoint.record(key, payload)
        try:
            result = SimulationResult.from_payload(payload)
            sweep.reporter.point_done(result.config, result, cached, sweep.stats)
        except Exception:  # telemetry must never block scheduling
            pass
        sweep.send({
            "type": "point",
            "index": index,
            "key": key,
            "cached": cached,
            "payload": payload,
        })
        sweep.remaining -= 1
        if sweep.remaining == 0:
            self._finish_sweep(sweep)

    def _finish_sweep(self, sweep: _Sweep) -> None:
        sweep.active = False
        self.cache.flush()
        failed = sweep.stats.failed
        if failed == 0:
            sweep.checkpoint.complete()
        else:
            sweep.checkpoint.close()  # keep the journal for resubmission
        try:
            sweep.reporter.sweep_finished(sweep.stats)
        except Exception:
            pass
        sweep.send({
            "type": "sweep_done",
            "completed": sweep.stats.completed,
            "failed": failed,
        })
        self._event(
            "sweep_done", signature=sweep.signature,
            completed=sweep.stats.completed, failed=failed,
            cache_hits=sweep.stats.cache_hits,
        )

    # ------------------------------------------------------------------
    # Client side
    # ------------------------------------------------------------------
    async def _client_loop(self, reader, writer, cid: int) -> None:
        self._event("client_connected", client=cid)
        outq: "asyncio.Queue[Dict[str, Any]]" = asyncio.Queue()
        sender = asyncio.create_task(self._send_loop(writer, outq))
        sweeps: List[_Sweep] = []
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                msg = decode_message(line)
                if msg.get("type") == "submit":
                    sweep = self._submit(msg, outq, cid)
                    if sweep is not None:
                        sweeps.append(sweep)
                # Unknown client message types are ignored.
        finally:
            self._event("client_disconnected", client=cid)
            for sweep in sweeps:
                self._detach_sweep(sweep)
            sender.cancel()

    async def _send_loop(self, writer, outq) -> None:
        try:
            while True:
                msg = await outq.get()
                writer.write(encode_message(msg))
                await writer.drain()
        except (ConnectionError, OSError, asyncio.CancelledError):
            pass

    def _submit(
        self, msg: Dict[str, Any],
        outq: "asyncio.Queue[Dict[str, Any]]",
        cid: int,
    ) -> Optional[_Sweep]:
        points = msg.get("points")
        if not isinstance(points, list) or not points:
            outq.put_nowait({
                "type": "error",
                "message": "submit needs a non-empty 'points' list",
            })
            return None
        try:
            parsed = [
                (int(p["index"]), dict(p["config"])) for p in points
            ]
            # Keys are recomputed from the configs we actually parsed:
            # a client-supplied key could poison the shared cache.
            keys = [
                config_key(SimulationConfig.from_dict(cfg), self.cache.salt)
                for _, cfg in parsed
            ]
        except (KeyError, TypeError, ValueError) as exc:
            outq.put_nowait({
                "type": "error",
                "message": f"bad submit point: {exc}",
            })
            return None

        signature = sweep_signature(keys)
        checkpoint = SweepCheckpoint(
            self.state_dir / "checkpoints" / f"{signature}.ckpt.jsonl",
            signature,
        )
        # Points journaled before a server crash count as warm results.
        for key, payload in checkpoint.recovered.items():
            if self.cache.get_payload(key) is None:
                self.cache.put_payload(key, payload)
        reporter = JsonlReporter(
            self.state_dir / "telemetry" / f"sweep-{signature}.jsonl"
        )
        sweep = _Sweep(
            signature=signature,
            total=len(parsed),
            checkpoint=checkpoint,
            reporter=reporter,
            outq=outq,
        )
        try:
            reporter.sweep_started(sweep.stats)
        except Exception:
            pass
        self._event(
            "sweep_submitted", client=cid, signature=signature,
            points=len(parsed), recovered=len(checkpoint.recovered),
        )
        enqueued = 0
        for (index, cfg_dict), key in zip(parsed, keys):
            payload = self.cache.get_payload(key)
            if payload is not None:
                self._deliver_point(sweep, index, key, payload, cached=True)
                continue
            task = self._tasks.get(key)
            if task is None:
                task = _Task(key, cfg_dict)
                self._tasks[key] = task
                self._ready.put_nowait(key)
                enqueued += 1
            task.waiters.append((sweep, index))
        if enqueued:
            self._event("enqueued", client=cid, tasks=enqueued)
        return sweep

    def _detach_sweep(self, sweep: _Sweep) -> None:
        """Client gone: stop delivering, keep in-flight work (its
        results still warm the shared cache for the next client)."""
        if not sweep.active:
            return
        sweep.active = False
        for task in self._tasks.values():
            task.waiters = [
                (s, i) for s, i in task.waiters if s is not sweep
            ]
        sweep.checkpoint.close()  # journal survives for resubmission
        self._event(
            "sweep_abandoned", signature=sweep.signature,
            remaining=sweep.remaining,
        )
