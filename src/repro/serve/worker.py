"""``repro work``: the lease/compute/report loop of a remote worker.

A worker is a deliberately dumb synchronous client: connect, handshake,
then loop -- lease one point, compute it with the same
``run_simulation_worker`` the local process pool uses, report the
result (or the exception), lease the next.  Crash isolation is the
*server's* job: if this process dies mid-lease (OOM, SIGKILL, power
loss), the broken TCP stream tells the server to requeue the point on
another worker, exactly like a dead pool process is handled locally.

``--worker-fn module:callable`` substitutes the compute function
(tests use the analytic model in :mod:`repro.serve.testing`); the
``REPRO_WORK_STALL_S`` environment knob makes a worker sleep before
computing each point, which gives kill-mid-lease tests a deterministic
window instead of a race.
"""

from __future__ import annotations

import importlib
import os
import sys
import time
from typing import Any, Callable, Dict, Optional

from ..netsim.simulator import run_simulation_worker
from .protocol import MessageSocket, check_welcome, hello_message, parse_address

__all__ = ["resolve_worker_fn", "run_worker"]

STALL_ENV = "REPRO_WORK_STALL_S"


def resolve_worker_fn(spec: Optional[str]) -> Callable[[Dict], Dict]:
    """Resolve ``"pkg.module:callable"`` (or ``None`` for the real
    simulator worker)."""
    if spec is None:
        return run_simulation_worker
    module_name, sep, attr = spec.partition(":")
    if not sep:
        module_name, _, attr = spec.rpartition(".")
    if not module_name or not attr:
        raise ValueError(
            f"--worker-fn must be 'pkg.module:callable', got {spec!r}"
        )
    fn = getattr(importlib.import_module(module_name), attr)
    if not callable(fn):
        raise ValueError(f"{spec!r} does not name a callable")
    return fn


def run_worker(
    address: str,
    worker_fn: "Optional[str | Callable[[Dict], Dict]]" = None,
    max_points: Optional[int] = None,
    log=None,
) -> int:
    """Serve points until the server goes away.

    Returns the number of points computed (reported results plus
    reported failures).  ``max_points`` bounds the loop for tests.
    """
    if worker_fn is None or isinstance(worker_fn, str):
        worker_fn = resolve_worker_fn(worker_fn)
    log = log or (lambda text: print(text, file=sys.stderr, flush=True))
    host, port = parse_address(address)
    sock = MessageSocket.connect(host, port, timeout=30.0)
    done = 0
    try:
        sock.send(hello_message("worker"))
        check_welcome(sock.recv())
        log(f"worker: connected to {host}:{port} (pid {os.getpid()})")
        while max_points is None or done < max_points:
            sock.send({"type": "lease"})
            msg = sock.recv()
            if msg is None or msg.get("type") == "shutdown":
                break
            if msg.get("type") != "work":
                continue
            key = msg["key"]
            stall = float(os.environ.get(STALL_ENV, "0") or 0.0)
            if stall > 0:
                time.sleep(stall)
            try:
                payload = worker_fn(msg["config"])
            except Exception as exc:
                detail: Optional[Dict[str, Any]] = getattr(
                    exc, "snapshot", None
                )
                if detail is not None and not isinstance(detail, dict):
                    detail = None
                sock.send({
                    "type": "fail",
                    "key": key,
                    "error": type(exc).__name__,
                    "message": str(exc),
                    "detail": detail,
                })
            else:
                sock.send({"type": "result", "key": key, "payload": payload})
            done += 1
    except (ConnectionError, OSError):
        log("worker: server connection lost")
    finally:
        sock.close()
    log(f"worker: exiting after {done} point(s)")
    return done
