"""Wire format of the sweep service: line-delimited JSON messages.

One message per line, UTF-8 JSON with a ``type`` field.  The format is
deliberately primitive -- newline framing, no binary, no pipelining
tricks -- so a worker can be debugged with ``nc`` and the whole
protocol fits in one page of ``docs/DISTRIBUTED.md``.

Handshake (both roles)::

    -> {"type": "hello", "role": "client"|"worker",
        "version": 1, "salt": "sim-rev-3"}
    <- {"type": "welcome", "version": 1, "salt": "sim-rev-3"}

The salt is the simulator-revision cache salt: a worker or client built
from a different simulator revision would silently mix incompatible
numbers into the shared cache, so the server refuses the handshake with
an ``error`` message instead.

Client session::

    -> {"type": "submit", "points": [{"index": 0, "config": {...}}, ...]}
    <- {"type": "point", "index": 0, "key": "...", "cached": true,
        "payload": {...}}                    (one per point, any order)
    <- {"type": "failed", "index": 3, "key": "...", "kind": "crash",
        "error": "...", "message": "...", "detail": null, "attempts": 2}
    <- {"type": "sweep_done", "completed": 7, "failed": 1}

Worker session::

    -> {"type": "lease"}
    <- {"type": "work", "key": "...", "config": {...}}   (may park)
    -> {"type": "result", "key": "...", "payload": {...}}
    -> {"type": "fail", "key": "...", "error": "ValueError",
        "message": "...", "detail": null}

``config`` dicts are :meth:`~repro.netsim.simulator.SimulationConfig.
to_dict` output; ``payload`` dicts are :meth:`~repro.netsim.simulator.
SimulationResult.to_payload` output.  The server recomputes every cache
key from the config it received -- client-supplied keys are never
trusted.
"""

from __future__ import annotations

import json
import socket
from typing import Any, Dict, Optional, Tuple

from ..netsim.simulator import SIMULATOR_REV

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_MESSAGE_BYTES",
    "ProtocolError",
    "encode_message",
    "decode_message",
    "hello_message",
    "check_welcome",
    "parse_address",
    "MessageSocket",
]

PROTOCOL_VERSION = 1

# A submit message carries every pending config of a sweep on one line;
# at ~300 bytes per config dict this caps sweeps around 100k points.
# The asyncio server must raise its StreamReader limit to this value --
# the 64 KiB default would reject submits past ~200 points.
MAX_MESSAGE_BYTES = 32 * 1024 * 1024


class ProtocolError(RuntimeError):
    """Malformed, unexpected or version-incompatible message."""


def encode_message(msg: Dict[str, Any]) -> bytes:
    return json.dumps(msg, separators=(",", ":")).encode() + b"\n"


def decode_message(line: bytes) -> Dict[str, Any]:
    try:
        msg = json.loads(line)
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"unparsable message: {exc}") from None
    if not isinstance(msg, dict) or not isinstance(msg.get("type"), str):
        raise ProtocolError("message is not an object with a 'type' field")
    return msg


def hello_message(role: str) -> Dict[str, Any]:
    return {
        "type": "hello",
        "role": role,
        "version": PROTOCOL_VERSION,
        "salt": f"sim-rev-{SIMULATOR_REV}",
    }


def check_welcome(msg: Optional[Dict[str, Any]]) -> None:
    """Validate the server's handshake reply (raises on refusal)."""
    if msg is None:
        raise ProtocolError("server closed the connection during handshake")
    if msg.get("type") == "error":
        raise ProtocolError(f"server refused: {msg.get('message')}")
    if msg.get("type") != "welcome":
        raise ProtocolError(f"expected welcome, got {msg.get('type')!r}")
    if msg.get("version") != PROTOCOL_VERSION:
        raise ProtocolError(
            f"protocol version mismatch: server speaks "
            f"{msg.get('version')!r}, this build speaks {PROTOCOL_VERSION}"
        )


def parse_address(address: str) -> Tuple[str, int]:
    """Split ``"host:port"`` (host may be empty for localhost)."""
    host, sep, port_text = address.rpartition(":")
    if not sep:
        raise ValueError(f"address must be HOST:PORT, got {address!r}")
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(f"bad port in address {address!r}") from None
    return host or "127.0.0.1", port


class MessageSocket:
    """Blocking line-delimited JSON channel (worker/client side).

    The server side is asyncio; workers and clients are deliberately
    plain synchronous sockets -- they do exactly one thing at a time
    (lease, compute, report) and gain nothing from an event loop.
    """

    def __init__(self, sock: socket.socket) -> None:
        self._sock = sock
        self._reader = sock.makefile("rb")

    @classmethod
    def connect(
        cls, host: str, port: int, timeout: Optional[float] = None
    ) -> "MessageSocket":
        sock = socket.create_connection((host, port), timeout=timeout)
        # The lease loop blocks indefinitely waiting for work; only the
        # connect itself gets a timeout.
        sock.settimeout(None)
        return cls(sock)

    def send(self, msg: Dict[str, Any]) -> None:
        self._sock.sendall(encode_message(msg))

    def recv(self) -> Optional[Dict[str, Any]]:
        """Next message, or ``None`` when the peer closed the stream."""
        line = self._reader.readline(MAX_MESSAGE_BYTES)
        if not line:
            return None
        if not line.endswith(b"\n"):
            raise ProtocolError(
                "truncated or oversized message from peer "
                f"({len(line)} bytes without a newline)"
            )
        return decode_message(line)

    def close(self) -> None:
        for closer in (self._reader.close, self._sock.close):
            try:
                closer()
            except OSError:
                pass
