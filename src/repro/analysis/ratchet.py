"""Baseline ratchet: suppressions may shrink, never grow.

A baseline file (:class:`~repro.analysis.findings.Baseline`) makes
pre-existing findings non-blocking so new checks can land against an
imperfect tree.  Its failure mode is drift: each "just baseline it for
now" adds an entry, and the debt compounds silently because CI stays
green.  The ratchet makes growth loud: compare the working tree's
baseline against the same file at a git ref (``HEAD`` locally, the PR
base in CI) and fail when the suppression count increased.  Shrinkage
and no-ops pass; adding an entry requires removing another or fixing
the finding.

Stale entries -- suppressions that no longer match any finding -- are
the other half of the hygiene story; those are detected where findings
are in hand (``repro lint`` / ``repro verify`` report them via
:meth:`Baseline.unused_entries`).
"""

from __future__ import annotations

import json
import subprocess
from pathlib import Path
from typing import List, Optional, Set, Tuple

from .findings import Baseline, Finding

__all__ = ["check_baseline_ratchet"]


def _entry_keys(baseline: Baseline) -> Set[Tuple[str, str, str]]:
    return {
        (e["rule"], e["scope"], e["location"]) for e in baseline.entries
    }


def _baseline_at_ref(
    repo: Path, baseline_path: str, ref: str
) -> Optional[Baseline]:
    """The baseline as committed at ``ref``; None when absent there."""
    try:
        out = subprocess.run(
            ["git", "-C", str(repo), "show", f"{ref}:{baseline_path}"],
            capture_output=True,
            text=True,
            check=True,
        ).stdout
    except (subprocess.CalledProcessError, OSError):
        return None
    try:
        data = json.loads(out)
        if data.get("version") != Baseline.VERSION:
            return None
        return Baseline(data.get("suppressions", []))
    except (ValueError, KeyError):
        return None


def check_baseline_ratchet(
    repo: Path,
    baseline_path: str = "lint-baseline.json",
    base_ref: str = "HEAD",
) -> List[Finding]:
    """Findings when the baseline gained suppressions since ``base_ref``.

    The working-tree file is compared against ``git show
    base_ref:baseline_path``.  A baseline absent from either side is not
    a violation: a missing working-tree file means zero suppressions
    (trivially no growth), and a file not yet committed at the ref has
    nothing to ratchet against (its introduction is reviewed as part of
    the change that adds it).
    """
    repo = Path(repo)
    current_path = repo / baseline_path
    if not current_path.exists():
        return []
    try:
        current = Baseline.load(current_path)
    except (OSError, ValueError) as exc:
        return [
            Finding(
                "LINT-RATCHET", "error", baseline_path, "parse",
                f"cannot parse working-tree baseline: {exc}",
            )
        ]
    old = _baseline_at_ref(repo, baseline_path, base_ref)
    if old is None:
        return []
    if len(current.entries) <= len(old.entries):
        return []
    added = sorted(_entry_keys(current) - _entry_keys(old))
    shown = "; ".join(
        f"{rule} @ {scope}:{location}" for rule, scope, location in added[:5]
    ) + ("..." if len(added) > 5 else "")
    return [
        Finding(
            "LINT-RATCHET",
            "error",
            baseline_path,
            "suppressions",
            f"suppression count grew from {len(old.entries)} to "
            f"{len(current.entries)} vs {base_ref}"
            + (f" (new: {shown})" if added else "")
            + "; fix the findings instead of baselining them, or retire "
            "an existing suppression",
        )
    ]
