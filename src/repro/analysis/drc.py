"""Netlist design-rule checker (DRC).

A graph-based static checker over :class:`~repro.hw.netlist.Netlist`,
modelled on the structural lint/DRC pass that precedes synthesis in an
RTL flow.  The netlist representation makes some violations impossible
to *construct* through the public API (gates may only reference earlier
nets, ``connect_reg`` refuses double connection), but the checker
verifies the invariants on the data itself so that corrupted, hand-
edited or future-representation netlists are caught too -- and so the
rules have teeth in tests, which seed synthetic defects by mutating the
columnar arrays directly.

Rules (catalogue with examples in ``docs/STATIC_ANALYSIS.md``):

========================  ========  ==========================================
rule id                   severity  violation
========================  ========  ==========================================
``DRC-COMB-LOOP``         error     combinational cycle through non-register
                                    gates (register D->Q edges break paths)
``DRC-UNDRIVEN``          error     fanin or register-D reference to a net id
                                    that no node drives
``DRC-MULTI-DRIVEN``      error     net driven both by combinational logic and
                                    a register update (``reg_d`` attached to a
                                    non-DFF node)
``DRC-UNCONNECTED-REG``   error     register whose D input was never connected
``DRC-FLOATING``          warning   gate or register output with no consumers
                                    that is not a primary output
``DRC-UNUSED-INPUT``      warning   primary input net with no consumers
``DRC-DEAD``              warning   gate with consumers but unobservable from
                                    every primary output
``DRC-CONST-FOLD``        info      gate that constant-propagation or identity
                                    rewriting would remove
``DRC-FANOUT``            warning   net whose electrical load exceeds what the
                                    biggest drive strength can carry
========================  ========  ==========================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..hw.cells import CELLS, MAX_SIZE, WIRE_CAP_FF, cell_by_name
from ..hw.netlist import KIND_CONST0, KIND_CONST1, KIND_INPUT, Netlist
from .findings import Finding

__all__ = ["DrcConfig", "NetlistDRC", "run_drc", "ALL_DRC_RULES"]

_DFF_IX = next(i for i, c in enumerate(CELLS) if c.name == "DFF")

ALL_DRC_RULES: Tuple[str, ...] = (
    "DRC-COMB-LOOP",
    "DRC-UNDRIVEN",
    "DRC-MULTI-DRIVEN",
    "DRC-UNCONNECTED-REG",
    "DRC-FLOATING",
    "DRC-UNUSED-INPUT",
    "DRC-DEAD",
    "DRC-CONST-FOLD",
    "DRC-FANOUT",
)


@dataclass
class DrcConfig:
    """Tunables for the DRC run.

    ``max_fanout_load`` is expressed as a multiple of a unit inverter
    input capacitance: the default allows a max-size driver
    (``MAX_SIZE`` from the cell library) to see up to ``fo4_per_stage``
    equivalent FO4 loads, which every buffered net in the builders
    satisfies -- an unbuffered broadcast net does not.
    """

    max_fanout_load: float = MAX_SIZE * 4.0
    disabled_rules: Set[str] = field(default_factory=set)
    #: Cap on reported findings per (rule, netlist); repetitive
    #: structural findings past the cap collapse into one summary
    #: finding so a pathological netlist cannot flood the report.
    max_findings_per_rule: int = 25

    def enabled(self, rule: str) -> bool:
        return rule not in self.disabled_rules


class NetlistDRC:
    """Run every design rule over one netlist."""

    def __init__(self, config: Optional[DrcConfig] = None) -> None:
        self.config = config or DrcConfig()

    # -- helpers -------------------------------------------------------
    @staticmethod
    def _net_label(nl: Netlist, nid: int) -> str:
        kind = nl.kinds[nid] if 0 <= nid < len(nl.kinds) else None
        if kind is None:
            return f"net {nid} (nonexistent)"
        if kind == KIND_INPUT:
            name = nl.input_names.get(nid)
            return f"net {nid} (input{f' {name}' if name else ''})"
        if kind in (KIND_CONST0, KIND_CONST1):
            return f"net {nid} (const{1 if kind == KIND_CONST1 else 0})"
        return f"net {nid} ({CELLS[kind].name})"

    def check(self, nl: Netlist) -> List[Finding]:
        """All findings for ``nl``, unfiltered (baseline applies later)."""
        cfg = self.config
        scope = nl.name or "<unnamed>"
        per_rule: Dict[str, List[Finding]] = {}
        overflow: Dict[str, int] = {}

        def emit(rule: str, severity: str, nid: int, message: str) -> None:
            if not cfg.enabled(rule):
                return
            bucket = per_rule.setdefault(rule, [])
            if len(bucket) >= cfg.max_findings_per_rule:
                overflow[rule] = overflow.get(rule, 0) + 1
                return
            bucket.append(
                Finding(rule, severity, scope, self._net_label(nl, nid), message)
            )

        consumers = self._consumers_checked(nl, emit)
        self._check_registers(nl, emit)
        self._check_loops(nl, emit)
        self._check_liveness(nl, consumers, emit)
        self._check_const_fold(nl, emit)
        self._check_fanout(nl, consumers, emit)

        findings = [f for bucket in per_rule.values() for f in bucket]
        for rule, extra in overflow.items():
            severity = next(
                f.severity for f in per_rule[rule] if f.rule == rule
            )
            findings.append(
                Finding(
                    rule,
                    severity,
                    scope,
                    "(summary)",
                    f"{extra} further finding(s) of this rule suppressed "
                    f"after the first {cfg.max_findings_per_rule}",
                )
            )
        return findings

    # -- structural integrity ------------------------------------------
    def _consumers_checked(self, nl, emit) -> List[List[int]]:
        """Consumer lists, reporting dangling references as DRC-UNDRIVEN."""
        n = len(nl.kinds)
        consumers: List[List[int]] = [[] for _ in range(n)]
        for nid, fanin in enumerate(nl.fanins):
            for f in fanin:
                if not 0 <= f < n:
                    emit(
                        "DRC-UNDRIVEN", "error", nid,
                        f"fanin references net {f}, which no node drives",
                    )
                else:
                    consumers[f].append(nid)
        for q, d in nl.reg_d.items():
            if not 0 <= d < n:
                emit(
                    "DRC-UNDRIVEN", "error", q,
                    f"register D references net {d}, which no node drives",
                )
            else:
                consumers[d].append(q)
        for out in nl.outputs:
            if not 0 <= out < n:
                emit(
                    "DRC-UNDRIVEN", "error", out,
                    "primary output references a net no node drives",
                )
        return consumers

    def _check_registers(self, nl, emit) -> None:
        n = len(nl.kinds)
        for nid, kind in enumerate(nl.kinds):
            if kind == _DFF_IX and nid not in nl.reg_d:
                emit(
                    "DRC-UNCONNECTED-REG", "error", nid,
                    "register D input was never connected "
                    "(missing connect_reg)",
                )
        for q in nl.reg_d:
            if not 0 <= q < n:
                continue  # reported as part of the reg map sanity below
            if nl.kinds[q] != _DFF_IX:
                emit(
                    "DRC-MULTI-DRIVEN", "error", q,
                    "net has a register update attached but is driven by "
                    "combinational logic -- two drivers for one net",
                )

    # -- combinational loops -------------------------------------------
    def _check_loops(self, nl, emit) -> None:
        """Cycle detection over combinational fanin edges.

        Register D->Q is a sequential edge and legitimately cyclic;
        only gate-fanin edges participate.  Iterative three-color DFS
        (the netlists run to millions of nets, recursion would blow the
        stack).
        """
        n = len(nl.kinds)
        WHITE, GRAY, BLACK = 0, 1, 2
        color = [WHITE] * n
        for root in range(n):
            if color[root] != WHITE:
                continue
            stack: List[Tuple[int, int]] = [(root, 0)]
            color[root] = GRAY
            while stack:
                node, edge_ix = stack[-1]
                fanin = nl.fanins[node] if nl.kinds[node] != _DFF_IX else ()
                if edge_ix < len(fanin):
                    stack[-1] = (node, edge_ix + 1)
                    child = fanin[edge_ix]
                    if not 0 <= child < n:
                        continue  # dangling ref; DRC-UNDRIVEN reports it
                    if color[child] == GRAY:
                        emit(
                            "DRC-COMB-LOOP", "error", node,
                            f"combinational cycle through net {child} "
                            "(no register on the feedback path)",
                        )
                    elif color[child] == WHITE:
                        color[child] = GRAY
                        stack.append((child, 0))
                else:
                    color[node] = BLACK
                    stack.pop()

    # -- liveness ------------------------------------------------------
    def _check_liveness(self, nl, consumers, emit) -> None:
        """Floating nets, unused inputs, and unobservable (dead) gates.

        Observability: breadth-first from the primary outputs over
        fanin edges; reaching a register output continues through its D
        input (the register's next-state logic is observable through
        the register).  A netlist without outputs treats every
        register as an observability root, matching
        :meth:`Netlist.validate`'s notion of timing endpoints.
        """
        n = len(nl.kinds)
        roots = [o for o in nl.outputs if 0 <= o < n]
        if not roots:
            roots = [q for q in nl.reg_d if 0 <= q < n]
        observable = [False] * n
        frontier = []
        for r in roots:
            if not observable[r]:
                observable[r] = True
                frontier.append(r)
        while frontier:
            node = frontier.pop()
            sources = list(nl.fanins[node])
            if nl.kinds[node] == _DFF_IX and node in nl.reg_d:
                sources.append(nl.reg_d[node])
            for src in sources:
                if 0 <= src < n and not observable[src]:
                    observable[src] = True
                    frontier.append(src)

        is_output = [False] * n
        for o in nl.outputs:
            if 0 <= o < n:
                is_output[o] = True

        for nid, kind in enumerate(nl.kinds):
            if kind in (KIND_CONST0, KIND_CONST1):
                continue  # constants are wiring, not logic
            floating = not consumers[nid] and not is_output[nid]
            if kind == KIND_INPUT:
                if floating:
                    emit(
                        "DRC-UNUSED-INPUT", "warning", nid,
                        "primary input drives nothing",
                    )
                continue
            if floating:
                emit(
                    "DRC-FLOATING", "warning", nid,
                    "output drives nothing and is not a primary output",
                )
            elif not observable[nid]:
                emit(
                    "DRC-DEAD", "warning", nid,
                    "gate is unobservable from every primary output "
                    "(dead logic)",
                )

    # -- constant folding ----------------------------------------------
    def _check_const_fold(self, nl, emit) -> None:
        """Gates a constant-propagation pass would simplify away.

        Tracks known-constant nets in creation order (a valid topological
        order) and flags:

        * gates whose output is a compile-time constant;
        * gates with a constant input that reduces to a wire/inverter
          (``AND(x, 1)``, ``OR(x, 0)``, ``MUX`` with constant select);
        * gates with duplicated fanin nets (``AND2(a, a)``).
        """
        n = len(nl.kinds)
        value: List[Optional[int]] = [None] * n
        for nid, kind in enumerate(nl.kinds):
            if kind == KIND_CONST0:
                value[nid] = 0
                continue
            if kind == KIND_CONST1:
                value[nid] = 1
                continue
            if kind < 0 or kind == _DFF_IX:
                continue
            cell = CELLS[kind]
            fanin = nl.fanins[nid]
            vals = [
                value[f] if 0 <= f < n else None for f in fanin
            ]
            folded = _fold(cell.name, vals)
            if folded is not None:
                value[nid] = folded
                emit(
                    "DRC-CONST-FOLD", "info", nid,
                    f"{cell.name} output is always {folded} "
                    "(constant inputs)",
                )
                continue
            if any(v is not None for v in vals):
                emit(
                    "DRC-CONST-FOLD", "info", nid,
                    f"{cell.name} has a constant input; a wire or smaller "
                    "cell computes the same function",
                )
                continue
            if len(set(fanin)) < len(fanin):
                emit(
                    "DRC-CONST-FOLD", "info", nid,
                    f"{cell.name} has duplicated fanin nets; the cell is "
                    "reducible",
                )

    # -- fanout / load --------------------------------------------------
    def _check_fanout(self, nl, consumers, emit) -> None:
        """Electrical load per net vs. the strongest available driver.

        Load is the sum of sink input capacitances (at the sinks'
        current sizes) plus wire load per connection, in units of a
        unit-inverter input cap; the limit models the most a max-size
        driver can see before the stage effort leaves the library's
        characterized range.  Primary inputs are exempt (the testbench
        drives them); buffer trees exist precisely to keep internal
        nets under this limit.
        """
        inv_cin = cell_by_name("INV").input_cap_ff
        limit_ff = self.config.max_fanout_load * inv_cin
        for nid, kind in enumerate(nl.kinds):
            if kind < 0:  # inputs and constants are externally driven
                continue
            sinks = consumers[nid]
            if len(sinks) < 2:
                continue
            load_ff = 0.0
            for sink in sinks:
                sink_kind = nl.kinds[sink]
                cap = CELLS[sink_kind].input_cap_ff if sink_kind >= 0 else inv_cin
                load_ff += cap * nl.sizes[sink] + WIRE_CAP_FF
            if load_ff > limit_ff:
                emit(
                    "DRC-FANOUT", "warning", nid,
                    f"net load {load_ff:.1f} fF across {len(sinks)} sinks "
                    f"exceeds the {limit_ff:.1f} fF drive limit; insert a "
                    "fanout tree",
                )


def _fold(cell_name: str, vals: Sequence[Optional[int]]) -> Optional[int]:
    """Constant output of ``cell_name`` given per-input constants.

    ``None`` marks an unknown input; returns ``None`` unless the output
    is fully determined.
    """
    known = [v for v in vals if v is not None]
    if cell_name in ("AND2", "AND3", "AND4"):
        if 0 in known:
            return 0
        return 1 if len(known) == len(vals) else None
    if cell_name in ("OR2", "OR3", "OR4"):
        if 1 in known:
            return 1
        return 0 if len(known) == len(vals) else None
    if cell_name == "NAND2":
        if 0 in known:
            return 1
        return 0 if len(known) == len(vals) else None
    if cell_name == "NOR2":
        if 1 in known:
            return 0
        return 1 if len(known) == len(vals) else None
    if cell_name == "INV":
        return None if vals[0] is None else 1 - vals[0]
    if cell_name == "BUF":
        return vals[0]
    if cell_name == "XOR2":
        if vals[0] is None or vals[1] is None:
            return None
        return vals[0] ^ vals[1]
    if cell_name == "MUX2":
        d0, d1, sel = vals
        if sel is not None:
            return d1 if sel else d0
        if d0 is not None and d0 == d1:
            return d0
        return None
    return None


def run_drc(
    nl: Netlist, config: Optional[DrcConfig] = None
) -> List[Finding]:
    """Convenience wrapper: one netlist, all rules."""
    return NetlistDRC(config).check(nl)
