"""Git-aware ``SIMULATOR_REV`` guard.

``SIMULATOR_REV`` (:mod:`repro.netsim.simulator`) salts every on-disk
sweep-result cache: when a change alters the numbers a simulation
produces for an unchanged config, the rev must be bumped or stale
cached results silently masquerade as current ones.  The discipline so
far rested on review (CHANGES.md PR 4 bumped 1 -> 2 by hand); this
guard makes it mechanical:

* diff ``base_ref`` against ``head`` (default: the working tree);
* if any *semantics-bearing* file changed (``src/repro/core/``,
  ``src/repro/netsim/``) the rev must differ between base and head,
  OR a commit in the range must carry an explicit override trailer::

      Simulator-Rev: unchanged (<why the numbers cannot move>)

The override exists because not every touch of a semantics file changes
numbers (comment fixes, pure refactors pinned by the bit-identity
harness); the trailer records that claim in the history where review
can see it.
"""

from __future__ import annotations

import re
import subprocess
from pathlib import Path
from typing import List, Optional, Sequence

from .findings import Finding

__all__ = [
    "SEMANTIC_PATHS",
    "OVERRIDE_TRAILER",
    "check_simulator_rev",
]

#: Repo-relative path prefixes whose changes are presumed to move
#: simulation numbers.
SEMANTIC_PATHS: Sequence[str] = ("src/repro/core/", "src/repro/netsim/")

#: Commit-message trailer that waives the bump requirement for a range.
OVERRIDE_TRAILER = "Simulator-Rev:"

_REV_RE = re.compile(r"^SIMULATOR_REV\s*=\s*(\d+)", re.MULTILINE)
_SIMULATOR_FILE = "src/repro/netsim/simulator.py"


def _git(repo: Path, *args: str) -> str:
    out = subprocess.run(
        ["git", "-C", str(repo), *args],
        capture_output=True,
        text=True,
        check=True,
    )
    return out.stdout


def _read_rev_at(repo: Path, ref: Optional[str]) -> Optional[int]:
    """SIMULATOR_REV at ``ref``; ``None`` ref reads the working tree."""
    try:
        if ref is None:
            text = (repo / _SIMULATOR_FILE).read_text()
        else:
            text = _git(repo, "show", f"{ref}:{_SIMULATOR_FILE}")
    except (OSError, subprocess.CalledProcessError):
        return None
    m = _REV_RE.search(text)
    return int(m.group(1)) if m else None


def _changed_files(repo: Path, base_ref: str, head_ref: Optional[str]) -> List[str]:
    if head_ref is None:
        # merge-base semantics against the working tree: changes on our
        # side only, like `git diff base...` does for commits.  Untracked
        # files are changes too -- `git diff` alone would let a brand-new
        # semantics module slip past the working-tree check.
        base = _git(repo, "merge-base", base_ref, "HEAD").strip()
        out = _git(repo, "diff", "--name-only", base)
        out += _git(repo, "ls-files", "--others", "--exclude-standard")
    else:
        out = _git(repo, "diff", "--name-only", f"{base_ref}...{head_ref}")
    return [line.strip() for line in out.splitlines() if line.strip()]


def _has_override(repo: Path, base_ref: str, head_ref: Optional[str]) -> bool:
    head = head_ref or "HEAD"
    try:
        base = _git(repo, "merge-base", base_ref, head).strip()
        log = _git(repo, "log", "--format=%B", f"{base}..{head}")
    except subprocess.CalledProcessError:
        return False
    return any(
        line.strip().startswith(OVERRIDE_TRAILER)
        for line in log.splitlines()
    )


def check_simulator_rev(
    repo: Path,
    base_ref: str,
    head_ref: Optional[str] = None,
) -> List[Finding]:
    """Findings for an un-bumped rev over a semantics-bearing change.

    ``head_ref=None`` compares the working tree (including uncommitted
    edits) against the merge-base with ``base_ref`` -- the right shape
    both locally and in a CI checkout of a PR head.
    """
    repo = Path(repo)
    try:
        changed = _changed_files(repo, base_ref, head_ref)
    except (subprocess.CalledProcessError, OSError) as exc:
        detail = getattr(exc, "stderr", "") or str(exc)
        return [
            Finding(
                "SRC-SIM-REV", "error", _SIMULATOR_FILE, "git",
                f"cannot diff against {base_ref!r}: {detail.strip()} "
                "(fetch the base ref or pass --rev-base)",
            )
        ]
    semantic = [
        f for f in changed if any(f.startswith(p) for p in SEMANTIC_PATHS)
    ]
    if not semantic:
        return []
    rev_base = _read_rev_at(repo, base_ref)
    rev_head = _read_rev_at(repo, head_ref)
    if rev_base is None or rev_head is None:
        return [
            Finding(
                "SRC-SIM-REV", "error", _SIMULATOR_FILE, "SIMULATOR_REV",
                "cannot locate SIMULATOR_REV on one side of the diff",
            )
        ]
    if rev_head != rev_base:
        return []
    if _has_override(repo, base_ref, head_ref):
        return []
    shown = ", ".join(semantic[:5]) + ("..." if len(semantic) > 5 else "")
    return [
        Finding(
            "SRC-SIM-REV",
            "error",
            _SIMULATOR_FILE,
            f"SIMULATOR_REV = {rev_head}",
            f"semantics-bearing file(s) changed ({shown}) without a "
            f"SIMULATOR_REV bump; bump it, or add a commit trailer "
            f"'{OVERRIDE_TRAILER} unchanged (<reason>)' if the numbers "
            "provably cannot move",
        )
    ]
