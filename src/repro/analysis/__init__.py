"""Static verification layer: netlist DRC + repo-invariant linter.

Two fronts, both producing :class:`~repro.analysis.findings.Finding`
records that the ``repro lint`` command renders as text or JSON and
gates CI on:

* :mod:`repro.analysis.drc` -- a graph-based design-rule checker over
  :class:`~repro.hw.netlist.Netlist` (combinational loops, floating and
  multiply-driven nets, dead logic, unconnected registers, const-
  foldable gates, fanout violations), run across every allocator
  netlist the paper evaluates (:mod:`repro.analysis.netlists`);
* :mod:`repro.analysis.srclint` -- an AST linter over ``src/repro``
  encoding this repo's contracts (seeded randomness only, no wall-clock
  reads in simulation paths, no set-iteration-order dependence in hot
  loops, observer/fault-state fast-path guards), plus the git-aware
  ``SIMULATOR_REV`` guard (:mod:`repro.analysis.revguard`).

Accepted pre-existing findings are suppressed through a baseline file
(:class:`~repro.analysis.findings.Baseline`) so CI only gates on *new*
findings, and the baseline itself is ratcheted
(:mod:`repro.analysis.ratchet`): suppressions may shrink but never
grow.  See ``docs/STATIC_ANALYSIS.md`` for the rule catalogue.
"""

from .drc import DrcConfig, NetlistDRC, run_drc
from .findings import Baseline, Finding, format_findings
from .netlists import iter_paper_netlists, lint_paper_netlists
from .ratchet import check_baseline_ratchet
from .revguard import check_simulator_rev
from .srclint import lint_generated_kernels, lint_source_file, lint_source_tree

__all__ = [
    "Baseline",
    "DrcConfig",
    "Finding",
    "NetlistDRC",
    "check_baseline_ratchet",
    "check_simulator_rev",
    "format_findings",
    "iter_paper_netlists",
    "lint_paper_netlists",
    "lint_source_file",
    "lint_source_tree",
    "lint_generated_kernels",
    "run_drc",
]
