"""Repo-invariant source linter.

AST-based custom rules encoding contracts this repository relies on but
no general-purpose linter knows about.  The *simulation code paths*
(``repro/core``, ``repro/netsim``, ``repro/faults``, ``repro/hw``) must
stay deterministic and observer-clean:

========================  ========  ==========================================
rule id                   severity  violation
========================  ========  ==========================================
``SRC-UNSEEDED-RANDOM``   error     module-level RNG use (``random.random()``,
                                    ``np.random.rand()``) in simulation code:
                                    all randomness must flow through seeded
                                    ``Random(seed)`` / ``default_rng(seed)``
                                    instances so runs are reproducible
``SRC-WALL-CLOCK``        error     wall-clock reads (``time.time()``,
                                    ``datetime.now()``...) in simulation code:
                                    simulated time is the only clock; real
                                    time makes results machine-dependent
``SRC-SET-ITERATION``     error     iterating a ``set``/``frozenset`` directly
                                    in ``repro/core`` / ``repro/netsim``:
                                    set order depends on ``PYTHONHASHSEED``
                                    for str keys -- wrap in ``sorted(...)``
``SRC-OBSERVER-GUARD``    error     any attribute access through
                                    ``observer``, ``fault_state`` or
                                    ``profiler`` in ``repro/netsim``
                                    without an ``is not None`` guard: the
                                    None fast path is the performance
                                    contract (CHANGES.md PRs 2-3), and
                                    fault-aware routing branches must sit
                                    behind the same guard idiom
``SRC-ASYNC-BLOCKING``    error     blocking calls (``time.sleep``, sync
                                    ``open``/``socket``/``subprocess``)
                                    directly inside an ``async def`` body in
                                    ``repro/serve``: one blocked coroutine
                                    stalls the whole event loop -- every
                                    worker lease, heartbeat and cache probe
                                    behind it
========================  ========  ==========================================

Scopes are decided from the path relative to the package root, so unit
tests can lint snippets under synthetic paths.  ``# lint: ignore[RULE]``
on the offending line suppresses a single finding in place (for the
rare intentional exception; prefer fixing).
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .findings import Finding

__all__ = [
    "lint_source_file",
    "lint_source_tree",
    "lint_generated_kernels",
    "GENERATED_KERNEL_SCOPE",
    "SIMULATION_PACKAGES",
    "HOT_LOOP_PACKAGES",
    "GUARDED_PACKAGES",
    "ASYNC_PACKAGES",
    "ALL_SRC_RULES",
]

ALL_SRC_RULES: Tuple[str, ...] = (
    "SRC-UNSEEDED-RANDOM",
    "SRC-WALL-CLOCK",
    "SRC-SET-ITERATION",
    "SRC-OBSERVER-GUARD",
    "SRC-ASYNC-BLOCKING",
)

#: Packages whose code runs inside a simulation (determinism-bearing).
SIMULATION_PACKAGES = ("core", "netsim", "faults", "hw")
#: Packages whose hot loops must not depend on hash iteration order.
HOT_LOOP_PACKAGES = ("core", "netsim")
#: Packages where observer/fault_state access must stay behind the
#: is-not-None fast path.
GUARDED_PACKAGES = ("netsim",)
#: Packages running under an asyncio event loop, where a blocking call
#: in a coroutine stalls every other task on the loop.
ASYNC_PACKAGES = ("serve",)

#: Module-level RNG entry points (the unseeded global generators).
_RANDOM_MODULE_FUNCS = {
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "gauss", "normalvariate", "expovariate",
    "betavariate", "triangular", "seed", "getrandbits",
}
#: Wall-clock reads (monotonic counters included: any real-time read
#: inside simulation logic makes behaviour timing-dependent).
_WALL_CLOCK_FUNCS = {
    ("time", "time"),
    ("time", "time_ns"),
    ("time", "monotonic"),
    ("time", "monotonic_ns"),
    ("time", "perf_counter"),
    ("time", "perf_counter_ns"),
    ("datetime", "now"),
    ("datetime", "utcnow"),
    ("datetime", "today"),
    ("date", "today"),
}
#: numpy RNG constructors: fine when seeded, flagged when argument-free.
_SEEDED_RNG_CONSTRUCTORS = {
    "default_rng", "RandomState", "Generator", "SeedSequence",
    "PCG64", "Philox", "MT19937", "SFC64",
}
#: Attribute names whose access must be None-guarded in GUARDED_PACKAGES.
_GUARDED_ATTRS = ("observer", "fault_state", "profiler")

#: Calls that block the thread, with the async-native replacement the
#: finding message recommends.  Matched on the trailing two components
#: of the dotted call, like the wall-clock table.
_BLOCKING_CALLS: Dict[Tuple[str, str], str] = {
    ("time", "sleep"): "await asyncio.sleep(...)",
    ("socket", "socket"): "asyncio.open_connection / loop.sock_* APIs",
    ("socket", "create_connection"): "asyncio.open_connection(...)",
    ("subprocess", "run"): "asyncio.create_subprocess_exec(...)",
    ("subprocess", "Popen"): "asyncio.create_subprocess_exec(...)",
    ("subprocess", "call"): "asyncio.create_subprocess_exec(...)",
    ("subprocess", "check_output"): "asyncio.create_subprocess_exec(...)",
    ("subprocess", "check_call"): "asyncio.create_subprocess_exec(...)",
}

_IGNORE_RE = re.compile(r"#\s*lint:\s*ignore\[([A-Z0-9-]+(?:,\s*[A-Z0-9-]+)*)\]")


def _block_terminates(stmts: Sequence[ast.stmt]) -> bool:
    """True when control never falls off the end of ``stmts``."""
    return bool(stmts) and isinstance(
        stmts[-1], (ast.Return, ast.Raise, ast.Continue, ast.Break)
    )


def _dotted(node: ast.AST) -> Optional[str]:
    """Render ``a.b.c`` attribute/name chains; None for other shapes."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _rel_package(path: str) -> Tuple[str, ...]:
    """Path components below the ``repro`` package root, if any."""
    parts = Path(path).parts
    if "repro" in parts:
        ix = len(parts) - 1 - list(reversed(parts)).index("repro")
        return parts[ix + 1 :]
    return parts


class _IgnoreMap:
    """Per-line ``# lint: ignore[RULE]`` pragmas."""

    def __init__(self, code: str) -> None:
        self.by_line: Dict[int, Set[str]] = {}
        for lineno, line in enumerate(code.splitlines(), start=1):
            m = _IGNORE_RE.search(line)
            if m:
                rules = {r.strip() for r in m.group(1).split(",")}
                self.by_line[lineno] = rules

    def ignored(self, rule: str, lineno: int) -> bool:
        return rule in self.by_line.get(lineno, set())


class _SourceLinter(ast.NodeVisitor):
    def __init__(self, rel_path: str, code: str) -> None:
        self.rel_path = rel_path
        self.findings: List[Finding] = []
        self._ignores = _IgnoreMap(code)
        pkg = _rel_package(rel_path)
        top = pkg[0] if pkg else ""
        self.in_simulation = top in SIMULATION_PACKAGES
        self.in_hot_loop = top in HOT_LOOP_PACKAGES
        self.in_guarded = top in GUARDED_PACKAGES
        self.in_async_pkg = top in ASYNC_PACKAGES
        #: stack of guard expressions proven non-None on this path
        self._guards: List[Set[str]] = []
        #: per-function aliases: local name -> guarded dotted source
        self._alias_stack: List[Dict[str, str]] = []
        #: one entry per enclosing def; True while the innermost
        #: enclosing function is an ``async def`` (a sync helper nested
        #: inside a coroutine is scheduled by its caller, not the loop)
        self._async_stack: List[bool] = []

    # -- reporting -----------------------------------------------------
    def _emit(self, rule: str, node: ast.AST, message: str) -> None:
        lineno = getattr(node, "lineno", 0)
        if self._ignores.ignored(rule, lineno):
            return
        self.findings.append(
            Finding(rule, "error", self.rel_path, f"line {lineno}", message)
        )

    # -- determinism rules ---------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        dotted = _dotted(node.func)
        if self.in_simulation and dotted:
            self._check_random(node, dotted)
            self._check_wall_clock(node, dotted)
        if (
            self.in_async_pkg
            and self._async_stack
            and self._async_stack[-1]
        ):
            self._check_async_blocking(node, dotted)
        self.generic_visit(node)

    def _check_async_blocking(self, node: ast.Call, dotted: Optional[str]) -> None:
        """Inside an ``async def``: flag calls that block the thread."""
        if dotted == "open":
            self._emit(
                "SRC-ASYNC-BLOCKING", node,
                "synchronous open() inside an async def blocks the event "
                "loop; run file I/O via loop.run_in_executor(...) or do it "
                "before entering the coroutine",
            )
            return
        if dotted is None:
            return
        parts = dotted.split(".")
        if len(parts) >= 2:
            hint = _BLOCKING_CALLS.get((parts[-2], parts[-1]))
            if hint is not None:
                self._emit(
                    "SRC-ASYNC-BLOCKING", node,
                    f"blocking call {dotted}() inside an async def stalls "
                    f"the whole event loop; use {hint}",
                )

    def _check_random(self, node: ast.Call, dotted: str) -> None:
        parts = dotted.split(".")
        # random.random() / np.random.rand() / numpy.random.shuffle(...)
        if (
            len(parts) == 2
            and parts[0] == "random"
            and parts[1] in _RANDOM_MODULE_FUNCS
        ):
            self._emit(
                "SRC-UNSEEDED-RANDOM", node,
                f"call to module-level random.{parts[1]}(); use a seeded "
                "random.Random(seed) instance instead",
            )
        elif (
            len(parts) == 3
            and parts[0] in ("np", "numpy")
            and parts[1] == "random"
        ):
            func = parts[2]
            if func in _SEEDED_RNG_CONSTRUCTORS:
                # Constructing a generator is the sanctioned pattern --
                # but only when an explicit seed is passed.
                if not node.args and not node.keywords:
                    self._emit(
                        "SRC-UNSEEDED-RANDOM", node,
                        f"{dotted}() without a seed draws entropy from the "
                        "OS; pass an explicit seed",
                    )
                return
            self._emit(
                "SRC-UNSEEDED-RANDOM", node,
                f"call to numpy global RNG {dotted}(); use "
                "numpy.random.default_rng(seed) instead",
            )

    def _check_wall_clock(self, node: ast.Call, dotted: str) -> None:
        parts = dotted.split(".")
        if len(parts) >= 2 and (parts[-2], parts[-1]) in _WALL_CLOCK_FUNCS:
            self._emit(
                "SRC-WALL-CLOCK", node,
                f"wall-clock read {dotted}() in simulation code; simulated "
                "cycles are the only clock allowed here",
            )

    # -- set iteration order -------------------------------------------
    def visit_comprehension(self, node: ast.comprehension) -> None:
        if self.in_hot_loop:
            self._check_set_iter(node.iter)
        self.generic_visit(node)

    def _check_set_iter(self, iter_node: ast.AST) -> None:
        if isinstance(iter_node, (ast.Set, ast.SetComp)):
            self._emit(
                "SRC-SET-ITERATION", iter_node,
                "iteration over a set literal/comprehension: order depends "
                "on PYTHONHASHSEED; wrap in sorted(...)",
            )
        elif (
            isinstance(iter_node, ast.Call)
            and isinstance(iter_node.func, ast.Name)
            and iter_node.func.id in ("set", "frozenset")
        ):
            self._emit(
                "SRC-SET-ITERATION", iter_node,
                f"iteration over {iter_node.func.id}(...): order depends on "
                "PYTHONHASHSEED; wrap in sorted(...)",
            )

    # -- observer / fault_state guards ---------------------------------
    def _guard_exprs(self, test: ast.AST, when_true: bool) -> Set[str]:
        """Dotted expressions proven non-None when ``test`` is truthy
        (``when_true``) or falsy (``not when_true``)."""
        proven: Set[str] = set()
        if isinstance(test, ast.BoolOp):
            # `a is not None and ...`: every conjunct holds on the true
            # branch.  Dually, `a is None or ...` falsy means every
            # disjunct is falsy (used by `if x is None or ...: raise`).
            if isinstance(test.op, ast.And) and when_true:
                for clause in test.values:
                    proven |= self._guard_exprs(clause, True)
            elif isinstance(test.op, ast.Or) and not when_true:
                for clause in test.values:
                    proven |= self._guard_exprs(clause, False)
            return proven
        if isinstance(test, ast.Compare) and len(test.ops) == 1:
            left = _dotted(test.left)
            is_none = (
                isinstance(test.comparators[0], ast.Constant)
                and test.comparators[0].value is None
            )
            if left and is_none:
                if isinstance(test.ops[0], ast.IsNot) and when_true:
                    proven.add(left)
                elif isinstance(test.ops[0], ast.Is) and not when_true:
                    proven.add(left)
        elif when_true:
            # `if self.observer:` -- truthiness implies non-None.
            dotted = _dotted(test)
            if dotted:
                proven.add(dotted)
        return proven

    def visit_If(self, node: ast.If) -> None:
        self._visit_branching(node.test, node.body, node.orelse)

    def visit_IfExp(self, node: ast.IfExp) -> None:
        self._visit_branching(node.test, [node.body], [node.orelse])

    def _visit_branching(self, test, body, orelse) -> None:
        self.visit(test)
        self._guards.append(self._guard_exprs(test, True))
        self._visit_block(body)
        self._guards.pop()
        self._guards.append(self._guard_exprs(test, False))
        self._visit_block(orelse)
        self._guards.pop()

    def _visit_block(self, stmts: Sequence[ast.stmt]) -> None:
        """Visit a statement list with flow narrowing.

        Two statement shapes prove an expression non-None for every
        *later* statement in the same block:

        * ``if x is None: <...terminal>`` (early return/raise/continue/
          break) -- the flip side of the branch guard;
        * ``assert x is not None`` -- execution past it implies truth.
        """
        self._guards.append(set())
        for stmt in stmts:
            self.visit(stmt)
            if (
                isinstance(stmt, ast.If)
                and not stmt.orelse
                and _block_terminates(stmt.body)
            ):
                self._guards[-1] |= self._guard_exprs(stmt.test, False)
            elif isinstance(stmt, ast.Assert):
                self._guards[-1] |= self._guard_exprs(stmt.test, True)
        self._guards.pop()

    def visit_Module(self, node: ast.Module) -> None:
        self._visit_block(node.body)

    def visit_For(self, node: ast.For) -> None:
        if self.in_hot_loop:
            self._check_set_iter(node.iter)
        self.visit(node.target)
        self.visit(node.iter)
        self._visit_block(node.body)
        self._visit_block(node.orelse)

    def visit_While(self, node: ast.While) -> None:
        self.visit(node.test)
        self._visit_block(node.body)
        self._visit_block(node.orelse)

    def visit_With(self, node: ast.With) -> None:
        for item in node.items:
            self.visit(item)
        self._visit_block(node.body)

    def visit_Try(self, node: ast.Try) -> None:
        self._visit_block(node.body)
        for handler in node.handlers:
            self._visit_block(handler.body)
        self._visit_block(node.orelse)
        self._visit_block(node.finalbody)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._enter_function(node, is_async=False)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._enter_function(node, is_async=True)

    def _enter_function(self, node, is_async: bool = False) -> None:
        for dec in node.decorator_list:
            self.visit(dec)
        self.visit(node.args)
        self._alias_stack.append({})
        self._async_stack.append(is_async)
        outer_guards = self._guards
        self._guards = []
        self._visit_block(node.body)
        self._guards = outer_guards
        self._async_stack.pop()
        self._alias_stack.pop()

    def visit_Assign(self, node: ast.Assign) -> None:
        # Track `fs = self.fault_state` style aliases so a later
        # `if fs is not None:` guard covers calls through `fs`.
        if self._alias_stack and len(node.targets) == 1:
            target = node.targets[0]
            src = _dotted(node.value)
            if isinstance(target, ast.Name) and src and self._is_guarded_name(src):
                self._alias_stack[-1][target.id] = src
        self.generic_visit(node)

    @staticmethod
    def _is_guarded_name(dotted: str) -> bool:
        last = dotted.split(".")[-1]
        return last in _GUARDED_ATTRS

    def visit_BoolOp(self, node: ast.BoolOp) -> None:
        """Progressive narrowing inside one boolean expression.

        In ``x is not None and x.y`` the second conjunct only evaluates
        when the first held; dually, in ``x is None or x.y`` the second
        disjunct only evaluates when ``x`` is non-None.  Each operand is
        visited under the guards established by the operands before it.
        """
        proven: Set[str] = set()
        for clause in node.values:
            self._guards.append(set(proven))
            self.visit(clause)
            self._guards.pop()
            if isinstance(node.op, ast.And):
                proven |= self._guard_exprs(clause, True)
            else:  # Or: later disjuncts run only when this one is falsy
                proven |= self._guard_exprs(clause, False)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if self.in_guarded:
            self._check_guarded_access(node)
        self.generic_visit(node)

    def _check_guarded_access(self, node: ast.Attribute) -> None:
        """Any access shaped ``<expr>.attr`` where ``<expr>`` is an
        observer-like attribute (or an alias of one) must sit under an
        ``is not None`` guard for that same expression.

        Covers calls (``fs.counters[...] += 1`` and ``obs.hook(...)``
        alike): every branch of fault-aware/instrumented code stays
        behind the None fast-path check.
        """
        target = _dotted(node.value)
        if target is None:
            return
        aliases = self._alias_stack[-1] if self._alias_stack else {}
        if not (self._is_guarded_name(target) or target in aliases):
            return
        # Accept a guard on the expression itself or on anything it
        # aliases (fs -> self.fault_state).
        candidates = {target}
        if target in aliases:
            candidates.add(aliases[target])
        for guards in self._guards:
            if candidates & guards:
                return
        self._emit(
            "SRC-OBSERVER-GUARD", node,
            f"access through {target!r} without an `is not None` guard; the "
            "None fast path is the simulation performance contract",
        )


def lint_source_file(path: str, code: Optional[str] = None) -> List[Finding]:
    """Lint one file; ``code`` overrides reading from disk (tests)."""
    if code is None:
        code = Path(path).read_text()
    try:
        tree = ast.parse(code, filename=path)
    except SyntaxError as exc:
        return [
            Finding(
                "SRC-SYNTAX", "error", path,
                f"line {exc.lineno or 0}", f"file does not parse: {exc.msg}",
            )
        ]
    linter = _SourceLinter(path, code)
    linter.visit(tree)
    return linter.findings


#: Synthetic path prefix for rendered compiled-kernel templates.  It
#: places the generated code in the ``netsim`` scope, so every
#: simulation-determinism rule (unseeded randomness, wall-clock reads,
#: set iteration, observer guards) applies to it unchanged.
GENERATED_KERNEL_SCOPE = "repro/netsim/generated"


def lint_generated_kernels() -> List[Finding]:
    """Lint the rendered compiled-kernel template sources.

    The ``compiled`` kernel executes generated modules inside the
    simulation, so they carry the same determinism contract as
    hand-written ``repro/netsim`` code -- but they never exist on disk
    for :func:`lint_source_tree` to find.  Render each representative
    template design point and lint it under a synthetic
    ``repro/netsim/generated/<slug>.py`` path instead.
    """
    from ..netsim.codegen import iter_template_sources

    findings: List[Finding] = []
    for slug, source in iter_template_sources():
        findings.extend(
            lint_source_file(f"{GENERATED_KERNEL_SCOPE}/{slug}.py", source)
        )
    return findings


def lint_source_tree(root: Path) -> List[Finding]:
    """Lint every ``*.py`` under ``root`` (the ``repro`` package dir).

    Scopes are reported relative to ``root.parent`` so findings read
    ``repro/netsim/router.py`` regardless of where the tree lives.
    """
    root = Path(root)
    findings: List[Finding] = []
    for path in sorted(root.rglob("*.py")):
        rel = path.relative_to(root.parent)
        findings.extend(lint_source_file(str(rel), path.read_text()))
    return findings
