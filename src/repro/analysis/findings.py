"""Machine-readable findings and the baseline suppression file.

Every check in :mod:`repro.analysis` reports :class:`Finding` records:
a stable rule id, a severity, the scope it was found in (netlist name
or source path), a location within that scope (net path or line), and a
human-readable message.  The ``(rule, scope, location)`` triple is the
finding's *suppression key*: a :class:`Baseline` file lists such
triples (with ``fnmatch`` wildcards) for accepted pre-existing
findings, so CI gates only on findings outside the baseline.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from fnmatch import fnmatchcase
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "SEVERITIES",
    "Finding",
    "Baseline",
    "format_findings",
    "findings_to_json",
]

#: Recognized severities, most severe first.  Every severity gates CI
#: unless baselined; the split exists so reports sort sensibly and the
#: baseline can be audited per class of problem.
SEVERITIES: Tuple[str, ...] = ("error", "warning", "info")

_SEVERITY_RANK = {s: i for i, s in enumerate(SEVERITIES)}


@dataclass(frozen=True)
class Finding:
    """One static-analysis finding.

    ``scope`` identifies the artifact (netlist name or repo-relative
    source path), ``location`` the position inside it (``net 123
    (AND2)`` or ``line 45``).  Both are stable across re-runs for an
    unchanged input, which is what makes baseline suppression sound.
    """

    rule: str
    severity: str
    scope: str
    location: str
    message: str

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(
                f"unknown severity {self.severity!r}; expected one of "
                f"{SEVERITIES}"
            )

    @property
    def key(self) -> Tuple[str, str, str]:
        """Suppression key: what a baseline entry matches against."""
        return (self.rule, self.scope, self.location)

    def to_dict(self) -> Dict[str, str]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, str]) -> "Finding":
        return cls(
            rule=data["rule"],
            severity=data["severity"],
            scope=data["scope"],
            location=data["location"],
            message=data.get("message", ""),
        )

    def render(self) -> str:
        return (
            f"{self.severity:7s} {self.rule:22s} {self.scope}: "
            f"{self.location}: {self.message}"
        )


def _sort_key(f: Finding) -> Tuple[int, str, str, str]:
    return (_SEVERITY_RANK.get(f.severity, 99), f.rule, f.scope, f.location)


class Baseline:
    """Suppression file for accepted pre-existing findings.

    JSON schema::

        {
          "version": 1,
          "suppressions": [
            {"rule": "DRC-CONST-FOLD", "scope": "vc_wf_*", "location": "*",
             "reason": "wavefront ties illegal cells to const-0 like the RTL"}
          ]
        }

    ``rule``/``scope``/``location`` are matched with
    :func:`fnmatch.fnmatchcase` so one entry can cover a family of
    structurally-identical findings.  ``reason`` is documentation only
    but strongly encouraged -- a baseline entry without a reason is a
    finding waiting to be forgotten.
    """

    VERSION = 1

    def __init__(self, entries: Sequence[Dict[str, str]] = ()) -> None:
        self.entries: List[Dict[str, str]] = []
        for entry in entries:
            if "rule" not in entry:
                raise ValueError(f"baseline entry missing 'rule': {entry!r}")
            self.entries.append(
                {
                    "rule": entry["rule"],
                    "scope": entry.get("scope", "*"),
                    "location": entry.get("location", "*"),
                    "reason": entry.get("reason", ""),
                }
            )
        self._hits = [0] * len(self.entries)

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        data = json.loads(Path(path).read_text())
        version = data.get("version")
        if version != cls.VERSION:
            raise ValueError(
                f"unsupported baseline version {version!r} in {path} "
                f"(expected {cls.VERSION})"
            )
        return cls(data.get("suppressions", []))

    def dump(self, path: Path) -> None:
        payload = {"version": self.VERSION, "suppressions": self.entries}
        Path(path).write_text(json.dumps(payload, indent=2) + "\n")

    def matches(self, finding: Finding) -> bool:
        """True (and counted) when any entry suppresses ``finding``."""
        for i, entry in enumerate(self.entries):
            if (
                fnmatchcase(finding.rule, entry["rule"])
                and fnmatchcase(finding.scope, entry["scope"])
                and fnmatchcase(finding.location, entry["location"])
            ):
                self._hits[i] += 1
                return True
        return False

    def partition(
        self, findings: Iterable[Finding]
    ) -> Tuple[List[Finding], List[Finding]]:
        """Split into (unsuppressed, suppressed), each sorted."""
        kept: List[Finding] = []
        dropped: List[Finding] = []
        for f in findings:
            (dropped if self.matches(f) else kept).append(f)
        kept.sort(key=_sort_key)
        dropped.sort(key=_sort_key)
        return kept, dropped

    def unused_entries(self) -> List[Dict[str, str]]:
        """Entries that matched nothing -- stale suppressions to prune."""
        return [e for e, h in zip(self.entries, self._hits) if h == 0]


def format_findings(
    findings: Sequence[Finding],
    suppressed: int = 0,
    title: str = "",
) -> str:
    """Human-readable report, most severe first."""
    lines: List[str] = []
    if title:
        lines.append(title)
    for f in sorted(findings, key=_sort_key):
        lines.append(f.render())
    counts: Dict[str, int] = {}
    for f in findings:
        counts[f.severity] = counts.get(f.severity, 0) + 1
    summary = ", ".join(
        f"{counts[s]} {s}(s)" for s in SEVERITIES if s in counts
    )
    lines.append(
        f"{len(findings)} finding(s)"
        + (f" ({summary})" if summary else "")
        + (f", {suppressed} baseline-suppressed" if suppressed else "")
    )
    return "\n".join(lines)


def findings_to_json(
    findings: Sequence[Finding],
    suppressed: Sequence[Finding] = (),
    meta: Optional[Dict[str, Any]] = None,
) -> str:
    """Stable machine-readable report (the CI artifact format)."""
    counts: Dict[str, int] = {s: 0 for s in SEVERITIES}
    for f in findings:
        counts[f.severity] += 1
    payload: Dict[str, Any] = {
        "version": 1,
        "summary": {
            "total": len(findings),
            "suppressed": len(suppressed),
            **counts,
        },
        "findings": [f.to_dict() for f in sorted(findings, key=_sort_key)],
        "suppressed": [f.to_dict() for f in sorted(suppressed, key=_sort_key)],
    }
    if meta:
        payload["meta"] = dict(meta)
    return json.dumps(payload, indent=1, sort_keys=True)
