"""DRC driver over every allocator netlist the paper evaluates.

Enumerates the six design points (8x8 mesh V in {2,4,8}; 4x4 flattened
butterfly V in {4,8,16}) across the allocator variants of Figures
5/6/10/11 -- VC allocators (sparse, the paper's optimized builds) and
switch allocators under all three speculation schemes -- builds each
netlist, and runs the :class:`~repro.analysis.drc.NetlistDRC` over it.

Design points whose gate estimate exceeds the synthesis capacity model
are *skipped* exactly as the synthesis flow fails them (Design Compiler
running out of memory in the paper); a skip is reported, not silently
dropped.
"""

from __future__ import annotations

from typing import Iterator, List, NamedTuple, Optional, Sequence, Tuple

from ..eval.design_points import (
    ALL_POINTS,
    MESH_POINTS,
    SPECULATION_SCHEMES,
    SWITCH_VARIANTS,
    VC_VARIANTS,
    DesignPoint,
)
from ..hw.netlist import Netlist
from ..hw.sw_alloc_gates import (
    build_switch_allocator_netlist,
    estimate_switch_allocator_gates,
)
from ..hw.synthesis import DEFAULT_MAX_CELLS
from ..hw.vc_alloc_gates import (
    build_vc_allocator_netlist,
    estimate_vc_allocator_gates,
)
from .drc import DrcConfig, NetlistDRC
from .findings import Finding

__all__ = ["NetlistJob", "iter_paper_netlists", "lint_paper_netlists"]


class NetlistJob(NamedTuple):
    """One netlist to check, or the reason it cannot be built."""

    label: str
    builder: Optional[object]  # () -> Netlist, None when skipped
    skip_reason: str = ""


def _vc_jobs(point: DesignPoint, max_cells: int) -> Iterator[NetlistJob]:
    for arch, arbiter in VC_VARIANTS:
        label = f"vc/{point.label}/{arch}/{arbiter}/sparse"
        estimate = estimate_vc_allocator_gates(
            point.num_ports, point.partition, arch, arbiter, sparse=True
        )
        if estimate > max_cells:
            yield NetlistJob(
                label, None,
                f"~{estimate} cells exceeds the {max_cells}-cell synthesis "
                "capacity model (fails in the paper too)",
            )
            continue
        yield NetlistJob(
            label,
            lambda p=point, a=arch, b=arbiter: build_vc_allocator_netlist(
                p.num_ports, p.partition, a, b, sparse=True
            ),
        )


def _sw_jobs(point: DesignPoint, max_cells: int) -> Iterator[NetlistJob]:
    for arch, arbiter in SWITCH_VARIANTS:
        for scheme in SPECULATION_SCHEMES:
            label = f"sw/{point.label}/{arch}/{arbiter}/{scheme}"
            estimate = estimate_switch_allocator_gates(
                point.num_ports, point.num_vcs, arch, arbiter, scheme
            )
            if estimate > max_cells:
                yield NetlistJob(
                    label, None,
                    f"~{estimate} cells exceeds the {max_cells}-cell "
                    "synthesis capacity model (fails in the paper too)",
                )
                continue
            yield NetlistJob(
                label,
                lambda p=point, a=arch, b=arbiter, s=scheme:
                    build_switch_allocator_netlist(
                        p.num_ports, p.num_vcs, a, b, s
                    ),
            )


def iter_paper_netlists(
    include_vc: bool = True,
    include_sw: bool = True,
    max_cells: int = DEFAULT_MAX_CELLS,
    quick: bool = False,
) -> Iterator[NetlistJob]:
    """Lazily yield every checkable netlist job.

    ``quick`` restricts to the smallest mesh design point (V=2) for
    fast smoke runs; the full matrix is the CI configuration.
    """
    points: Sequence[DesignPoint] = MESH_POINTS[:1] if quick else ALL_POINTS
    for point in points:
        if include_vc:
            yield from _vc_jobs(point, max_cells)
        if include_sw:
            yield from _sw_jobs(point, max_cells)


def lint_paper_netlists(
    config: Optional[DrcConfig] = None,
    include_vc: bool = True,
    include_sw: bool = True,
    max_cells: int = DEFAULT_MAX_CELLS,
    quick: bool = False,
    progress=None,
) -> Tuple[List[Finding], List[Tuple[str, str]], int]:
    """Run the DRC across the paper matrix.

    Returns ``(findings, skipped, checked)`` where ``skipped`` is a list
    of ``(label, reason)`` for capacity-excluded points and ``checked``
    counts netlists actually built and checked.  ``progress`` is an
    optional callable receiving one status line per job.
    """
    drc = NetlistDRC(config)
    findings: List[Finding] = []
    skipped: List[Tuple[str, str]] = []
    checked = 0
    for job in iter_paper_netlists(include_vc, include_sw, max_cells, quick):
        if job.builder is None:
            skipped.append((job.label, job.skip_reason))
            if progress is not None:
                progress(f"skip {job.label}: {job.skip_reason}")
            continue
        nl: Netlist = job.builder()
        found = drc.check(nl)
        findings.extend(found)
        checked += 1
        if progress is not None:
            progress(
                f"drc  {job.label}: {nl.num_nets} nets, "
                f"{len(found)} finding(s)"
            )
    return findings, skipped, checked
