"""Fault schedules: explicit event tuples plus seeded generation.

A :class:`FaultPlan` is pure data -- frozen dataclasses of tuples -- so
it is picklable (worker transport), hashable (usable as a dict key) and
JSON-round-trippable (``to_dict``/``from_dict``, used by the sweep
cache key).  Rates describe *generative* faults: the concrete event
list is expanded deterministically from ``(seed, network dimensions)``
when the simulation is built, so the same plan applied to the same
topology always yields the same faults -- in a worker process or
inline.

Fault semantics (see ``docs/ROBUSTNESS.md`` for the full model):

* **Link fault** -- output port ``port`` of router ``router`` is down
  for cycles ``[start, end)`` (``end=None`` means permanently).  While
  down, no VC or switch grant can target the port; flits already in
  flight on the wire are *not* dropped (the fault is detected before
  transmission), they simply wait upstream.
* **Stuck-at VC** -- output VC ``(router, port, vc)`` is removed from
  every VC-allocation candidate set from cycle ``start`` on (a stuck
  valid/allocated bit).  Packets fall back to the surviving VCs of
  their class.
* **Credit fault** -- the next credit arriving at router ``router`` for
  output ``(port, vc)`` at cycle >= ``cycle`` is dropped (upstream
  permanently under-counts, shrinking the effective buffer) or
  duplicated (upstream over-counts; the injector clamps so software
  invariants hold and counts the absorbed excess).
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass, field, fields
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "LinkFault",
    "StuckVC",
    "CreditFault",
    "FaultPlan",
    "parse_fault_spec",
]


def _check_coords(event: Any, **coords: int) -> None:
    """Structural validation shared by every fault-event dataclass."""
    for name, value in coords.items():
        if value < 0:
            raise ValueError(
                f"{type(event).__name__}: {name} must be >= 0, got {value}"
            )


@dataclass(frozen=True)
class LinkFault:
    """Output ``port`` of ``router`` is unusable for ``[start, end)``."""

    router: int
    port: int
    start: int = 0
    end: Optional[int] = None  # None = permanent

    def __post_init__(self) -> None:
        _check_coords(self, router=self.router, port=self.port)
        if self.start < 0:
            raise ValueError(f"{self!r}: start must be >= 0")
        if self.end is not None and self.end <= self.start:
            raise ValueError(f"{self!r}: window is empty (end <= start)")

    def active(self, cycle: int) -> bool:
        return self.start <= cycle and (self.end is None or cycle < self.end)

    @property
    def permanent(self) -> bool:
        return self.end is None


@dataclass(frozen=True)
class StuckVC:
    """Output VC ``(router, port, vc)`` never grantable from ``start``."""

    router: int
    port: int
    vc: int
    start: int = 0

    def __post_init__(self) -> None:
        _check_coords(self, router=self.router, port=self.port, vc=self.vc)
        if self.start < 0:
            raise ValueError(f"{self!r}: start must be >= 0")


@dataclass(frozen=True)
class CreditFault:
    """One credit at ``(router, port, vc)`` is dropped or duplicated.

    Fires on the first credit arriving at or after ``cycle`` (credits
    arrive at unpredictable times, so an exact-cycle trigger would
    silently miss).
    """

    router: int
    port: int
    vc: int
    cycle: int
    kind: str = "drop"  # "drop" | "dup"

    def __post_init__(self) -> None:
        if self.kind not in ("drop", "dup"):
            raise ValueError(f"unknown credit fault kind {self.kind!r}")
        _check_coords(self, router=self.router, port=self.port, vc=self.vc)
        if self.cycle < 0:
            raise ValueError(f"{self!r}: cycle must be >= 0")


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic fault schedule for one simulation.

    Rates are per-entity per-cycle probabilities expanded by
    :meth:`materialize` with a dedicated ``numpy`` Generator seeded by
    ``seed`` -- independent of the traffic RNG streams, so enabling
    faults never perturbs packet generation.  Explicit event tuples are
    merged with the generated ones.
    """

    seed: int = 0
    #: Per-(router, output port) per-cycle probability that a transient
    #: link fault begins (while no fault is already active on the port).
    link_rate: float = 0.0
    #: Mean duration, in cycles, of a generated transient link fault.
    mean_downtime: int = 20
    #: Probability that any given output VC is stuck-at from a random
    #: cycle onwards.
    stuck_vc_rate: float = 0.0
    #: Expected dropped credits per (router, port, vc) per cycle.
    credit_drop_rate: float = 0.0
    #: Expected duplicated credits per (router, port, vc) per cycle.
    credit_dup_rate: float = 0.0
    link_faults: Tuple[LinkFault, ...] = ()
    stuck_vcs: Tuple[StuckVC, ...] = ()
    credit_faults: Tuple[CreditFault, ...] = ()

    def __post_init__(self) -> None:
        for name in ("link_rate", "stuck_vc_rate", "credit_drop_rate",
                     "credit_dup_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.mean_downtime < 1:
            raise ValueError("mean_downtime must be >= 1 cycle")
        # Tolerate lists (e.g. a hand-built plan); normalize to tuples
        # so the plan stays hashable.
        for name, cls in (("link_faults", LinkFault), ("stuck_vcs", StuckVC),
                          ("credit_faults", CreditFault)):
            value = getattr(self, name)
            if not isinstance(value, tuple) or not all(
                isinstance(v, cls) for v in value
            ):
                object.__setattr__(
                    self, name,
                    tuple(v if isinstance(v, cls) else cls(**v) for v in value),
                )

    @property
    def is_empty(self) -> bool:
        """True when the plan can never produce a fault."""
        return (
            self.link_rate == 0.0
            and self.stuck_vc_rate == 0.0
            and self.credit_drop_rate == 0.0
            and self.credit_dup_rate == 0.0
            and not self.link_faults
            and not self.stuck_vcs
            and not self.credit_faults
        )

    # ------------------------------------------------------------------
    # serialization (cache keys, worker transport, CLI JSON files)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Canonical JSON-friendly form (event tuples become lists)."""
        out = asdict(self)
        out["link_faults"] = [asdict(e) for e in self.link_faults]
        out["stuck_vcs"] = [asdict(e) for e in self.stuck_vcs]
        out["credit_faults"] = [asdict(e) for e in self.credit_faults]
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultPlan":
        """Rebuild from :meth:`to_dict` output (unknown keys ignored)."""
        known = {f.name for f in fields(cls)}
        kwargs = {k: v for k, v in data.items() if k in known}
        kwargs["link_faults"] = tuple(
            LinkFault(**e) for e in kwargs.get("link_faults", ())
        )
        kwargs["stuck_vcs"] = tuple(
            StuckVC(**e) for e in kwargs.get("stuck_vcs", ())
        )
        kwargs["credit_faults"] = tuple(
            CreditFault(**e) for e in kwargs.get("credit_faults", ())
        )
        return cls(**kwargs)

    # ------------------------------------------------------------------
    # topology validation
    # ------------------------------------------------------------------
    def validate_topology(
        self, router_ports: Sequence[int], num_vcs: int
    ) -> None:
        """Reject events naming coordinates outside the network.

        A fault aimed at a router, port or VC that does not exist would
        otherwise materialize into a silent no-op in
        :class:`~repro.faults.state.FaultState` -- the sweep would
        report healthy numbers for a plan that was never applied.
        Raises a :class:`ValueError` naming the offending event.
        """
        num_routers = len(router_ports)
        for event in (*self.link_faults, *self.stuck_vcs,
                      *self.credit_faults):
            if event.router >= num_routers:
                raise ValueError(
                    f"{event!r} names router {event.router}, but the "
                    f"topology has {num_routers} routers"
                )
            ports = router_ports[event.router]
            if event.port >= ports:
                raise ValueError(
                    f"{event!r} names port {event.port}, but router "
                    f"{event.router} has {ports} ports"
                )
            vc = getattr(event, "vc", None)
            if vc is not None and vc >= num_vcs:
                raise ValueError(
                    f"{event!r} names VC {vc}, but the network has "
                    f"{num_vcs} VCs per port"
                )

    # ------------------------------------------------------------------
    # expansion
    # ------------------------------------------------------------------
    def materialize(
        self,
        router_ports: Sequence[int],
        num_vcs: int,
        horizon: int,
    ):
        """Expand the plan against concrete network dimensions.

        ``router_ports[r]`` is router ``r``'s port count (topologies
        here are port-uniform, but the per-router form keeps the
        generator honest).  ``horizon`` bounds generated fault times --
        normally ``warmup + measure + drain`` cycles.

        The draw order is fixed (links, then stuck VCs, then credits,
        each in (router, port, vc) order), so a given
        ``(plan, dimensions)`` pair always expands to the same event
        set regardless of where it runs.
        """
        from .state import FaultState  # local import avoids a cycle

        self.validate_topology(router_ports, num_vcs)

        link_faults: List[LinkFault] = list(self.link_faults)
        stuck_vcs: List[StuckVC] = list(self.stuck_vcs)
        credit_faults: List[CreditFault] = list(self.credit_faults)

        rng = np.random.default_rng(self.seed)
        if self.link_rate > 0.0:
            for r, ports in enumerate(router_ports):
                for p in range(ports):
                    t = 0
                    while True:
                        t += int(rng.geometric(self.link_rate))
                        if t >= horizon:
                            break
                        duration = int(rng.geometric(1.0 / self.mean_downtime))
                        link_faults.append(
                            LinkFault(r, p, t, min(t + duration, horizon))
                        )
                        t += duration
        if self.stuck_vc_rate > 0.0:
            for r, ports in enumerate(router_ports):
                for p in range(ports):
                    for v in range(num_vcs):
                        if rng.random() < self.stuck_vc_rate:
                            stuck_vcs.append(
                                StuckVC(r, p, v, int(rng.integers(horizon)))
                            )
        for rate, kind in ((self.credit_drop_rate, "drop"),
                           (self.credit_dup_rate, "dup")):
            if rate <= 0.0:
                continue
            for r, ports in enumerate(router_ports):
                for p in range(ports):
                    for v in range(num_vcs):
                        count = int(rng.poisson(rate * horizon))
                        if count:
                            cycles = sorted(
                                int(c) for c in rng.integers(horizon, size=count)
                            )
                            credit_faults.extend(
                                CreditFault(r, p, v, c, kind) for c in cycles
                            )
        return FaultState(link_faults, stuck_vcs, credit_faults)


def parse_fault_spec(spec: str) -> FaultPlan:
    """Build a :class:`FaultPlan` from a CLI argument.

    Accepts either a path to a JSON file holding ``FaultPlan.to_dict``
    output, or a compact ``key=value[,key=value...]`` spec::

        links=0.001,vcs=0.01,drop=0.0005,dup=0.0005,downtime=30,seed=7

    Keys: ``links`` (link_rate), ``vcs`` (stuck_vc_rate), ``drop``
    (credit_drop_rate), ``dup`` (credit_dup_rate), ``downtime``
    (mean_downtime), ``seed``.
    """
    if os.path.exists(spec):
        with open(spec) as fh:
            return FaultPlan.from_dict(json.load(fh))
    aliases = {
        "links": "link_rate",
        "link_rate": "link_rate",
        "vcs": "stuck_vc_rate",
        "stuck_vc_rate": "stuck_vc_rate",
        "drop": "credit_drop_rate",
        "credit_drop_rate": "credit_drop_rate",
        "dup": "credit_dup_rate",
        "credit_dup_rate": "credit_dup_rate",
        "downtime": "mean_downtime",
        "mean_downtime": "mean_downtime",
        "seed": "seed",
    }
    kwargs: Dict[str, Any] = {}
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        if "=" not in part:
            raise ValueError(
                f"fault spec item {part!r} is not key=value (and no file "
                f"named {spec!r} exists)"
            )
        key, value = part.split("=", 1)
        field_name = aliases.get(key.strip())
        if field_name is None:
            raise ValueError(
                f"unknown fault spec key {key!r} "
                f"(expected one of {sorted(set(aliases))})"
            )
        kwargs[field_name] = (
            int(value) if field_name in ("seed", "mean_downtime")
            else float(value)
        )
    return FaultPlan(**kwargs)
