"""Livelock/deadlock watchdog for the simulation driver.

Fault injection can make a run *unable* to finish: a permanent link
fault on the only legal path of a DOR route, or a stuck VC holding the
last escape channel, leaves flits parked forever.  Without a watchdog
such a run silently burns every configured cycle and then reports
nonsense statistics.  With one, the driver aborts early with a
:class:`WatchdogError` carrying a structured snapshot of where traffic
is stuck -- per-router occupancy, a sample of stranded packets and the
faults active at the time -- which is exactly what the sweep layer
records as a structured point failure.

Progress is measured as ``injected + ejected + switch grants``: any
flit entering the fabric, leaving it, or moving between routers bumps
the counter.  The watchdog polls every few cycles (cost amortized; the
fault-free path never constructs one) and fires when the counter has
been flat for at least ``limit`` cycles while work is still pending
(flits in flight or source backlog).  An idle network -- nothing in
flight, nothing queued -- never trips it, so low-rate drains are safe.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict

if TYPE_CHECKING:  # pragma: no cover
    from ..netsim.network import Network

__all__ = ["Watchdog", "WatchdogError", "deadlock_snapshot"]

#: Cap on the cycles between polls; actual cadence is
#: ``min(limit, _MAX_POLL_INTERVAL)`` so small limits stay precise and
#: large limits stay cheap.  Detection latency is at most one interval
#: beyond ``limit``.
_MAX_POLL_INTERVAL = 64

#: Snapshot size caps -- diagnostics, not a full core dump.
_MAX_ROUTERS_IN_SNAPSHOT = 16
_MAX_STALLED_PACKETS = 12


class WatchdogError(RuntimeError):
    """Raised when the fabric makes no progress for too long.

    ``snapshot`` holds the JSON-able diagnostic dict from
    :func:`deadlock_snapshot`.
    """

    def __init__(self, message: str, snapshot: Dict[str, Any]) -> None:
        super().__init__(message)
        self.snapshot = snapshot

    def __reduce__(self):
        # Default exception pickling replays __init__ with self.args
        # (one element), which would drop the snapshot.
        return (WatchdogError, (str(self), self.snapshot))


def deadlock_snapshot(net: "Network", stall_cycles: int) -> Dict[str, Any]:
    """Summarize where traffic is stuck (JSON-able, size-capped)."""
    routers = []
    for r in net.routers:
        occ = sum(
            ivc.occupancy for port in r.input_vcs for ivc in port
        )
        if occ:
            routers.append(
                {
                    "router": r.id,
                    "buffered_flits": occ,
                    "busy_vcs": len(r._busy),
                }
            )
    routers.sort(key=lambda row: -row["buffered_flits"])

    stalled = []
    for r in net.routers:
        for p, port_vcs in enumerate(r.input_vcs):
            for v, ivc in enumerate(port_vcs):
                front = ivc.front
                if front is None:
                    continue
                pkt = front.packet
                stalled.append(
                    {
                        "pid": pkt.pid,
                        "src": pkt.src,
                        "dest": pkt.dest,
                        "router": r.id,
                        "in_port": p,
                        "in_vc": v,
                        "out_port": ivc.output_port
                        if ivc.output_vc >= 0
                        else front.out_port,
                        "state": "active"
                        if ivc.output_vc >= 0
                        else ("routing" if front.out_port < 0 else "vc_alloc"),
                        "misroutes": pkt.misroutes,
                    }
                )
                if len(stalled) >= _MAX_STALLED_PACKETS:
                    break
            if len(stalled) >= _MAX_STALLED_PACKETS:
                break
        if len(stalled) >= _MAX_STALLED_PACKETS:
            break

    snapshot: Dict[str, Any] = {
        "cycle": net.time,
        "stall_cycles": stall_cycles,
        "in_flight_flits": net.in_flight_flits(),
        "source_backlog": net.total_backlog(),
        "occupied_routers": len(routers),
        "router_occupancy": routers[:_MAX_ROUTERS_IN_SNAPSHOT],
        "stalled_packets": stalled,
    }
    fs = getattr(net, "fault_state", None)
    if fs is not None:
        snapshot["active_link_faults"] = [
            {"router": r, "port": p}
            for r, p in fs.active_link_faults(net.time)
        ]
        # Per-router faulted-link summary: lets a WatchdogError under
        # injected faults be diagnosed without rerunning the point.
        snapshot["faulted_links_by_router"] = {
            str(router): ports
            for router, ports in sorted(
                fs.faulted_ports_by_router(net.time).items()
            )
        }
        snapshot["fault_counters"] = fs.summary()
    return snapshot


class Watchdog:
    """Polls a network for forward progress; raises when it stalls."""

    def __init__(self, net: "Network", limit: int) -> None:
        if limit < 1:
            raise ValueError("watchdog limit must be >= 1 cycle")
        self.limit = int(limit)
        self.interval = min(self.limit, _MAX_POLL_INTERVAL)
        self._last_progress = self._progress(net)
        self._progress_cycle = net.time
        self._next_poll = net.time + self.interval

    @staticmethod
    def _progress(net: "Network") -> int:
        return (
            net.total_injected_flits()
            + net.total_ejected_flits()
            + sum(r.switch_grants for r in net.routers)
        )

    def poll(self, net: "Network") -> None:
        """Cheap per-cycle hook; does real work every ``interval``.

        Raises :class:`WatchdogError` when no flit has been injected,
        ejected or granted the switch for at least ``limit`` cycles
        while flits are in flight or sources are backlogged.
        """
        now = net.time
        if now < self._next_poll:
            return
        self._next_poll = now + self.interval

        progress = self._progress(net)
        if progress != self._last_progress:
            self._last_progress = progress
            self._progress_cycle = now
            return

        stalled = now - self._progress_cycle
        if stalled < self.limit:
            return
        if net.in_flight_flits() == 0 and net.total_backlog() == 0:
            # Idle, not deadlocked (e.g. a long drain after low load).
            self._progress_cycle = now
            return
        fs = getattr(net, "fault_state", None)
        if fs is not None and fs.transient_link_fault_between(
            self._progress_cycle, now
        ):
            # The stall overlaps a transient fault window: traffic may
            # simply be riding out the outage.  Defer the verdict and
            # restart the stall clock; a stall that persists once every
            # transient window has closed still trips.
            self._progress_cycle = now
            fs.counters["watchdog_deferrals"] += 1
            return
        snapshot = deadlock_snapshot(net, stalled)
        raise WatchdogError(
            f"no forward progress for {stalled} cycles at cycle {now} "
            f"({snapshot['in_flight_flits']} flits in flight, "
            f"{snapshot['source_backlog']} packets backlogged)",
            snapshot,
        )
