"""repro.faults -- deterministic seeded fault injection for the NoC fabric.

The paper evaluates allocators on a perfect fabric; this package makes
resource *unavailability* a first-class, reproducible experiment axis
(in the spirit of the dynamic/preemptive VC-allocation literature in
PAPERS.md).  Three layers:

``repro.faults.plan``
    :class:`FaultPlan` -- a picklable, hashable, JSON-serializable
    schedule of transient/permanent link faults, stuck-at output VCs
    and dropped/duplicated credits at ``(cycle, router, port, vc)``
    granularity.  A plan is either written out explicitly (event
    tuples) or generated deterministically from rates + a seed when the
    network dimensions become known.  The plan is part of
    :class:`~repro.netsim.simulator.SimulationConfig` and therefore of
    the sweep-cache key; ``faults=None`` configs serialize exactly as
    before, so existing caches and goldens stay valid.

``repro.faults.state``
    :class:`FaultState` -- the per-simulation runtime the router,
    network and allocators consult.  Wired the same way as
    :mod:`repro.obs`: every hook site is behind a single
    ``fault_state is None`` check (the null-object fast path), so
    fault-free runs are bit-identical to pre-fault builds.

``repro.faults.watchdog``
    A livelock/deadlock watchdog for the simulation driver: when no
    flit moves for a configured number of cycles while work is pending,
    the run aborts with a :class:`WatchdogError` carrying a diagnostic
    snapshot (per-router occupancy, stalled packets, active faults)
    instead of silently burning to ``max_cycles``.
"""

from .plan import CreditFault, FaultPlan, LinkFault, StuckVC, parse_fault_spec
from .state import FaultState
from .watchdog import Watchdog, WatchdogError, deadlock_snapshot

__all__ = [
    "CreditFault",
    "FaultPlan",
    "LinkFault",
    "StuckVC",
    "parse_fault_spec",
    "FaultState",
    "Watchdog",
    "WatchdogError",
    "deadlock_snapshot",
]
