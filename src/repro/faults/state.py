"""Per-simulation fault runtime consulted by router/network hot paths.

A :class:`FaultState` is built once per run by
:meth:`FaultPlan.materialize` and attached via
``Network.attach_fault_state``.  It is pure lookup machinery: all
randomness happened at materialization, so every query is a
deterministic function of ``(plan, dimensions, cycle)`` -- which is
what makes fault-injected sweeps bit-identical between serial and
parallel execution.

Query cost is kept off the fault-free hot path entirely (call sites
guard on ``fault_state is None``) and cheap in fault mode:

* link-fault windows are sorted per (router, port) and scanned with a
  monotonic cursor (simulation time only moves forward);
* stuck VCs are precomputed into per-router ``{port: frozenset(vcs)}``
  maps and flat index sets for the allocator-level masks;
* credit faults are sorted queues per ``(router, port, vc)`` consumed
  at most one per arriving credit.

The state also owns the fault *counters* surfaced through
:mod:`repro.obs` (``fault_*`` instruments) and the run summary.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from .plan import CreditFault, LinkFault, StuckVC

__all__ = ["FaultState"]


class _PortWindows:
    """Sorted fault windows for one (router, port) with a time cursor."""

    __slots__ = ("windows", "idx")

    def __init__(self, windows: List[Tuple[int, Optional[int]]]) -> None:
        self.windows = sorted(windows, key=lambda w: w[0])
        self.idx = 0

    def active(self, cycle: int) -> bool:
        w = self.windows
        i = self.idx
        while i < len(w) and w[i][1] is not None and w[i][1] <= cycle:
            i += 1
        self.idx = i
        return i < len(w) and w[i][0] <= cycle


class FaultState:
    """Materialized fault schedule + live counters for one simulation."""

    def __init__(
        self,
        link_faults: Iterable[LinkFault],
        stuck_vcs: Iterable[StuckVC],
        credit_faults: Iterable[CreditFault],
    ) -> None:
        self.link_faults: Tuple[LinkFault, ...] = tuple(link_faults)
        self.stuck_vcs: Tuple[StuckVC, ...] = tuple(stuck_vcs)
        self.credit_faults: Tuple[CreditFault, ...] = tuple(credit_faults)

        # (router, port) -> window cursor; router -> its faulted ports.
        self._windows: Dict[Tuple[int, int], _PortWindows] = {}
        grouped: Dict[Tuple[int, int], List[Tuple[int, Optional[int]]]] = {}
        for lf in self.link_faults:
            grouped.setdefault((lf.router, lf.port), []).append(
                (lf.start, lf.end)
            )
        for key, windows in grouped.items():
            self._windows[key] = _PortWindows(windows)
        self._router_fault_ports: Dict[int, List[int]] = {}
        for r, p in self._windows:
            self._router_fault_ports.setdefault(r, []).append(p)
        for ports in self._router_fault_ports.values():
            ports.sort()

        # router -> {port: {vc: start cycle}}.
        stuck_map: Dict[int, Dict[int, Dict[int, int]]] = {}
        for sv in self.stuck_vcs:
            port_map = stuck_map.setdefault(sv.router, {})
            vc_map = port_map.setdefault(sv.port, {})
            # Earliest start wins if the same VC is listed twice.
            vc_map[sv.vc] = min(vc_map.get(sv.vc, sv.start), sv.start)
        self._stuck_map = stuck_map

        # (router, port, vc) -> sorted [(cycle, kind), ...] with cursor.
        self._credit_queues: Dict[Tuple[int, int, int], List[Tuple[int, str]]] = {}
        for cf in self.credit_faults:
            self._credit_queues.setdefault(
                (cf.router, cf.port, cf.vc), []
            ).append((cf.cycle, cf.kind))
        for queue in self._credit_queues.values():
            queue.sort()
        self._credit_idx: Dict[Tuple[int, int, int], int] = {
            key: 0 for key in self._credit_queues
        }

        # Live counters (surfaced through repro.obs and diagnostics).
        self.counters: Dict[str, int] = {
            "link_blocked_requests": 0,
            "stuck_vc_masked": 0,
            "credits_dropped": 0,
            "credits_duplicated": 0,
            "credit_dups_absorbed": 0,
            "buffer_overflows": 0,
            "credit_overflows_absorbed": 0,
            # Fault-aware routing / graceful degradation.
            "escape_reroutes": 0,
            "packets_unroutable": 0,
            "watchdog_deferrals": 0,
            "watchdog_degraded_trips": 0,
        }

        self._permanent_links: FrozenSet[Tuple[int, int]] = frozenset(
            (lf.router, lf.port) for lf in self.link_faults if lf.end is None
        )
        self._transient_links: Tuple[LinkFault, ...] = tuple(
            lf for lf in self.link_faults if lf.end is not None
        )

    # ------------------------------------------------------------------
    # link faults
    # ------------------------------------------------------------------
    def router_has_link_faults(self, router_id: int) -> bool:
        return router_id in self._router_fault_ports

    def blocked_ports(self, router_id: int, cycle: int) -> Optional[Set[int]]:
        """Output ports of ``router_id`` down at ``cycle`` (or None).

        ``cycle`` must be non-decreasing across calls for a given
        router (the per-cycle allocation loop guarantees this).
        """
        ports = self._router_fault_ports.get(router_id)
        if ports is None:
            return None
        blocked: Optional[Set[int]] = None
        for p in ports:
            if self._windows[(router_id, p)].active(cycle):
                if blocked is None:
                    blocked = set()
                blocked.add(p)
        return blocked

    def note_blocked_request(self, n: int = 1) -> None:
        self.counters["link_blocked_requests"] += n

    # ------------------------------------------------------------------
    # stuck VCs
    # ------------------------------------------------------------------
    def stuck_by_port(self, router_id: int) -> Optional[Dict[int, FrozenSet[int]]]:
        """``{output port: frozenset(stuck vcs)}`` for one router.

        Conservative view: a VC is reported stuck regardless of its
        ``start`` cycle (starts are typically 0 or early; treating the
        whole run as stuck keeps the per-candidate check O(1)).  VCs
        with ``start > 0`` are activated exactly: the router re-checks
        via :meth:`vc_stuck` only for ports present in this map.
        """
        port_map = self._stuck_map.get(router_id)
        if not port_map:
            return None
        return {
            port: frozenset(vc_map) for port, vc_map in port_map.items()
        }

    def vc_stuck(self, router_id: int, port: int, vc: int, cycle: int) -> bool:
        start = self._stuck_map.get(router_id, {}).get(port, {}).get(vc)
        return start is not None and cycle >= start

    def stuck_flat(self, router_id: int, num_vcs: int) -> Optional[FrozenSet[int]]:
        """Flat ``port * V + vc`` indices of VCs stuck from cycle 0 (the
        static VC-allocator-level mask).

        Only ``start == 0`` faults qualify: the allocator mask is set
        once per run, so time-activated stuck VCs are enforced solely by
        the router's per-cycle candidate filtering (:meth:`vc_stuck`).
        """
        port_map = self._stuck_map.get(router_id)
        if not port_map:
            return None
        flat = frozenset(
            port * num_vcs + vc
            for port, vc_map in port_map.items()
            for vc, start in vc_map.items()
            if start == 0
        )
        return flat or None

    # ------------------------------------------------------------------
    # credit faults
    # ------------------------------------------------------------------
    def credit_event(
        self, router_id: int, port: int, vc: int, cycle: int
    ) -> Optional[str]:
        """Consume and return the pending fault for a credit arriving at
        ``(router, port, vc)`` at ``cycle``, if one is due."""
        key = (router_id, port, vc)
        queue = self._credit_queues.get(key)
        if queue is None:
            return None
        idx = self._credit_idx[key]
        if idx < len(queue) and queue[idx][0] <= cycle:
            self._credit_idx[key] = idx + 1
            return queue[idx][1]
        return None

    @property
    def has_credit_faults(self) -> bool:
        return bool(self._credit_queues)

    # ------------------------------------------------------------------
    # fault-aware routing / watchdog triage
    # ------------------------------------------------------------------
    def permanent_link_faults(self) -> FrozenSet[Tuple[int, int]]:
        """(router, port) pairs down forever (``end is None``) -- the
        pre-diagnosed fault set fault-aware routing detours around."""
        return self._permanent_links

    @property
    def has_permanent_link_faults(self) -> bool:
        return bool(self._permanent_links)

    def transient_link_fault_between(self, start: int, end: int) -> bool:
        """Any *transient* link fault active somewhere in ``[start, end]``?

        Used by the watchdog to distinguish a stall riding out a fault
        window from a genuine livelock/deadlock.  Diagnostics-only --
        does not advance the hot-path cursors.
        """
        for lf in self._transient_links:
            if lf.start <= end and start < lf.end:  # type: ignore[operator]
                return True
        return False

    def faulted_ports_by_router(self, cycle: int) -> Dict[int, List[int]]:
        """``{router: sorted ports down at cycle}`` for diagnostics."""
        out: Dict[int, List[int]] = {}
        for lf in self.link_faults:
            if lf.active(cycle):
                ports = out.setdefault(lf.router, [])
                if lf.port not in ports:
                    ports.append(lf.port)
        for ports in out.values():
            ports.sort()
        return out

    # ------------------------------------------------------------------
    def active_link_faults(self, cycle: int) -> List[Tuple[int, int]]:
        """(router, port) pairs down at ``cycle`` -- for diagnostics;
        does not advance the hot-path cursors."""
        return [
            (lf.router, lf.port)
            for lf in self.link_faults
            if lf.active(cycle)
        ]

    def summary(self) -> Dict[str, int]:
        """Schedule sizes + live counters (obs export, snapshots)."""
        out = {
            "link_fault_events": len(self.link_faults),
            "stuck_vc_events": len(self.stuck_vcs),
            "credit_fault_events": len(self.credit_faults),
        }
        out.update(self.counters)
        return out
