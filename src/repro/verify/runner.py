"""Top-level driver: prove the full paper matrix, end to end.

Runs, in order: (1) oracle cross-validation -- the packed reference
functions the proofs compare against are themselves proved equal to the
behavioural arbiters, so the trust chain bottoms out in
:mod:`repro.core`, not in this package; (2) the round-robin bounded
starvation argument; (3) the component equivalence/property checker
over every buildable netlist of the paper's design-point matrix; and
(4) the end-to-end allocator equivalence matrix.

All results are :class:`~repro.analysis.findings.Finding` objects so
the verify CLI shares the baseline/suppression machinery with the DRC
and source linter.  Capacity-skipped design points are reported as
``(label, reason)`` tuples, mirroring :func:`lint_paper_netlists` --
a skip is visible but does not gate CI.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from ..analysis.findings import Finding
from ..analysis.netlists import iter_paper_netlists
from ..hw.synthesis import DEFAULT_MAX_CELLS
from ..hw.trace import tracing
from .equivalence import check_netlist, e2e_check_matrix
from .oracles import (
    validate_matrix_oracle,
    validate_rr_oracle,
    validate_wavefront_oracle,
)
from .properties import rr_starvation_bound

__all__ = ["VERIFY_RULES", "verify_paper_netlists"]

#: Rule catalogue for ``repro verify`` findings.  Everything is emitted
#: at severity ``error``: a verification finding is a disproof, and a
#: disproof is never advisory.
VERIFY_RULES = {
    "VER-EQUIV": (
        "netlist grant logic diverges from the behavioural "
        "allocator/arbiter on some input and reachable priority state"
    ),
    "VER-STATE": (
        "priority state-update logic diverges from the behavioural "
        "update (induction step fails)"
    ),
    "VER-STRUCT": (
        "gate structure does not match the proven component template"
    ),
    "VER-PROP": (
        "a declared allocator safety property is violated on a "
        "reachable state"
    ),
    "VER-STARVATION": (
        "round-robin bounded-starvation guarantee does not hold"
    ),
    "VER-TRACE": (
        "build trace is missing or inconsistent; the component could "
        "not be brought under proof"
    ),
    "VER-ORACLE": (
        "a packed oracle diverges from the behavioural model it "
        "summarises"
    ),
}


def _oracle_findings(quick: bool, progress) -> List[Finding]:
    """Cross-validate every oracle width the component proofs rely on."""
    findings: List[Finding] = []

    def run(kind: str, n: int, fn: Callable[[], None]) -> None:
        if progress is not None:
            progress(f"oracle {kind} n={n}")
        try:
            fn()
        except AssertionError as exc:
            findings.append(
                Finding(
                    rule="VER-ORACLE",
                    severity="error",
                    scope="oracles",
                    location=f"{kind}/n={n}",
                    message=str(exc),
                )
            )

    rr_widths = (2, 3) if quick else (2, 3, 4, 5)
    for n in rr_widths:
        run("rr", n, lambda n=n: validate_rr_oracle(n))
    matrix_jobs = [(3, None)] if quick else [(3, None), (4, None), (6, 32)]
    for n, samples in matrix_jobs:
        if samples is None:
            run("matrix", n, lambda n=n: validate_matrix_oracle(n))
        else:
            run(
                "matrix", n,
                lambda n=n, s=samples: validate_matrix_oracle(n, samples=s),
            )
    wf_widths = (2,) if quick else (2, 3)
    for n in wf_widths:
        run("wavefront", n, lambda n=n: validate_wavefront_oracle(n))
    return findings


def _starvation_findings(quick: bool) -> List[Finding]:
    """Prove the n-1 round-robin starvation bound at every paper width."""
    findings: List[Finding] = []
    widths = range(2, 5) if quick else range(2, 17)
    for n in widths:
        bound, per_pointer = rr_starvation_bound(n)
        if bound != n - 1:
            findings.append(
                Finding(
                    rule="VER-STARVATION",
                    severity="error",
                    scope="properties",
                    location=f"rr/n={n}",
                    message=(
                        f"worst-case starvation bound is {bound}, expected "
                        f"{n - 1}; per-pointer bounds {per_pointer}"
                    ),
                )
            )
    return findings


def verify_paper_netlists(
    include_vc: bool = True,
    include_sw: bool = True,
    max_cells: int = DEFAULT_MAX_CELLS,
    quick: bool = False,
    progress=None,
    include_e2e: bool = True,
    include_models: bool = True,
) -> Tuple[List[Finding], List[Tuple[str, str]], int]:
    """Run the full verification campaign over the paper matrix.

    Returns ``(findings, skipped, checked)`` in the same shape as
    :func:`repro.analysis.netlists.lint_paper_netlists`: ``skipped``
    holds ``(label, reason)`` for capacity-excluded design points and
    ``checked`` counts netlists actually proved.  ``quick`` restricts
    every stage to its smallest configuration for smoke runs;
    ``include_models`` covers the oracle cross-validation and the
    starvation bound (the model-level property layer).
    """
    findings: List[Finding] = []
    if include_models:
        findings.extend(_oracle_findings(quick, progress))
        findings.extend(_starvation_findings(quick))

    skipped: List[Tuple[str, str]] = []
    checked = 0
    for job in iter_paper_netlists(include_vc, include_sw, max_cells, quick):
        if job.builder is None:
            skipped.append((job.label, job.skip_reason))
            if progress is not None:
                progress(f"skip {job.label}: {job.skip_reason}")
            continue
        with tracing() as trace:
            nl = job.builder()
        found = check_netlist(nl, trace, scope=job.label)
        findings.extend(found)
        checked += 1
        if progress is not None:
            progress(
                f"prove {job.label}: {nl.num_nets} nets, "
                f"{len(found)} finding(s)"
            )
    if include_e2e:
        findings.extend(e2e_check_matrix(progress=progress, quick=quick))
    return findings, skipped, checked
