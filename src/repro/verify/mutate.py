"""Mutation self-test of the equivalence checker.

A verifier that proves nothing is indistinguishable from one that
proves everything, so the checker is itself checked: inject single-gate
mutations (kind swaps, fanin rewires, constant ties) into netlists the
checker claims to cover, and assert the mutants are *killed* (at least
one finding, or a checker exception).  Candidate gates are restricted
to :func:`_covered_nets` -- the union of the exact cones the component
proofs sweep -- so every sampled mutant is inside the claimed proof
perimeter and a survivor is a genuine coverage hole, not an artefact of
mutating dead logic.

Determinism: mutant selection is seeded per target via
``random.Random(f"{seed}:{name}")`` (string seeding, stable across
processes unlike ``hash``), so a reported survivor can be replayed
exactly.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..hw.alloc_gates import build_wavefront_matrix
from ..hw.arbiter_gates import build_arbiter
from ..hw.cells import CELL_INDEX
from ..hw.netlist import Netlist
from ..hw.sw_alloc_gates import build_switch_allocator_netlist
from ..hw.trace import BuildTrace, tracing
from ..hw.vc_alloc_gates import build_vc_allocator_netlist
from ..core.vc_partition import VCPartition
from .equivalence import check_netlist

__all__ = [
    "MutantOutcome",
    "MutationReport",
    "run_mutation_campaign",
    "MUTATION_TARGETS",
]

_DFF = CELL_INDEX["DFF"]
_KIND_NAME = {v: k for k, v in CELL_INDEX.items()}

#: Dual-kind swaps: each changes the gate's boolean function while
#: keeping its arity, the classic "operator replacement" mutation.
_SWAPS = {
    CELL_INDEX["AND2"]: CELL_INDEX["OR2"],
    CELL_INDEX["OR2"]: CELL_INDEX["AND2"],
    CELL_INDEX["AND3"]: CELL_INDEX["OR3"],
    CELL_INDEX["OR3"]: CELL_INDEX["AND3"],
    CELL_INDEX["AND4"]: CELL_INDEX["OR4"],
    CELL_INDEX["OR4"]: CELL_INDEX["AND4"],
    CELL_INDEX["NAND2"]: CELL_INDEX["NOR2"],
    CELL_INDEX["NOR2"]: CELL_INDEX["NAND2"],
    CELL_INDEX["INV"]: CELL_INDEX["BUF"],
    CELL_INDEX["BUF"]: CELL_INDEX["INV"],
}


@dataclass(frozen=True)
class MutantOutcome:
    """One injected mutant and what the checker did with it."""

    target: str
    mutant_index: int
    description: str
    killed: bool
    detail: str = ""


@dataclass
class MutationReport:
    """Campaign result; ``kill_rate`` is the CI-gated coverage metric."""

    outcomes: List[MutantOutcome] = field(default_factory=list)

    @property
    def total(self) -> int:
        return len(self.outcomes)

    @property
    def killed(self) -> int:
        return sum(1 for o in self.outcomes if o.killed)

    @property
    def kill_rate(self) -> float:
        return self.killed / self.total if self.outcomes else 1.0

    @property
    def survivors(self) -> List[MutantOutcome]:
        return [o for o in self.outcomes if not o.killed]

    def summary(self) -> str:
        return (
            f"{self.killed}/{self.total} mutants killed "
            f"({self.kill_rate:.1%}); {len(self.survivors)} survivors"
        )


def _covered_nets(nl: Netlist, trace: BuildTrace) -> List[int]:
    """Gate nets inside the cones the component proofs actually sweep.

    Mirrors the cuts of :mod:`.equivalence` exactly: arbiter grant
    cones cut at requests, every priority register's next-state cone
    with its induction cut, tree any-request OR cones and final AND
    glue, wavefront copy/output grant cones plus the pointer ring, and
    the preselect select/combine cones.
    """
    covered: set = set()

    def add(targets: Sequence[int], cut: Iterable[int]) -> None:
        cone, _ = nl.support(list(targets), cut)
        covered.update(cone)

    def add_reg_cones(
        regs: Sequence[int], grants: Sequence[int], enable: Optional[int]
    ) -> None:
        cut = list(grants) + ([enable] if enable is not None else [])
        for reg in regs:
            d = nl.reg_d.get(reg)
            if d is not None:
                add([d], cut + [reg])

    for a in trace.arbiters:
        add(a.grant_nets, a.request_nets)
        add_reg_cones(a.state_regs, a.grant_nets, a.update_enable)
    for t in trace.trees:
        for g, sub in enumerate(t.group_request_nets):
            add([t.group_any_nets[g]], sub)
        covered.update(t.grant_nets)
    for w in trace.wavefronts:
        flat = [r for row in w.request_nets for r in row]
        targets = [g for copy in w.copy_grant_nets for row in copy for g in row]
        targets += [g for row in w.grant_nets for g in row]
        add(targets, flat)
        if w.rotate_en is not None:
            add([w.rotate_en], flat)
            for d in range(w.n):
                dn = nl.reg_d.get(w.ptr_regs[d])
                if dn is not None:
                    add(
                        [dn],
                        [w.ptr_regs[d], w.ptr_regs[(d - 1) % w.n], w.rotate_en],
                    )
    for p in trace.preselects:
        for lines, sels in zip(p.line_nets, p.sel_nets):
            add(sels, lines)
        lines_all = [x for row in p.line_nets for x in row]
        add(p.grants_v, lines_all + list(p.xbar_row))
        add_reg_cones(p.mask_regs, p.grants_v, p.update_enable)
    return [n for n in sorted(covered) if nl.kinds[n] >= 0 and nl.kinds[n] != _DFF]


def _mutate(nl: Netlist, net: int, op: int, rng: random.Random) -> Optional[str]:
    """Apply one mutation in place; returns a description or None if
    the chosen operator does not apply to this gate."""
    kind = nl.kinds[net]
    fanins = nl.fanins[net]
    if op == 0:
        swapped = _SWAPS.get(kind)
        if swapped is None:
            return None
        nl.kinds[net] = swapped
        return (
            f"net {net}: {_KIND_NAME[kind]} -> {_KIND_NAME[swapped]} kind swap"
        )
    if not fanins or net == 0:
        return None
    idx = rng.randrange(len(fanins))
    if op == 1:
        repl = None
        for _ in range(8):
            cand = rng.randrange(net)
            if cand != fanins[idx]:
                repl = cand
                break
        if repl is None:
            return None
        new = list(fanins)
        new[idx] = repl
        nl.fanins[net] = tuple(new)
        return f"net {net} ({_KIND_NAME[kind]}): fanin {idx} rewired to net {repl}"
    cv = rng.randrange(2)
    new = list(fanins)
    new[idx] = nl.const(cv)
    nl.fanins[net] = tuple(new)
    return f"net {net} ({_KIND_NAME[kind]}): fanin {idx} tied to const {cv}"


def _arb_target(kind: str, n: int, tree_groups: Optional[int] = None):
    def make() -> Tuple[Netlist, BuildTrace]:
        nl = Netlist(f"mut_{kind}{n}")
        with tracing() as trace:
            reqs = nl.inputs(n, "req")
            grants, fin = build_arbiter(nl, kind, reqs, tree_groups=tree_groups)
            fin(None)
            for i, g in enumerate(grants):
                nl.mark_output(g, f"gnt{i}")
        nl.validate()
        return nl, trace

    return make


def _wf_target(n: int):
    def make() -> Tuple[Netlist, BuildTrace]:
        nl = Netlist(f"mut_wf{n}")
        with tracing() as trace:
            reqs = [
                [nl.input(f"r{i}_{j}") for j in range(n)] for i in range(n)
            ]
            grants = build_wavefront_matrix(nl, reqs)
            for i in range(n):
                for j in range(n):
                    nl.mark_output(grants[i][j], f"g{i}_{j}")
        nl.validate()
        return nl, trace

    return make


def _sw_target():
    with tracing() as trace:
        nl = build_switch_allocator_netlist(2, 2, "wf", "rr", "nonspec")
    return nl, trace


def _vc_target():
    with tracing() as trace:
        nl = build_vc_allocator_netlist(2, VCPartition.mesh(1), "sep_if", "rr")
    return nl, trace


#: Targets span every component checker: flat rr/matrix/fixed arbiters
#: at two widths (matrix6 exercises the exhaustive triangle sweep at
#: its 21-variable ceiling), a two-level tree, a wavefront block at a
#: packed-sweepable width, and two full allocator builds (wavefront
#: switch core with preselect; sep_if VC allocator with trees).
MUTATION_TARGETS: Dict[str, Callable[[], Tuple[Netlist, BuildTrace]]] = {
    "rr4": _arb_target("rr", 4),
    "rr6": _arb_target("rr", 6),
    "matrix4": _arb_target("m", 4),
    "matrix6": _arb_target("m", 6),
    "fixed5": _arb_target("fixed", 5),
    "tree_rr8": _arb_target("rr", 8, tree_groups=4),
    "wavefront3": _wf_target(3),
    "sw_wf_rr": _sw_target,
    "vc_sep_if_rr": _vc_target,
}


def run_mutation_campaign(
    seed: int = 0,
    mutants_per_target: int = 25,
    targets: Optional[Sequence[str]] = None,
) -> MutationReport:
    """Inject ``mutants_per_target`` single-gate mutants per target and
    run the full component checker against each.

    A mutant is *killed* when the checker reports any finding or raises
    (a mutilated netlist crashing the checker is detection, not
    failure).  Each mutation is applied in place and restored, so one
    build per target serves the whole campaign.
    """
    report = MutationReport()
    names = list(MUTATION_TARGETS) if targets is None else list(targets)
    for name in names:
        nl, trace = MUTATION_TARGETS[name]()
        candidates = _covered_nets(nl, trace)
        if not candidates:
            raise RuntimeError(f"mutation target {name} has no covered gates")
        rng = random.Random(f"{seed}:{name}")
        made = 0
        while made < mutants_per_target:
            net = candidates[rng.randrange(len(candidates))]
            op = rng.randrange(3)
            saved_kind = nl.kinds[net]
            saved_fanins = nl.fanins[net]
            desc = _mutate(nl, net, op, rng)
            if desc is None:
                nl.kinds[net] = saved_kind
                nl.fanins[net] = saved_fanins
                continue
            try:
                found = check_netlist(nl, trace, scope=f"mutation/{name}")
                killed = bool(found)
                detail = found[0].message if found else "no finding reported"
            except Exception as exc:
                killed = True
                detail = f"checker raised {type(exc).__name__}: {exc}"
            finally:
                nl.kinds[net] = saved_kind
                nl.fanins[net] = saved_fanins
            report.outcomes.append(
                MutantOutcome(
                    target=name,
                    mutant_index=made,
                    description=desc,
                    killed=killed,
                    detail=detail,
                )
            )
            made += 1
    return report
